"""The significance model: long-horizon baselines, graded events, debounce.

World-observer semantics, transplanted onto the measurement stream:

* every observer keeps one **per-group baseline** — an EWMA mean/variance
  over *daily* readings (:class:`~repro.monitor.detectors.EwmaTracker`,
  reused from the monitor layer) — and compares each new reading against
  it;
* a reading becomes a **candidate** only when the change is both
  practically large (``min_delta``, absolute or relative) and
  statistically surprising (z-score vs the baseline spread);
* the fleet debounces candidates to **at most one significance event per
  observer per virtual day** — the most severe candidate wins, the rest
  are counted on the event as ``suppressed``;
* a day with readings but no surviving candidate produces an explicit
  **silence checkpoint**, so "nothing changed" is itself recorded data
  and a gap in the event stream always means "no measurements", never
  "nobody looked".

Everything is pure arithmetic over daily readings processed in ascending
day order, so the event stream is a function of the record multiset —
the determinism the equivalence suite pins down.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Iterable, Iterator, List, Optional, Tuple, Union

from repro.errors import ResultsFormatError
from repro.monitor.detectors import EwmaTracker
from repro.observers.spec import ObserverSpec

#: Event statuses: a graded change, or an explicit all-quiet checkpoint.
STATUS_SIGNIFICANT = "significant"
STATUS_SILENCE = "silence"

#: Severity ranking used by the debounce (higher = more severe).
_SEVERITY_RANK = {"none": 0, "warning": 1, "critical": 2}


def day_start_ms(day: int, ms_per_day: float) -> float:
    return day * ms_per_day


@dataclass(frozen=True)
class SignificanceEvent:
    """One observer-day outcome: a graded change or a silence checkpoint."""

    observer: str
    group: str  # the winning group, or "*" for a fleet-wide silence line
    day: int  # virtual day index (floor(started_at_ms / MS_PER_DAY))
    at_ms: float  # virtual start of the day
    status: str  # "significant" | "silence"
    severity: str  # "warning" | "critical" | "none" (silence)
    value: Optional[float]
    baseline_mean: Optional[float]
    baseline_std: Optional[float]
    delta: Optional[float]
    zscore: Optional[float]
    direction: str  # "up" | "down" | "none"
    samples: int  # records behind the winning reading (or the whole day)
    suppressed: int  # debounced sibling candidates from other groups
    evidence: Dict[str, Any] = field(default_factory=dict)

    def sort_key(self) -> Tuple:
        # One event per (observer, day) — the key is already unique; the
        # trailing fields keep loaded/merged logs totally ordered anyway.
        return (self.day, self.observer, self.group, self.status)

    def to_dict(self) -> Dict[str, Any]:
        def _r(x: Optional[float]) -> Optional[float]:
            return None if x is None else round(x, 6)

        return {
            "observer": self.observer,
            "group": self.group,
            "day": self.day,
            "at_ms": self.at_ms,
            "status": self.status,
            "severity": self.severity,
            "value": _r(self.value),
            "baseline_mean": _r(self.baseline_mean),
            "baseline_std": _r(self.baseline_std),
            "delta": _r(self.delta),
            "zscore": _r(self.zscore),
            "direction": self.direction,
            "samples": self.samples,
            "suppressed": self.suppressed,
            "evidence": self.evidence,
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "SignificanceEvent":
        return cls(
            observer=data["observer"],
            group=data["group"],
            day=data["day"],
            at_ms=data["at_ms"],
            status=data["status"],
            severity=data["severity"],
            value=data.get("value"),
            baseline_mean=data.get("baseline_mean"),
            baseline_std=data.get("baseline_std"),
            delta=data.get("delta"),
            zscore=data.get("zscore"),
            direction=data.get("direction", "none"),
            samples=data.get("samples", 0),
            suppressed=data.get("suppressed", 0),
            evidence=dict(data.get("evidence", {})),
        )


class SignificanceLog:
    """Append-only event collection with canonical JSONL export."""

    def __init__(self) -> None:
        self._events: List[SignificanceEvent] = []

    def emit(self, event: SignificanceEvent) -> None:
        self._events.append(event)

    def extend(self, events: Iterable[SignificanceEvent]) -> None:
        self._events.extend(events)

    def events(self) -> List[SignificanceEvent]:
        return list(self._events)

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[SignificanceEvent]:
        return iter(self._events)

    def canonical_sort(self) -> None:
        self._events.sort(key=SignificanceEvent.sort_key)

    def significant(self) -> List[SignificanceEvent]:
        return [e for e in self._events if e.status == STATUS_SIGNIFICANT]

    def silences(self) -> List[SignificanceEvent]:
        return [e for e in self._events if e.status == STATUS_SILENCE]

    def counts_by_severity(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for event in self._events:
            counts[event.severity] = counts.get(event.severity, 0) + 1
        return {k: counts[k] for k in sorted(counts)}

    def to_jsonl(self) -> str:
        return "".join(event.to_json() + "\n" for event in self._events)

    def save_jsonl(self, path: Union[str, Path]) -> Path:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(self.to_jsonl(), encoding="utf-8")
        return path

    @classmethod
    def load_jsonl(cls, path: Union[str, Path]) -> "SignificanceLog":
        path = Path(path)
        log = cls()
        with path.open("r", encoding="utf-8") as handle:
            for number, line in enumerate(handle, start=1):
                line = line.strip()
                if not line:
                    continue
                try:
                    log.emit(SignificanceEvent.from_dict(json.loads(line)))
                except (ValueError, KeyError, TypeError) as exc:
                    raise ResultsFormatError(
                        f"{path}:{number}: malformed significance event: {exc}"
                    ) from exc
        return log


@dataclass
class Candidate:
    """A group's graded reading, before the per-observer-day debounce."""

    group: str
    severity: str
    value: float
    baseline_mean: float
    baseline_std: float
    delta: float
    zscore: float
    direction: str
    samples: int

    def rank_key(self) -> Tuple:
        # Most severe first, then most surprising; group name breaks ties
        # so the debounce winner never depends on evaluation order.
        return (-_SEVERITY_RANK[self.severity], -abs(self.zscore), self.group)


class SignificanceModel:
    """One group's long-horizon baseline plus the grading rule."""

    __slots__ = ("spec", "baseline")

    def __init__(self, spec: ObserverSpec) -> None:
        self.spec = spec
        self.baseline = EwmaTracker(spec.baseline.alpha)

    @property
    def warmed_up(self) -> bool:
        return self.baseline.count >= self.spec.baseline.min_days

    def evaluate(
        self, group: str, value: float, samples: int
    ) -> Tuple[Optional[Candidate], Optional[float]]:
        """Grade one daily reading, then fold it into the baseline.

        Returns ``(candidate, zscore)``: the candidate is ``None`` when
        the reading is unsurprising (or the baseline is still warming
        up); the z-score is ``None`` only during warm-up.  The baseline
        *always* absorbs the reading afterwards — a sustained shift fires
        once and then becomes the new normal, the same one-shot semantics
        the monitor's CUSUM uses.
        """
        cfg = self.spec.baseline
        candidate: Optional[Candidate] = None
        zscore: Optional[float] = None
        if self.warmed_up:
            mean = self.baseline.mean
            std = max(self.baseline.std, cfg.std_floor)
            delta = value - mean
            zscore = delta / std
            if cfg.relative:
                magnitude = abs(delta) / mean if mean > 0.0 else float("inf")
            else:
                magnitude = abs(delta)
            if magnitude >= cfg.min_delta and abs(zscore) >= cfg.z_warning:
                severity = (
                    "critical" if abs(zscore) >= cfg.z_critical else "warning"
                )
                candidate = Candidate(
                    group=group,
                    severity=severity,
                    value=value,
                    baseline_mean=mean,
                    baseline_std=self.baseline.std,
                    delta=delta,
                    zscore=zscore,
                    direction="up" if delta > 0 else "down",
                    samples=samples,
                )
        self.baseline.update(value)
        return candidate, zscore


def debounce_day(
    spec: ObserverSpec,
    day: int,
    at_ms: float,
    candidates: List[Candidate],
    readings: int,
    samples: int,
    warming: int,
    max_abs_z: Optional[float],
) -> SignificanceEvent:
    """Collapse one observer-day into exactly one event.

    ``candidates`` are the graded readings that survived their group
    baselines; the most severe one becomes the day's significance event
    and the rest are recorded as ``suppressed``.  With no candidates the
    day closes with a silence checkpoint carrying the coverage evidence
    (groups read, records seen, groups still warming up, the most extreme
    z observed) — the "we looked and nothing moved" record.
    """
    if candidates:
        ordered = sorted(candidates, key=Candidate.rank_key)
        winner = ordered[0]
        return SignificanceEvent(
            observer=spec.name,
            group=winner.group,
            day=day,
            at_ms=at_ms,
            status=STATUS_SIGNIFICANT,
            severity=winner.severity,
            value=winner.value,
            baseline_mean=winner.baseline_mean,
            baseline_std=winner.baseline_std,
            delta=winner.delta,
            zscore=winner.zscore,
            direction=winner.direction,
            samples=winner.samples,
            suppressed=len(ordered) - 1,
            evidence={
                "readings": readings,
                "records": samples,
                "suppressed_groups": [c.group for c in ordered[1:]],
            },
        )
    return SignificanceEvent(
        observer=spec.name,
        group="*",
        day=day,
        at_ms=at_ms,
        status=STATUS_SILENCE,
        severity="none",
        value=None,
        baseline_mean=None,
        baseline_std=None,
        delta=None,
        zscore=None,
        direction="none",
        samples=samples,
        suppressed=0,
        evidence={
            "readings": readings,
            "records": samples,
            "warming": warming,
            "max_abs_z": None if max_abs_z is None else round(max_abs_z, 6),
        },
    )
