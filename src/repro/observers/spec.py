"""Declarative observer specs and the fleet registry.

An :class:`ObserverSpec` names *one longitudinal question* about the
measurement stream — "is per-region availability holding?", "has a
resolver's p95 drifted off its long-horizon baseline?" — as data, not
code.  The spec fixes the metric kind, the grouping axis, the per-day
sample gate and the significance model's baseline parameters, so a fleet
is fully described by a list of specs and can be loaded from a JSON/TOML
file the same way SLO policies are.

The built-in fleet covers the five questions the poster's monthly
re-measurements were asking implicitly: regional availability, tail
latency drift, establishment-error pressure, encrypted-transport
(DoQ/DoH3) adoption, and cross-resolver answer agreement.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Tuple, Union

from repro.errors import ObserverConfigError

#: Metric kinds an observer can watch, each with its own per-day
#: accumulator (see :mod:`repro.observers.fleet`).
OBSERVER_KINDS = (
    "availability",
    "latency_p95",
    "error_share",
    "adoption_share",
    "disagreement_rate",
)

#: Grouping axes: one observer group (and one baseline) per distinct value.
OBSERVER_SCOPES = ("fleet", "region", "resolver", "vantage")

#: Severities a significance event can carry, mildest first.
EVENT_SEVERITIES = ("warning", "critical")


@dataclass(frozen=True)
class BaselineConfig:
    """Long-horizon baseline and significance thresholds for one observer.

    The baseline is an EWMA over *daily* readings — ``alpha`` is therefore
    tiny compared to the record-level detectors in :mod:`repro.monitor`:
    at 0.05 the half-life is ~13 virtual days, a genuinely long horizon.
    A reading is significance-eligible only once ``min_days`` readings
    have been folded in (silence before that is warm-up, not health).

    ``min_delta`` is the minimum *practical* change — absolute in the
    metric's units, or relative to the baseline mean when ``relative`` is
    true (latency drifts are ratios; share shifts are absolute points).
    ``std_floor`` keeps the z-score finite on very quiet baselines: the
    observed deviation is standardized against ``max(std, std_floor)``.
    """

    alpha: float = 0.05
    min_days: int = 3
    z_warning: float = 3.0
    z_critical: float = 6.0
    min_delta: float = 0.05
    relative: bool = False
    std_floor: float = 0.01

    def __post_init__(self) -> None:
        if not 0.0 < self.alpha <= 1.0:
            raise ObserverConfigError(f"baseline alpha {self.alpha!r} not in (0, 1]")
        if self.min_days < 1:
            raise ObserverConfigError(f"baseline min_days {self.min_days!r} must be >= 1")
        if not 0.0 < self.z_warning <= self.z_critical:
            raise ObserverConfigError(
                f"need 0 < z_warning <= z_critical, got "
                f"{self.z_warning!r} / {self.z_critical!r}"
            )
        if self.min_delta < 0.0:
            raise ObserverConfigError(f"min_delta {self.min_delta!r} must be >= 0")
        if self.std_floor <= 0.0:
            raise ObserverConfigError(f"std_floor {self.std_floor!r} must be > 0")

    def to_dict(self) -> Dict[str, Any]:
        return {
            "alpha": self.alpha,
            "min_days": self.min_days,
            "z_warning": self.z_warning,
            "z_critical": self.z_critical,
            "min_delta": self.min_delta,
            "relative": self.relative,
            "std_floor": self.std_floor,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "BaselineConfig":
        known = {
            "alpha", "min_days", "z_warning", "z_critical",
            "min_delta", "relative", "std_floor",
        }
        unknown = set(data) - known
        if unknown:
            raise ObserverConfigError(
                f"unknown baseline fields: {', '.join(sorted(unknown))}"
            )
        return cls(**data)


@dataclass(frozen=True)
class ObserverSpec:
    """One declarative longitudinal observer.

    ``min_samples`` gates each *daily* reading: a (group, day) cell with
    fewer contributing samples produces no reading at all — thin data
    neither updates the baseline nor can fire an event, which is what
    keeps a months-long sparse stream (1–3 measured days per month) from
    alarming on noise.  ``weight`` scales the observer's contribution to
    the world-health index.
    """

    name: str
    kind: str
    scope: str
    min_samples: int = 8
    baseline: BaselineConfig = field(default_factory=BaselineConfig)
    weight: float = 1.0
    description: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise ObserverConfigError("observer needs a non-empty name")
        if self.kind not in OBSERVER_KINDS:
            raise ObserverConfigError(
                f"unknown observer kind {self.kind!r} "
                f"(expected one of {', '.join(OBSERVER_KINDS)})"
            )
        if self.scope not in OBSERVER_SCOPES:
            raise ObserverConfigError(
                f"unknown observer scope {self.scope!r} "
                f"(expected one of {', '.join(OBSERVER_SCOPES)})"
            )
        if self.min_samples < 1:
            raise ObserverConfigError(
                f"observer {self.name!r}: min_samples must be >= 1"
            )
        if self.weight <= 0.0:
            raise ObserverConfigError(f"observer {self.name!r}: weight must be > 0")

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "kind": self.kind,
            "scope": self.scope,
            "min_samples": self.min_samples,
            "baseline": self.baseline.to_dict(),
            "weight": self.weight,
            "description": self.description,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ObserverSpec":
        data = dict(data)
        baseline = data.pop("baseline", None)
        known = {"name", "kind", "scope", "min_samples", "weight", "description"}
        unknown = set(data) - known
        if unknown:
            raise ObserverConfigError(
                f"unknown observer fields: {', '.join(sorted(unknown))}"
            )
        if baseline is not None:
            data["baseline"] = BaselineConfig.from_dict(baseline)
        try:
            return cls(**data)
        except TypeError as exc:  # missing required fields
            raise ObserverConfigError(f"incomplete observer spec: {exc}") from exc


class ObserverRegistry:
    """Named observer specs, looked up by the fleet and the CLI."""

    def __init__(self, specs: Iterable[ObserverSpec] = ()) -> None:
        self._specs: Dict[str, ObserverSpec] = {}
        for spec in specs:
            self.register(spec)

    def register(self, spec: ObserverSpec) -> ObserverSpec:
        if spec.name in self._specs:
            raise ObserverConfigError(f"duplicate observer name {spec.name!r}")
        self._specs[spec.name] = spec
        return spec

    def get(self, name: str) -> ObserverSpec:
        try:
            return self._specs[name]
        except KeyError:
            raise ObserverConfigError(
                f"unknown observer {name!r} (known: {', '.join(self.names()) or 'none'})"
            ) from None

    def names(self) -> List[str]:
        return sorted(self._specs)

    def specs(self) -> List[ObserverSpec]:
        """All registered specs, in name order (the fleet's canonical order)."""
        return [self._specs[name] for name in self.names()]

    def select(self, names: Optional[Iterable[str]]) -> List[ObserverSpec]:
        """The named specs (all of them for ``None``), in name order."""
        if names is None:
            return self.specs()
        return [self.get(name) for name in sorted(set(names))]

    def __len__(self) -> int:
        return len(self._specs)

    def __contains__(self, name: object) -> bool:
        return name in self._specs

    @classmethod
    def load(cls, path: Union[str, Path]) -> "ObserverRegistry":
        """A registry from a ``.toml`` or ``.json`` spec file.

        The structure mirrors SLO policies: a list of ``[[observers]]``
        tables (TOML) or an ``{"observers": [...]}`` object (JSON).
        """
        path = Path(path)
        try:
            if path.suffix.lower() == ".toml":
                import tomllib

                with path.open("rb") as handle:
                    data = tomllib.load(handle)
            else:
                data = json.loads(path.read_text(encoding="utf-8"))
        except OSError as exc:
            raise ObserverConfigError(f"unreadable observer spec {path}: {exc}") from exc
        except ValueError as exc:
            raise ObserverConfigError(f"malformed observer spec {path}: {exc}") from exc
        entries = data.get("observers") if isinstance(data, dict) else None
        if not isinstance(entries, list) or not entries:
            raise ObserverConfigError(
                f"observer spec {path} needs a non-empty 'observers' list"
            )
        return cls(ObserverSpec.from_dict(entry) for entry in entries)

    def save_json(self, path: Union[str, Path]) -> Path:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(
            json.dumps(
                {"observers": [spec.to_dict() for spec in self.specs()]},
                indent=2,
                sort_keys=True,
            )
            + "\n",
            encoding="utf-8",
        )
        return path


def default_registry() -> ObserverRegistry:
    """The built-in five-observer fleet.

    Thresholds are conservative on purpose (world-observer style): a
    months-long quiet stream should read as an unbroken run of silence
    checkpoints, with significance reserved for changes an operator would
    actually re-investigate — the poster's "did performance change
    drastically?" question, asked per day instead of per re-measurement.
    """
    return ObserverRegistry(
        (
            ObserverSpec(
                name="region-availability",
                kind="availability",
                scope="region",
                min_samples=8,
                baseline=BaselineConfig(
                    alpha=0.1, min_days=3, min_delta=0.05, std_floor=0.02
                ),
                weight=1.5,
                description="daily DNS-query success share per resolver region",
            ),
            ObserverSpec(
                name="resolver-p95-drift",
                kind="latency_p95",
                scope="resolver",
                min_samples=5,
                baseline=BaselineConfig(
                    alpha=0.05,
                    min_days=3,
                    min_delta=0.25,
                    relative=True,
                    std_floor=5.0,
                ),
                weight=1.0,
                description="daily p95 response time per resolver vs a "
                            "long-horizon EWMA baseline",
            ),
            ObserverSpec(
                name="establishment-error-share",
                kind="error_share",
                scope="fleet",
                min_samples=20,
                baseline=BaselineConfig(
                    alpha=0.1, min_days=3, min_delta=0.05, std_floor=0.01
                ),
                weight=1.25,
                description="share of queries failing in connection "
                            "establishment (the poster's dominant error group)",
            ),
            ObserverSpec(
                name="doq-adoption",
                kind="adoption_share",
                scope="fleet",
                min_samples=20,
                baseline=BaselineConfig(
                    alpha=0.1, min_days=3, min_delta=0.10, std_floor=0.02
                ),
                # An adoption shift is an ecosystem signal worth an event,
                # not a health incident: weight it low enough that it can
                # never sink the index below WATCH on its own.
                weight=0.5,
                description="share of successful encrypted queries carried "
                            "over DoQ or DoH3",
            ),
            ObserverSpec(
                name="answer-disagreement",
                kind="disagreement_rate",
                scope="fleet",
                min_samples=10,
                baseline=BaselineConfig(
                    alpha=0.1, min_days=2, min_delta=0.05, std_floor=0.01
                ),
                weight=1.5,
                description="daily cross-resolver answer disagreement rate "
                            "from the consensus diff engine",
            ),
        )
    )


def scaled_registry(min_samples_factor: float) -> ObserverRegistry:
    """The default fleet with every per-day sample gate scaled.

    Small demo campaigns (a couple of rounds per day) need lower gates
    than a production stream; scaling the whole fleet keeps the relative
    strictness of the observers intact.
    """
    if min_samples_factor <= 0.0:
        raise ObserverConfigError("min_samples_factor must be > 0")
    return ObserverRegistry(
        replace(spec, min_samples=max(1, int(spec.min_samples * min_samples_factor)))
        for spec in default_registry().specs()
    )
