"""Longitudinal observer fleet over the canonical measurement stream.

A fleet of declarative observers watches the record stream on a
months-long virtual-clock cadence and reports in two artifacts:

* a **significance event log** — at most one graded event per observer
  per virtual day, with explicit silence checkpoints for measured-but-
  quiet days (:mod:`repro.observers.significance`);
* a **world-health index** — one scored, banded series aggregating the
  whole fleet (:mod:`repro.observers.health`).

Both are byte-identical for any worker count, record chunking, or record
source (live store, warehouse, JSONL) over the same record multiset.

Quick start::

    from repro.observers import ObserverFleet, default_registry

    fleet = ObserverFleet(default_registry().specs())
    fleet.replay(store.records())          # any RecordSource iteration
    report = fleet.finalize(metrics)       # observer.* gauges optional
    report.events.save_jsonl("events.jsonl")
    report.index.save_jsonl("index.jsonl")
    print(report.render())

Or from the CLI: ``repro-dns observe --months 4 --events events.jsonl
--index index.jsonl --gate``.
"""

from repro.observers.fleet import ObserverFleet, ObserverReport
from repro.observers.health import (
    HEALTH_BANDS,
    SEVERITY_PENALTIES,
    HealthSample,
    WorldHealthIndex,
    band_of,
)
from repro.observers.significance import (
    STATUS_SIGNIFICANT,
    STATUS_SILENCE,
    Candidate,
    SignificanceEvent,
    SignificanceLog,
    SignificanceModel,
    debounce_day,
)
from repro.observers.spec import (
    EVENT_SEVERITIES,
    OBSERVER_KINDS,
    OBSERVER_SCOPES,
    BaselineConfig,
    ObserverRegistry,
    ObserverSpec,
    default_registry,
    scaled_registry,
)

__all__ = [
    "OBSERVER_KINDS",
    "OBSERVER_SCOPES",
    "EVENT_SEVERITIES",
    "HEALTH_BANDS",
    "SEVERITY_PENALTIES",
    "STATUS_SIGNIFICANT",
    "STATUS_SILENCE",
    "BaselineConfig",
    "Candidate",
    "HealthSample",
    "ObserverFleet",
    "ObserverRegistry",
    "ObserverReport",
    "ObserverSpec",
    "SignificanceEvent",
    "SignificanceLog",
    "SignificanceModel",
    "WorldHealthIndex",
    "band_of",
    "debounce_day",
    "default_registry",
    "scaled_registry",
]
