"""The observer fleet: record ingestion, daily evaluation, the report.

An :class:`ObserverFleet` consumes the canonical measurement stream —
live run, warehouse scan, JSONL file, or a parallel run's merged store —
and buckets each final DNS-query record into per-(observer, group,
virtual-day) accumulators.  ``observe`` only ever *accumulates* into
order-independent state (counters, duration multisets, answer cells);
all evaluation happens in :meth:`ObserverFleet.finalize`, which walks
days in ascending order feeding each group's long-horizon baseline.

That split is the determinism argument: the accumulated state is a pure
function of the record *multiset* (no arrival-order dependence at all),
and finalize's traversal order is fixed (observer name, then day, then
group), so the event JSONL and the world-health index are byte-identical
for any worker count, any record source, and any re-chunking of the same
records — a strictly stronger guarantee than the monitor's, which needs
per-group arrival order preserved.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from repro.analysis.render import render_table
from repro.analysis.stats import quantile
from repro.core.results import MeasurementRecord
from repro.core.scheduler import MS_PER_DAY
from repro.monitor.slo import ESTABLISHMENT_CLASS_VALUES
from repro.observers.health import WorldHealthIndex
from repro.observers.significance import (
    Candidate,
    SignificanceLog,
    SignificanceModel,
    debounce_day,
)
from repro.observers.spec import ObserverRegistry, ObserverSpec, default_registry

#: Encrypted transports, for the adoption-share denominator.
_ENCRYPTED_TRANSPORTS = frozenset({"doh", "dot", "doq", "doh3"})
#: QUIC-carried DNS counts as "modern": DoQ and DoH/3 by transport, plus
#: any DoH record that negotiated HTTP/3 (http_version "h3").
_QUIC_TRANSPORTS = frozenset({"doq", "doh3"})
_MODERN_HTTP_VERSIONS = frozenset({"h3"})

_ESTABLISHMENT_CLASSES = frozenset(ESTABLISHMENT_CLASS_VALUES)


def _region_map() -> Dict[str, str]:
    from repro.catalog.resolvers import CATALOG

    return {
        entry.hostname: entry.region or "unlocatable" for entry in CATALOG
    }


# -- per-day accumulators ----------------------------------------------------
#
# One instance per (observer, group, virtual day).  Each is a bag of
# counters / multisets, so the (value, samples) it yields depends only on
# which records were added, never on their order.


class _ShareAcc:
    """successes / total over final DNS queries (availability)."""

    __slots__ = ("total", "successes")

    def __init__(self) -> None:
        self.total = 0
        self.successes = 0

    def add(self, record: MeasurementRecord) -> None:
        self.total += 1
        if record.success:
            self.successes += 1

    def reading(self) -> Tuple[Optional[float], int]:
        if not self.total:
            return None, 0
        return self.successes / self.total, self.total


class _ErrorShareAcc:
    """establishment-class failures / total final DNS queries."""

    __slots__ = ("total", "matched")

    def __init__(self) -> None:
        self.total = 0
        self.matched = 0

    def add(self, record: MeasurementRecord) -> None:
        self.total += 1
        if not record.success and record.error_class in _ESTABLISHMENT_CLASSES:
            self.matched += 1

    def reading(self) -> Tuple[Optional[float], int]:
        if not self.total:
            return None, 0
        return self.matched / self.total, self.total


class _LatencyAcc:
    """p95 over the day's successful durations (a multiset: sorted at read)."""

    __slots__ = ("durations",)

    def __init__(self) -> None:
        self.durations: List[float] = []

    def add(self, record: MeasurementRecord) -> None:
        if record.success and record.duration_ms is not None:
            self.durations.append(record.duration_ms)

    def reading(self) -> Tuple[Optional[float], int]:
        if not self.durations:
            return None, 0
        return quantile(sorted(self.durations), 0.95), len(self.durations)


class _AdoptionAcc:
    """QUIC-carried share of successful encrypted queries."""

    __slots__ = ("encrypted", "modern")

    def __init__(self) -> None:
        self.encrypted = 0
        self.modern = 0

    def add(self, record: MeasurementRecord) -> None:
        if not record.success or record.transport not in _ENCRYPTED_TRANSPORTS:
            return
        self.encrypted += 1
        if (
            record.transport in _QUIC_TRANSPORTS
            or record.http_version in _MODERN_HTTP_VERSIONS
        ):
            self.modern += 1

    def reading(self) -> Tuple[Optional[float], int]:
        if not self.encrypted:
            return None, 0
        return self.modern / self.encrypted, self.encrypted


class _DisagreementAcc:
    """Daily answer-disagreement rate via the consensus diff engine.

    Cells are the diff engine's (campaign, round, vantage, domain) groups
    restricted to the day; members are (resolver, canonical form).  The
    reading is disagreeing comparisons over comparable ones, exactly the
    per-resolver rate of :mod:`repro.diff` folded fleet-wide.  Records
    without a captured wire contribute nothing (a campaign without
    ``capture_responses`` simply gives this observer no data).
    """

    __slots__ = ("cells",)

    def __init__(self) -> None:
        self.cells: Dict[Tuple[str, int, str, str], List[Tuple[str, object]]] = {}

    def add(self, record: MeasurementRecord) -> None:
        if not record.response_wire:
            return
        from repro.dnswire.canonical import canonical_form_from_wire

        key = (
            record.campaign,
            record.round_index,
            record.vantage,
            record.domain or "",
        )
        self.cells.setdefault(key, []).append(
            (record.resolver, canonical_form_from_wire(bytes.fromhex(record.response_wire)))
        )

    def reading(self) -> Tuple[Optional[float], int]:
        from repro.diff.engine import elect_consensus
        from repro.dnswire.canonical import CLASS_AGREE, classify, diff_forms

        comparable = 0
        disagree = 0
        for key in sorted(self.cells):
            members = sorted(self.cells[key], key=lambda m: m[0])
            forms = [form for _, form in members]
            consensus = elect_consensus(forms)
            if consensus is None:
                continue
            for _, form in members:
                mismatches = diff_forms(form, consensus)
                comparable += 1
                if classify(mismatches, form, consensus) != CLASS_AGREE:
                    disagree += 1
        if not comparable:
            return None, 0
        return disagree / comparable, comparable


_ACCUMULATORS = {
    "availability": _ShareAcc,
    "error_share": _ErrorShareAcc,
    "latency_p95": _LatencyAcc,
    "adoption_share": _AdoptionAcc,
    "disagreement_rate": _DisagreementAcc,
}


class ObserverReport:
    """Finalized fleet output: the event log plus the world-health index."""

    def __init__(
        self,
        specs: List[ObserverSpec],
        events: SignificanceLog,
        index: WorldHealthIndex,
        records_seen: int,
        days_observed: int,
    ) -> None:
        self.specs = specs
        self.events = events
        self.index = index
        self.records_seen = records_seen
        self.days_observed = days_observed

    def summary_rows(self) -> List[Dict[str, object]]:
        per: Dict[str, Dict[str, object]] = {
            spec.name: {
                "observer": spec.name,
                "days": 0,
                "significant": 0,
                "silences": 0,
                "worst": "-",
                "last_value": None,
            }
            for spec in self.specs
        }
        rank = {"-": 0, "none": 0, "warning": 1, "critical": 2}
        for event in self.events:
            row = per.get(event.observer)
            if row is None:
                continue
            row["days"] = int(row["days"]) + 1
            if event.status == "significant":
                row["significant"] = int(row["significant"]) + 1
                if rank[event.severity] > rank[str(row["worst"])]:
                    row["worst"] = event.severity
            else:
                row["silences"] = int(row["silences"]) + 1
            if event.value is not None:
                row["last_value"] = event.value
        return [per[spec.name] for spec in self.specs]

    def render(self) -> str:
        rows = [
            (
                str(row["observer"]),
                str(row["days"]),
                str(row["significant"]),
                str(row["silences"]),
                str(row["worst"]),
                "-" if row["last_value"] is None else f"{row['last_value']:.4f}",
            )
            for row in self.summary_rows()
        ]
        fleet_table = render_table(
            ("observer", "days", "significant", "silences", "worst", "last value"),
            rows,
        )
        latest = self.index.latest()
        lines = [
            "# Observer fleet",
            "",
            (
                f"records={self.records_seen} days={self.days_observed} "
                f"events={len(self.events.significant())} "
                f"silences={len(self.events.silences())}"
            ),
            "",
            fleet_table,
            "",
            "# World health",
            "",
            self.index.render(last=14),
            "",
            (
                "index: no measured days"
                if latest is None
                else (
                    f"index: latest score {latest.score:.1f} "
                    f"(trend {latest.trend:.1f}, {latest.band}), "
                    f"min {self.index.min_score():.1f}, "
                    f"worst band {self.index.worst_band()}"
                )
            ),
            "",
        ]
        return "\n".join(lines)


class ObserverFleet:
    """Streaming fleet over measurement records, evaluated per virtual day."""

    def __init__(
        self,
        specs: Optional[Iterable[ObserverSpec]] = None,
        ms_per_day: float = MS_PER_DAY,
    ) -> None:
        if specs is None:
            registry: ObserverRegistry = default_registry()
            self.specs: List[ObserverSpec] = registry.specs()
        else:
            self.specs = sorted(specs, key=lambda spec: spec.name)
        self.ms_per_day = ms_per_day
        self.records_seen = 0
        self._regions = _region_map()
        # (observer name, group, day) -> accumulator
        self._cells: Dict[Tuple[str, str, int], object] = {}

    # -- ingestion ---------------------------------------------------------

    def _group_of(self, spec: ObserverSpec, record: MeasurementRecord) -> str:
        if spec.scope == "fleet":
            group = "fleet"
        elif spec.scope == "region":
            group = self._regions.get(record.resolver, "unlocatable")
        elif spec.scope == "resolver":
            group = record.resolver
        else:
            group = record.vantage
        if spec.kind == "latency_p95":
            # Latency is only comparable within a transport: a DoQ series
            # ramping up next to an established DoH series must warm its
            # own baseline, not read as the DoH tail drifting.
            group = f"{group}/{record.transport}"
        return group

    def observe(self, record: MeasurementRecord) -> None:
        """Fold one record into per-day state.  Pure accumulation."""
        if record.kind != "dns_query":
            return
        self.records_seen += 1
        day = int(record.started_at_ms // self.ms_per_day)
        for spec in self.specs:
            key = (spec.name, self._group_of(spec, record), day)
            acc = self._cells.get(key)
            if acc is None:
                acc = _ACCUMULATORS[spec.kind]()
                self._cells[key] = acc
            acc.add(record)

    def replay(self, records: Iterable[MeasurementRecord]) -> None:
        for record in records:
            self.observe(record)

    # -- evaluation --------------------------------------------------------

    @property
    def group_count(self) -> int:
        return len({(name, group) for name, group, _ in self._cells})

    def finalize(self, metrics: Optional[object] = None) -> ObserverReport:
        """Evaluate every observer-day in canonical order; build the report.

        ``metrics`` is a :class:`~repro.obs.metrics.MetricsRegistry` (or
        anything with ``set_gauge``); fleet and world-health state land as
        ``observer.*`` gauges next to the monitor's ``monitor.*`` series.
        """
        events = SignificanceLog()
        days_observed: set = set()
        # Regroup cells per spec: day -> group -> accumulator.
        per_spec: Dict[str, Dict[int, Dict[str, object]]] = {
            spec.name: {} for spec in self.specs
        }
        for (name, group, day), acc in self._cells.items():
            per_spec[name].setdefault(day, {})[group] = acc

        baselines: Dict[Tuple[str, str], SignificanceModel] = {}
        for spec in self.specs:
            days = per_spec[spec.name]
            models: Dict[str, SignificanceModel] = {}
            for day in sorted(days):
                candidates: List[Candidate] = []
                readings = 0
                samples = 0
                warming = 0
                max_abs_z: Optional[float] = None
                for group in sorted(days[day]):
                    value, count = days[day][group].reading()
                    if value is None or count < spec.min_samples:
                        continue
                    model = models.get(group)
                    if model is None:
                        model = models[group] = SignificanceModel(spec)
                    warmed = model.warmed_up
                    candidate, zscore = model.evaluate(group, value, count)
                    readings += 1
                    samples += count
                    if not warmed:
                        warming += 1
                    if zscore is not None and (
                        max_abs_z is None or abs(zscore) > max_abs_z
                    ):
                        max_abs_z = abs(zscore)
                    if candidate is not None:
                        candidates.append(candidate)
                if not readings:
                    continue  # nothing cleared the sample gate: day unmeasured
                days_observed.add(day)
                events.emit(
                    debounce_day(
                        spec,
                        day,
                        day * self.ms_per_day,
                        candidates,
                        readings,
                        samples,
                        warming,
                        max_abs_z,
                    )
                )
            for group, model in models.items():
                baselines[(spec.name, group)] = model

        events.canonical_sort()
        index = WorldHealthIndex.from_events(events, self.specs, self.ms_per_day)
        report = ObserverReport(
            specs=self.specs,
            events=events,
            index=index,
            records_seen=self.records_seen,
            days_observed=len(days_observed),
        )
        if metrics is not None and getattr(metrics, "enabled", True):
            self._export_gauges(metrics, report, baselines)
        return report

    def _export_gauges(
        self,
        metrics: object,
        report: ObserverReport,
        baselines: Dict[Tuple[str, str], SignificanceModel],
    ) -> None:
        metrics.set_gauge("observer.records_seen", float(self.records_seen))
        metrics.set_gauge("observer.specs", float(len(self.specs)))
        metrics.set_gauge("observer.days", float(report.days_observed))
        metrics.set_gauge(
            "observer.events", float(len(report.events.significant()))
        )
        metrics.set_gauge(
            "observer.silences", float(len(report.events.silences()))
        )
        for row in report.summary_rows():
            labels = {"observer": str(row["observer"])}
            metrics.set_gauge(
                "observer.significant_days", float(int(row["significant"])), **labels
            )
            if row["last_value"] is not None:
                metrics.set_gauge(
                    "observer.last_value", float(row["last_value"]), **labels
                )
        for (name, group) in sorted(baselines):
            model = baselines[(name, group)]
            labels = {"observer": name, "group": group}
            metrics.set_gauge(
                "observer.baseline_mean", model.baseline.mean, **labels
            )
            metrics.set_gauge("observer.baseline_std", model.baseline.std, **labels)
        latest = report.index.latest()
        if latest is not None:
            metrics.set_gauge("observer.health_score", latest.score)
            metrics.set_gauge("observer.health_trend", latest.trend)
            low = report.index.min_score()
            if low is not None:
                metrics.set_gauge("observer.health_min_score", low)
