"""The world-health index: one scored series over the whole fleet.

Each measured virtual day collapses into a single number: start from 100,
subtract a penalty for every significance event fired that day (scaled by
the owning observer's ``weight`` and the event's severity), clamp to
``[0, 100]``.  A slow EWMA over the daily scores gives the trend line an
operator actually watches — one bad day dents it, a bad month drags it.

The index is computed from the canonical-sorted event log alone, so it is
order-independent over equivalent record streams by construction: same
records, same events, same index — byte for byte.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Tuple, Union

from repro.analysis.render import render_table
from repro.errors import ResultsFormatError
from repro.observers.significance import (
    STATUS_SIGNIFICANT,
    SignificanceEvent,
)
from repro.observers.spec import ObserverSpec

#: Penalty per significance event, before the observer weight.
SEVERITY_PENALTIES = {"warning": 15.0, "critical": 40.0}

#: Index states, healthiest first, with their score floors.
HEALTH_BANDS: Tuple[Tuple[str, float], ...] = (
    ("STABLE", 90.0),
    ("WATCH", 70.0),
    ("DEGRADED", 40.0),
    ("CRITICAL", 0.0),
)

#: EWMA weight of one day in the trend line (half-life ~4.6 days).
TREND_ALPHA = 0.14


def band_of(score: float) -> str:
    for name, floor in HEALTH_BANDS:
        if score >= floor:
            return name
    return HEALTH_BANDS[-1][0]


@dataclass(frozen=True)
class HealthSample:
    """The index at one measured virtual day."""

    day: int
    at_ms: float
    score: float
    trend: float  # EWMA-smoothed score
    band: str  # band of the *trend* — the operator-facing state
    events: int  # significance events this day
    silences: int  # silence checkpoints this day
    observers: int  # observers that reported (events + silences)
    #: Per-observer penalty actually charged this day (only non-zero ones).
    contributions: Dict[str, float] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "day": self.day,
            "at_ms": self.at_ms,
            "score": round(self.score, 6),
            "trend": round(self.trend, 6),
            "band": self.band,
            "events": self.events,
            "silences": self.silences,
            "observers": self.observers,
            "contributions": {
                k: round(v, 6) for k, v in sorted(self.contributions.items())
            },
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "HealthSample":
        return cls(
            day=data["day"],
            at_ms=data["at_ms"],
            score=data["score"],
            trend=data["trend"],
            band=data["band"],
            events=data.get("events", 0),
            silences=data.get("silences", 0),
            observers=data.get("observers", 0),
            contributions=dict(data.get("contributions", {})),
        )


class WorldHealthIndex:
    """The rolling scored series over every measured virtual day."""

    def __init__(self, samples: List[HealthSample]) -> None:
        self._samples = samples

    @classmethod
    def from_events(
        cls,
        events: Iterable[SignificanceEvent],
        specs: Iterable[ObserverSpec],
        ms_per_day: float,
    ) -> "WorldHealthIndex":
        """Score every day that produced at least one event.

        Days never measured produce no sample — the index has nothing to
        say about them, and pretending otherwise would turn coverage gaps
        into fake health.  Processing ascends day order so the trend EWMA
        is well-defined; within a day only the event *set* matters.
        """
        weights = {spec.name: spec.weight for spec in specs}
        by_day: Dict[int, List[SignificanceEvent]] = {}
        for event in events:
            by_day.setdefault(event.day, []).append(event)

        samples: List[HealthSample] = []
        trend: Optional[float] = None
        for day in sorted(by_day):
            day_events = by_day[day]
            contributions: Dict[str, float] = {}
            fired = 0
            silences = 0
            for event in sorted(day_events, key=SignificanceEvent.sort_key):
                if event.status == STATUS_SIGNIFICANT:
                    fired += 1
                    penalty = SEVERITY_PENALTIES.get(event.severity, 0.0)
                    penalty *= weights.get(event.observer, 1.0)
                    contributions[event.observer] = (
                        contributions.get(event.observer, 0.0) + penalty
                    )
                else:
                    silences += 1
            score = max(0.0, min(100.0, 100.0 - sum(contributions.values())))
            trend = (
                score
                if trend is None
                else trend + TREND_ALPHA * (score - trend)
            )
            samples.append(
                HealthSample(
                    day=day,
                    at_ms=day * ms_per_day,
                    score=score,
                    trend=trend,
                    band=band_of(trend),
                    events=fired,
                    silences=silences,
                    observers=len(day_events),
                    contributions=contributions,
                )
            )
        return cls(samples)

    # -- reads -------------------------------------------------------------

    def samples(self) -> List[HealthSample]:
        return list(self._samples)

    def __len__(self) -> int:
        return len(self._samples)

    def __iter__(self):
        return iter(self._samples)

    def latest(self) -> Optional[HealthSample]:
        return self._samples[-1] if self._samples else None

    def min_score(self) -> Optional[float]:
        return min((s.score for s in self._samples), default=None)

    def worst_band(self) -> str:
        ranks = {name: i for i, (name, _) in enumerate(HEALTH_BANDS)}
        worst = HEALTH_BANDS[0][0]
        for sample in self._samples:
            if ranks[sample.band] > ranks[worst]:
                worst = sample.band
        return worst

    def healthy(self, floor: float = 70.0) -> bool:
        """Did the index stay at or above ``floor`` on every measured day?

        Vacuously healthy when nothing was measured: the gate's job is to
        catch detected degradation, not missing coverage (the summary
        reports coverage separately).
        """
        low = self.min_score()
        return low is None or low >= floor

    # -- serialization -----------------------------------------------------

    def to_jsonl(self) -> str:
        return "".join(sample.to_json() + "\n" for sample in self._samples)

    def save_jsonl(self, path: Union[str, Path]) -> Path:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(self.to_jsonl(), encoding="utf-8")
        return path

    @classmethod
    def load_jsonl(cls, path: Union[str, Path]) -> "WorldHealthIndex":
        path = Path(path)
        samples: List[HealthSample] = []
        with path.open("r", encoding="utf-8") as handle:
            for number, line in enumerate(handle, start=1):
                line = line.strip()
                if not line:
                    continue
                try:
                    samples.append(HealthSample.from_dict(json.loads(line)))
                except (ValueError, KeyError, TypeError) as exc:
                    raise ResultsFormatError(
                        f"{path}:{number}: malformed health sample: {exc}"
                    ) from exc
        return cls(samples)

    def render(self, last: Optional[int] = None) -> str:
        """The index as a table (optionally only the trailing ``last`` days)."""
        rows = self._samples if last is None else self._samples[-last:]
        table = [
            (
                str(s.day),
                f"{s.score:.1f}",
                f"{s.trend:.1f}",
                s.band,
                str(s.events),
                str(s.silences),
                ", ".join(
                    f"{name}(-{penalty:.0f})"
                    for name, penalty in sorted(s.contributions.items())
                )
                or "-",
            )
            for s in rows
        ]
        return render_table(
            ("day", "score", "trend", "band", "events", "silences", "penalties"),
            table,
        )
