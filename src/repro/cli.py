"""``repro-dns`` — command-line front end for the measurement platform.

Subcommands:

* ``list``    — show the resolver catalog (filter by region/mainstream);
* ``measure`` — run a measurement campaign over the simulated world and
  write JSONL results;
* ``report``  — run the full study and print the paper-vs-measured claim
  table plus Tables 2/3;
* ``figure``  — render one of the paper's figures as ASCII boxplots;
* ``monitor`` — evaluate SLOs over saved results (JSONL or warehouse),
  emitting alerts, verdicts and a resolver health scoreboard;
* ``diff``    — cross-resolver answer differencing: fan the same queries
  out to every deployment (or read saved captures), diff each response
  against the consensus and classify the disagreements;
* ``observe`` — run the longitudinal observer fleet over saved results or
  a months-long observatory campaign, emitting significance events and
  the world-health index;
* ``sessions`` — run the session-policy scenario matrix (cold /
  keep-alive / resumption / 0-RTT across DoH, DoT, DoQ, DoH/3) and print
  the per-policy state, warm-vs-cold p95 and 0-RTT acceptance tables;
* ``metrics`` — export a saved metrics JSON file as Prometheus text;
* ``trace``   — run a small traced campaign and export phase-level spans
  (JSONL) and/or a text span tree;
* ``query``   — issue a single DoH query from a vantage point and print a
  dig-style response.

Interactive chatter (progress lines, fault-plan notes, monitor status)
goes to stderr; stdout carries only the primary output of each command,
so pipelines like ``repro-dns monitor wh/ --alerts - | jq .`` stay clean.
"""

from __future__ import annotations

import argparse
import random
import sys
from pathlib import Path
from typing import Iterator, List, Optional

from repro.analysis.render import render_boxplot_rows, render_table
from repro.catalog.browsers import mainstream_hostnames
from repro.catalog.resolvers import CATALOG
from repro.core.probes import DohProbe, DohProbeConfig
from repro.core.results import ResultStore
from repro.core.runner import Campaign, CampaignConfig
from repro.core.scheduler import MS_PER_HOUR, PeriodicSchedule


def _record_stream(path: str) -> Iterator:
    """Stream records from a JSONL file or a warehouse directory.

    Commands taking ``--input`` accept either; both paths stream — the
    whole file is never loaded into memory.
    """
    if Path(path).is_dir():
        from repro.store import Warehouse

        return Warehouse.open(path).iter_records()
    from repro.core.results import ResultStore

    return ResultStore.iter_jsonl(path)


def _status(message: str) -> None:
    """Interactive chatter: stderr, never stdout."""
    print(message, file=sys.stderr)


def _load_policy(spec: Optional[str]):
    """An SLO policy from ``--slo``: a TOML/JSON path, or ``default``."""
    from repro.monitor import SloPolicy, default_policy

    if spec is None or spec == "default":
        return default_policy()
    return SloPolicy.load(spec)


def _write_alert_artifacts(monitor, alerts_dir: str) -> None:
    """Write alerts.jsonl + scoreboard.txt + verdicts.json under a directory."""
    import json as _json

    directory = Path(alerts_dir)
    directory.mkdir(parents=True, exist_ok=True)
    monitor.alerts.save_jsonl(directory / "alerts.jsonl")
    (directory / "scoreboard.txt").write_text(
        monitor.scoreboard().render() + "\n", encoding="utf-8"
    )
    (directory / "verdicts.json").write_text(
        _json.dumps(
            [verdict.to_dict() for verdict in monitor.verdicts()],
            indent=2,
            sort_keys=True,
        )
        + "\n",
        encoding="utf-8",
    )
    _status(
        f"wrote {len(monitor.alerts)} alerts, scoreboard and "
        f"{len(monitor.verdicts())} verdicts to {directory}"
    )


def _cmd_list(args: argparse.Namespace) -> int:
    entries = CATALOG
    if args.region:
        entries = [e for e in entries if e.region == args.region]
    if args.mainstream:
        entries = [e for e in entries if e.mainstream]
    header = ("hostname", "region", "operator", "sites", "anycast", "mainstream")
    rows = [
        (
            e.hostname,
            e.region or "(unlocatable)",
            e.operator,
            ",".join(e.cities),
            "yes" if e.anycast else "",
            "yes" if e.mainstream else "",
        )
        for e in entries
    ]
    print(render_table(header, rows))
    print(f"{len(rows)} resolvers")
    return 0


def _cmd_measure(args: argparse.Namespace) -> int:
    from repro.core.runner import RetryPolicy, RoundProgress
    from repro.experiments.world import build_world
    from repro.obs import MetricsRegistry, SpanCollector

    if args.workers is not None:
        return _measure_parallel(args)

    world = build_world(seed=args.seed)
    vantages = [world.vantage(name) for name in args.vantage]
    schedule = PeriodicSchedule(
        rounds=args.rounds, interval_ms=args.interval_hours * MS_PER_HOUR
    )
    config = CampaignConfig(
        name=args.name,
        schedule=schedule,
        probe_config=DohProbeConfig(method=args.method),
        retry=RetryPolicy(attempts=args.attempts),
        seed=args.seed,
    )
    targets = world.targets(args.resolver or None)
    if args.faults:
        from repro.faults import FaultPlan, FaultPlanConfig, inject_faults

        plan = FaultPlan.generate(
            [target.hostname for target in targets],
            horizon_ms=schedule.total_span_ms + schedule.interval_ms,
            seed=args.fault_seed,
            config=FaultPlanConfig(impaired_time_fraction=args.fault_fraction),
        )
        injector = inject_faults(
            world.network,
            [world.deployments[target.hostname] for target in targets],
            plan,
        )
        _status(f"armed fault plan: {plan.describe()}")
        _status(f"injector: {injector.describe()}")
    recorder = SpanCollector() if args.trace else None
    metrics = (
        MetricsRegistry(enabled=True) if (args.metrics or args.progress) else None
    )
    on_round = (
        (lambda progress: _status(progress.describe())) if args.progress else None
    )
    monitor = None
    if args.slo or args.alerts:
        from repro.monitor import Monitor

        monitor = Monitor(_load_policy(args.slo))
    sink = None
    if args.store:
        import shutil

        from repro.store import StoreSink, Warehouse

        staging = Path(args.store) / ".staging" / "serial"
        sink = StoreSink(
            Warehouse(staging),
            segment_records=args.segment_records,
            metrics=metrics,
        )
    store = _run_instrumented(
        Campaign(
            network=world.network,
            vantages=vantages,
            targets=targets,
            config=config,
            store=sink,
            recorder=recorder,
            monitor=monitor,
            on_round_complete=on_round,
        ),
        metrics,
    )
    if monitor is not None:
        monitor.finalize(metrics)
    if sink is not None:
        warehouse = Warehouse.build_canonical(
            [sink.close()], args.store, segment_records=args.segment_records
        )
        shutil.rmtree(Path(args.store) / ".staging", ignore_errors=True)
        print(f"wrote {len(warehouse)} records to warehouse {args.store}")
        print(warehouse.describe())
    else:
        count = store.save_jsonl(args.output)
        print(f"wrote {count} records to {args.output}")
    if recorder is not None:
        spans = recorder.save_jsonl(args.trace)
        print(f"wrote {spans} spans to {args.trace}")
    if args.metrics and metrics is not None:
        metrics.save_json(args.metrics)
        print(f"wrote metrics to {args.metrics}")
    if monitor is not None:
        if args.alerts:
            _write_alert_artifacts(monitor, args.alerts)
        print(monitor.scoreboard().render())
    if args.faults:
        if sink is not None:
            from repro.store import availability_from_aggregates

            availability = availability_from_aggregates(warehouse.aggregates())
        else:
            from repro.analysis.availability import availability_report

            availability = availability_report(store)
        print(availability.describe())
    return 0


def _measure_parallel(args: argparse.Namespace) -> int:
    """``measure --workers N``: the sharded execution path.

    Both ``--workers 1`` and ``--workers 4`` run the same shard plan
    through :func:`repro.parallel.run_parallel`, so the written artifacts
    are byte-identical across worker counts for the same seed.
    """
    from repro.analysis.export import export_parallel_run
    from repro.core.runner import RetryPolicy
    from repro.experiments.campaigns import _catalog_hostnames, run_campaign_parallel
    from repro.parallel import SHARD_STRATEGIES

    if args.workers < 1:
        print(f"--workers must be >= 1 (got {args.workers})", file=sys.stderr)
        return 2
    if args.shard_by not in SHARD_STRATEGIES:
        print(
            f"--shard-by must be one of {sorted(SHARD_STRATEGIES)}",
            file=sys.stderr,
        )
        return 2

    schedule = PeriodicSchedule(
        rounds=args.rounds, interval_ms=args.interval_hours * MS_PER_HOUR
    )
    config = CampaignConfig(
        name=args.name,
        schedule=schedule,
        probe_config=DohProbeConfig(method=args.method),
        retry=RetryPolicy(attempts=args.attempts),
        seed=args.seed,
    )
    hostnames = _catalog_hostnames(args.resolver or None)

    fault_plan = None
    if args.faults:
        from repro.faults import FaultPlan, FaultPlanConfig

        fault_plan = FaultPlan.generate(
            hostnames,
            horizon_ms=schedule.total_span_ms + schedule.interval_ms,
            seed=args.fault_seed,
            config=FaultPlanConfig(impaired_time_fraction=args.fault_fraction),
        )
        _status(f"armed fault plan: {fault_plan.describe()}")

    slo_policy = _load_policy(args.slo) if (args.slo or args.alerts) else None
    run = run_campaign_parallel(
        config,
        args.vantage,
        hostnames,
        world_seed=args.seed,
        workers=args.workers,
        shard_by=args.shard_by,
        shards=args.shards,
        fault_plan=fault_plan,
        collect_spans=bool(args.trace),
        collect_metrics=bool(args.metrics),
        store_dir=args.store or None,
        segment_records=args.segment_records,
        slo_policy=slo_policy,
    )
    _status(run.describe())
    if args.progress:
        for result in run.shard_results:
            _status(
                f"  shard {result.shard_index} [{result.shard_key}]: "
                f"{result.record_count} records, {result.wall_seconds:.2f}s"
            )
    if run.warehouse is not None:
        print(f"wrote {len(run.warehouse)} records to warehouse {args.store}")
        if args.trace:
            spans = run.spans.save_jsonl(args.trace)
            print(f"wrote {spans} spans to {args.trace}")
        if args.metrics:
            run.metrics.save_json(args.metrics)
            print(f"wrote metrics to {args.metrics}")
    else:
        written = export_parallel_run(
            run,
            args.output,
            spans_path=args.trace or None,
            metrics_path=args.metrics or None,
        )
        print(f"wrote {written['records']} records to {args.output}")
        if args.trace:
            print(f"wrote {written['spans']} spans to {args.trace}")
        if args.metrics:
            print(f"wrote metrics to {args.metrics}")
    if run.monitor is not None:
        if args.alerts:
            _write_alert_artifacts(run.monitor, args.alerts)
        print(run.monitor.scoreboard().render())
    if args.faults:
        if run.warehouse is not None:
            from repro.store import availability_from_aggregates

            print(availability_from_aggregates(run.warehouse.aggregates()).describe())
        else:
            from repro.analysis.availability import availability_report

            print(availability_report(run.store).describe())
    return 0


def _run_instrumented(campaign: Campaign, metrics) -> ResultStore:
    """Run a campaign, installing ``metrics`` ambiently if given.

    The registry must be ambient (not just passed to the campaign) so the
    protocol layers — TLS, HTTP, QUIC, the network fabric — report into it.
    """
    if metrics is None:
        return campaign.run()
    from repro.obs import NULL_RECORDER, tracing

    # The campaign's explicit recorder (if any) already wins over the
    # ambient one; install NULL ambiently so spans stay off unless asked.
    ambient_recorder = campaign._recorder if campaign._recorder is not None else NULL_RECORDER
    with tracing(recorder=ambient_recorder, metrics=metrics):
        return campaign.run()


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.experiments.paper import generate_report
    from repro.obs import NULL_RECORDER, MetricsRegistry, SpanCollector, tracing

    recorder = SpanCollector() if args.trace else NULL_RECORDER
    metrics = MetricsRegistry(enabled=bool(args.metrics))
    with tracing(recorder=recorder, metrics=metrics):
        report = generate_report(
            home_rounds=args.home_rounds, ec2_rounds=args.ec2_rounds, seed=args.seed
        )
    print(report.describe())
    print()
    for table in ("table1", "table2", "table3"):
        print(report.rendered_tables[table])
        print()
    if args.phases and report.store is not None:
        _print_phase_tables(report.store)
    if args.trace:
        spans = recorder.save_jsonl(args.trace)
        print(f"wrote {spans} spans to {args.trace}")
    if args.metrics:
        metrics.save_json(args.metrics)
        print(f"wrote metrics to {args.metrics}")
    if args.output and report.store is not None:
        out = Path(args.output)
        if out.is_dir() or args.output.endswith(("/", "\\")):
            from repro.store import Warehouse

            warehouse = Warehouse.from_records(report.store.records, out)
            print(f"wrote {len(warehouse)} records to warehouse {out}")
        else:
            report.store.save_jsonl(args.output)
            print(f"wrote {len(report.store)} records to {args.output}")
    return 0 if report.holds_count == len(report.claims) else 1


def _print_phase_tables(store: ResultStore, near: str = "ec2-frankfurt",
                        far: str = "ec2-seoul") -> None:
    """Phase attribution: far-vs-near deltas plus error breakdown."""
    from repro.analysis.phases import (
        error_phases,
        phase_deltas,
        render_error_phases,
        render_phase_delta_table,
    )

    non_mainstream_unicast = [
        e.hostname for e in CATALOG
        if not e.mainstream and not e.anycast and e.region == "EU"
    ]
    deltas = phase_deltas(store, non_mainstream_unicast, near, far)
    if deltas:
        print(render_phase_delta_table(
            deltas,
            title=f"Phase attribution: non-mainstream unicast EU resolvers, "
                  f"{far} vs {near}",
        ))
        print()
    errors = error_phases(store)
    if errors:
        print(render_error_phases(errors))
        print()


def _cmd_figure(args: argparse.Namespace) -> int:
    from repro.analysis.figures import paper_figure
    from repro.experiments.campaigns import HOME_VANTAGE_NAMES, run_study
    from repro.experiments.world import build_world

    if args.input and Path(args.input).is_dir():
        from repro.store import Warehouse

        store = Warehouse.open(args.input)
    elif args.input:
        store = ResultStore.load_jsonl(args.input)
    else:
        world = build_world(seed=args.seed)
        store = run_study(world, home_rounds=args.rounds, ec2_rounds=args.rounds)
    panels = paper_figure(
        store, args.figure, mainstream_hostnames(), home_vantages=HOME_VANTAGE_NAMES
    )
    for vantage, rows in panels.items():
        print(f"=== {args.figure} / {vantage} ===")
        print(render_boxplot_rows(rows, include_ping=args.ping))
        print()
    if args.csv:
        from repro.analysis.export import figure_rows_to_csv, write_csv

        path = write_csv(figure_rows_to_csv(panels), args.csv)
        print(f"wrote CSV to {path}")
    return 0


def _cmd_correlate(args: argparse.Namespace) -> int:
    from repro.analysis.correlation import latency_correlations_from_records

    # One streaming pass: the input (JSONL file or warehouse directory) is
    # never loaded whole into memory.
    correlations = latency_correlations_from_records(
        _record_stream(args.input), vantages=args.vantage or None
    )
    for vantage, outcome in correlations.items():
        if isinstance(outcome, Exception):  # thin data for this vantage
            print(f"{vantage}: {outcome}")
        else:
            print(outcome.describe())
    return 0


def _cmd_drift(args: argparse.Namespace) -> int:
    from repro.analysis.longitudinal import drift_reports_from_records

    reports = drift_reports_from_records(
        _record_stream(args.input), vantage=args.vantage
    )
    stable = True
    for report in reports:
        print(report.describe())
        stable = stable and not report.drifted
    return 0 if stable else 1


def _cmd_diff(args: argparse.Namespace) -> int:
    """``diff`` — cross-resolver answer differencing (respdiff-style).

    Two modes: with ``--input`` the report is built from saved records
    (JSONL file or warehouse directory, streamed); without it a
    same-query fan-out campaign runs first, serial or sharded.  The
    report text on stdout is deterministic — byte-identical across
    worker counts and record sources for a fixed seed.
    """
    from repro.diff import AnswerFaultPlan, build_diff_report, verify_reproducibility
    from repro.errors import DiffInputError
    from repro.experiments.campaigns import (
        _catalog_hostnames,
        diff_campaign_config,
        run_diff_campaign,
    )

    if args.workers < 1:
        print(f"--workers must be >= 1 (got {args.workers})", file=sys.stderr)
        return 2
    if args.verify < 0:
        print(f"--verify must be >= 0 (got {args.verify})", file=sys.stderr)
        return 2

    hostnames = _catalog_hostnames(args.resolver or None)
    config = diff_campaign_config(
        rounds=args.rounds,
        seed=args.seed,
        domains=args.domain or None,
        transport=args.transport,
    )
    fault_plan = None
    if args.faults:
        fault_plan = AnswerFaultPlan.generate(
            hostnames,
            list(config.domains),
            seed=args.fault_seed,
            per_kind=args.faults_per_kind,
        )
        _status(f"armed answer faults:\n{fault_plan.describe()}")

    if args.input:
        records = _record_stream(args.input)
    else:
        run = run_diff_campaign(
            world_seed=args.world_seed,
            rounds=args.rounds,
            seed=args.seed,
            domains=args.domain or None,
            transport=args.transport,
            vantage_names=args.vantage or None,
            target_hostnames=hostnames,
            workers=args.workers,
            shard_by=args.shard_by,
            shards=args.shards,
            answer_fault_plan=fault_plan,
            store_dir=args.store or None,
            segment_records=args.segment_records,
        )
        _status(run.describe())
        records = (
            run.warehouse.iter_records()
            if run.warehouse is not None
            else run.store.records
        )

    try:
        report = build_diff_report(records)
    except DiffInputError as exc:
        print(f"diff: {exc}", file=sys.stderr)
        return 2

    if args.verify:
        from repro.experiments.world import build_world

        world = build_world(seed=args.world_seed, warm_caches=True)
        if fault_plan is not None:
            # The verify world must serve the same (faulted) answers the
            # campaign world did, or injected faults would read transient.
            fault_plan.install(
                world.deployments[hostname]
                for hostname in hostnames
                if hostname in world.deployments
            )
        verify_reproducibility(world, report, attempts=args.verify, seed=args.verify_seed)
        _status(f"verified {len(report.disagreements())} disagreements "
                f"x{args.verify} re-queries")

    if args.output:
        Path(args.output).write_text(report.to_jsonl(), encoding="utf-8")
        _status(f"wrote {len(report)} diff records to {args.output}")
    print(report.render(), end="")
    return 0


def _cmd_sessions(args: argparse.Namespace) -> int:
    """``sessions`` — the transport × session-policy scenario matrix.

    Runs the same campaign once per policy (same seed, schedule and
    world, so per-measurement RNG streams are identical across policies)
    and prints the study tables.  With ``--gate`` the exit status
    becomes a regression check: 0 only if the warm-path p95 beats the
    within-run cold-path p95 for both DoH and DoQ under every policy
    that produced a warm path.
    """
    from repro.analysis.sessions import session_report, warm_cold_deltas
    from repro.experiments.campaigns import SESSION_STUDY_POLICIES, run_sessions_study

    if args.workers < 1:
        print(f"--workers must be >= 1 (got {args.workers})", file=sys.stderr)
        return 2

    runs = run_sessions_study(
        policies=tuple(args.policy) if args.policy else SESSION_STUDY_POLICIES,
        world_seed=args.world_seed,
        rounds=args.rounds,
        seed=args.seed,
        transports=tuple(args.transport),
        domains=args.domain or None,
        vantage_names=args.vantage or None,
        target_hostnames=args.resolver or None,
        workers=args.workers,
        shard_by=args.shard_by,
        shards=args.shards,
        store_dir=args.store or None,
        segment_records=args.segment_records,
    )
    for name, run in runs.items():
        _status(f"{name}: {run.describe()}")

    report = session_report(runs, per_vantage=args.per_vantage)
    if args.output:
        Path(args.output).parent.mkdir(parents=True, exist_ok=True)
        Path(args.output).write_text(report + "\n", encoding="utf-8")
        _status(f"wrote session report to {args.output}")
    print(report)

    if not args.gate:
        return 0
    deltas = warm_cold_deltas(runs)
    gated = tuple(args.gate_transport)
    failed = False
    for transport in gated:
        rows = [d for d in deltas if d.transport == transport]
        if not rows:
            _status(f"gate: {transport}: FAIL (no warm-path records)")
            failed = True
            continue
        for row in rows:
            verdict = "ok" if row.warm_faster else "FAIL"
            _status(
                f"gate: {transport}/{row.policy}: {verdict} "
                f"(warm p95 {row.warm_p95_ms:.1f} ms vs "
                f"cold p95 {row.cold_p95_ms:.1f} ms)"
            )
            failed = failed or not row.warm_faster
    return 1 if failed else 0


def _cmd_store(args: argparse.Namespace) -> int:
    """``store`` — inspect, compact or summarize a results warehouse."""
    from repro.store import Warehouse, response_time_summaries

    warehouse = Warehouse.open(args.store_dir)
    if args.action == "info":
        info = warehouse.info()
        print(warehouse.describe())
        print(f"  segment size: {info['segment_records']} records")
        print(f"  groups: {info['groups']} (vantage x resolver x transport)")
        print(f"  vantages: {', '.join(info['vantages'])}")
        return 0
    if args.action == "compact":
        before = warehouse.info()
        warehouse.compact(segment_records=args.segment_records)
        after = warehouse.info()
        print(
            f"compacted {after['records']} records: "
            f"{before['segments']} -> {after['segments']} segments, "
            f"canonical={after['canonical']}"
        )
        return 0
    # summarize: availability + response-time tables straight from the
    # persisted aggregates — no record scan.
    from repro.store import (
        availability_from_aggregates,
        per_resolver_availability_from_aggregates,
    )

    book = warehouse.aggregates()
    availability = availability_from_aggregates(book, vantage=args.vantage)
    print(availability.describe())
    print()
    rates = per_resolver_availability_from_aggregates(book, vantage=args.vantage)
    summaries = response_time_summaries(book, vantage=args.vantage)
    header = ("resolver", "avail", "n", "mean", "p50", "p95", "p99")
    rows = []
    for resolver in sorted(rates):
        summary = summaries.get(resolver)
        rows.append(
            (
                resolver,
                f"{rates[resolver]:.1%}",
                str(summary.count) if summary else "0",
                f"{summary.mean_ms:.1f}" if summary else "-",
                f"{summary.p50_ms:.1f}" if summary else "-",
                f"{summary.p95_ms:.1f}" if summary else "-",
                f"{summary.p99_ms:.1f}" if summary else "-",
            )
        )
    print(render_table(header, rows))
    print(f"{len(rows)} resolvers (served from aggregates, no record scan)")
    return 0


def _cmd_monitor(args: argparse.Namespace) -> int:
    """``monitor`` — SLO evaluation over saved results.

    Replays the input (JSONL file or warehouse directory) through the
    streaming monitor, reproducing exactly the alerts a live-monitored
    run of those records would have raised, and prints the health
    scoreboard.  ``--from-aggregates`` skips the record replay and
    evaluates final verdicts straight from the warehouse's persisted
    aggregates (no alerts in that mode — windows need the record stream).
    """
    import json as _json

    from repro.monitor import Monitor, Scoreboard, verdicts_from_book

    policy = _load_policy(args.slo)

    if args.from_aggregates:
        if not Path(args.input).is_dir():
            print(
                "--from-aggregates needs a warehouse directory input",
                file=sys.stderr,
            )
            return 2
        from repro.store import Warehouse

        book = Warehouse.open(args.input).aggregates()
        verdicts = verdicts_from_book(book, policy)
        scoreboard = Scoreboard.from_verdicts(verdicts)
        monitor = None
        _status(
            f"evaluated {len(verdicts)} verdicts from persisted aggregates "
            f"({len(book)} groups, no record scan)"
        )
    else:
        monitor = Monitor(policy)
        monitor.replay(_record_stream(args.input))
        monitor.finalize()
        verdicts = monitor.verdicts()
        scoreboard = monitor.scoreboard()
        _status(
            f"replayed {monitor.records_seen} records: "
            f"{len(monitor.alerts)} alerts, {len(verdicts)} verdicts"
        )

    if args.alerts and monitor is not None:
        if args.alerts == "-":
            # Alert JSONL owns stdout; the scoreboard moves to stderr.
            sys.stdout.write(monitor.alerts.to_jsonl())
        else:
            monitor.alerts.save_jsonl(args.alerts)
            _status(f"wrote {len(monitor.alerts)} alerts to {args.alerts}")
    if args.verdicts:
        Path(args.verdicts).parent.mkdir(parents=True, exist_ok=True)
        Path(args.verdicts).write_text(
            _json.dumps([v.to_dict() for v in verdicts], indent=2, sort_keys=True)
            + "\n",
            encoding="utf-8",
        )
        _status(f"wrote {len(verdicts)} verdicts to {args.verdicts}")

    table = scoreboard.render()
    if args.alerts == "-":
        _status(table)
    else:
        print(table)
    counts = scoreboard.counts()
    _status(
        f"scoreboard: {counts['OK']} ok, {counts['DEGRADED']} degraded, "
        f"{counts['FAILING']} failing"
    )
    if args.gate and scoreboard.worst_state() != "OK":
        _status(f"gate: worst state {scoreboard.worst_state()} -> failing")
        return 1
    return 0


def _cmd_observe(args: argparse.Namespace) -> int:
    """``observe`` — the longitudinal observer fleet.

    Two modes, mirroring ``diff``: with ``--input`` the fleet replays
    saved results (JSONL file or warehouse directory, streamed); without
    it the months-long observatory campaign runs first, serial or
    sharded.  The significance-event JSONL and the world-health index
    JSONL are byte-identical for any ``--workers N`` and for any record
    source over the same records.
    """
    from repro.errors import ObserverConfigError
    from repro.experiments.observatory import run_observer_study
    from repro.obs.metrics import MetricsRegistry
    from repro.observers import (
        ObserverFleet,
        ObserverRegistry,
        default_registry,
        scaled_registry,
    )

    if args.workers < 1:
        print(f"--workers must be >= 1 (got {args.workers})", file=sys.stderr)
        return 2
    if args.events == "-" and args.index == "-":
        print(
            "--events - and --index - cannot both own stdout; "
            "write at least one of them to a file",
            file=sys.stderr,
        )
        return 2

    try:
        if args.spec:
            registry = ObserverRegistry.load(args.spec)
        elif args.min_samples_scale != 1.0:
            registry = scaled_registry(args.min_samples_scale)
        else:
            registry = default_registry()
        specs = registry.select(args.observers or None)
    except ObserverConfigError as exc:
        print(f"observe: {exc}", file=sys.stderr)
        return 2

    run = None
    if args.input:
        records = _record_stream(args.input)
        metrics = MetricsRegistry()
    else:
        run = run_observer_study(
            world_seed=args.world_seed,
            months=args.months,
            rounds_per_month=args.rounds,
            seed=args.seed,
            vantage_names=args.vantage or None,
            target_hostnames=args.resolver or None,
            workers=args.workers,
            shard_by=args.shard_by,
            shards=args.shards,
            fault_seed=args.fault_seed if args.faults else None,
            fault_fraction=args.fault_fraction,
            collect_metrics=bool(args.metrics),
            store_dir=args.store or None,
            segment_records=args.segment_records,
        )
        _status(run.describe())
        records = (
            run.warehouse.iter_sorted()
            if run.warehouse is not None
            else run.store.records
        )
        # The merged registry is disabled when shards didn't collect; the
        # observer gauges still need a live registry of their own then.
        metrics = run.metrics if run.metrics.enabled else MetricsRegistry()

    fleet = ObserverFleet(specs)
    fleet.replay(records)
    report = fleet.finalize(metrics)
    _status(
        f"observed {report.records_seen} records over {report.days_observed} "
        f"virtual days: {len(report.events.significant())} events, "
        f"{len(report.events.silences())} silences"
    )

    stdout_taken = False
    if args.events:
        if args.events == "-":
            sys.stdout.write(report.events.to_jsonl())
            stdout_taken = True
        else:
            report.events.save_jsonl(args.events)
            _status(f"wrote {len(report.events)} events to {args.events}")
    if args.index:
        if args.index == "-":
            sys.stdout.write(report.index.to_jsonl())
            stdout_taken = True
        else:
            report.index.save_jsonl(args.index)
            _status(f"wrote {len(report.index)} health samples to {args.index}")
    if args.metrics:
        metrics.save_json(args.metrics)
        _status(f"wrote metrics to {args.metrics}")

    # The summary owns stdout unless an artifact already claimed it.
    summary = report.render()
    if stdout_taken:
        _status(summary)
    else:
        print(summary)

    if args.gate and not report.index.healthy(args.gate_floor):
        low = report.index.min_score()
        _status(
            f"gate: world-health index dipped to {low:.1f} "
            f"(< floor {args.gate_floor:.1f}) -> failing"
        )
        return 1
    return 0


def _cmd_metrics(args: argparse.Namespace) -> int:
    """``metrics export`` — Prometheus text from a saved metrics JSON file.

    Accepts both a lossless state dump (``save_state_json``: full
    histogram buckets) and a snapshot (``--metrics``/``save_json``:
    quantile estimates, exposed as summaries).
    """
    import json as _json

    from repro.obs.metrics import exposition_from_dump

    try:
        data = _json.loads(Path(args.input).read_text(encoding="utf-8"))
        text = exposition_from_dump(data)
    except (OSError, ValueError) as exc:
        print(f"unreadable metrics file {args.input}: {exc}", file=sys.stderr)
        return 2
    if args.output:
        Path(args.output).parent.mkdir(parents=True, exist_ok=True)
        Path(args.output).write_text(text, encoding="utf-8")
        _status(f"wrote {len(text.splitlines())} exposition lines to {args.output}")
    else:
        sys.stdout.write(text)
    return 0


def _cmd_stamp(args: argparse.Namespace) -> int:
    from repro.catalog.resolvers import entry_for
    from repro.catalog.stamps import decode_stamp, doh_stamp, encode_stamp

    if args.decode:
        stamp = decode_stamp(args.resolver)
        print(f"protocol: {stamp.protocol_name}")
        print(f"hostname: {stamp.hostname or '(none)'}")
        print(f"address:  {stamp.address or '(none)'}")
        print(f"path:     {stamp.path or '(none)'}")
        flags = [
            name for name, on in (
                ("dnssec", stamp.dnssec),
                ("no-logs", stamp.no_logs),
                ("no-filter", stamp.no_filter),
            ) if on
        ]
        print(f"props:    {', '.join(flags) or '(none)'}")
        return 0
    entry = entry_for(args.resolver)
    print(encode_stamp(doh_stamp(hostname=entry.hostname)))
    return 0


def _cmd_run_config(args: argparse.Namespace) -> int:
    from repro.core.platform import build_campaign, load_spec
    from repro.experiments.world import build_world

    spec = load_spec(args.config)
    world = build_world(seed=spec["seed"])
    store = build_campaign(world, spec).run()
    output = args.output or f"{spec['name']}.jsonl"
    count = store.save_jsonl(output)
    print(f"campaign {spec['name']!r}: wrote {count} records to {output}")
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    from repro.experiments.world import build_world
    from repro.obs import MetricsRegistry, SpanCollector, tracing

    world = build_world(seed=args.seed)
    vantages = [world.vantage(name) for name in args.vantage]
    targets = world.targets(args.resolver or None)
    schedule = PeriodicSchedule(
        rounds=args.rounds, interval_ms=args.interval_hours * MS_PER_HOUR
    )
    config = CampaignConfig(
        name=args.name,
        schedule=schedule,
        transport=args.transport,
        probe_config=DohProbeConfig(),
        seed=args.seed,
    )
    recorder = SpanCollector()
    metrics = MetricsRegistry(enabled=True)
    with tracing(recorder=recorder, metrics=metrics):
        store = Campaign(
            network=world.network,
            vantages=vantages,
            targets=targets,
            config=config,
            recorder=recorder,
            metrics=metrics,
        ).run()
    print(
        f"traced {len(store)} records: {len(recorder)} spans, "
        f"{len(recorder.roots())} roots"
    )
    if args.output:
        spans = recorder.save_jsonl(args.output)
        print(f"wrote {spans} spans to {args.output}")
    if args.tree:
        print(recorder.render_tree(max_spans=args.max_spans))
    if args.metrics_output:
        metrics.save_json(args.metrics_output)
        print(f"wrote metrics to {args.metrics_output}")
    if args.summary:
        print(metrics.summary())
    return 0


def _cmd_query(args: argparse.Namespace) -> int:
    from repro.experiments.world import build_world

    world = build_world(seed=args.seed)
    vantage = world.vantage(args.vantage)
    deployment = world.deployment(args.resolver)
    probe = DohProbe(
        vantage.host,
        deployment.service_ip,
        deployment.hostname,
        DohProbeConfig(method=args.method),
        rng=random.Random(args.seed),
    )
    outcomes = []
    probe.query(args.domain, outcomes.append)
    world.network.run()
    outcome = outcomes[0]
    if outcome.success:
        print(f";; {args.domain} via {args.resolver} from {args.vantage}")
        print(f";; response time: {outcome.duration_ms:.1f} ms "
              f"({outcome.http_version}, TLS {outcome.tls_version})")
        for address in outcome.answers:
            print(f"{args.domain}.\tA\t{address}")
        return 0
    print(f";; FAILED: {outcome.error_class} ({outcome.error_detail})")
    return 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-dns",
        description="Encrypted-DNS resolver measurement platform (simulated world)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_list = sub.add_parser("list", help="show the resolver catalog")
    p_list.add_argument("--region", choices=["NA", "EU", "AS", "OC"])
    p_list.add_argument("--mainstream", action="store_true")
    p_list.set_defaults(func=_cmd_list)

    p_measure = sub.add_parser("measure", help="run a measurement campaign")
    p_measure.add_argument("--name", default="cli-campaign")
    p_measure.add_argument("--vantage", nargs="+", default=["ec2-ohio"])
    p_measure.add_argument("--resolver", nargs="*", help="hostnames (default: all)")
    p_measure.add_argument("--rounds", type=int, default=5)
    p_measure.add_argument("--interval-hours", type=float, default=8.0)
    p_measure.add_argument("--method", choices=["POST", "GET"], default="POST")
    p_measure.add_argument("--seed", type=int, default=0)
    p_measure.add_argument("--output", default="results.jsonl")
    p_measure.add_argument(
        "--store", metavar="DIR",
        help="stream records into a results warehouse at DIR instead of "
             "writing --output JSONL; bounded memory, canonical segments, "
             "aggregates persisted alongside (see the 'store' subcommand)",
    )
    p_measure.add_argument(
        "--segment-records", type=int, default=4096, metavar="N",
        help="records per warehouse segment for --store (default: 4096)",
    )
    p_measure.add_argument(
        "--attempts", type=int, default=1,
        help="total tries per query (retries with exponential backoff)",
    )
    p_measure.add_argument(
        "--faults", action="store_true",
        help="inject a seeded fault plan (outages, TLS windows, loss/latency spikes)",
    )
    p_measure.add_argument(
        "--fault-seed", type=int, default=20230919,
        help="seed of the generated fault plan",
    )
    p_measure.add_argument(
        "--fault-fraction", type=float, default=0.030,
        help="expected fraction of each resolver's time under a fault window",
    )
    p_measure.add_argument(
        "--trace", metavar="PATH",
        help="collect phase-level spans and write them as JSONL",
    )
    p_measure.add_argument(
        "--metrics", metavar="PATH",
        help="collect stack-wide metrics and write a JSON snapshot",
    )
    p_measure.add_argument(
        "--progress", action="store_true",
        help="print one structured line per completed round (to stderr)",
    )
    p_measure.add_argument(
        "--slo", metavar="FILE",
        help="monitor the campaign live against an SLO policy (TOML/JSON "
             "file, or the literal 'default' for paper-derived baselines); "
             "prints the health scoreboard after the run",
    )
    p_measure.add_argument(
        "--alerts", metavar="DIR",
        help="write monitoring artifacts (alerts.jsonl, scoreboard.txt, "
             "verdicts.json) under DIR; implies --slo default if --slo "
             "is not given",
    )
    p_measure.add_argument(
        "--workers", type=int, default=None, metavar="N",
        help="run the campaign sharded across N worker processes; the "
             "written artifacts are byte-identical for any N given the "
             "same seed (--workers 1 is the serial reference run)",
    )
    p_measure.add_argument(
        "--shard-by", choices=["vantage", "resolver", "round"],
        default="resolver",
        help="shard axis for --workers (default: resolver cohorts)",
    )
    p_measure.add_argument(
        "--shards", type=int, default=None, metavar="K",
        help="shard count for --workers (default: one per vantage, or "
             "8 cohorts/spans for resolver/round sharding)",
    )
    p_measure.set_defaults(func=_cmd_measure)

    p_report = sub.add_parser("report", help="full paper-vs-measured report")
    p_report.add_argument("--home-rounds", type=int, default=12)
    p_report.add_argument("--ec2-rounds", type=int, default=10)
    p_report.add_argument("--seed", type=int, default=0)
    p_report.add_argument(
        "--output",
        help="also write raw records: a JSONL file, or a results warehouse "
             "when the path is an existing directory (or ends with a "
             "path separator)",
    )
    p_report.add_argument(
        "--phases", action="store_true",
        help="print the phase-attribution tables (establishment vs query)",
    )
    p_report.add_argument(
        "--trace", metavar="PATH",
        help="collect phase-level spans during the study and write JSONL",
    )
    p_report.add_argument(
        "--metrics", metavar="PATH",
        help="collect stack-wide metrics during the study and write JSON",
    )
    p_report.set_defaults(func=_cmd_report)

    p_figure = sub.add_parser("figure", help="render a paper figure")
    p_figure.add_argument("figure", choices=["figure1", "figure2", "figure3", "figure4"])
    p_figure.add_argument(
        "--input",
        help="results to analyse: JSONL file or warehouse directory "
             "(else simulate)",
    )
    p_figure.add_argument("--rounds", type=int, default=8)
    p_figure.add_argument("--seed", type=int, default=0)
    p_figure.add_argument("--ping", action="store_true", help="include ping rows")
    p_figure.add_argument("--csv", help="also export the panels as CSV")
    p_figure.set_defaults(func=_cmd_figure)

    p_corr = sub.add_parser("correlate", help="ping-vs-DNS relationship from saved results")
    p_corr.add_argument(
        "--input", required=True,
        help="JSONL results or warehouse directory (streamed)",
    )
    p_corr.add_argument("--vantage", nargs="*", help="vantage names (default: all)")
    p_corr.set_defaults(func=_cmd_correlate)

    p_drift = sub.add_parser("drift", help="longitudinal drift from saved results")
    p_drift.add_argument(
        "--input", required=True,
        help="JSONL results or warehouse directory with >= 2 campaigns (streamed)",
    )
    p_drift.add_argument("--vantage", help="restrict to one vantage")
    p_drift.set_defaults(func=_cmd_drift)

    p_diff = sub.add_parser(
        "diff", help="cross-resolver answer differencing (respdiff-style)"
    )
    p_diff.add_argument(
        "--input", metavar="PATH",
        help="analyse saved results (JSONL file or warehouse directory, "
             "streamed) instead of running a campaign; records need "
             "captured responses (measure with capture enabled)",
    )
    p_diff.add_argument("--rounds", type=int, default=2)
    p_diff.add_argument("--seed", type=int, default=505, help="campaign seed")
    p_diff.add_argument("--world-seed", type=int, default=0)
    p_diff.add_argument(
        "--vantage", nargs="+", default=None,
        help="vantage names (default: the three EC2 vantages)",
    )
    p_diff.add_argument("--resolver", nargs="*", help="hostnames (default: all)")
    p_diff.add_argument(
        "--domain", nargs="*",
        help="query domains (default: the campaign's study domains)",
    )
    p_diff.add_argument(
        "--transport", choices=["doh", "dot", "doq", "do53"], default="doh",
    )
    p_diff.add_argument(
        "--workers", type=int, default=1, metavar="N",
        help="shard the fan-out across N worker processes; the report is "
             "byte-identical for any N given the same seed",
    )
    p_diff.add_argument(
        "--shard-by", choices=["vantage", "resolver", "round"], default="vantage",
    )
    p_diff.add_argument("--shards", type=int, default=None, metavar="K")
    p_diff.add_argument(
        "--store", metavar="DIR",
        help="stream campaign records into a results warehouse at DIR "
             "(the report is then built from the warehouse)",
    )
    p_diff.add_argument("--segment-records", type=int, default=4096, metavar="N")
    p_diff.add_argument(
        "--faults", action="store_true",
        help="inject a seeded answer-fault plan (nxdomain/servfail/rewrite/"
             "ttl/truncate) so the taxonomy has something to classify",
    )
    p_diff.add_argument("--fault-seed", type=int, default=20230919)
    p_diff.add_argument(
        "--faults-per-kind", type=int, default=1, metavar="N",
        help="how many (resolver, domain) cells get each fault kind",
    )
    p_diff.add_argument(
        "--verify", type=int, default=0, metavar="N",
        help="diffrepro pass: re-query each disagreement N times on a "
             "fresh world and label it reproducible or transient",
    )
    p_diff.add_argument("--verify-seed", type=int, default=0)
    p_diff.add_argument(
        "--output", metavar="PATH",
        help="also write the per-cell diff records as JSONL",
    )
    p_diff.set_defaults(func=_cmd_diff)

    p_sessions = sub.add_parser(
        "sessions",
        help="transport x session-policy scenario matrix (reuse/resumption/0-RTT)",
    )
    p_sessions.add_argument(
        "--policy", nargs="+", default=None,
        choices=["cold", "keep-alive", "resumption", "zero-rtt"],
        help="policy presets to sweep (default: all four)",
    )
    p_sessions.add_argument(
        "--transport", nargs="+", default=["doh", "dot", "doq", "doh3"],
        choices=["doh", "dot", "doq", "doh3"],
        help="transports in the matrix (default: all session transports)",
    )
    p_sessions.add_argument("--rounds", type=int, default=3)
    p_sessions.add_argument("--seed", type=int, default=606, help="campaign seed")
    p_sessions.add_argument("--world-seed", type=int, default=0)
    p_sessions.add_argument(
        "--vantage", nargs="+", default=None,
        help="vantage names (default: the three EC2 vantages)",
    )
    p_sessions.add_argument(
        "--resolver", nargs="*",
        help="hostnames (default: the five deployments speaking all four "
             "session transports)",
    )
    p_sessions.add_argument(
        "--domain", nargs="*",
        help="query domains (default: the campaign's study domains)",
    )
    p_sessions.add_argument(
        "--workers", type=int, default=1, metavar="N",
        help="shard each policy run across N worker processes; the report "
             "is byte-identical for any N given the same seed",
    )
    p_sessions.add_argument(
        "--shard-by", choices=["vantage", "resolver", "round"], default="vantage",
    )
    p_sessions.add_argument("--shards", type=int, default=None, metavar="K")
    p_sessions.add_argument(
        "--store", metavar="DIR",
        help="stream each policy run into a per-policy warehouse under DIR "
             "(the report is then built from the warehouses)",
    )
    p_sessions.add_argument("--segment-records", type=int, default=4096, metavar="N")
    p_sessions.add_argument(
        "--per-vantage", action="store_true",
        help="break the scenario-matrix table down per vantage point",
    )
    p_sessions.add_argument(
        "--output", metavar="PATH", help="also write the report to PATH",
    )
    p_sessions.add_argument(
        "--gate", action="store_true",
        help="exit 1 unless warm-path p95 beats the within-run cold-path "
             "p95 for every gated transport under every warm policy",
    )
    p_sessions.add_argument(
        "--gate-transport", nargs="+", default=["doh", "doq"],
        choices=["doh", "dot", "doq", "doh3"],
        help="transports the --gate check covers (default: doh doq)",
    )
    p_sessions.set_defaults(func=_cmd_sessions)

    p_store = sub.add_parser("store", help="inspect or compact a results warehouse")
    p_store.add_argument(
        "action", choices=["info", "compact", "summarize"],
        help="info: manifest + layout; compact: rewrite in canonical order; "
             "summarize: availability/response-time tables from aggregates",
    )
    p_store.add_argument("store_dir", help="warehouse directory (from measure --store)")
    p_store.add_argument(
        "--segment-records", type=int, default=None, metavar="N",
        help="new segment size for compact (default: keep current)",
    )
    p_store.add_argument("--vantage", help="restrict summarize to one vantage")
    p_store.set_defaults(func=_cmd_store)

    p_monitor = sub.add_parser(
        "monitor", help="evaluate SLOs over saved results; alerts + scoreboard"
    )
    p_monitor.add_argument(
        "input", help="JSONL results file or warehouse directory"
    )
    p_monitor.add_argument(
        "--slo", metavar="FILE",
        help="SLO policy (TOML/JSON file; default: paper-derived baselines)",
    )
    p_monitor.add_argument(
        "--alerts", metavar="PATH",
        help="write the alert JSONL to PATH, or '-' for stdout (the "
             "scoreboard then moves to stderr, keeping stdout pure JSONL)",
    )
    p_monitor.add_argument(
        "--verdicts", metavar="PATH", help="write the verdicts JSON to PATH"
    )
    p_monitor.add_argument(
        "--from-aggregates", action="store_true",
        help="evaluate verdicts from the warehouse's persisted aggregates "
             "without replaying records (warehouse input only; no alerts)",
    )
    p_monitor.add_argument(
        "--gate", action="store_true",
        help="exit non-zero when any resolver is DEGRADED or FAILING",
    )
    p_monitor.set_defaults(func=_cmd_monitor)

    p_observe = sub.add_parser(
        "observe",
        help="longitudinal observer fleet: significance events + world health",
    )
    p_observe.add_argument(
        "--input", metavar="PATH",
        help="observe saved results (JSONL file or warehouse directory, "
             "streamed) instead of running the observatory campaign",
    )
    p_observe.add_argument(
        "--months", type=int, default=4,
        help="monthly measurement windows in the observatory campaign",
    )
    p_observe.add_argument(
        "--rounds", type=int, default=6, help="rounds per monthly window"
    )
    p_observe.add_argument("--seed", type=int, default=606, help="campaign seed")
    p_observe.add_argument("--world-seed", type=int, default=0)
    p_observe.add_argument(
        "--vantage", nargs="+", default=None,
        help="vantage names (default: the three EC2 vantages)",
    )
    p_observe.add_argument("--resolver", nargs="*", help="hostnames (default: all)")
    p_observe.add_argument(
        "--workers", type=int, default=1, metavar="N",
        help="shard the campaign across N worker processes; events and "
             "index are byte-identical for any N given the same seed",
    )
    p_observe.add_argument(
        "--shard-by", choices=["vantage", "resolver", "round"], default="vantage",
    )
    p_observe.add_argument("--shards", type=int, default=None, metavar="K")
    p_observe.add_argument(
        "--store", metavar="DIR",
        help="stream campaign records into a results warehouse at DIR "
             "(the fleet then replays the warehouse)",
    )
    p_observe.add_argument("--segment-records", type=int, default=4096, metavar="N")
    p_observe.add_argument(
        "--observers", nargs="+", metavar="NAME",
        help="restrict the fleet to these observers (default: all)",
    )
    p_observe.add_argument(
        "--spec", metavar="FILE",
        help="observer registry (TOML/JSON file; default: the built-in five)",
    )
    p_observe.add_argument(
        "--min-samples-scale", type=float, default=1.0, metavar="F",
        help="scale every observer's per-day sample gate (small demo "
             "campaigns need lower gates than a production stream)",
    )
    p_observe.add_argument(
        "--events", metavar="PATH",
        help="write the significance-event JSONL to PATH, or '-' for "
             "stdout (the summary then moves to stderr)",
    )
    p_observe.add_argument(
        "--index", metavar="PATH",
        help="write the world-health index JSONL to PATH, or '-' for stdout",
    )
    p_observe.add_argument(
        "--metrics", metavar="PATH",
        help="write a metrics JSON snapshot including observer.* gauges",
    )
    p_observe.add_argument(
        "--faults", action="store_true",
        help="inject a seeded fault plan spanning the whole horizon so "
             "availability and error-share observers have dips to find",
    )
    p_observe.add_argument("--fault-seed", type=int, default=20230919)
    p_observe.add_argument(
        "--fault-fraction", type=float, default=0.10,
        help="expected impaired time fraction of the fault plan",
    )
    p_observe.add_argument(
        "--gate", action="store_true",
        help="exit non-zero when the world-health index dips below the floor",
    )
    p_observe.add_argument(
        "--gate-floor", type=float, default=70.0, metavar="SCORE",
    )
    p_observe.set_defaults(func=_cmd_observe)

    p_metrics = sub.add_parser(
        "metrics", help="export saved metrics as Prometheus text"
    )
    metrics_sub = p_metrics.add_subparsers(dest="metrics_command", required=True)
    p_metrics_export = metrics_sub.add_parser(
        "export", help="Prometheus text exposition of a metrics JSON file"
    )
    p_metrics_export.add_argument(
        "--input", required=True,
        help="metrics JSON: a state dump (full buckets) or a snapshot",
    )
    p_metrics_export.add_argument(
        "--output", help="write the exposition to a file instead of stdout"
    )
    p_metrics_export.set_defaults(func=_cmd_metrics)

    p_stamp = sub.add_parser("stamp", help="DNS stamp for a resolver (or decode one)")
    p_stamp.add_argument("resolver", help="catalog hostname, or an sdns:// URI with --decode")
    p_stamp.add_argument("--decode", action="store_true")
    p_stamp.set_defaults(func=_cmd_stamp)

    p_config = sub.add_parser("run-config", help="run a JSON campaign spec")
    p_config.add_argument("config", help="path to the JSON spec")
    p_config.add_argument("--output", help="JSONL output (default: <name>.jsonl)")
    p_config.set_defaults(func=_cmd_run_config)

    p_trace = sub.add_parser(
        "trace", help="run a traced campaign; export phase-level spans"
    )
    p_trace.add_argument("--name", default="cli-trace")
    p_trace.add_argument("--vantage", nargs="+", default=["ec2-ohio"])
    p_trace.add_argument("--resolver", nargs="*", help="hostnames (default: all)")
    p_trace.add_argument("--rounds", type=int, default=1)
    p_trace.add_argument("--interval-hours", type=float, default=1.0)
    p_trace.add_argument(
        "--transport", choices=["doh", "dot", "do53", "doq"], default="doh"
    )
    p_trace.add_argument("--seed", type=int, default=0)
    p_trace.add_argument("--output", default="spans.jsonl", help="span JSONL path")
    p_trace.add_argument("--tree", action="store_true", help="print the span tree")
    p_trace.add_argument(
        "--max-spans", type=int, default=None,
        help="limit the printed tree to the first N spans",
    )
    p_trace.add_argument("--metrics-output", help="also write a metrics JSON snapshot")
    p_trace.add_argument(
        "--summary", action="store_true", help="print the metrics summary"
    )
    p_trace.set_defaults(func=_cmd_trace)

    p_query = sub.add_parser("query", help="one DoH query, dig-style output")
    p_query.add_argument("resolver")
    p_query.add_argument("domain")
    p_query.add_argument("--vantage", default="ec2-ohio")
    p_query.add_argument("--method", choices=["POST", "GET"], default="POST")
    p_query.add_argument("--seed", type=int, default=0)
    p_query.set_defaults(func=_cmd_query)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
