"""Table 1: encrypted-DNS resolver choices offered by major browsers.

The paper defines *mainstream* resolvers as those appearing in this table
(as of May 9, 2024).  Providers map to concrete DoH hostnames in
:mod:`repro.catalog.resolvers`.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

#: Provider columns of Table 1, in the paper's order.
PROVIDERS: Tuple[str, ...] = (
    "Cloudflare",
    "Google",
    "Quad9",
    "NextDNS",
    "CleanBrowsing",
    "OpenDNS",
)

#: Table 1 rows: browser -> providers it offers.
BROWSER_MATRIX: Dict[str, Tuple[str, ...]] = {
    "Chrome": ("Cloudflare", "Google", "Quad9", "NextDNS", "CleanBrowsing"),
    "Firefox": ("Cloudflare", "NextDNS"),
    "Edge": ("Cloudflare", "Google", "Quad9", "NextDNS", "CleanBrowsing", "OpenDNS"),
    "Opera": ("Cloudflare", "Google"),
    "Brave": ("Cloudflare", "Google", "Quad9", "NextDNS", "CleanBrowsing", "OpenDNS"),
}

#: Provider -> the DoH hostnames it operates in the catalog.
PROVIDER_HOSTNAMES: Dict[str, Tuple[str, ...]] = {
    "Cloudflare": (
        "security.cloudflare-dns.com",
        "family.cloudflare-dns.com",
        "1dot1dot1dot1.cloudflare-dns.com",
    ),
    "Google": ("dns.google",),
    "Quad9": (
        "dns.quad9.net",
        "dns9.quad9.net",
        "dns10.quad9.net",
        "dns11.quad9.net",
        "dns12.quad9.net",
    ),
    "NextDNS": ("dns.nextdns.io", "anycast.dns.nextdns.io"),
    "CleanBrowsing": ("doh.cleanbrowsing.org",),
    "OpenDNS": ("doh.opendns.com",),
}


def browsers_offering(provider: str) -> List[str]:
    """Browsers that offer ``provider`` as a built-in choice."""
    return [browser for browser, offered in BROWSER_MATRIX.items() if provider in offered]


def resolvers_in_browser(browser: str) -> List[str]:
    """All catalog hostnames reachable from ``browser``'s built-in menu."""
    hostnames: List[str] = []
    for provider in BROWSER_MATRIX.get(browser, ()):
        hostnames.extend(PROVIDER_HOSTNAMES.get(provider, ()))
    return hostnames


def mainstream_hostnames() -> List[str]:
    """Every hostname operated by a Table 1 provider."""
    out: List[str] = []
    for hostnames in PROVIDER_HOSTNAMES.values():
        out.extend(hostnames)
    return out
