"""DNS Stamps (``sdns://``) — the DNSCrypt project's server encoding.

The paper's resolver list was "scraped from a list of public DoH resolvers
provided by the DNSCrypt protocol developers"; that list identifies every
server by a DNS Stamp.  This module implements the stamp format
(https://dnscrypt.info/stamps-specifications) for the protocols the study
touches:

* ``0x00`` — plain DNS (address only);
* ``0x02`` — DNS-over-HTTPS (address, hashes, hostname, path);
* ``0x03`` — DNS-over-TLS (address, hashes, hostname).

Stamps are ``sdns://`` + base64url(no padding) over a binary payload of
length-prefixed fields; the informal properties word carries the
DNSSEC / no-logs / no-filter flags the public list displays.
"""

from __future__ import annotations

import base64
import struct
from dataclasses import dataclass
from typing import List, Tuple

from repro.errors import CatalogError

PROTOCOL_PLAIN = 0x00
PROTOCOL_DNSCRYPT = 0x01
PROTOCOL_DOH = 0x02
PROTOCOL_DOT = 0x03

#: Informal properties bit flags.
PROP_DNSSEC = 0x01
PROP_NO_LOGS = 0x02
PROP_NO_FILTER = 0x04


class StampError(CatalogError):
    """Raised for malformed DNS stamps."""


@dataclass(frozen=True)
class Stamp:
    """A decoded DNS stamp."""

    protocol: int
    props: int
    address: str
    hostname: str = ""
    path: str = ""
    hashes: Tuple[bytes, ...] = ()

    @property
    def dnssec(self) -> bool:
        return bool(self.props & PROP_DNSSEC)

    @property
    def no_logs(self) -> bool:
        return bool(self.props & PROP_NO_LOGS)

    @property
    def no_filter(self) -> bool:
        return bool(self.props & PROP_NO_FILTER)

    @property
    def protocol_name(self) -> str:
        return {
            PROTOCOL_PLAIN: "plain",
            PROTOCOL_DNSCRYPT: "dnscrypt",
            PROTOCOL_DOH: "doh",
            PROTOCOL_DOT: "dot",
        }.get(self.protocol, f"proto-{self.protocol}")


def _lp(data: bytes) -> bytes:
    if len(data) > 0x7F:
        raise StampError(f"length-prefixed field too long ({len(data)} bytes)")
    return bytes([len(data)]) + data


def _vlp(items: Tuple[bytes, ...]) -> bytes:
    """Variable-length set: high bit of the length marks 'more follow'."""
    if not items:
        return b"\x00"
    out = bytearray()
    for index, item in enumerate(items):
        if len(item) > 0x7F:
            raise StampError("vlp item too long")
        length = len(item)
        if index < len(items) - 1:
            length |= 0x80
        out.append(length)
        out += item
    return bytes(out)


class _Reader:
    def __init__(self, data: bytes) -> None:
        self.data = data
        self.offset = 0

    def take(self, count: int) -> bytes:
        if self.offset + count > len(self.data):
            raise StampError("truncated stamp payload")
        chunk = self.data[self.offset : self.offset + count]
        self.offset += count
        return chunk

    def lp(self) -> bytes:
        (length,) = self.take(1)
        return self.take(length)

    def vlp(self) -> Tuple[bytes, ...]:
        items: List[bytes] = []
        while True:
            (length,) = self.take(1)
            more = bool(length & 0x80)
            size = length & 0x7F
            item = self.take(size)
            if item:
                items.append(item)
            if not more:
                break
        return tuple(items)

    @property
    def exhausted(self) -> bool:
        return self.offset == len(self.data)


def encode_stamp(stamp: Stamp) -> str:
    """Serialize to an ``sdns://`` URI."""
    payload = bytearray()
    payload.append(stamp.protocol)
    payload += struct.pack("<Q", stamp.props)
    payload += _lp(stamp.address.encode("utf-8"))
    if stamp.protocol == PROTOCOL_PLAIN:
        pass
    elif stamp.protocol == PROTOCOL_DOH:
        payload += _vlp(stamp.hashes)
        payload += _lp(stamp.hostname.encode("utf-8"))
        payload += _lp(stamp.path.encode("utf-8"))
    elif stamp.protocol == PROTOCOL_DOT:
        payload += _vlp(stamp.hashes)
        payload += _lp(stamp.hostname.encode("utf-8"))
    else:
        raise StampError(f"unsupported stamp protocol {stamp.protocol:#x}")
    encoded = base64.urlsafe_b64encode(bytes(payload)).rstrip(b"=").decode("ascii")
    return f"sdns://{encoded}"


def decode_stamp(uri: str) -> Stamp:
    """Parse an ``sdns://`` URI."""
    if not uri.startswith("sdns://"):
        raise StampError(f"not a DNS stamp: {uri[:16]!r}")
    body = uri[len("sdns://"):]
    padding = -len(body) % 4
    try:
        payload = base64.urlsafe_b64decode(body + "=" * padding)
    except (ValueError, TypeError) as exc:
        raise StampError(f"bad stamp base64: {exc}")
    if not payload:
        raise StampError("empty stamp payload")
    reader = _Reader(payload)
    (protocol,) = reader.take(1)
    (props,) = struct.unpack("<Q", reader.take(8))
    address = reader.lp().decode("utf-8")
    hostname = ""
    path = ""
    hashes: Tuple[bytes, ...] = ()
    if protocol == PROTOCOL_PLAIN:
        pass
    elif protocol == PROTOCOL_DOH:
        hashes = reader.vlp()
        hostname = reader.lp().decode("utf-8")
        path = reader.lp().decode("utf-8")
    elif protocol == PROTOCOL_DOT:
        hashes = reader.vlp()
        hostname = reader.lp().decode("utf-8")
    else:
        raise StampError(f"unsupported stamp protocol {protocol:#x}")
    if not reader.exhausted:
        raise StampError("trailing bytes in stamp payload")
    return Stamp(
        protocol=protocol,
        props=props,
        address=address,
        hostname=hostname,
        path=path,
        hashes=hashes,
    )


def doh_stamp(
    hostname: str,
    address: str = "",
    path: str = "/dns-query",
    dnssec: bool = True,
    no_logs: bool = True,
    no_filter: bool = True,
) -> Stamp:
    """Convenience constructor for a DoH stamp."""
    props = (
        (PROP_DNSSEC if dnssec else 0)
        | (PROP_NO_LOGS if no_logs else 0)
        | (PROP_NO_FILTER if no_filter else 0)
    )
    return Stamp(
        protocol=PROTOCOL_DOH,
        props=props,
        address=address,
        hostname=hostname,
        path=path,
    )
