"""The 91 public DoH resolvers measured by the study.

Each entry carries the deployment metadata the simulated world needs:

* **cities** — where the resolver's site(s) run; more than one city means
  an anycast deployment (mainstream resolvers are heavily replicated, the
  long tail is mostly single-site unicast, which is the paper's core
  observation);
* **perf** — a service-time tier (or explicit override) for the resolver's
  frontend processing;
* **reliability** — a failure tier (connection refusals, silent drops,
  server errors); two catalog entries are dead (stale DNSCrypt-list rows);
* **answers_icmp** — whether ping probes get replies;
* **region** — the GeoLite2-style grouping used by the paper's figures
  (``None`` reproduces the six resolvers that "were unable to return a
  location").

Site placements and tiers are seeded from public knowledge of each
operator (e.g. Cloudflare/Google/Quad9/NextDNS run global anycast; TWNIC
is in Taipei; bebasid is Indonesian).  Where the paper's tables imply a
particular behaviour (e.g. ``doh.ffmuc.net``'s ~70 ms median even from
Frankfurt), the tier encodes it.  See DESIGN.md §2 for the substitution
rationale.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.errors import CatalogError

#: Service-time tiers: (base_ms, jitter_ms, slow_tail_p, slow_tail_ms).
PERF_TIERS: Dict[str, Tuple[float, float, float, float]] = {
    "blazing": (0.5, 0.3, 0.005, 15.0),
    "fast": (1.0, 0.5, 0.01, 20.0),
    "quick": (1.8, 0.8, 0.01, 25.0),
    "normal": (2.5, 1.5, 0.02, 30.0),
    "slow": (5.0, 3.0, 0.05, 60.0),
    "variable": (4.0, 2.5, 0.25, 150.0),
    "overloaded": (30.0, 15.0, 0.3, 150.0),
}

#: Reliability tiers: (connect_refuse_p, connect_drop_p, server_failure_p).
RELIABILITY_TIERS: Dict[str, Tuple[float, float, float]] = {
    "rock": (0.001, 0.001, 0.0005),
    "solid": (0.004, 0.004, 0.002),
    "good": (0.012, 0.012, 0.006),
    "fair": (0.03, 0.03, 0.012),
    "flaky": (0.06, 0.07, 0.025),
    "bad": (0.12, 0.15, 0.05),
}


@dataclass(frozen=True)
class CatalogEntry:
    """One resolver from the study list."""

    hostname: str
    operator: str
    region: Optional[str]  # "NA" | "EU" | "AS" | "OC" | None (unlocatable)
    cities: Tuple[str, ...]  # city keys from repro.geo.regions.CITIES
    mainstream: bool = False
    perf: str = "normal"
    perf_override: Optional[Tuple[float, float, float, float]] = None
    reliability: str = "good"
    answers_icmp: bool = True
    tls_versions: Tuple[str, ...] = ("1.3", "1.2")
    http_versions: Tuple[str, ...] = ("h2", "http/1.1")
    transports: Tuple[str, ...] = ("doh", "dot", "do53")
    odoh: bool = False
    dead: bool = False

    def __post_init__(self) -> None:
        if not self.cities:
            raise CatalogError(f"{self.hostname}: entry needs at least one city")
        if self.perf not in PERF_TIERS:
            raise CatalogError(f"{self.hostname}: unknown perf tier {self.perf!r}")
        if self.reliability not in RELIABILITY_TIERS:
            raise CatalogError(f"{self.hostname}: unknown reliability tier {self.reliability!r}")

    @property
    def anycast(self) -> bool:
        return len(self.cities) > 1

    @property
    def geolocatable(self) -> bool:
        return self.region is not None

    @property
    def perf_params(self) -> Tuple[float, float, float, float]:
        return self.perf_override if self.perf_override is not None else PERF_TIERS[self.perf]

    @property
    def reliability_params(self) -> Tuple[float, float, float]:
        return RELIABILITY_TIERS[self.reliability]


def _e(hostname: str, operator: str, region: Optional[str], cities, **kw) -> CatalogEntry:
    if isinstance(cities, str):
        cities = (cities,)
    return CatalogEntry(hostname=hostname, operator=operator, region=region,
                        cities=tuple(cities), **kw)


# Anycast footprints of the heavily replicated operators.
_GOOGLE_SITES = ("mountain_view", "ashburn", "chicago", "dallas", "frankfurt",
                 "london", "seoul", "tokyo", "singapore", "sydney")
_CLOUDFLARE_SITES = ("chicago", "ashburn", "los_angeles", "miami", "frankfurt",
                     "amsterdam", "london", "seoul", "tokyo", "singapore", "sydney")
_QUAD9_SITES = ("berkeley", "chicago", "ashburn", "frankfurt", "zurich",
                "amsterdam", "seoul", "tokyo", "singapore")
_NEXTDNS_SITES = ("chicago", "new_york", "los_angeles", "frankfurt",
                  "amsterdam", "tokyo", "singapore", "sydney")
_OPENDNS_SITES = ("chicago", "ashburn", "los_angeles", "frankfurt",
                  "amsterdam", "london", "singapore", "sydney")
_CLEANBROWSING_SITES = ("new_york", "los_angeles", "frankfurt", "london", "singapore")
_HE_SITES = ("fremont", "chicago", "new_york", "ashburn", "dallas", "seattle")
_CONTROLD_SITES = ("toronto", "chicago", "new_york", "los_angeles")
_MULLVAD_SITES = ("stockholm", "new_york", "los_angeles")
_ADGUARD_SITES = ("amsterdam", "new_york")
_DNS0_SITES = ("paris", "stockholm")
_ALIDNS_SITES = ("hangzhou", "beijing", "seoul", "singapore")
_DOHSB_SITES = ("amsterdam", "singapore", "new_york")
_UNCENSORED_ANYCAST_SITES = ("copenhagen", "amsterdam")

# Explicit service-time overrides used to reproduce the paper's local-winner
# claims (see DESIGN.md experiment X1): the winners are a shade faster than
# the mainstream deployments they beat from their home vantage point.
_PERF_HE = (0.4, 0.25, 0.005, 15.0)
_PERF_QUAD9 = (1.9, 0.6, 0.008, 18.0)
_PERF_CONTROLD = (1.2, 0.5, 0.01, 20.0)
_PERF_CLOUDFLARE = (2.6, 0.9, 0.008, 18.0)
_PERF_GOOGLE = (3.0, 1.0, 0.008, 18.0)
_PERF_NEXTDNS = (1.8, 0.8, 0.01, 20.0)
_PERF_BRAHMA = (0.8, 0.4, 0.01, 20.0)
_PERF_ALIDNS = (0.45, 0.3, 0.005, 15.0)
# ffmuc's median is ~70 ms even from Frankfurt (Table 3): a slow frontend
# with a heavy tail, not a distance effect.
_PERF_FFMUC = (30.0, 18.0, 0.3, 160.0)


#: Every resolver in the study, grouped by region for readability.
CATALOG: List[CatalogEntry] = [
    # ------------------------------------------------------------- North America
    _e("dns.google", "Google", "NA", _GOOGLE_SITES, mainstream=True,
       perf_override=_PERF_GOOGLE, reliability="rock"),
    _e("security.cloudflare-dns.com", "Cloudflare", "NA", _CLOUDFLARE_SITES,
       mainstream=True, perf_override=_PERF_CLOUDFLARE, reliability="rock"),
    _e("family.cloudflare-dns.com", "Cloudflare", "NA", _CLOUDFLARE_SITES,
       mainstream=True, perf_override=_PERF_CLOUDFLARE, reliability="rock"),
    _e("1dot1dot1dot1.cloudflare-dns.com", "Cloudflare", "NA", _CLOUDFLARE_SITES,
       mainstream=True, perf_override=_PERF_CLOUDFLARE, reliability="rock"),
    _e("dns.quad9.net", "Quad9", "NA", _QUAD9_SITES, mainstream=True,
       perf_override=_PERF_QUAD9, reliability="solid"),
    _e("dns9.quad9.net", "Quad9", "NA", _QUAD9_SITES, mainstream=True,
       perf_override=_PERF_QUAD9, reliability="solid"),
    _e("ordns.he.net", "Hurricane Electric", "NA", _HE_SITES,
       perf_override=_PERF_HE, reliability="solid"),
    _e("freedns.controld.com", "ControlD", "NA", _CONTROLD_SITES,
       perf_override=_PERF_CONTROLD, reliability="solid"),
    # NextDNS also serves DoQ in production.
    _e("anycast.dns.nextdns.io", "NextDNS", "NA", _NEXTDNS_SITES, mainstream=True,
       perf_override=_PERF_NEXTDNS, reliability="solid",
       transports=("doh", "dot", "do53", "doq", "doh3")),
    _e("dns.nextdns.io", "NextDNS", "NA", _NEXTDNS_SITES, mainstream=True,
       perf_override=_PERF_NEXTDNS, reliability="solid",
       transports=("doh", "dot", "do53", "doq", "doh3")),
    _e("doh.opendns.com", "Cisco OpenDNS", "NA", _OPENDNS_SITES, mainstream=True,
       perf="quick", reliability="rock"),
    _e("doh.cleanbrowsing.org", "CleanBrowsing", "NA", _CLEANBROWSING_SITES,
       mainstream=True, perf="quick", reliability="solid"),
    _e("doh.mullvad.net", "Mullvad", "NA", _MULLVAD_SITES, perf="fast",
       reliability="solid"),
    _e("adblock.doh.mullvad.net", "Mullvad", "NA", _MULLVAD_SITES, perf="fast",
       reliability="solid"),
    _e("kronos.plan9-dns.com", "Plan9-DNS", "NA", "dallas", perf="normal",
       reliability="good"),
    _e("pluton.plan9-dns.com", "Plan9-DNS", "NA", "miami", perf="normal",
       reliability="fair"),
    _e("helios.plan9-dns.com", "Plan9-DNS", "NA", "seattle", perf="slow",
       reliability="fair"),
    _e("doh.safesurfer.io", "SafeSurfer", "NA", "san_francisco", perf="slow",
       reliability="fair", answers_icmp=False),
    _e("dohtrial.att.net", "AT&T", "NA", "dallas", perf="slow", reliability="fair"),
    _e("doh.la.ahadns.net", "AhaDNS", "NA", "los_angeles", perf="variable",
       reliability="flaky"),
    _e("odoh-target.alekberg.net", "alekberg (ODoH)", "NA", "new_york",
       perf="slow", reliability="fair", odoh=True),
    _e("odoh-target-noads.alekberg.net", "alekberg (ODoH)", "NA", "new_york",
       perf="slow", reliability="fair", odoh=True),
    _e("odoh-target-se.alekberg.net", "alekberg (ODoH)", "NA", "new_york",
       perf="slow", reliability="fair", odoh=True),
    _e("odoh-target-noads-se.alekberg.net", "alekberg (ODoH)", "NA", "new_york",
       perf="slow", reliability="fair", odoh=True),
    _e("doh.crypto.sx", "crypto.sx", "NA", "montreal", perf="normal",
       reliability="good"),
    _e("commons.host", "Commons Host", "NA", "toronto", perf="slow",
       reliability="flaky"),
    _e("doh.westus.pi-dns.com", "pi-dns", "NA", "los_angeles", perf="slow",
       reliability="flaky", answers_icmp=False),
    _e("doh.dnslify.com", "DNSlify", "NA", "new_york", perf="normal",
       reliability="bad", dead=True),  # service shut down; stale list entry
    # ----------------------------------------------------------------- Europe
    _e("dns10.quad9.net", "Quad9", "EU", _QUAD9_SITES, mainstream=True,
       perf_override=_PERF_QUAD9, reliability="solid"),
    _e("dns11.quad9.net", "Quad9", "EU", _QUAD9_SITES, mainstream=True,
       perf_override=_PERF_QUAD9, reliability="solid"),
    _e("dns12.quad9.net", "Quad9", "EU", _QUAD9_SITES, mainstream=True,
       perf_override=_PERF_QUAD9, reliability="solid"),
    # AdGuard runs DoQ in production alongside DoH/DoT.
    _e("dns.adguard.com", "AdGuard", "EU", _ADGUARD_SITES, perf="quick",
       reliability="solid", transports=("doh", "dot", "do53", "doq", "doh3")),
    _e("dns-family.adguard.com", "AdGuard", "EU", _ADGUARD_SITES, perf="quick",
       reliability="solid", transports=("doh", "dot", "do53", "doq", "doh3")),
    _e("dns-unfiltered.adguard.com", "AdGuard", "EU", _ADGUARD_SITES, perf="quick",
       reliability="solid", transports=("doh", "dot", "do53", "doq", "doh3")),
    _e("doh.dnscrypt.uk", "dnscrypt.uk", "EU", "london", perf="normal",
       reliability="good"),
    _e("v.dnscrypt.uk", "dnscrypt.uk", "EU", "london", perf="normal",
       reliability="good"),
    _e("dns1.ryan-palmer.com", "ryan-palmer", "EU", "london", perf="normal",
       reliability="fair"),
    _e("doh.sb", "DoH.sb", "EU", _DOHSB_SITES, perf="fast", reliability="good"),
    _e("doh.libredns.gr", "LibreDNS", "EU", "athens", perf="normal",
       reliability="good"),
    _e("dns0.eu", "dns0.eu", "EU", _DNS0_SITES, perf="fast", reliability="solid"),
    _e("open.dns0.eu", "dns0.eu", "EU", _DNS0_SITES, perf="fast", reliability="solid"),
    _e("kids.dns0.eu", "dns0.eu", "EU", _DNS0_SITES, perf="fast", reliability="solid"),
    _e("dns.brahma.world", "brahma.world", "EU", "frankfurt",
       perf_override=_PERF_BRAHMA, reliability="solid"),
    _e("dnsforge.de", "dnsforge", "EU", "berlin", perf="normal", reliability="good",
       answers_icmp=False),
    _e("dns.digitalsize.net", "digitalsize", "EU", "bucharest", perf="normal",
       reliability="good"),
    _e("dns-doh.dnsforfamily.com", "DNSforFamily", "EU", "warsaw", perf="slow",
       reliability="good"),
    _e("dns-doh-no-safe-search.dnsforfamily.com", "DNSforFamily", "EU", "warsaw",
       perf="slow", reliability="good"),
    _e("dnsnl.alekberg.net", "alekberg", "EU", "amsterdam", perf="normal",
       reliability="good"),
    _e("dnsnl-noads.alekberg.net", "alekberg", "EU", "amsterdam", perf="normal",
       reliability="good"),
    _e("dns.njal.la", "Njalla", "EU", "stockholm", perf="fast", reliability="solid"),
    _e("unicast.uncensoreddns.org", "UncensoredDNS", "EU", "copenhagen",
       perf="normal", reliability="good"),
    _e("anycast.uncensoreddns.org", "UncensoredDNS", "EU",
       _UNCENSORED_ANYCAST_SITES, perf="normal", reliability="good"),
    _e("dns.switch.ch", "SWITCH", "EU", "zurich", perf="quick", reliability="solid"),
    _e("dns.digitale-gesellschaft.ch", "Digitale Gesellschaft", "EU", "zurich",
       perf="normal", reliability="good"),
    _e("dns.circl.lu", "CIRCL", "EU", "luxembourg", perf="normal",
       reliability="good"),
    _e("ibksturm.synology.me", "ibksturm", "EU", "zurich", perf="slow",
       reliability="flaky", tls_versions=("1.2",), http_versions=("http/1.1",),
       answers_icmp=False),
    _e("dnsse.alekberg.net", "alekberg", "EU", "stockholm", perf="normal",
       reliability="good"),
    _e("dnsse-noads.alekberg.net", "alekberg", "EU", "stockholm", perf="normal",
       reliability="good"),
    _e("doh.ffmuc.net", "Freifunk Munich", "EU", "munich",
       perf_override=_PERF_FFMUC, reliability="flaky"),
    _e("doh.nl.ahadns.net", "AhaDNS", "EU", "amsterdam", perf="normal",
       reliability="fair"),
    _e("chewbacca.meganerd.nl", "meganerd", "EU", "amsterdam", perf="slow",
       reliability="fair", tls_versions=("1.2",)),
    _e("doh.powerdns.org", "PowerDNS", "EU", "amsterdam", perf="normal",
       reliability="good"),
    _e("resolver-eu.lelux.fi", "Lelux", "EU", "helsinki", perf="normal",
       reliability="fair"),
    _e("doh.applied-privacy.net", "Applied Privacy", "EU", "vienna", perf="normal",
       reliability="good"),
    _e("dns.hostux.net", "Hostux", "EU", "luxembourg", perf="normal",
       reliability="good"),
    # --------------------------------------------------------------------- Asia
    _e("public.dns.iij.jp", "IIJ", "AS", "tokyo", perf="fast", reliability="solid"),
    _e("doh.360.cn", "Qihoo 360", "AS", "beijing", perf="slow", reliability="flaky"),
    _e("dnslow.me", "dnslow", "AS", "shanghai", perf="normal", reliability="fair"),
    _e("jp.tiar.app", "tiar.app", "AS", "tokyo", perf="normal", reliability="good"),
    _e("doh.tiar.app", "tiar.app", "AS", "tokyo", perf="variable",
       reliability="fair", answers_icmp=False),
    _e("doh.pub", "Tencent", "AS", "beijing", perf="fast", reliability="good"),
    _e("dns.therifleman.name", "therifleman", "AS", "mumbai", perf="slow",
       reliability="fair"),
    _e("dns.alidns.com", "Alibaba", "AS", _ALIDNS_SITES,
       perf_override=_PERF_ALIDNS, reliability="solid"),
    _e("dns.bebasid.com", "BebasID", "AS", "jakarta", perf="normal",
       reliability="flaky"),
    _e("antivirus.bebasid.com", "BebasID", "AS", "bandung", perf="variable",
       reliability="flaky"),
    _e("sby-doh.limotelu.org", "limotelu", "AS", "surabaya", perf="slow",
       reliability="fair"),
    _e("pdns.itxe.net", "itxe", "AS", "jakarta", perf="slow", reliability="flaky",
       answers_icmp=False),
    _e("dns.twnic.tw", "TWNIC", "AS", "taipei", perf="normal", reliability="good"),
    _e("dns.rubyfish.cn", "rubyfish", "AS", "shanghai", perf="normal",
       reliability="fair"),
    _e("dns.233py.com", "233py", "AS", "beijing", perf="slow", reliability="flaky"),
    # ------------------------------------------------------------------ Oceania
    _e("adl.adfilter.net", "ADFilter", "OC", "adelaide", perf="normal",
       reliability="good"),
    _e("per.adfilter.net", "ADFilter", "OC", "perth", perf="normal",
       reliability="good"),
    _e("syd.adfilter.net", "ADFilter", "OC", "sydney", perf="normal",
       reliability="good"),
    _e("doh.seby.io", "seby", "OC", "sydney", perf="slow", reliability="fair"),
    _e("doh-2.seby.io", "seby", "OC", "sydney", perf="slow", reliability="fair"),
    # -------------------------------------------------- no geolocation available
    _e("puredns.org", "PureDNS", None, "singapore", perf="normal",
       reliability="fair"),
    _e("family.puredns.org", "PureDNS", None, "singapore", perf="normal",
       reliability="fair"),
    _e("jcdns.fun", "jcdns", None, "hong_kong", perf="slow", reliability="flaky"),
    _e("doh.armadillodns.net", "ArmadilloDNS", None, "dallas", perf="slow",
       reliability="bad"),
    _e("dns.pumplex.com", "Pumplex", None, "london", perf="normal",
       reliability="bad", dead=True),  # stale list entry; never responds
    _e("doh.appliedprivacy.net", "Applied Privacy (legacy name)", None, "vienna",
       perf="normal", reliability="flaky"),
]

_BY_HOSTNAME: Dict[str, CatalogEntry] = {entry.hostname: entry for entry in CATALOG}

#: The paper's cross-region reference set: the four best-performing
#: NA-based resolvers whose performance was also measured from Europe and
#: Asia (Google, Cloudflare, Quad9, Hurricane Electric).
REFERENCE_HOSTNAMES: Tuple[str, ...] = (
    "dns.google",
    "security.cloudflare-dns.com",
    "family.cloudflare-dns.com",
    "dns.quad9.net",
    "dns9.quad9.net",
    "ordns.he.net",
)


def entry_for(hostname: str) -> CatalogEntry:
    """The catalog entry for ``hostname`` (raises :class:`CatalogError`)."""
    entry = _BY_HOSTNAME.get(hostname)
    if entry is None:
        raise CatalogError(f"unknown resolver {hostname!r}")
    return entry


def entries_by_region(region: Optional[str]) -> List[CatalogEntry]:
    """Entries whose geolocated region equals ``region`` (None = unlocatable)."""
    return [entry for entry in CATALOG if entry.region == region]


def mainstream_entries() -> List[CatalogEntry]:
    return [entry for entry in CATALOG if entry.mainstream]


def non_mainstream_entries() -> List[CatalogEntry]:
    return [entry for entry in CATALOG if not entry.mainstream]


def reference_set() -> List[CatalogEntry]:
    """The cross-region reference resolvers (shown in every figure)."""
    return [entry_for(hostname) for hostname in REFERENCE_HOSTNAMES]
