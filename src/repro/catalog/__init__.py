"""Study inputs: the resolver catalog and the browser/resolver matrix.

:mod:`repro.catalog.resolvers` holds the 91 public DoH resolvers the paper
measured (Appendix A.2 plus the remainder of the DNSCrypt public list),
each with deployment metadata — operator, site city/cities, anycast,
mainstream flag, performance and reliability tiers, ICMP policy.
:mod:`repro.catalog.browsers` holds Table 1 (which resolvers each major
browser offers).
"""

from repro.catalog.resolvers import (
    CATALOG,
    CatalogEntry,
    entries_by_region,
    entry_for,
    mainstream_entries,
    non_mainstream_entries,
    reference_set,
)
from repro.catalog.browsers import BROWSER_MATRIX, browsers_offering, resolvers_in_browser

__all__ = [
    "BROWSER_MATRIX",
    "CATALOG",
    "CatalogEntry",
    "browsers_offering",
    "entries_by_region",
    "entry_for",
    "mainstream_entries",
    "non_mainstream_entries",
    "reference_set",
    "resolvers_in_browser",
]
