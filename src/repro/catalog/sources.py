"""Scraping the DNSCrypt public-resolvers list.

The study built its measurement set by scraping the DNSCrypt project's
``public-resolvers.md``: a markdown document where each server is a
``## name`` section with a description and an ``sdns://`` stamp.  This
module parses that format into candidate resolvers and filters for the
DoH servers the study measures — the same pipeline, reproducible against
any snapshot of the list.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import List, Optional

from repro.catalog.stamps import PROTOCOL_DOH, Stamp, StampError, decode_stamp

_SECTION_RE = re.compile(r"^##\s+(?P<name>\S.*)$")
_STAMP_RE = re.compile(r"sdns://[A-Za-z0-9_-]+")


@dataclass(frozen=True)
class ScrapedResolver:
    """One candidate from the public list."""

    list_name: str
    description: str
    stamp: Stamp
    stamp_uri: str

    @property
    def hostname(self) -> str:
        return self.stamp.hostname

    @property
    def is_doh(self) -> bool:
        return self.stamp.protocol == PROTOCOL_DOH


def parse_public_resolvers(markdown: str) -> List[ScrapedResolver]:
    """Parse a ``public-resolvers.md``-style document.

    Sections without a decodable stamp are skipped (the real list contains
    anonymized-relay and odoh sections this study does not measure),
    mirroring how a scraper must tolerate malformed rows.
    """
    resolvers: List[ScrapedResolver] = []
    current_name: Optional[str] = None
    description_lines: List[str] = []

    def flush(stamp_uri: Optional[str]) -> None:
        if current_name is None or stamp_uri is None:
            return
        try:
            stamp = decode_stamp(stamp_uri)
        except StampError:
            return
        resolvers.append(
            ScrapedResolver(
                list_name=current_name,
                description=" ".join(description_lines).strip(),
                stamp=stamp,
                stamp_uri=stamp_uri,
            )
        )

    pending_stamp: Optional[str] = None
    for line in markdown.splitlines():
        section = _SECTION_RE.match(line)
        if section:
            flush(pending_stamp)
            current_name = section.group("name").strip()
            description_lines = []
            pending_stamp = None
            continue
        stamp_match = _STAMP_RE.search(line)
        if stamp_match and pending_stamp is None:
            pending_stamp = stamp_match.group(0)
            continue
        if current_name is not None and line.strip():
            description_lines.append(line.strip())
    flush(pending_stamp)
    return resolvers


def doh_resolvers(markdown: str) -> List[ScrapedResolver]:
    """Only the DoH entries with a hostname — the study's selection rule."""
    return [
        resolver
        for resolver in parse_public_resolvers(markdown)
        if resolver.is_doh and resolver.hostname
    ]


def sample_public_resolvers_md() -> str:
    """A small in-repo snapshot shaped like the DNSCrypt list.

    Used by tests and examples; real snapshots parse identically.
    """
    from repro.catalog.resolvers import CATALOG
    from repro.catalog.stamps import doh_stamp, encode_stamp

    lines = [
        "# Public resolvers",
        "",
        "A curated list of public DNS servers (excerpt).",
        "",
    ]
    for entry in CATALOG[:12]:
        stamp = doh_stamp(hostname=entry.hostname)
        lines.extend(
            [
                f"## {entry.hostname.split('.')[0]}",
                "",
                f"Operated by {entry.operator}.",
                "",
                encode_stamp(stamp),
                "",
            ]
        )
    # A non-DoH row and a malformed row, as the real list has.
    lines.extend(
        [
            "## legacy-plain",
            "",
            "A plain DNS server (not measured by the study).",
            "",
            encode_stamp(
                Stamp(protocol=0x00, props=0, address="198.51.100.7")
            ),
            "",
            "## broken-row",
            "",
            "sdns://cnViYmlzaA",  # decodes, but is not a valid stamp payload
            "",
        ]
    )
    return "\n".join(lines)
