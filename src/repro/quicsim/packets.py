"""QUIC packet and frame codec (simulation-grade).

A simulated QUIC packet is one UDP datagram::

    kind(1) | conn_id(8, BE) | packet_number(4, BE) | frames (JSON)

``kind`` distinguishes Initial / Handshake / 1-RTT packets (they matter
for timing and padding rules: client Initials are padded to 1200 bytes,
RFC 9000 §14.1).  Frames are a JSON list — the simulator's standard
readable stand-in for binary framing — padded to realistic sizes.

Frame types:

* ``crypto`` — handshake bytes (ClientHello / ServerHello+cert / Finished);
* ``stream`` — application data: stream id, offset, data (latin-1-safe
  hex), fin flag;
* ``ticket`` — session ticket for resumption (server → client);
* ``close`` — connection close.
"""

from __future__ import annotations

import json
import struct
from dataclasses import dataclass
from typing import Any, Dict, List, Tuple

from repro.errors import ReproError

KIND_INITIAL = 1
KIND_HANDSHAKE = 2
KIND_ONE_RTT = 3

#: Client Initial packets are padded to at least this size (anti-amplification).
INITIAL_MIN_BYTES = 1200

#: Maximum datagram the simulator emits (typical QUIC max_udp_payload_size).
MAX_DATAGRAM_BYTES = 1350

_HEADER = struct.Struct("!BQI")


class QuicPacketError(ReproError):
    """Raised for malformed simulated QUIC packets."""


@dataclass(frozen=True)
class QuicPacket:
    """One decoded packet."""

    kind: int
    conn_id: int
    packet_number: int
    frames: Tuple[Dict[str, Any], ...]


def encode_packet(
    kind: int,
    conn_id: int,
    packet_number: int,
    frames: List[Dict[str, Any]],
    pad_to: int = 0,
) -> bytes:
    body = json.dumps(frames, separators=(",", ":")).encode("utf-8")
    wire = _HEADER.pack(kind, conn_id, packet_number) + body
    if len(wire) < pad_to:
        wire += b" " * (pad_to - len(wire))
    if len(wire) > MAX_DATAGRAM_BYTES and pad_to == 0:
        raise QuicPacketError(
            f"packet of {len(wire)} bytes exceeds max datagram; split frames"
        )
    return wire


def decode_packet(wire: bytes) -> QuicPacket:
    if len(wire) < _HEADER.size:
        raise QuicPacketError("datagram shorter than a QUIC header")
    kind, conn_id, packet_number = _HEADER.unpack_from(wire, 0)
    if kind not in (KIND_INITIAL, KIND_HANDSHAKE, KIND_ONE_RTT):
        raise QuicPacketError(f"unknown packet kind {kind}")
    body = wire[_HEADER.size:].rstrip(b" ")
    try:
        frames = json.loads(body.decode("utf-8")) if body else []
    except (ValueError, UnicodeDecodeError) as exc:
        raise QuicPacketError(f"bad frame payload: {exc}")
    if not isinstance(frames, list):
        raise QuicPacketError("frame payload is not a list")
    return QuicPacket(
        kind=kind, conn_id=conn_id, packet_number=packet_number,
        frames=tuple(frames),
    )


def stream_frame(stream_id: int, offset: int, data: bytes, fin: bool) -> Dict[str, Any]:
    return {
        "type": "stream",
        "id": stream_id,
        "off": offset,
        "data": data.hex(),
        "fin": fin,
    }


def stream_frame_data(frame: Dict[str, Any]) -> bytes:
    try:
        return bytes.fromhex(frame["data"])
    except (KeyError, ValueError) as exc:
        raise QuicPacketError(f"bad stream frame: {exc}")


def crypto_frame(stage: str, fields: Dict[str, Any], pad_chars: int = 0) -> Dict[str, Any]:
    frame = {"type": "crypto", "stage": stage}
    frame.update(fields)
    if pad_chars:
        frame["pad"] = "x" * pad_chars
    return frame
