"""Simulated QUIC, for DNS-over-QUIC (RFC 9250).

QUIC folds the transport and TLS 1.3 handshakes into one round trip over
UDP — a fresh DoQ query costs 2 × RTT where fresh DoH costs 3 — and its
0-RTT resumption lets a repeat query ride the first flight (1 × RTT).
The reproduction's calibration notes call DoQ out explicitly, and several
study operators (AdGuard, NextDNS) run it in production, so the substrate
models it:

* :mod:`repro.quicsim.packets` — packet/frame codec over simulated UDP
  (Initial padding to 1200 B, packet numbers, crypto/stream/ack frames);
* :mod:`repro.quicsim.connection` — client and server connections with
  the 1-RTT handshake, ticket-based 0-RTT, per-stream reassembly, and
  PTO-based loss recovery.

Cryptography is simulated exactly as in :mod:`repro.tlssim`: flight sizes
and round trips are faithful, secrecy is out of scope.
"""

from repro.quicsim.connection import (
    QuicClientConnection,
    QuicConfig,
    QuicServerListener,
)
from repro.quicsim.packets import INITIAL_MIN_BYTES, MAX_DATAGRAM_BYTES

__all__ = [
    "INITIAL_MIN_BYTES",
    "MAX_DATAGRAM_BYTES",
    "QuicClientConnection",
    "QuicConfig",
    "QuicServerListener",
]
