"""QUIC client/server connections over simulated UDP.

Handshake timing (the part that matters for DoQ measurements):

=====================  ==========================================  ======
Mode                   Flights                                     RTTs
=====================  ==========================================  ======
Fresh                  Initial → (ServerHello+cert flight) → Fin   1
Resumed + 0-RTT        Initial+app → flight+response               0
=====================  ==========================================  ======

After the handshake, each request/response rides its own bidirectional
stream (DoQ's model), so a fresh DoQ query completes in ~2 × RTT and a
0-RTT resumed query in ~1 × RTT.

Loss recovery is PTO-style: any datagram the network drops is
retransmitted after a timeout with exponential backoff (the simulator
reports loss to the sender, standing in for ack-elicited detection).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.errors import ConnectTimeout, SocketError
from repro.netsim.host import Host
from repro.netsim.packet import Datagram
from repro.netsim.sockets import SimUdpSocket
from repro.obs import get_metrics
from repro.quicsim.packets import (
    INITIAL_MIN_BYTES,
    KIND_HANDSHAKE,
    KIND_INITIAL,
    KIND_ONE_RTT,
    QuicPacketError,
    crypto_frame,
    decode_packet,
    encode_packet,
    stream_frame,
    stream_frame_data,
)
from repro.tlssim.session import SessionCache, SessionTicket

_conn_ids = itertools.count(1)

#: Initial probe timeout for lost datagrams (ms) and retry budget.
PTO_INITIAL_MS = 300.0
MAX_SEND_ATTEMPTS = 5

#: Stream payload bytes per frame.  Frame data is hex-encoded inside the
#: JSON body (2 chars/byte), so 550 payload bytes keep the whole packet
#: under the datagram ceiling with framing overhead to spare.
STREAM_CHUNK = 550

#: Simulated certificate flight: characters of padding in the cert frame
#: (spans two datagrams, like a real ~2.8 kB chain).
CERT_PAD_CHARS = 2200


@dataclass
class QuicConfig:
    """Shared client/server knobs.

    ``early_data_reject_p`` models the server's 0-RTT anti-replay filter:
    with this probability an early-data attempt is flagged as a replay in
    the client hello and the server falls back to the 1-RTT resumed path.
    The draw comes from ``early_data_rng`` (the measurement's derived
    RNG) so verdicts are deterministic and shard/process independent —
    server-side ticket/connection ids are process-global counters and
    must never influence behaviour.
    """

    crypto_delay_ms: float = 0.4
    session_cache: Optional[SessionCache] = None  # client side
    enable_early_data: bool = True
    allow_early_data: bool = True  # server side
    issue_tickets: bool = True
    connect_timeout_ms: float = 10_000.0
    #: Client-side certificate-chain validation cost, paid once per *full*
    #: handshake; resumed handshakes (PSK) skip it.
    cert_verify_ms: float = 0.0
    early_data_reject_p: float = 0.0
    early_data_rng: Optional[Any] = None


class _StreamAssembler:
    """Per-stream reassembly: contiguous delivery through FIN."""

    def __init__(self) -> None:
        self.chunks: Dict[int, bytes] = {}
        self.fin_end: Optional[int] = None

    def add(self, offset: int, data: bytes, fin: bool) -> None:
        self.chunks[offset] = data
        if fin:
            self.fin_end = offset + len(data)

    def complete(self) -> Optional[bytes]:
        if self.fin_end is None:
            return None
        out = bytearray()
        cursor = 0
        while cursor < self.fin_end:
            chunk = self.chunks.get(cursor)
            if chunk is None:
                return None
            out += chunk
            cursor += len(chunk)
        return bytes(out)


class _QuicEndpoint:
    """Shared plumbing: packet sending with PTO retransmission."""

    def __init__(self, host: Host) -> None:
        self.host = host
        self._packet_numbers = itertools.count(0)
        self.closed = False

    @property
    def _network(self):
        assert self.host.network is not None, f"{self.host.name} not attached"
        return self.host.network

    @property
    def _loop(self):
        return self._network.loop

    def _addressing(self) -> Tuple[str, int, str, int]:
        raise NotImplementedError

    def _send_packet(
        self, kind: int, conn_id: int, frames: List[Dict[str, Any]], pad_to: int = 0
    ) -> None:
        if self.closed:
            return
        wire = encode_packet(kind, conn_id, next(self._packet_numbers), frames, pad_to)
        self._send_datagram(wire, attempts_left=MAX_SEND_ATTEMPTS, pto_ms=PTO_INITIAL_MS)

    def _send_datagram(self, wire: bytes, attempts_left: int, pto_ms: float) -> None:
        if self.closed:
            return
        src_ip, src_port, dst_ip, dst_port = self._addressing()
        dgram = Datagram(
            src_ip=src_ip, src_port=src_port, dst_ip=dst_ip, dst_port=dst_port,
            payload=wire,
        )

        def on_lost(_packet) -> None:
            if self.closed or attempts_left <= 1:
                return
            if get_metrics().enabled:
                get_metrics().inc("quic.retransmits")
            self._loop.call_later(
                pto_ms, self._send_datagram, wire, attempts_left - 1, pto_ms * 2.0
            )

        if get_metrics().enabled:
            get_metrics().inc("quic.datagrams_sent")
        self._network.transmit(self.host, dgram, on_lost=on_lost)


class QuicClientConnection(_QuicEndpoint):
    """Client end of a QUIC connection (one per resolver, reusable)."""

    def __init__(
        self,
        host: Host,
        dst_ip: str,
        dst_port: int,
        server_name: str,
        config: Optional[QuicConfig] = None,
        on_established: Optional[Callable[["QuicClientConnection"], None]] = None,
        on_error: Optional[Callable[[Exception], None]] = None,
    ) -> None:
        super().__init__(host)
        self.dst_ip = dst_ip
        self.dst_port = dst_port
        self.server_name = server_name
        self.config = config or QuicConfig()
        self.conn_id = next(_conn_ids)
        self.established = False
        self.used_early_data = False
        self.resumed = False
        self.on_error = on_error
        self._on_established = on_established
        self._socket = SimUdpSocket(host)
        self._socket.on_datagram = self._on_datagram
        self._next_stream_id = 0
        self._responses: Dict[int, Callable[[bytes], None]] = {}
        self._assemblers: Dict[int, _StreamAssembler] = {}
        self._queued_streams: List[Tuple[bytes, Callable[[bytes], None]]] = []
        self._early_streams: List[Tuple[bytes, Callable[[bytes], None]]] = []
        self._can_send = False
        self._timer = self._loop.call_later(
            self.config.connect_timeout_ms, self._connect_timeout
        )
        self._start()

    def _addressing(self) -> Tuple[str, int, str, int]:
        return self.host.ip, self._socket.port, self.dst_ip, self.dst_port

    # -- establishment -----------------------------------------------------------

    def _start(self) -> None:
        ticket: Optional[SessionTicket] = None
        cache = self.config.session_cache
        if cache is not None:
            ticket = cache.lookup(self.server_name, self._loop.now)
        hello: Dict[str, Any] = {"sni": self.server_name}
        if ticket is not None:
            hello["ticket"] = ticket.ticket_id
            if self.config.enable_early_data and ticket.allows_early_data:
                hello["early"] = True
                self.used_early_data = True
                if (
                    self.config.early_data_reject_p > 0.0
                    and self.config.early_data_rng is not None
                    and self.config.early_data_rng.random()
                    < self.config.early_data_reject_p
                ):
                    # Anti-replay verdict drawn client-side (see QuicConfig).
                    hello["early_replay"] = True

        def send_initial() -> None:
            self._send_packet(
                KIND_INITIAL, self.conn_id,
                [crypto_frame("client_hello", hello, pad_chars=120)],
                pad_to=INITIAL_MIN_BYTES,
            )
            if self.used_early_data:
                self._can_send = True
                for data, on_response in self._queued_streams:
                    self._early_streams.append((data, on_response))
                    self._send_stream(data, on_response)
                self._queued_streams = []
                self._mark_established()

        self._loop.call_later(self.config.crypto_delay_ms, send_initial)

    def _connect_timeout(self) -> None:
        if not self.established:
            self._fail(ConnectTimeout(f"QUIC connect to {self.dst_ip}:{self.dst_port} timed out"))
        elif self.used_early_data and self._responses:
            # 0-RTT marked us established optimistically; a silent peer
            # still has to surface as a timeout for outstanding streams.
            self._fail(ConnectTimeout(f"QUIC peer {self.dst_ip} never answered"))

    def _mark_established(self) -> None:
        if self.established:
            return
        self.established = True
        metrics = get_metrics()
        if metrics.enabled:
            metrics.inc(
                "quic.handshakes",
                resumed=self.resumed,
                early_data=self.used_early_data,
            )
        callback = self._on_established
        self._on_established = None
        if callback is not None:
            callback(self)

    # -- streams -----------------------------------------------------------------

    def open_stream(self, data: bytes, on_response: Callable[[bytes], None]) -> None:
        """Send one request; ``on_response`` gets the peer's full stream."""
        if self.closed:
            raise SocketError("stream on closed QUIC connection")
        if not self._can_send:
            self._queued_streams.append((data, on_response))
            return
        self._send_stream(data, on_response)

    def _send_stream(self, data: bytes, on_response: Callable[[bytes], None]) -> None:
        stream_id = self._next_stream_id
        self._next_stream_id += 4
        self._responses[stream_id] = on_response
        for offset in range(0, len(data), STREAM_CHUNK):
            chunk = data[offset : offset + STREAM_CHUNK]
            fin = offset + len(chunk) >= len(data)
            self._send_packet(
                KIND_ONE_RTT, self.conn_id,
                [stream_frame(stream_id, offset, chunk, fin)],
            )

    # -- inbound ----------------------------------------------------------------

    def _on_datagram(self, dgram: Datagram) -> None:
        if self.closed:
            return
        try:
            packet = decode_packet(dgram.payload)
        except QuicPacketError:
            return
        if packet.conn_id != self.conn_id:
            return
        for frame in packet.frames:
            kind = frame.get("type")
            if kind == "crypto":
                self._handle_crypto(frame)
            elif kind == "stream":
                self._handle_stream(frame)
            elif kind == "ticket":
                self._handle_ticket(frame)

    def _handle_crypto(self, frame: Dict[str, Any]) -> None:
        if frame.get("stage") != "server_hello":
            return
        self.resumed = bool(frame.get("resumed"))
        early_accepted = bool(frame.get("early_accepted"))
        if self.used_early_data and not early_accepted:
            # Replay everything we optimistically sent as 0-RTT.
            self.used_early_data = False
            replay = self._early_streams
            self._early_streams = []
            for data, on_response in replay:
                self._send_stream(data, on_response)
        else:
            self._early_streams = []

        def finish() -> None:
            self._send_packet(
                KIND_HANDSHAKE, self.conn_id, [crypto_frame("finished", {})]
            )
            self._can_send = True
            queued, self._queued_streams = self._queued_streams, []
            for data, on_response in queued:
                self._send_stream(data, on_response)
            self._timer.cancel()
            self._mark_established()

        # Full handshakes validate the certificate chain before finishing;
        # resumed ones authenticated via the PSK and skip the cost.
        delay = self.config.crypto_delay_ms
        if not self.resumed:
            delay += self.config.cert_verify_ms
        self._loop.call_later(delay, finish)

    def _handle_stream(self, frame: Dict[str, Any]) -> None:
        stream_id = int(frame.get("id", -1))
        assembler = self._assemblers.setdefault(stream_id, _StreamAssembler())
        assembler.add(int(frame.get("off", 0)), stream_frame_data(frame), bool(frame.get("fin")))
        complete = assembler.complete()
        if complete is None:
            return
        del self._assemblers[stream_id]
        callback = self._responses.pop(stream_id, None)
        if callback is not None:
            callback(complete)

    def _handle_ticket(self, frame: Dict[str, Any]) -> None:
        cache = self.config.session_cache
        if cache is None:
            return
        cache.store(
            SessionTicket(
                ticket_id=int(frame["ticket"]),
                server_name=self.server_name,
                version="quic",
                allows_early_data=bool(frame.get("early")),
                issued_at_ms=self._loop.now,
            )
        )

    # -- teardown -----------------------------------------------------------------

    def _fail(self, exc: Exception) -> None:
        callback = self.on_error
        self.on_error = None
        self.close()
        if callback is not None:
            callback(exc)

    def close(self) -> None:
        if self.closed:
            return
        self._send_packet(KIND_ONE_RTT, self.conn_id, [{"type": "close"}])
        self.closed = True
        self._timer.cancel()
        self._socket.close()


class _QuicServerConnection(_QuicEndpoint):
    """Server-side state for one client connection."""

    def __init__(self, listener: "QuicServerListener", conn_id: int,
                 local_ip: str, peer_ip: str, peer_port: int) -> None:
        super().__init__(listener.host)
        self.listener = listener
        self.conn_id = conn_id
        self.local_ip = local_ip
        self.peer_ip = peer_ip
        self.peer_port = peer_port
        self.established = False
        self.early_accepted = False
        self._hello_seen = False
        self._assemblers: Dict[int, _StreamAssembler] = {}
        self._early_buffer: List[Tuple[int, bytes]] = []

    def _addressing(self) -> Tuple[str, int, str, int]:
        return self.local_ip, self.listener.port, self.peer_ip, self.peer_port

    def handle_packet(self, packet) -> None:
        if self.closed:
            return
        for frame in packet.frames:
            kind = frame.get("type")
            if kind == "crypto":
                self._handle_crypto(frame)
            elif kind == "stream":
                self._handle_stream(frame)
            elif kind == "close":
                self.closed = True
                self.listener._drop(self.conn_id)

    def _ticket_registry(self) -> Dict[int, bool]:
        registry = getattr(self.host, "_quic_ticket_registry", None)
        if registry is None:
            registry = {}
            self.host._quic_ticket_registry = registry  # type: ignore[attr-defined]
        return registry

    def _handle_crypto(self, frame: Dict[str, Any]) -> None:
        if frame.get("stage") == "client_hello" and not self._hello_seen:
            self._hello_seen = True
            config = self.listener.config
            ticket_id = frame.get("ticket")
            resumed = ticket_id is not None and ticket_id in self._ticket_registry()
            wants_early = bool(frame.get("early")) and not bool(
                frame.get("early_replay")
            )
            self.early_accepted = wants_early and resumed and config.allow_early_data
            if self.early_accepted:
                self.established = True
                buffered, self._early_buffer = self._early_buffer, []
                for stream_id, data in buffered:
                    self.listener._dispatch(self, stream_id, data)
            elif not self.early_accepted:
                self._early_buffer = []  # rejected 0-RTT data is discarded

            def send_flight() -> None:
                frames = [
                    crypto_frame(
                        "server_hello",
                        {"resumed": resumed, "early_accepted": self.early_accepted},
                        pad_chars=80,
                    )
                ]
                self._send_packet(KIND_HANDSHAKE, self.conn_id, frames)
                if not resumed:
                    # Certificate flight spans two datagrams, like a real chain.
                    half = CERT_PAD_CHARS // 2
                    for _ in range(2):
                        self._send_packet(
                            KIND_HANDSHAKE, self.conn_id,
                            [crypto_frame("certificate", {}, pad_chars=half)],
                        )
                if config.issue_tickets:
                    ticket = SessionTicket.issue(
                        server_name="", version="quic",
                        allows_early_data=config.allow_early_data,
                        now_ms=self._loop.now,
                    )
                    self._ticket_registry()[ticket.ticket_id] = True
                    self._send_packet(
                        KIND_ONE_RTT, self.conn_id,
                        [{"type": "ticket", "ticket": ticket.ticket_id,
                          "early": config.allow_early_data}],
                    )
                self.established = True

            self._loop.call_later(config.crypto_delay_ms, send_flight)
        elif frame.get("stage") == "finished":
            self.established = True

    def _handle_stream(self, frame: Dict[str, Any]) -> None:
        stream_id = int(frame.get("id", -1))
        assembler = self._assemblers.setdefault(stream_id, _StreamAssembler())
        assembler.add(int(frame.get("off", 0)), stream_frame_data(frame), bool(frame.get("fin")))
        complete = assembler.complete()
        if complete is None:
            return
        del self._assemblers[stream_id]
        if not self.established and not self._hello_seen:
            # 0-RTT data racing ahead of the hello: buffer until decided.
            self._early_buffer.append((stream_id, complete))
            return
        if not self.established and not self.early_accepted:
            return  # rejected early data: drop, client replays
        self.listener._dispatch(self, stream_id, complete)

    def respond_stream(self, stream_id: int, data: bytes) -> None:
        """Send the response on the client's stream and close it."""
        for offset in range(0, len(data), STREAM_CHUNK):
            chunk = data[offset : offset + STREAM_CHUNK]
            fin = offset + len(chunk) >= len(data)
            self._send_packet(
                KIND_ONE_RTT, self.conn_id,
                [stream_frame(stream_id, offset, chunk, fin)],
            )
        if not data:
            self._send_packet(
                KIND_ONE_RTT, self.conn_id, [stream_frame(stream_id, 0, b"", True)]
            )


class QuicServerListener:
    """Accepts QUIC connections on one UDP port.

    ``on_stream(conn, stream_id, data)`` fires per completed request
    stream; answer with ``conn.respond_stream(stream_id, response)``.
    """

    def __init__(
        self,
        host: Host,
        port: int,
        on_stream: Callable[[_QuicServerConnection, int, bytes], None],
        config: Optional[QuicConfig] = None,
    ) -> None:
        self.host = host
        self.port = port
        self.config = config or QuicConfig()
        self._on_stream = on_stream
        self._connections: Dict[int, _QuicServerConnection] = {}
        self._early_packets: Dict[int, List[Any]] = {}
        self._max_conn_id_seen = 0
        self.streams_served = 0
        host.bind_udp(port, self._on_datagram)

    def _on_datagram(self, dgram: Datagram, _host: Host) -> None:
        try:
            packet = decode_packet(dgram.payload)
        except QuicPacketError:
            return
        conn = self._connections.get(packet.conn_id)
        if conn is None:
            if packet.kind != KIND_INITIAL:
                # Per-packet jitter can reorder a 0-RTT stream packet ahead
                # of its Initial.  Buffer packets for connections we have
                # not met yet (ids are monotonic, so anything above the
                # high-water mark is a future connection, not a dead one)
                # and replay them once the Initial arrives.
                if (
                    packet.kind == KIND_ONE_RTT
                    and packet.conn_id > self._max_conn_id_seen
                ):
                    self._early_packets.setdefault(packet.conn_id, []).append(packet)
                return
            conn = _QuicServerConnection(
                self, packet.conn_id,
                local_ip=dgram.dst_ip, peer_ip=dgram.src_ip, peer_port=dgram.src_port,
            )
            self._connections[packet.conn_id] = conn
            self._max_conn_id_seen = max(self._max_conn_id_seen, packet.conn_id)
            conn.handle_packet(packet)
            for early in self._early_packets.pop(packet.conn_id, ()):
                conn.handle_packet(early)
            return
        conn.handle_packet(packet)

    def _dispatch(self, conn: _QuicServerConnection, stream_id: int, data: bytes) -> None:
        self.streams_served += 1
        self._on_stream(conn, stream_id, data)

    def _drop(self, conn_id: int) -> None:
        self._connections.pop(conn_id, None)

    @property
    def connection_count(self) -> int:
        return len(self._connections)
