"""The diffrepro pass: is a disagreement reproducible or transient?

A disagreement seen once may be a stable property of the resolver (it
really serves different zone data, or an injected answer fault rewrites
its responses) or a one-off (an unlucky SERVFAIL roll, a timeout under
jitter).  Following respdiff's ``diffrepro``, each disagreeing cell is
re-queried ``attempts`` times with seeded per-attempt RNG streams; a
disagreement is labeled **reproducible** when every re-query that got an
answer again diverged from the consensus, and **transient** otherwise.

The pass runs serially on whatever world it is handed — for parallel
campaigns, hand it a *fresh* world built from the campaign's world seed
so the verdicts are independent of how the measurement ran.
"""

from __future__ import annotations

import random
from typing import Optional

from repro.core.probes import (
    Do53Probe,
    Do53ProbeConfig,
    DohProbe,
    DohProbeConfig,
    DoqProbe,
    DoqProbeConfig,
    DotProbe,
    DotProbeConfig,
    ProbeOutcome,
)
from repro.core.runner import ResolverTarget
from repro.core.seeding import derive_rng
from repro.core.vantage import VantagePoint
from repro.diff.engine import DiffReport
from repro.diff.records import STATUS_DISAGREE
from repro.dnswire.canonical import canonical_form_from_wire
from repro.errors import CampaignConfigError


def _make_probe(
    vantage: VantagePoint,
    target: ResolverTarget,
    transport: str,
    rng: random.Random,
):
    if transport == "doh":
        return DohProbe(
            host=vantage.host,
            service_ip=target.service_ip,
            server_name=target.hostname,
            config=DohProbeConfig(doh_path=target.doh_path),
            rng=rng,
        )
    if transport == "dot":
        return DotProbe(
            host=vantage.host,
            service_ip=target.service_ip,
            server_name=target.hostname,
            config=DotProbeConfig(),
            rng=rng,
        )
    if transport == "doq":
        return DoqProbe(
            host=vantage.host,
            service_ip=target.service_ip,
            server_name=target.hostname,
            config=DoqProbeConfig(),
            rng=rng,
        )
    if transport == "do53":
        return Do53Probe(
            host=vantage.host,
            service_ip=target.service_ip,
            config=Do53ProbeConfig(),
            rng=rng,
        )
    raise CampaignConfigError(f"cannot re-query over transport {transport!r}")


def verify_reproducibility(
    world,
    report: DiffReport,
    attempts: int = 3,
    seed: int = 0,
) -> DiffReport:
    """Re-query every disagreement in ``report`` and label it (in place).

    Each attempt issues one fresh query over the record's own transport
    from the record's own vantage, with an RNG derived from (seed,
    vantage, resolver, domain, attempt) — so verdicts are a deterministic
    function of the world seed and the report, not of wall-clock or run
    interleaving.  Re-queries that go unanswered contribute no
    disagreement evidence: a cell is ``reproducible`` only when *every*
    attempt answered and diverged from the consensus again.
    """
    if attempts < 1:
        raise CampaignConfigError(f"attempts must be >= 1, got {attempts!r}")
    for record in report.records:
        if record.status != STATUS_DISAGREE or record.expected is None:
            continue
        vantage = world.vantage(record.vantage)
        targets = world.targets([record.resolver])
        if not targets:
            raise CampaignConfigError(
                f"cannot re-query unknown resolver {record.resolver!r}"
            )
        target = targets[0]
        disagreed = 0
        for attempt in range(attempts):
            rng = derive_rng(
                seed,
                "diffrepro",
                record.vantage,
                record.resolver,
                record.domain,
                attempt,
            )
            probe = _make_probe(vantage, target, record.transport, rng)
            observed: list = []

            def on_outcome(outcome: ProbeOutcome) -> None:
                observed.append(outcome)

            probe.query(record.domain, on_outcome)
            world.network.run()
            probe.close()
            outcome: Optional[ProbeOutcome] = observed[0] if observed else None
            if outcome is not None and outcome.response_wire is not None:
                form = canonical_form_from_wire(outcome.response_wire)
                if form.render() != record.expected:
                    disagreed += 1
        record.verify_attempts = attempts
        record.verify_disagreements = disagreed
        record.reproducible = disagreed == attempts
    return report
