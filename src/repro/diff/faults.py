"""Seeded answer-fault plans: make chosen deployments disagree on purpose.

The clean world reaches consensus everywhere, which exercises exactly one
row of the disagreement taxonomy.  An :class:`AnswerFaultPlan` picks
(resolver, domain) pairs with a derived RNG and installs a response
mutator (:attr:`~repro.resolver.deployment.ResolverDeployment.response_mutator`)
that rewrites matching responses *at the frontend*, after resolution and
caching — so every transport of the deployment misbehaves identically and
deterministically, and the differ must classify each fault kind back into
the taxonomy.

Plans serialize to JSON and ship to shard workers the same way
:class:`repro.faults.FaultPlan` does, so sharded diff campaigns arm the
exact mutators the serial campaign arms.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Sequence

from repro.core.seeding import derive_rng
from repro.dnswire.message import Message, ResourceRecord
from repro.dnswire.name import Name
from repro.dnswire.rdata import ARdata
from repro.dnswire.types import RCODE_NXDOMAIN, RCODE_SERVFAIL, TYPE_A
from repro.errors import CampaignConfigError

#: Fault kinds, one per taxonomy class the differ must recover:
#: ``nxdomain`` → nxdomain_vs_noerror, ``servfail`` → rcode_mismatch,
#: ``rewrite`` → answer_set_mismatch, ``ttl`` → ttl_band_drift,
#: ``truncate`` → truncation.
FAULT_KINDS = ("nxdomain", "servfail", "rewrite", "ttl", "truncate")


@dataclass(frozen=True)
class AnswerFault:
    """One deployment answering one domain wrongly, in one specific way."""

    hostname: str
    domain: str
    kind: str

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise CampaignConfigError(f"unknown answer-fault kind {self.kind!r}")


def _rewrite_address(address: str) -> str:
    """Deterministically map an IPv4 address into TEST-NET-3."""
    return "203.0.113." + address.rsplit(".", 1)[-1]


def mutate_response(query: Message, response: Message, kind: str) -> Message:
    """Apply one fault kind to a response message (in place, returned)."""
    if kind == "nxdomain":
        response.header.rcode = RCODE_NXDOMAIN
        response.answers = []
    elif kind == "servfail":
        response.header.rcode = RCODE_SERVFAIL
        response.answers = []
    elif kind == "rewrite":
        rewritten = []
        for record in response.answers:
            if record.rdtype == TYPE_A and isinstance(record.rdata, ARdata):
                record = ResourceRecord(
                    name=record.name,
                    rdtype=record.rdtype,
                    rdclass=record.rdclass,
                    ttl=record.ttl,
                    rdata=ARdata(_rewrite_address(record.rdata.address)),
                )
            rewritten.append(record)
        response.answers = rewritten
    elif kind == "ttl":
        # Five seconds sits in the "1s+" band; zone data lives in "1d+".
        response.answers = [record.with_ttl(5) for record in response.answers]
    elif kind == "truncate":
        response.header.tc = True
        response.answers = []
    else:
        raise CampaignConfigError(f"unknown answer-fault kind {kind!r}")
    return response


class AnswerFaultPlan:
    """A serializable set of :class:`AnswerFault` entries."""

    def __init__(self, faults: Sequence[AnswerFault], seed: int = 0) -> None:
        self.faults = sorted(
            faults, key=lambda f: (f.hostname, f.domain, f.kind)
        )
        self.seed = seed

    def __len__(self) -> int:
        return len(self.faults)

    def __iter__(self):
        return iter(self.faults)

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, AnswerFaultPlan)
            and other.faults == self.faults
            and other.seed == self.seed
        )

    # -- construction -------------------------------------------------------

    @classmethod
    def generate(
        cls,
        hostnames: Sequence[str],
        domains: Sequence[str],
        seed: int = 0,
        per_kind: int = 1,
    ) -> "AnswerFaultPlan":
        """Pick ``per_kind`` distinct (hostname, domain) pairs per fault kind.

        The assignment is a pure function of the inputs: pairs are
        shuffled with a derived RNG and consumed in kind order, so every
        process (and every shard) derives the identical plan.
        """
        if per_kind < 1:
            raise CampaignConfigError(f"per_kind must be >= 1, got {per_kind!r}")
        pairs = [(h, d) for h in sorted(hostnames) for d in sorted(domains)]
        needed = per_kind * len(FAULT_KINDS)
        if len(pairs) < needed:
            raise CampaignConfigError(
                f"{len(pairs)} (hostname, domain) pairs cannot host "
                f"{needed} answer faults"
            )
        rng = derive_rng(seed, "answer-faults")
        rng.shuffle(pairs)
        faults = []
        cursor = 0
        for kind in FAULT_KINDS:
            for _ in range(per_kind):
                hostname, domain = pairs[cursor]
                cursor += 1
                faults.append(AnswerFault(hostname, domain, kind))
        return cls(faults, seed=seed)

    # -- serialization ------------------------------------------------------

    def to_json(self) -> str:
        return json.dumps(
            {
                "seed": self.seed,
                "faults": [
                    {"hostname": f.hostname, "domain": f.domain, "kind": f.kind}
                    for f in self.faults
                ],
            },
            sort_keys=True,
        )

    @classmethod
    def from_json(cls, text: str) -> "AnswerFaultPlan":
        data = json.loads(text)
        return cls(
            [AnswerFault(**entry) for entry in data["faults"]],
            seed=data.get("seed", 0),
        )

    def restricted_to(self, hostnames: Iterable[str]) -> "AnswerFaultPlan":
        allowed = set(hostnames)
        return AnswerFaultPlan(
            [f for f in self.faults if f.hostname in allowed], seed=self.seed
        )

    # -- installation -------------------------------------------------------

    def by_hostname(self) -> Dict[str, Dict[str, str]]:
        """hostname → {domain → kind}."""
        grouped: Dict[str, Dict[str, str]] = {}
        for fault in self.faults:
            grouped.setdefault(fault.hostname, {})[fault.domain] = fault.kind
        return grouped

    def mutator_for(self, hostname: str) -> Callable[[Message, Message], Message]:
        """The response mutator covering this hostname's faults."""
        kinds_by_qname = {
            Name.from_text(domain): kind
            for domain, kind in self.by_hostname().get(hostname, {}).items()
        }

        def mutator(query: Message, response: Message) -> Message:
            question = query.question
            if question is None:
                return response
            kind = kinds_by_qname.get(question.qname)
            if kind is None:
                return response
            return mutate_response(query, response, kind)

        return mutator

    def install(self, deployments: Iterable[object]) -> int:
        """Arm mutators on the targeted deployments; returns how many."""
        targeted = self.by_hostname()
        armed = 0
        for deployment in deployments:
            if deployment.hostname in targeted:
                deployment.response_mutator = self.mutator_for(deployment.hostname)
                armed += 1
        return armed

    def describe(self) -> str:
        return "\n".join(
            f"{f.hostname} {f.domain} -> {f.kind}" for f in self.faults
        )
