"""Diff records: one classified comparison per (query cell, resolver).

A *cell* is one same-query fan-out — (campaign, vantage, round, domain) —
and each resolver that was probed in the cell yields exactly one
:class:`DiffRecord` against the cell's consensus answer.  Records
serialize as sorted-key JSONL so diff outputs can be persisted and
byte-compared the same way measurement records are.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Iterable, List, Optional, Union

from repro.errors import ResultsFormatError

#: Comparison statuses.
STATUS_AGREE = "agree"
STATUS_DISAGREE = "disagree"
STATUS_UNANSWERED = "unanswered"


@dataclass
class DiffRecord:
    """One resolver's answer compared against its cell's consensus."""

    campaign: str
    vantage: str
    resolver: str
    domain: str
    round_index: int
    transport: str
    #: ``agree`` | ``disagree`` | ``unanswered``.
    status: str
    #: Taxonomy label (``agree`` for agreeing records, else one of
    #: :data:`repro.dnswire.canonical.TAXONOMY`).
    classification: str
    #: Mismatching field names, in :data:`~repro.dnswire.canonical.FIELD_ORDER`.
    mismatch_fields: List[str] = field(default_factory=list)
    #: One-line canonical forms (``None`` when unanswered / no consensus).
    observed: Optional[str] = None
    expected: Optional[str] = None
    #: Probe error class for unanswered cells.
    error_class: Optional[str] = None
    #: How many of the cell's responses matched the consensus, and how
    #: many resolvers the cell probed at all.
    consensus_size: int = 0
    group_size: int = 0
    #: Filled by the diffrepro-style re-query pass: attempts made, how
    #: many still disagreed with the consensus, and the verdict (``None``
    #: until verified; agreeing records are never verified).
    verify_attempts: int = 0
    verify_disagreements: int = 0
    reproducible: Optional[bool] = None

    def to_json(self) -> str:
        return json.dumps(asdict(self), separators=(",", ":"), sort_keys=True)

    @classmethod
    def parse_line(
        cls,
        line: str,
        source: Optional[Union[str, Path]] = None,
        line_number: Optional[int] = None,
    ) -> "DiffRecord":
        try:
            data = json.loads(line)
            if not isinstance(data, dict):
                raise ValueError(f"expected a JSON object, got {type(data).__name__}")
            return cls(**data)
        except (json.JSONDecodeError, TypeError, ValueError) as exc:
            location = ""
            if source is not None:
                location = f" in {source}"
                if line_number is not None:
                    location += f", line {line_number}"
            raise ResultsFormatError(f"malformed diff record{location}: {exc}") from exc

    @staticmethod
    def canonical_key(record: "DiffRecord") -> tuple:
        """Total order making diff outputs independent of input order."""
        return (
            record.campaign,
            record.round_index,
            record.vantage,
            record.domain,
            record.resolver,
        )


def diff_records_to_jsonl(records: Iterable[DiffRecord]) -> str:
    return "".join(record.to_json() + "\n" for record in records)
