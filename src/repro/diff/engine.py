"""The consensus differencing engine (respdiff's msgdiff + diffsum).

Streams measurement records — from an in-memory
:class:`~repro.core.results.ResultStore`, a warehouse, or a JSONL
iterator — groups them into same-query *cells* (campaign, round, vantage,
domain), elects a consensus answer per cell, and emits one classified
:class:`~repro.diff.records.DiffRecord` per (cell, resolver).

The engine is a pure function of the record *multiset*: cells and their
members are sorted before any comparison, ties in the consensus election
break on the canonical serialization of the candidate form, and the
output records carry a total order.  Hence a sharded campaign and a
serial one — or a warehouse-backed source and an in-memory one — produce
byte-identical reports.
"""

from __future__ import annotations

import json
from collections import Counter
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from repro.core.results import MeasurementRecord
from repro.diff.records import (
    STATUS_AGREE,
    STATUS_DISAGREE,
    STATUS_UNANSWERED,
    DiffRecord,
    diff_records_to_jsonl,
)
from repro.dnswire.canonical import (
    CLASS_AGREE,
    CLASS_UNANSWERED,
    FIELD_ORDER,
    TAXONOMY,
    CanonicalForm,
    canonical_form_from_wire,
    classify,
    diff_forms,
)
from repro.errors import DiffInputError


def _form_key(form: CanonicalForm) -> str:
    """A stable serialization used to break consensus-election ties."""
    return json.dumps(form.to_dict(), sort_keys=True, separators=(",", ":"))


@dataclass
class _CellMember:
    resolver: str
    transport: str
    form: Optional[CanonicalForm]
    error_class: Optional[str]


def elect_consensus(forms: List[CanonicalForm]) -> Optional[CanonicalForm]:
    """The most common canonical form; ties break on serialization order.

    Returns ``None`` when no comparable response exists at all.
    """
    if not forms:
        return None
    counts = Counter(forms)
    return min(counts.items(), key=lambda item: (-item[1], _form_key(item[0])))[0]


@dataclass
class ResolverDiffRow:
    """Per-resolver aggregate for the disagreement-rate table."""

    resolver: str
    cells: int
    agree: int
    disagree: int
    unanswered: int

    @property
    def comparable(self) -> int:
        return self.agree + self.disagree

    @property
    def disagreement_rate(self) -> float:
        return self.disagree / self.comparable if self.comparable else 0.0


@dataclass
class DiffReport:
    """All diff records of one campaign plus the analysis views on them."""

    records: List[DiffRecord]

    def __len__(self) -> int:
        return len(self.records)

    # -- aggregates ---------------------------------------------------------

    def status_counts(self) -> Dict[str, int]:
        counts = {STATUS_AGREE: 0, STATUS_DISAGREE: 0, STATUS_UNANSWERED: 0}
        for record in self.records:
            counts[record.status] += 1
        return counts

    def cell_count(self) -> int:
        return len(
            {
                (r.campaign, r.round_index, r.vantage, r.domain)
                for r in self.records
            }
        )

    def disagreements(self) -> List[DiffRecord]:
        return [r for r in self.records if r.status == STATUS_DISAGREE]

    def per_resolver_rows(self) -> List[ResolverDiffRow]:
        """Disagreement-rate rows, worst resolver first (ties by name)."""
        rows: Dict[str, ResolverDiffRow] = {}
        for record in self.records:
            row = rows.setdefault(
                record.resolver,
                ResolverDiffRow(record.resolver, 0, 0, 0, 0),
            )
            row.cells += 1
            if record.status == STATUS_AGREE:
                row.agree += 1
            elif record.status == STATUS_DISAGREE:
                row.disagree += 1
            else:
                row.unanswered += 1
        return sorted(
            rows.values(),
            key=lambda row: (-row.disagreement_rate, row.resolver),
        )

    def field_mismatch_shares(self) -> List[Tuple[str, int, float]]:
        """(field, mismatch count, share of all field mismatches) rows."""
        counts = Counter()
        for record in self.disagreements():
            counts.update(record.mismatch_fields)
        total = sum(counts.values())
        return [
            (field, counts.get(field, 0), counts.get(field, 0) / total if total else 0.0)
            for field in FIELD_ORDER
        ]

    def classification_counts(self) -> List[Tuple[str, int, int, int, int]]:
        """(class, count, reproducible, transient, unverified) rows."""
        rows = []
        for label in TAXONOMY:
            members = [r for r in self.records if r.classification == label]
            reproducible = sum(1 for r in members if r.reproducible is True)
            transient = sum(1 for r in members if r.reproducible is False)
            unverified = sum(1 for r in members if r.reproducible is None)
            rows.append((label, len(members), reproducible, transient, unverified))
        return rows

    # -- serialization ------------------------------------------------------

    def to_jsonl(self) -> str:
        return diff_records_to_jsonl(self.records)

    def render(self) -> str:
        from repro.analysis.diffsum import render_diff_summary

        return render_diff_summary(self)


def build_diff_report(
    records: Iterable[MeasurementRecord],
    campaign: Optional[str] = None,
) -> DiffReport:
    """Diff every same-query cell in ``records`` against its consensus.

    Only final ``dns_query`` records participate (pings and intermediate
    retry attempts are skipped); ``campaign`` restricts to one campaign
    when the source mixes several.  Records with a captured response
    contribute their canonical form; records without one (timeouts, dead
    resolvers) enter their cell as *unanswered* — counted separately,
    never as a content disagreement.

    Raises :class:`~repro.errors.DiffInputError` when the stream contains
    answered queries but no captured wire at all — the campaign ran
    without ``capture_responses`` and there is nothing to diff.
    """
    cells: Dict[Tuple[str, int, str, str], List[_CellMember]] = {}
    captured = 0
    answered_without_wire = 0
    for record in records:
        if record.kind != "dns_query":
            continue
        if campaign is not None and record.campaign != campaign:
            continue
        form: Optional[CanonicalForm] = None
        if record.response_wire:
            form = canonical_form_from_wire(bytes.fromhex(record.response_wire))
            captured += 1
        elif record.rcode is not None:
            answered_without_wire += 1
        key = (
            record.campaign,
            record.round_index,
            record.vantage,
            record.domain or "",
        )
        cells.setdefault(key, []).append(
            _CellMember(
                resolver=record.resolver,
                transport=record.transport,
                form=form,
                error_class=record.error_class,
            )
        )
    if captured == 0 and answered_without_wire > 0:
        raise DiffInputError(
            "no record carries a captured response wire; re-run the campaign "
            "with capture_responses=True (the `repro diff` subcommand does)"
        )

    out: List[DiffRecord] = []
    for key in sorted(cells):
        campaign_name, round_index, vantage, domain = key
        members = sorted(cells[key], key=lambda member: member.resolver)
        forms = [m.form for m in members if m.form is not None]
        consensus = elect_consensus(forms)
        consensus_size = sum(1 for form in forms if form == consensus)
        expected = consensus.render() if consensus is not None else None
        for member in members:
            if member.form is None or consensus is None:
                status = STATUS_UNANSWERED
                classification = CLASS_UNANSWERED
                mismatch_fields: List[str] = []
                observed = member.form.render() if member.form else None
            else:
                mismatch_fields = diff_forms(member.form, consensus)
                classification = classify(mismatch_fields, member.form, consensus)
                status = STATUS_AGREE if classification == CLASS_AGREE else STATUS_DISAGREE
                observed = member.form.render()
            out.append(
                DiffRecord(
                    campaign=campaign_name,
                    vantage=vantage,
                    resolver=member.resolver,
                    domain=domain,
                    round_index=round_index,
                    transport=member.transport,
                    status=status,
                    classification=classification,
                    mismatch_fields=mismatch_fields,
                    observed=observed,
                    expected=expected,
                    error_class=member.error_class,
                    consensus_size=consensus_size,
                    group_size=len(members),
                )
            )
    out.sort(key=DiffRecord.canonical_key)
    return DiffReport(records=out)
