"""Cross-resolver answer differencing (respdiff-style).

The availability/latency study asks *whether* and *how fast* resolvers
answer; this package asks whether they answer the *same thing*.  A diff
campaign fields the same query to every deployment (``capture_responses``
stores the raw wire message on each record), the engine canonically
normalizes the answers (:mod:`repro.dnswire.canonical`), diffs each
resolver against the fleet consensus field by field, classifies every
disagreement into a small taxonomy, and a ``diffrepro``-style re-query
pass labels each disagreement reproducible or transient.

Pipeline (mirroring CZ-NIC respdiff's msgdiff / diffsum / diffrepro):

1. :func:`repro.experiments.campaigns.run_diff_campaign` — the same-query
   fan-out campaign, serial or sharded, RAM or warehouse backed;
2. :func:`build_diff_report` — stream the records (any
   :class:`~repro.core.results.RecordSource`) into a
   :class:`DiffReport`: per-resolver disagreement rates, per-field
   mismatch shares, taxonomy counts;
3. :func:`verify_reproducibility` — re-query each disagreement under
   seeded retries and label it reproducible/transient.

Everything downstream of the record multiset is a pure function of it, so
diff reports are byte-identical for any worker count.
"""

from repro.diff.engine import DiffReport, build_diff_report
from repro.diff.faults import FAULT_KINDS, AnswerFault, AnswerFaultPlan
from repro.diff.records import DiffRecord
from repro.diff.requery import verify_reproducibility

__all__ = [
    "AnswerFault",
    "AnswerFaultPlan",
    "DiffRecord",
    "DiffReport",
    "FAULT_KINDS",
    "build_diff_report",
    "verify_reproducibility",
]
