"""Exception hierarchy for the repro library.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch one type at the boundary.  The measurement platform
additionally maps transport/protocol failures onto the error taxonomy in
:mod:`repro.core.errors_taxonomy` when recording results; the exception
classes here carry the raw failure.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


# ---------------------------------------------------------------------------
# Simulator errors
# ---------------------------------------------------------------------------


class SimulationError(ReproError):
    """Base class for errors raised by the network simulator."""


class ClockError(SimulationError):
    """Raised when the virtual clock is misused (e.g. scheduling in the past)."""


class RoutingError(SimulationError):
    """Raised when a packet cannot be routed (unknown IP, no anycast site)."""


class AddressError(SimulationError):
    """Raised for malformed or conflicting simulated addresses."""


class SocketError(SimulationError):
    """Base class for simulated socket failures."""


class ConnectionRefused(SocketError):
    """The remote host has no listener on the destination port."""


class ConnectionReset(SocketError):
    """The remote end closed or aborted the connection mid-exchange."""


class ConnectTimeout(SocketError):
    """The transport-level connection attempt timed out."""


# ---------------------------------------------------------------------------
# DNS wire format errors
# ---------------------------------------------------------------------------


class DnsWireError(ReproError):
    """Base class for DNS message encoding/decoding failures."""


class NameError_(DnsWireError):
    """Raised for malformed domain names (length limits, bad labels).

    Named with a trailing underscore to avoid shadowing the ``NameError``
    builtin; exported as ``DnsNameError`` from :mod:`repro.dnswire`.
    """


class MessageTruncated(DnsWireError):
    """Raised when a wire message ends before a field completes."""


class MessageMalformed(DnsWireError):
    """Raised when a wire message violates the RFC 1035 grammar."""


class CompressionError(DnsWireError):
    """Raised for bad compression pointers (loops, forward references)."""


class FramingError(DnsWireError):
    """Raised when a length-prefixed DNS stream (TCP/DoT/DoQ framing,
    RFC 1035 §4.2.2) ends mid-frame or declares an impossible length.

    A named error — like :class:`ResultsFormatError` for result files —
    so a truncated stream fails loudly at the framing layer instead of
    rotting into an opaque probe timeout.
    """


# ---------------------------------------------------------------------------
# TLS / HTTP simulation errors
# ---------------------------------------------------------------------------


class TlsError(ReproError):
    """Base class for simulated TLS failures."""


class TlsHandshakeError(TlsError):
    """The simulated TLS handshake failed (version mismatch, server abort)."""


class TlsAlert(TlsError):
    """The peer sent a fatal TLS alert."""


class HttpError(ReproError):
    """Base class for simulated HTTP failures."""


class HttpProtocolError(HttpError):
    """Malformed HTTP/1.1 framing or HTTP/2 frame sequence."""


class HttpStatusError(HttpError):
    """A non-2xx HTTP response where the caller required success."""

    def __init__(self, status: int, reason: str = "") -> None:
        super().__init__(f"HTTP status {status} {reason}".strip())
        self.status = status
        self.reason = reason


# ---------------------------------------------------------------------------
# Resolver errors
# ---------------------------------------------------------------------------


class ResolverError(ReproError):
    """Base class for recursive-resolution failures."""


class ZoneError(ResolverError):
    """Raised for malformed or inconsistent zone data."""


class ResolutionFailed(ResolverError):
    """The recursive engine could not resolve the name (SERVFAIL)."""


class NxDomain(ResolverError):
    """The name does not exist (authoritative NXDOMAIN)."""


# ---------------------------------------------------------------------------
# Measurement platform errors
# ---------------------------------------------------------------------------


class MeasurementError(ReproError):
    """Base class for measurement-platform failures."""


class ProbeTimeout(MeasurementError):
    """A probe did not complete within its deadline."""


class CampaignConfigError(MeasurementError):
    """A measurement campaign was configured inconsistently."""


class ResultsFormatError(MeasurementError):
    """A results file failed to parse (malformed or truncated record).

    Raised instead of an anonymous ``json.JSONDecodeError`` when a JSONL
    results file or a warehouse segment contains a line that is not a
    valid :class:`~repro.core.results.MeasurementRecord`; the message
    names the file and the 1-based line number.
    """


class StoreError(MeasurementError):
    """A results warehouse was misused (missing manifest, double ingest)."""


class DiffInputError(MeasurementError):
    """Answer differencing was fed unusable input (no captured responses)."""


class MonitorConfigError(MeasurementError):
    """An SLO policy or monitor configuration is invalid (bad threshold,
    unknown objective kind, malformed policy file)."""


class ObserverConfigError(MeasurementError):
    """An observer spec or fleet configuration is invalid (unknown metric
    kind or scope, bad baseline parameters, malformed spec file)."""


class CatalogError(ReproError):
    """Raised for unknown resolvers or malformed catalog entries."""


class GeoError(ReproError):
    """Raised for geolocation database failures (unknown IP, bad prefix)."""


class AnalysisError(ReproError):
    """Raised when analysis inputs are empty or inconsistent."""
