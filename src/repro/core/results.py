"""Measurement records and the JSON results store.

The paper's tool "writes the results to a JSON file" after each set of
measurements.  :class:`ResultStore` keeps records in memory for analysis
and (de)serializes them as JSON Lines, one record per line, so month-long
campaigns stream to disk without holding file-size state.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import (
    Callable,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Protocol,
    Union,
    runtime_checkable,
)

from repro.errors import ResultsFormatError


@dataclass
class MeasurementRecord:
    """One probe outcome.

    ``kind`` is ``"dns_query"`` for a response-time measurement over any
    DNS transport, ``"ping"`` for an ICMP latency measurement, and
    ``"dns_query_attempt"`` for an intermediate failed attempt recorded
    when a campaign's retry policy keeps per-attempt records (analysis
    operates on the final ``"dns_query"`` records only).
    """

    campaign: str
    vantage: str
    resolver: str
    kind: str  # "dns_query" | "ping" | "dns_query_attempt"
    transport: str  # "doh" | "dot" | "do53" | "doq" | "doh3" | "icmp"
    domain: Optional[str]
    round_index: int
    started_at_ms: float
    duration_ms: Optional[float]  # None when the probe failed
    success: bool
    error_class: Optional[str] = None
    rcode: Optional[int] = None
    http_status: Optional[int] = None
    http_version: Optional[str] = None
    tls_version: Optional[str] = None
    response_size: Optional[int] = None
    connection_reused: bool = False
    #: Which attempt produced this outcome (1 = first try); > 1 means the
    #: campaign's retry policy re-issued the query after failures.
    attempts: int = 1
    #: Phase timings (ms) splitting ``duration_ms`` into its protocol
    #: stages: TCP connect, TLS (or QUIC) handshake, and the query
    #: exchange (HTTP/DNS exchange + response parse).  ``None`` when the
    #: phase did not occur (connection reuse, UDP transport) or never
    #: completed.  For successful records the present phases sum to
    #: ``duration_ms``.
    connect_ms: Optional[float] = None
    tls_ms: Optional[float] = None
    query_ms: Optional[float] = None
    #: The phase that was in flight when a failed probe gave up
    #: (``None`` for successes), attributing each error to a span.
    failed_phase: Optional[str] = None
    #: Raw DNS response bytes, hex-encoded, captured when the campaign
    #: runs with ``capture_responses`` for answer differencing; ``None``
    #: otherwise (and always for pings and unanswered probes).
    response_wire: Optional[str] = None
    #: Session dimension (see :mod:`repro.session`): how this query's
    #: transport session was used — ``cold`` / ``warm`` / ``resumed`` /
    #: ``zero_rtt`` — and which policy mode produced it.  Both are
    #: ``None`` (and omitted from the JSON form, keeping legacy output
    #: byte-identical) for campaigns without an active session policy.
    session_state: Optional[str] = None
    session_policy: Optional[str] = None

    def to_json(self) -> str:
        data = asdict(self)
        # Session fields appeared after the format froze; omit them when
        # unset so cold/legacy campaigns keep emitting byte-identical
        # JSONL (the golden-master equivalence suites depend on it).
        if data["session_state"] is None:
            del data["session_state"]
        if data["session_policy"] is None:
            del data["session_policy"]
        return json.dumps(data, separators=(",", ":"), sort_keys=True)

    @classmethod
    def from_json(cls, line: str) -> "MeasurementRecord":
        return cls.parse_line(line)

    @classmethod
    def parse_line(
        cls,
        line: str,
        source: Optional[Union[str, Path]] = None,
        line_number: Optional[int] = None,
    ) -> "MeasurementRecord":
        """Parse one JSONL line into a record.

        A malformed or truncated line raises
        :class:`~repro.errors.ResultsFormatError` naming ``source`` and the
        1-based ``line_number`` (when given) instead of leaking an
        anonymous ``json.JSONDecodeError`` without file context.
        """
        try:
            data = json.loads(line)
            if not isinstance(data, dict):
                raise ValueError(
                    f"expected a JSON object, got {type(data).__name__}"
                )
            return cls(**data)
        except (json.JSONDecodeError, TypeError, ValueError) as exc:
            location = ""
            if source is not None:
                location = f" in {source}"
                if line_number is not None:
                    location += f", line {line_number}"
            elif line_number is not None:
                location = f" at line {line_number}"
            raise ResultsFormatError(
                f"malformed measurement record{location}: {exc}"
            ) from exc


class ResultStore:
    """In-memory record collection with JSONL persistence."""

    def __init__(self) -> None:
        self._records: List[MeasurementRecord] = []

    def add(self, record: MeasurementRecord) -> None:
        self._records.append(record)

    def extend(self, records: Iterable[MeasurementRecord]) -> None:
        self._records.extend(records)

    @property
    def records(self) -> List[MeasurementRecord]:
        return list(self._records)

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[MeasurementRecord]:
        return iter(self._records)

    # -- filtering views ------------------------------------------------------

    def filter(
        self,
        kind: Optional[str] = None,
        vantage: Optional[str] = None,
        resolver: Optional[str] = None,
        transport: Optional[str] = None,
        success: Optional[bool] = None,
        predicate: Optional[Callable[[MeasurementRecord], bool]] = None,
    ) -> List[MeasurementRecord]:
        """Records matching every given criterion."""
        out = []
        for record in self._records:
            if kind is not None and record.kind != kind:
                continue
            if vantage is not None and record.vantage != vantage:
                continue
            if resolver is not None and record.resolver != resolver:
                continue
            if transport is not None and record.transport != transport:
                continue
            if success is not None and record.success != success:
                continue
            if predicate is not None and not predicate(record):
                continue
            out.append(record)
        return out

    def durations_ms(self, **criteria) -> List[float]:
        """Durations of successful records matching the criteria."""
        records = self.filter(success=True, **criteria)
        return [r.duration_ms for r in records if r.duration_ms is not None]

    def by_resolver(self, **criteria) -> Dict[str, List[MeasurementRecord]]:
        grouped: Dict[str, List[MeasurementRecord]] = {}
        for record in self.filter(**criteria):
            grouped.setdefault(record.resolver, []).append(record)
        return grouped

    # -- canonical ordering ---------------------------------------------------

    @staticmethod
    def canonical_key(record: MeasurementRecord) -> tuple:
        """Total-order key for deterministic exports.

        Orders by virtual schedule position first (round, start time),
        then by the measurement's identity.  Sorting with this key is what
        lets a sharded campaign and a serial one emit byte-identical
        JSONL: the merge becomes independent of shard boundaries and
        completion order.
        """
        return (
            record.campaign,
            record.round_index,
            record.started_at_ms,
            record.vantage,
            record.resolver,
            record.kind,
            record.domain or "",
            record.attempts,
            record.transport,
        )

    def canonical_sort(self) -> None:
        """Stable-sort records into canonical order (in place)."""
        self._records.sort(key=self.canonical_key)

    # -- persistence --------------------------------------------------------------

    def to_jsonl(self) -> str:
        """All records as JSON Lines text (one record per line)."""
        return "".join(record.to_json() + "\n" for record in self._records)

    def save_jsonl(self, path: Union[str, Path]) -> int:
        """Write all records as JSON Lines; returns the record count."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(self.to_jsonl(), encoding="utf-8")
        return len(self._records)

    @classmethod
    def load_jsonl(cls, path: Union[str, Path]) -> "ResultStore":
        store = cls()
        store.extend(cls.iter_jsonl(path))
        return store

    @classmethod
    def iter_jsonl(cls, path: Union[str, Path]) -> Iterator[MeasurementRecord]:
        """Stream records from a JSONL file without materializing a store.

        Analysis passes that only need one record at a time (the CLI
        ``correlate`` and ``drift`` subcommands) read month-long result
        files through this with O(1) record memory.  Malformed lines raise
        :class:`~repro.errors.ResultsFormatError` with file and line.
        """
        path = Path(path)
        with path.open("r", encoding="utf-8") as handle:
            for line_number, line in enumerate(handle, start=1):
                line = line.strip()
                if line:
                    yield MeasurementRecord.parse_line(
                        line, source=path, line_number=line_number
                    )


@runtime_checkable
class RecordSource(Protocol):
    """What analysis needs from a collection of measurement records.

    Implemented by :class:`ResultStore` (in-memory) and by
    :class:`repro.store.Warehouse` (on-disk, streaming with predicate
    pushdown), so every table/figure builder accepts either
    interchangeably.
    """

    def __iter__(self) -> Iterator[MeasurementRecord]: ...

    def __len__(self) -> int: ...

    def filter(
        self,
        kind: Optional[str] = None,
        vantage: Optional[str] = None,
        resolver: Optional[str] = None,
        transport: Optional[str] = None,
        success: Optional[bool] = None,
        predicate: Optional[Callable[[MeasurementRecord], bool]] = None,
    ) -> List[MeasurementRecord]: ...

    def durations_ms(self, **criteria) -> List[float]: ...

    def by_resolver(self, **criteria) -> Dict[str, List[MeasurementRecord]]: ...
