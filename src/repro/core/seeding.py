"""Stable, process-independent RNG stream derivation.

Every stochastic component of the simulation draws from a
:class:`random.Random` seeded by *where it sits in the experiment* — the
campaign seed plus a structural key such as ``(round, vantage, resolver)``
or ``(deployment, site)``.  Deriving those seeds with Python's built-in
``hash`` would make them depend on the interpreter's per-process hash
salt (``PYTHONHASHSEED``), so two processes — or a sharded and a serial
run — would disagree.  :func:`stable_hash64` uses SHA-256 instead: the
same parts always yield the same seed, in any process, on any platform.

This is the foundation the parallel executor builds on: a shard can
re-derive exactly the RNG streams the serial run would have used for its
slice of the (vantage × resolver × round) space, because no stream
depends on global draw order or interpreter state.
"""

from __future__ import annotations

import hashlib
import random

__all__ = ["stable_hash64", "derive_seed", "derive_rng"]


def stable_hash64(*parts: object) -> int:
    """A 64-bit digest of ``parts``, identical across processes.

    Parts are joined by ``|`` after ``str()`` conversion, so callers
    should pass discrete fields (not pre-joined strings containing ``|``)
    when collisions between adjacent parts matter.
    """
    material = "|".join(str(part) for part in parts).encode("utf-8")
    return int.from_bytes(hashlib.sha256(material).digest()[:8], "big")


def derive_seed(seed: int, *parts: object) -> int:
    """Derive a child seed from ``seed`` and a structural key."""
    return stable_hash64(seed, *parts)


def derive_rng(seed: int, *parts: object) -> random.Random:
    """A fresh :class:`random.Random` on the derived stream."""
    return random.Random(derive_seed(seed, *parts))
