"""Classification of measurement failures.

The paper reports that the most common errors were "related to a failure
to establish a connection".  To reproduce that analysis the platform tags
every failed probe with an :class:`ErrorClass`, derived from the exception
(or protocol condition) that ended the probe.
"""

from __future__ import annotations

from enum import Enum

from repro.errors import (
    ConnectionRefused,
    ConnectionReset,
    ConnectTimeout,
    DnsWireError,
    HttpError,
    HttpStatusError,
    ProbeTimeout,
    TlsError,
)


class ErrorClass(str, Enum):
    """Where in the exchange a probe failed."""

    CONNECT_REFUSED = "connect_refused"
    CONNECT_TIMEOUT = "connect_timeout"
    CONNECTION_RESET = "connection_reset"
    TLS_HANDSHAKE = "tls_handshake"
    HTTP_ERROR = "http_error"
    DNS_MALFORMED = "dns_malformed"
    DNS_RCODE = "dns_rcode"
    TIMEOUT = "timeout"
    OTHER = "other"

    @property
    def is_connection_establishment(self) -> bool:
        """True for the paper's dominant class: couldn't establish a connection."""
        return self in CONNECTION_ESTABLISHMENT_CLASSES


#: The paper's dominant error group: the probe never got a working
#: connection (TCP refused, TCP connect timed out, or TLS never finished).
CONNECTION_ESTABLISHMENT_CLASSES = frozenset(
    {
        ErrorClass.CONNECT_REFUSED,
        ErrorClass.CONNECT_TIMEOUT,
        ErrorClass.TLS_HANDSHAKE,
    }
)


def classify_error(exc: BaseException) -> ErrorClass:
    """Map an exception raised during a probe to its error class."""
    if isinstance(exc, ConnectionRefused):
        return ErrorClass.CONNECT_REFUSED
    if isinstance(exc, ConnectTimeout):
        return ErrorClass.CONNECT_TIMEOUT
    if isinstance(exc, ConnectionReset):
        return ErrorClass.CONNECTION_RESET
    if isinstance(exc, TlsError):
        return ErrorClass.TLS_HANDSHAKE
    if isinstance(exc, HttpStatusError):
        return ErrorClass.HTTP_ERROR
    if isinstance(exc, HttpError):
        return ErrorClass.HTTP_ERROR
    if isinstance(exc, DnsWireError):
        return ErrorClass.DNS_MALFORMED
    if isinstance(exc, ProbeTimeout):
        return ErrorClass.TIMEOUT
    return ErrorClass.OTHER
