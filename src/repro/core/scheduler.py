"""Measurement scheduling on the virtual clock.

The paper ran its home-network tests "every few hours" for three months
and its EC2 tests three times a day.  :class:`PeriodicSchedule` expresses
such cadences as explicit round start times on the virtual clock, with an
optional per-round stagger so that probes toward different resolvers do
not all fire at the same instant (as the real platform's task scheduler
naturally spreads them).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterator, List

from repro.errors import CampaignConfigError

MS_PER_HOUR = 3600.0 * 1000.0
MS_PER_DAY = 24.0 * MS_PER_HOUR


@dataclass(frozen=True)
class PeriodicSchedule:
    """Evenly spaced measurement rounds.

    Attributes
    ----------
    rounds:
        Number of measurement rounds.
    interval_ms:
        Gap between round starts.
    start_ms:
        Virtual time of the first round.
    stagger_ms:
        Width of the uniform window over which individual probes inside a
        round are spread (0 = all at the round start).
    """

    rounds: int
    interval_ms: float
    start_ms: float = 0.0
    stagger_ms: float = 0.0

    def __post_init__(self) -> None:
        if self.rounds <= 0:
            raise CampaignConfigError("schedule needs at least one round")
        if self.interval_ms < 0 or self.stagger_ms < 0:
            raise CampaignConfigError("negative schedule interval/stagger")
        if self.stagger_ms > self.interval_ms and self.rounds > 1:
            raise CampaignConfigError("stagger larger than the round interval")

    def round_starts(self) -> List[float]:
        """Absolute start time of every round."""
        return [self.start_ms + i * self.interval_ms for i in range(self.rounds)]

    def probe_offset(self, rng: random.Random) -> float:
        """Sample one probe's offset within its round."""
        if self.stagger_ms <= 0:
            return 0.0
        return rng.uniform(0.0, self.stagger_ms)

    def __iter__(self) -> Iterator[float]:
        return iter(self.round_starts())

    @property
    def total_span_ms(self) -> float:
        """Time from the first round start to the end of the last round."""
        return (self.rounds - 1) * self.interval_ms + self.stagger_ms

    @classmethod
    def every_hours(cls, hours: float, rounds: int, stagger_minutes: float = 5.0) -> "PeriodicSchedule":
        """Convenience: a round every ``hours`` hours."""
        return cls(
            rounds=rounds,
            interval_ms=hours * MS_PER_HOUR,
            stagger_ms=stagger_minutes * 60.0 * 1000.0,
        )

    @classmethod
    def times_per_day(cls, times: int, days: int, stagger_minutes: float = 5.0) -> "PeriodicSchedule":
        """Convenience: ``times`` rounds per day for ``days`` days."""
        return cls(
            rounds=times * days,
            interval_ms=MS_PER_DAY / times,
            stagger_ms=stagger_minutes * 60.0 * 1000.0,
        )
