"""Measurement scheduling on the virtual clock.

The paper ran its home-network tests "every few hours" for three months
and its EC2 tests three times a day.  :class:`PeriodicSchedule` expresses
such cadences as explicit round start times on the virtual clock, with an
optional per-round stagger so that probes toward different resolvers do
not all fire at the same instant (as the real platform's task scheduler
naturally spreads them).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, replace
from typing import Iterator, List, Tuple

from repro.errors import CampaignConfigError

MS_PER_HOUR = 3600.0 * 1000.0
MS_PER_DAY = 24.0 * MS_PER_HOUR


@dataclass(frozen=True)
class PeriodicSchedule:
    """Evenly spaced measurement rounds.

    Attributes
    ----------
    rounds:
        Number of measurement rounds.
    interval_ms:
        Gap between round starts.
    start_ms:
        Virtual time of the first round.
    stagger_ms:
        Width of the uniform window over which individual probes inside a
        round are spread (0 = all at the round start).
    first_round_index:
        Global index of this schedule's first round.  Non-zero when the
        schedule is a shard's slice of a larger campaign: the slice keeps
        the original absolute start times *and* the original round
        indices, so records and derived RNG streams line up with the
        unsliced campaign.
    """

    rounds: int
    interval_ms: float
    start_ms: float = 0.0
    stagger_ms: float = 0.0
    first_round_index: int = 0

    def __post_init__(self) -> None:
        if self.rounds <= 0:
            raise CampaignConfigError("schedule needs at least one round")
        if self.interval_ms < 0 or self.stagger_ms < 0:
            raise CampaignConfigError("negative schedule interval/stagger")
        if self.stagger_ms > self.interval_ms and self.rounds > 1:
            raise CampaignConfigError("stagger larger than the round interval")
        if self.first_round_index < 0:
            raise CampaignConfigError("negative first_round_index")

    def round_starts(self) -> List[float]:
        """Absolute start time of every round."""
        return [self.start_ms + i * self.interval_ms for i in range(self.rounds)]

    def round_items(self) -> List[Tuple[int, float]]:
        """(global round index, absolute start time) of every round."""
        return [
            (self.first_round_index + i, self.start_ms + i * self.interval_ms)
            for i in range(self.rounds)
        ]

    def slice_rounds(self, start: int, stop: int) -> "PeriodicSchedule":
        """The sub-schedule covering local rounds ``[start, stop)``.

        The slice preserves absolute round start times and global round
        indices: round ``start`` of the slice fires at the same virtual
        instant, with the same index and therefore the same derived RNG
        streams, as it would inside the full schedule.  This is what makes
        a round-range shard byte-equivalent to the same rounds of a
        serial campaign.
        """
        if not 0 <= start < stop <= self.rounds:
            raise CampaignConfigError(
                f"round slice [{start}, {stop}) outside [0, {self.rounds})"
            )
        return replace(
            self,
            rounds=stop - start,
            start_ms=self.start_ms + start * self.interval_ms,
            first_round_index=self.first_round_index + start,
        )

    def probe_offset(self, rng: random.Random) -> float:
        """Sample one probe's offset within its round."""
        if self.stagger_ms <= 0:
            return 0.0
        return rng.uniform(0.0, self.stagger_ms)

    def __iter__(self) -> Iterator[float]:
        return iter(self.round_starts())

    @property
    def total_span_ms(self) -> float:
        """Time from the first round start to the end of the last round."""
        return (self.rounds - 1) * self.interval_ms + self.stagger_ms

    @classmethod
    def every_hours(cls, hours: float, rounds: int, stagger_minutes: float = 5.0) -> "PeriodicSchedule":
        """Convenience: a round every ``hours`` hours."""
        return cls(
            rounds=rounds,
            interval_ms=hours * MS_PER_HOUR,
            stagger_ms=stagger_minutes * 60.0 * 1000.0,
        )

    @classmethod
    def times_per_day(cls, times: int, days: int, stagger_minutes: float = 5.0) -> "PeriodicSchedule":
        """Convenience: ``times`` rounds per day for ``days`` days."""
        return cls(
            rounds=times * days,
            interval_ms=MS_PER_DAY / times,
            stagger_ms=stagger_minutes * 60.0 * 1000.0,
        )
