"""Measurement probes: DoH, DoT, Do53 and ICMP ping clients.

Each probe issues one query (or echo) toward a resolver and reports a
:class:`ProbeOutcome` through a callback.  DoH and DoT probes can operate
in two modes:

* **fresh** (default, matching the paper's methodology): every query pays
  TCP + TLS establishment, like a ``dig``-style one-shot client;
* **reuse**: the probe keeps the connection (and HTTP/2 session) open
  across queries, which is the connection-reuse regime studied by the
  related work the paper builds on.

All probes enforce an end-to-end deadline and classify failures via
:mod:`repro.core.errors_taxonomy`.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence

from repro.core.errors_taxonomy import ErrorClass, classify_error
from repro.dnswire.builder import make_query
from repro.dnswire.message import Message
from repro.dnswire.types import RCODE_NOERROR, TYPE_A
from repro.errors import (
    CampaignConfigError,
    ConnectionReset,
    DnsWireError,
    FramingError,
    HttpStatusError,
    ProbeTimeout,
)
from repro.httpsim.doh import (
    DohCodecError,
    decode_doh_response,
    encode_doh_request,
)
from repro.httpsim.h1 import H1ResponseParser, encode_request
from repro.httpsim.h2 import H2ClientSession
from repro.netsim.host import Host
from repro.netsim.icmp import PingResult, ping
from repro.netsim.packet import Datagram
from repro.netsim.sockets import SimTcpConnection, SimUdpSocket
from repro.obs import PhaseClock, SpanRecorder, get_recorder
from repro.resolver.frontends import _LengthPrefixedStream
from repro.tlssim.handshake import TlsClientConfig, TlsClientConnection
from repro.tlssim.session import SessionCache

DEFAULT_TIMEOUT_MS = 5000.0


def _validate_timeout_ms(timeout_ms: float) -> None:
    """Reject non-positive or non-numeric probe deadlines at construction."""
    if not isinstance(timeout_ms, (int, float)) or isinstance(timeout_ms, bool):
        raise CampaignConfigError(f"timeout_ms must be a number, got {timeout_ms!r}")
    if timeout_ms <= 0:
        raise CampaignConfigError(f"timeout_ms must be positive, got {timeout_ms!r}")


@dataclass
class ProbeOutcome:
    """Result of one probe."""

    duration_ms: Optional[float]
    success: bool
    error_class: Optional[ErrorClass] = None
    error_detail: Optional[str] = None
    rcode: Optional[int] = None
    http_status: Optional[int] = None
    http_version: Optional[str] = None
    tls_version: Optional[str] = None
    response_size: Optional[int] = None
    connection_reused: bool = False
    answers: List[str] = field(default_factory=list)
    #: Phase timings (ms): TCP connect, TLS/QUIC handshake, and the query
    #: exchange.  Filled by the probe's :class:`~repro.obs.PhaseClock`;
    #: ``None`` for phases that did not occur.
    connect_ms: Optional[float] = None
    tls_ms: Optional[float] = None
    query_ms: Optional[float] = None
    #: The phase in flight when a failed probe gave up (None on success).
    failed_phase: Optional[str] = None
    #: The raw DNS response message bytes, for answer differencing.  Set
    #: whenever a well-formed response was parsed (including non-NOERROR
    #: responses); ``None`` when the probe never got a parseable message.
    response_wire: Optional[bytes] = None
    #: How the transport session was (re)used: ``cold`` (full
    #: establishment), ``warm`` (kept-alive connection), ``resumed``
    #: (abbreviated 1-RTT handshake from a session ticket) or
    #: ``zero_rtt`` (accepted early data).  ``None`` for transports
    #: without session semantics (Do53, ping) and for failed probes.
    session_state: Optional[str] = None

    @classmethod
    def failure(cls, duration_ms: Optional[float], exc: BaseException) -> "ProbeOutcome":
        return cls(
            duration_ms=duration_ms,
            success=False,
            error_class=classify_error(exc),
            error_detail=str(exc),
        )


OutcomeCallback = Callable[[ProbeOutcome], None]


def _session_state(reused: bool, used_early_data: bool, resumed: bool) -> str:
    """Collapse connection/handshake flags into the record's session state."""
    if reused:
        return "warm"
    if used_early_data:
        return "zero_rtt"
    if resumed:
        return "resumed"
    return "cold"

#: Phases whose durations roll up into ``ProbeOutcome.query_ms``.
_QUERY_PHASES = ("http_exchange", "dns_exchange", "dns_parse")


def _finalize_phases(clock: PhaseClock, on_complete: OutcomeCallback) -> OutcomeCallback:
    """Wrap ``on_complete`` so phase timings land on the outcome first."""

    def wrapped(outcome: ProbeOutcome) -> None:
        phases = clock.finish(
            outcome.success,
            error=outcome.error_class.value if outcome.error_class else None,
        )
        outcome.connect_ms = phases.get("tcp_connect")
        tls_ms = phases.get("tls_handshake")
        outcome.tls_ms = tls_ms if tls_ms is not None else phases.get("quic_handshake")
        if any(phase in phases for phase in _QUERY_PHASES):
            outcome.query_ms = sum(phases.get(phase, 0.0) for phase in _QUERY_PHASES)
        outcome.failed_phase = clock.failed_phase
        on_complete(outcome)

    return wrapped


class _OneShot:
    """Ensures a probe completes exactly once, with deadline handling."""

    def __init__(self, loop, timeout_ms: float, on_complete: OutcomeCallback) -> None:
        _validate_timeout_ms(timeout_ms)
        self.loop = loop
        self.started_at = loop.now
        self.done = False
        self._on_complete = on_complete
        self._timer = loop.call_later(timeout_ms, self._timeout)
        self._cleanup: List[Callable[[], None]] = []

    def add_cleanup(self, fn: Callable[[], None]) -> None:
        self._cleanup.append(fn)

    @property
    def elapsed_ms(self) -> float:
        return self.loop.now - self.started_at

    def _timeout(self) -> None:
        self.fail(ProbeTimeout(f"probe exceeded deadline after {self.elapsed_ms:.0f} ms"))

    def finish(self, outcome: ProbeOutcome) -> None:
        if self.done:
            return
        self.done = True
        self._timer.cancel()
        for fn in self._cleanup:
            try:
                fn()
            except Exception:
                pass
        self._on_complete(outcome)

    def fail(self, exc: BaseException) -> None:
        self.finish(ProbeOutcome.failure(self.elapsed_ms, exc))


# ---------------------------------------------------------------------------
# DoH
# ---------------------------------------------------------------------------


@dataclass
class DohProbeConfig:
    """Knobs of the DoH probe."""

    method: str = "POST"
    http_versions: Sequence[str] = ("h2", "http/1.1")
    tls_versions: Sequence[str] = ("1.3", "1.2")
    timeout_ms: float = DEFAULT_TIMEOUT_MS
    reuse_connections: bool = False
    session_cache: Optional[SessionCache] = None
    enable_early_data: bool = False
    #: Probability a 0-RTT attempt is rejected by the server's anti-replay
    #: filter (drawn from the probe's own RNG; see TlsClientConfig).
    early_data_reject_p: float = 0.0
    #: Certificate-validation cost charged to full (non-resumed) handshakes.
    cert_verify_ms: float = 0.0
    doh_path: str = "/dns-query"

    def __post_init__(self) -> None:
        _validate_timeout_ms(self.timeout_ms)
        if self.method not in ("POST", "GET"):
            raise CampaignConfigError(f"DoH method must be POST or GET, got {self.method!r}")


class DohProbe:
    """DoH measurement client bound to one vantage host and one resolver."""

    def __init__(
        self,
        host: Host,
        service_ip: str,
        server_name: str,
        config: Optional[DohProbeConfig] = None,
        rng: Optional[random.Random] = None,
        recorder: Optional[SpanRecorder] = None,
    ) -> None:
        self.host = host
        self.service_ip = service_ip
        self.server_name = server_name
        self.config = config or DohProbeConfig()
        self.rng = rng if rng is not None else random.Random(0)
        self.recorder = recorder
        self._live_tls: Optional[TlsClientConnection] = None
        self._live_h2: Optional[H2ClientSession] = None
        self._live_h1_parser: Optional[H1ResponseParser] = None
        self._h1_waiters: List[Callable] = []

    @property
    def _loop(self):
        assert self.host.network is not None
        return self.host.network.loop

    # -- public API -----------------------------------------------------------

    def query(
        self,
        domain: str,
        on_complete: OutcomeCallback,
        qtype: int = TYPE_A,
        span_parent: Optional[int] = None,
    ) -> None:
        """Measure one DoH query's end-to-end response time."""
        clock = PhaseClock(
            self._loop,
            self.recorder if self.recorder is not None else get_recorder(),
            parent_id=span_parent,
            transport="doh",
            server=self.server_name,
            domain=domain,
        )
        shot = _OneShot(
            self._loop, self.config.timeout_ms, _finalize_phases(clock, on_complete)
        )
        query = make_query(domain, qtype, msg_id=0, rng=self.rng)
        dns_wire = query.to_wire()
        reused = self.config.reuse_connections and self._live_tls is not None
        if reused:
            try:
                self._send_on_live(shot, dns_wire, reused=True, clock=clock)
            except Exception:
                # The kept-alive connection died underneath us (server FIN /
                # idle teardown): fall back to a fresh establishment.
                self.close()
                self._establish_then_send(shot, dns_wire, clock)
        else:
            self._establish_then_send(shot, dns_wire, clock)

    def close(self) -> None:
        """Drop any kept-alive connection."""
        if self._live_tls is not None:
            self._live_tls.close()
        self._live_tls = None
        self._live_h2 = None
        self._live_h1_parser = None

    # -- connection management ---------------------------------------------------

    def _establish_then_send(
        self, shot: _OneShot, dns_wire: bytes, clock: PhaseClock
    ) -> None:
        tls_config = TlsClientConfig(
            versions=tuple(self.config.tls_versions),
            alpn=tuple(self.config.http_versions),
            session_cache=self.config.session_cache,
            enable_early_data=self.config.enable_early_data,
            early_data_reject_p=self.config.early_data_reject_p,
            early_data_rng=self.rng,
            cert_verify_ms=self.config.cert_verify_ms,
        )

        def on_tls_established(tls: TlsClientConnection) -> None:
            if self.config.reuse_connections:
                self._live_tls = tls
            self._setup_http(tls)
            self._send_on_tls(shot, tls, dns_wire, reused=False, clock=clock)

        def on_tcp_established(conn: SimTcpConnection) -> None:
            if shot.done:
                conn.close()
                return
            clock.enter("tls_handshake")
            tls = TlsClientConnection(
                conn,
                self.server_name,
                tls_config,
                on_established=on_tls_established,
                on_error=shot.fail,
            )
            if not self.config.reuse_connections:
                shot.add_cleanup(tls.close)

        # The TCP connect deadline sits just inside the probe deadline so a
        # never-answered SYN classifies as a connection-establishment
        # failure rather than a generic probe timeout.
        clock.enter("tcp_connect")
        SimTcpConnection.connect(
            self.host,
            self.service_ip,
            443,
            on_tcp_established,
            on_error=shot.fail,
            timeout_ms=max(1.0, self.config.timeout_ms - 1.0),
        )

    def _setup_http(self, tls: TlsClientConnection) -> None:
        if tls.negotiated_alpn == "h2" or (
            tls.negotiated_alpn is None and "h2" in self.config.http_versions
        ):
            session = H2ClientSession(send=tls.send_application, authority=self.server_name)
            tls.on_application_data = session.feed
            if self.config.reuse_connections:
                self._live_h2 = session
            tls._h2_session = session  # type: ignore[attr-defined]
        else:
            parser = H1ResponseParser()
            if self.config.reuse_connections:
                self._live_h1_parser = parser
            tls._h1_parser = parser  # type: ignore[attr-defined]

    def _send_on_live(
        self, shot: _OneShot, dns_wire: bytes, reused: bool, clock: PhaseClock
    ) -> None:
        tls = self._live_tls
        assert tls is not None
        self._send_on_tls(shot, tls, dns_wire, reused=reused, clock=clock)

    def _send_on_tls(
        self,
        shot: _OneShot,
        tls: TlsClientConnection,
        dns_wire: bytes,
        reused: bool,
        clock: PhaseClock,
    ) -> None:
        clock.enter("http_exchange")
        request = encode_doh_request(
            dns_wire, method=self.config.method, path=self.config.doh_path
        )

        def on_http_response(response) -> None:
            self._finish_from_http(shot, tls, response, reused, clock)

        h2_session = getattr(tls, "_h2_session", None)
        if h2_session is not None:
            try:
                h2_session.request(request, on_http_response)
            except Exception as exc:
                shot.fail(exc)
            return
        # HTTP/1.1 path.
        parser = getattr(tls, "_h1_parser", None)
        if parser is None:
            parser = H1ResponseParser()
            tls._h1_parser = parser  # type: ignore[attr-defined]

        def on_app_data(data: bytes) -> None:
            try:
                responses = parser.feed(data)
            except Exception as exc:
                shot.fail(exc)
                return
            for response in responses:
                on_http_response(response)
                break

        tls.on_application_data = on_app_data
        tls.send_application(encode_request(request, host=self.server_name))

    def _finish_from_http(
        self,
        shot: _OneShot,
        tls: TlsClientConnection,
        response,
        reused: bool,
        clock: PhaseClock,
    ) -> None:
        if shot.done:
            return
        if response.status != 200:
            outcome = ProbeOutcome.failure(
                shot.elapsed_ms, HttpStatusError(response.status)
            )
            outcome.http_status = response.status
            outcome.http_version = "h2" if tls.negotiated_alpn == "h2" else "http/1.1"
            outcome.tls_version = tls.negotiated_version
            outcome.session_state = _session_state(
                reused, tls.used_early_data, tls.resumed
            )
            shot.finish(outcome)
            return
        clock.enter("dns_parse")
        try:
            dns_wire = decode_doh_response(response)
            message = Message.from_wire(dns_wire)
        except (DohCodecError, DnsWireError) as exc:
            shot.fail(exc)
            return
        success = message.rcode == RCODE_NOERROR
        outcome = ProbeOutcome(
            duration_ms=shot.elapsed_ms,
            success=success,
            error_class=None if success else ErrorClass.DNS_RCODE,
            error_detail=None if success else f"rcode={message.rcode}",
            rcode=message.rcode,
            http_status=response.status,
            http_version="h2" if tls.negotiated_alpn == "h2" else "http/1.1",
            tls_version=tls.negotiated_version,
            response_size=len(response.body),
            connection_reused=reused,
            answers=message.answer_addresses(),
            response_wire=dns_wire,
            session_state=_session_state(reused, tls.used_early_data, tls.resumed),
        )
        shot.finish(outcome)


# ---------------------------------------------------------------------------
# DoT
# ---------------------------------------------------------------------------


@dataclass
class DotProbeConfig:
    """Knobs of the DoT probe."""

    tls_versions: Sequence[str] = ("1.3", "1.2")
    timeout_ms: float = DEFAULT_TIMEOUT_MS
    reuse_connections: bool = False
    session_cache: Optional[SessionCache] = None
    enable_early_data: bool = False
    early_data_reject_p: float = 0.0
    cert_verify_ms: float = 0.0

    def __post_init__(self) -> None:
        _validate_timeout_ms(self.timeout_ms)


class DotProbe:
    """DNS-over-TLS probe (RFC 7858 length-prefixed framing on port 853)."""

    def __init__(
        self,
        host: Host,
        service_ip: str,
        server_name: str,
        config: Optional[DotProbeConfig] = None,
        rng: Optional[random.Random] = None,
        recorder: Optional[SpanRecorder] = None,
    ) -> None:
        self.host = host
        self.service_ip = service_ip
        self.server_name = server_name
        self.config = config or DotProbeConfig()
        self.rng = rng if rng is not None else random.Random(0)
        self.recorder = recorder
        self._live_tls: Optional[TlsClientConnection] = None

    @property
    def _loop(self):
        assert self.host.network is not None
        return self.host.network.loop

    def query(
        self,
        domain: str,
        on_complete: OutcomeCallback,
        qtype: int = TYPE_A,
        span_parent: Optional[int] = None,
    ) -> None:
        clock = PhaseClock(
            self._loop,
            self.recorder if self.recorder is not None else get_recorder(),
            parent_id=span_parent,
            transport="dot",
            server=self.server_name,
            domain=domain,
        )
        shot = _OneShot(
            self._loop, self.config.timeout_ms, _finalize_phases(clock, on_complete)
        )
        query = make_query(domain, qtype, rng=self.rng)
        framed = _LengthPrefixedStream.frame(query.to_wire())
        if self.config.reuse_connections and self._live_tls is not None:
            self._exchange(shot, self._live_tls, framed, query, reused=True, clock=clock)
            return

        tls_config = TlsClientConfig(
            versions=tuple(self.config.tls_versions),
            alpn=("dot",),
            session_cache=self.config.session_cache,
            enable_early_data=self.config.enable_early_data,
            early_data_reject_p=self.config.early_data_reject_p,
            early_data_rng=self.rng,
            cert_verify_ms=self.config.cert_verify_ms,
        )

        def on_tls(tls: TlsClientConnection) -> None:
            if self.config.reuse_connections:
                self._live_tls = tls
            else:
                shot.add_cleanup(tls.close)
            self._exchange(shot, tls, framed, query, reused=False, clock=clock)

        def on_tcp(conn: SimTcpConnection) -> None:
            if shot.done:
                conn.close()
                return
            clock.enter("tls_handshake")
            TlsClientConnection(
                conn, self.server_name, tls_config, on_established=on_tls, on_error=shot.fail
            )

        clock.enter("tcp_connect")
        SimTcpConnection.connect(
            self.host, self.service_ip, 853, on_tcp, on_error=shot.fail,
            timeout_ms=max(1.0, self.config.timeout_ms - 1.0),
        )

    def _exchange(
        self,
        shot: _OneShot,
        tls: TlsClientConnection,
        framed: bytes,
        query: Message,
        reused: bool,
        clock: PhaseClock,
    ) -> None:
        clock.enter("dns_exchange")
        stream = _LengthPrefixedStream()

        def on_app_data(data: bytes) -> None:
            for wire in stream.feed(data):
                clock.enter("dns_parse")
                try:
                    message = Message.from_wire(wire)
                except DnsWireError as exc:
                    shot.fail(exc)
                    return
                if message.header.msg_id != query.header.msg_id:
                    clock.enter("dns_exchange")
                    continue
                success = message.rcode == RCODE_NOERROR
                shot.finish(
                    ProbeOutcome(
                        duration_ms=shot.elapsed_ms,
                        success=success,
                        error_class=None if success else ErrorClass.DNS_RCODE,
                        rcode=message.rcode,
                        tls_version=tls.negotiated_version,
                        response_size=len(wire),
                        connection_reused=reused,
                        answers=message.answer_addresses(),
                        response_wire=wire,
                        session_state=_session_state(
                            reused, tls.used_early_data, tls.resumed
                        ),
                    )
                )
                return

        def on_close() -> None:
            # Peer FIN while we still await the response: a half-delivered
            # frame is a mid-stream truncation (named FramingError), a
            # clean boundary is an ordinary reset.
            if shot.done:
                return
            try:
                stream.finish()
            except FramingError as exc:
                shot.fail(exc)
            else:
                shot.fail(
                    ConnectionReset("server closed the DoT stream before responding")
                )

        tls.on_application_data = on_app_data
        tls.on_close = on_close
        tls.send_application(framed)

    def close(self) -> None:
        if self._live_tls is not None:
            self._live_tls.close()
            self._live_tls = None


# ---------------------------------------------------------------------------
# Do53
# ---------------------------------------------------------------------------


@dataclass
class Do53ProbeConfig:
    timeout_ms: float = DEFAULT_TIMEOUT_MS
    retries: int = 1
    retry_interval_ms: float = 2000.0
    #: Retry over TCP when a response arrives with the TC bit set.
    tcp_fallback: bool = True

    def __post_init__(self) -> None:
        _validate_timeout_ms(self.timeout_ms)
        if not isinstance(self.retries, int) or self.retries < 0:
            raise CampaignConfigError(
                f"retries must be a non-negative integer, got {self.retries!r}"
            )
        if self.retry_interval_ms <= 0:
            raise CampaignConfigError(
                f"retry_interval_ms must be positive, got {self.retry_interval_ms!r}"
            )


class Do53Probe:
    """Classic unencrypted DNS over UDP (the baseline transport)."""

    def __init__(
        self,
        host: Host,
        service_ip: str,
        config: Optional[Do53ProbeConfig] = None,
        rng: Optional[random.Random] = None,
        recorder: Optional[SpanRecorder] = None,
    ) -> None:
        self.host = host
        self.service_ip = service_ip
        self.config = config or Do53ProbeConfig()
        self.rng = rng if rng is not None else random.Random(0)
        self.recorder = recorder

    @property
    def _loop(self):
        assert self.host.network is not None
        return self.host.network.loop

    def query(
        self,
        domain: str,
        on_complete: OutcomeCallback,
        qtype: int = TYPE_A,
        span_parent: Optional[int] = None,
    ) -> None:
        clock = PhaseClock(
            self._loop,
            self.recorder if self.recorder is not None else get_recorder(),
            parent_id=span_parent,
            transport="do53",
            server=self.service_ip,
            domain=domain,
        )
        shot = _OneShot(
            self._loop, self.config.timeout_ms, _finalize_phases(clock, on_complete)
        )
        query = make_query(domain, qtype, rng=self.rng)
        wire = query.to_wire()
        socket = SimUdpSocket(self.host)
        shot.add_cleanup(socket.close)

        def finish_with(message: Message, response_wire: bytes, via_tcp: bool) -> None:
            success = message.rcode == RCODE_NOERROR
            detail = None
            if via_tcp:
                detail = "via-tcp"
            elif message.header.tc:
                detail = "truncated"  # fallback disabled: partial answer
            shot.finish(
                ProbeOutcome(
                    duration_ms=shot.elapsed_ms,
                    success=success,
                    error_class=None if success else ErrorClass.DNS_RCODE,
                    rcode=message.rcode,
                    response_size=len(response_wire),
                    connection_reused=False,
                    answers=message.answer_addresses(),
                    error_detail=detail,
                    response_wire=response_wire,
                )
            )

        def fallback_to_tcp() -> None:
            framed = _LengthPrefixedStream.frame(wire)
            stream = _LengthPrefixedStream()

            def on_established(conn: SimTcpConnection) -> None:
                shot.add_cleanup(conn.close)
                clock.enter("dns_exchange")

                def on_data(data: bytes) -> None:
                    for response_wire in stream.feed(data):
                        clock.enter("dns_parse")
                        try:
                            message = Message.from_wire(response_wire)
                        except DnsWireError as exc:
                            shot.fail(exc)
                            return
                        if message.header.msg_id != query.header.msg_id:
                            clock.enter("dns_exchange")
                            continue
                        finish_with(message, response_wire, via_tcp=True)
                        return

                conn.on_data = on_data
                conn.send(framed)

            clock.enter("tcp_connect")
            SimTcpConnection.connect(
                self.host, self.service_ip, 53, on_established,
                on_error=shot.fail,
                timeout_ms=max(1.0, self.config.timeout_ms - shot.elapsed_ms - 1.0),
            )

        def on_datagram(dgram: Datagram) -> None:
            clock.enter("dns_parse")
            try:
                message = Message.from_wire(dgram.payload)
            except DnsWireError as exc:
                shot.fail(exc)
                return
            if message.header.msg_id != query.header.msg_id:
                clock.enter("dns_exchange")
                return
            if message.header.tc and self.config.tcp_fallback:
                # Truncated: the answer didn't fit the UDP payload budget;
                # retry the same question over TCP (RFC 1035 §4.2.1).
                socket.close()
                fallback_to_tcp()
                return
            finish_with(message, dgram.payload, via_tcp=False)

        socket.on_datagram = on_datagram
        clock.enter("dns_exchange")

        def attempt(remaining: int) -> None:
            if shot.done:
                return
            socket.sendto(wire, self.service_ip, 53)
            if remaining > 0:
                self._loop.call_later(self.config.retry_interval_ms, attempt, remaining - 1)

        attempt(self.config.retries)

    def close(self) -> None:
        """No kept state for UDP probes; present for probe-API symmetry."""


# ---------------------------------------------------------------------------
# DoQ
# ---------------------------------------------------------------------------


@dataclass
class DoqProbeConfig:
    """Knobs of the DNS-over-QUIC probe."""

    timeout_ms: float = DEFAULT_TIMEOUT_MS
    reuse_connections: bool = False
    session_cache: Optional[SessionCache] = None
    enable_early_data: bool = True
    early_data_reject_p: float = 0.0
    cert_verify_ms: float = 0.0

    def __post_init__(self) -> None:
        _validate_timeout_ms(self.timeout_ms)


class DoqProbe:
    """DNS over QUIC (RFC 9250): one query per bidirectional stream.

    A fresh DoQ query costs ~2 x RTT (QUIC's combined handshake is one
    round trip); a 0-RTT resumed query ~1 x RTT; a reused connection
    ~1 x RTT per query.
    """

    def __init__(
        self,
        host: Host,
        service_ip: str,
        server_name: str,
        config: Optional[DoqProbeConfig] = None,
        rng: Optional[random.Random] = None,
        recorder: Optional[SpanRecorder] = None,
    ) -> None:
        self.host = host
        self.service_ip = service_ip
        self.server_name = server_name
        self.config = config or DoqProbeConfig()
        self.rng = rng if rng is not None else random.Random(0)
        self.recorder = recorder
        self._live_conn = None

    @property
    def _loop(self):
        assert self.host.network is not None
        return self.host.network.loop

    def query(
        self,
        domain: str,
        on_complete: OutcomeCallback,
        qtype: int = TYPE_A,
        span_parent: Optional[int] = None,
    ) -> None:
        from repro.quicsim.connection import QuicClientConnection, QuicConfig

        clock = PhaseClock(
            self._loop,
            self.recorder if self.recorder is not None else get_recorder(),
            parent_id=span_parent,
            transport="doq",
            server=self.server_name,
            domain=domain,
        )
        shot = _OneShot(
            self._loop, self.config.timeout_ms, _finalize_phases(clock, on_complete)
        )
        # RFC 9250 recommends msg_id = 0 on DoQ, like DoH.
        query = make_query(domain, qtype, msg_id=0, rng=self.rng)
        framed = _LengthPrefixedStream.frame(query.to_wire())

        live = self._live_conn if self.config.reuse_connections else None
        # Decide reuse up front: by response time the fresh connection has
        # already been stored in _live_conn, so testing it then would
        # misreport a first query on a kept-alive probe as "warm".
        reused = live is not None and not live.closed

        def on_response_bytes(conn, data: bytes) -> None:
            if shot.done:
                return
            clock.enter("dns_parse")
            messages = _LengthPrefixedStream().feed(data)
            if not messages:
                shot.fail(ProbeTimeout("empty DoQ response stream"))
                return
            try:
                message = Message.from_wire(messages[0])
            except DnsWireError as exc:
                shot.fail(exc)
                return
            success = message.rcode == RCODE_NOERROR
            shot.finish(
                ProbeOutcome(
                    duration_ms=shot.elapsed_ms,
                    success=success,
                    error_class=None if success else ErrorClass.DNS_RCODE,
                    rcode=message.rcode,
                    tls_version="quic",
                    response_size=len(messages[0]),
                    connection_reused=reused,
                    answers=message.answer_addresses(),
                    response_wire=messages[0],
                    session_state=_session_state(
                        reused, conn.used_early_data, conn.resumed
                    ),
                )
            )

        if reused:
            clock.enter("dns_exchange")
            live.open_stream(framed, lambda data: on_response_bytes(live, data))
            return

        quic_config = QuicConfig(
            session_cache=self.config.session_cache,
            enable_early_data=self.config.enable_early_data,
            early_data_reject_p=self.config.early_data_reject_p,
            early_data_rng=self.rng,
            cert_verify_ms=self.config.cert_verify_ms,
            connect_timeout_ms=max(1.0, self.config.timeout_ms - 1.0),
        )

        def on_quic_established(_conn) -> None:
            clock.enter("dns_exchange")

        clock.enter("quic_handshake")
        conn = QuicClientConnection(
            self.host, self.service_ip, 853, self.server_name,
            config=quic_config, on_error=shot.fail,
            on_established=on_quic_established,
        )
        if self.config.reuse_connections:
            self._live_conn = conn
        else:
            shot.add_cleanup(conn.close)
        conn.open_stream(framed, lambda data: on_response_bytes(conn, data))

    def close(self) -> None:
        if self._live_conn is not None:
            self._live_conn.close()
            self._live_conn = None


# ---------------------------------------------------------------------------
# DoH3
# ---------------------------------------------------------------------------


@dataclass
class Doh3ProbeConfig:
    """Knobs of the DNS-over-HTTP/3 probe."""

    method: str = "POST"
    timeout_ms: float = DEFAULT_TIMEOUT_MS
    reuse_connections: bool = False
    session_cache: Optional[SessionCache] = None
    enable_early_data: bool = True
    early_data_reject_p: float = 0.0
    cert_verify_ms: float = 0.0
    doh_path: str = "/dns-query"

    def __post_init__(self) -> None:
        _validate_timeout_ms(self.timeout_ms)
        if self.method not in ("POST", "GET"):
            raise CampaignConfigError(
                f"DoH3 method must be POST or GET, got {self.method!r}"
            )


class Doh3Probe:
    """DoH over HTTP/3: DoH semantics on a QUIC transport (UDP 443).

    Each query is one HTTP/3 exchange on its own QUIC stream, so the
    latency profile matches DoQ (combined 1-RTT handshake, 0-RTT when
    resumed) with DoH's HTTP framing and status codes on top.
    """

    def __init__(
        self,
        host: Host,
        service_ip: str,
        server_name: str,
        config: Optional[Doh3ProbeConfig] = None,
        rng: Optional[random.Random] = None,
        recorder: Optional[SpanRecorder] = None,
    ) -> None:
        self.host = host
        self.service_ip = service_ip
        self.server_name = server_name
        self.config = config or Doh3ProbeConfig()
        self.rng = rng if rng is not None else random.Random(0)
        self.recorder = recorder
        self._live_conn = None

    @property
    def _loop(self):
        assert self.host.network is not None
        return self.host.network.loop

    def query(
        self,
        domain: str,
        on_complete: OutcomeCallback,
        qtype: int = TYPE_A,
        span_parent: Optional[int] = None,
    ) -> None:
        from repro.httpsim.h3 import (
            H3CodecError,
            decode_h3_response,
            encode_h3_request,
        )
        from repro.quicsim.connection import QuicClientConnection, QuicConfig

        clock = PhaseClock(
            self._loop,
            self.recorder if self.recorder is not None else get_recorder(),
            parent_id=span_parent,
            transport="doh3",
            server=self.server_name,
            domain=domain,
        )
        shot = _OneShot(
            self._loop, self.config.timeout_ms, _finalize_phases(clock, on_complete)
        )
        query = make_query(domain, qtype, msg_id=0, rng=self.rng)
        request = encode_doh_request(
            query.to_wire(), method=self.config.method, path=self.config.doh_path
        )
        stream_wire = encode_h3_request(request, host=self.server_name)

        live = self._live_conn if self.config.reuse_connections else None
        reused = live is not None and not live.closed

        def on_response_bytes(conn, data: bytes) -> None:
            if shot.done:
                return
            clock.enter("dns_parse")
            state = _session_state(reused, conn.used_early_data, conn.resumed)
            try:
                response = decode_h3_response(data)
            except H3CodecError as exc:
                shot.fail(exc)
                return
            if response.status != 200:
                outcome = ProbeOutcome.failure(
                    shot.elapsed_ms, HttpStatusError(response.status)
                )
                outcome.http_status = response.status
                outcome.http_version = "h3"
                outcome.tls_version = "quic"
                outcome.session_state = state
                shot.finish(outcome)
                return
            try:
                dns_wire = decode_doh_response(response)
                message = Message.from_wire(dns_wire)
            except (DohCodecError, DnsWireError) as exc:
                shot.fail(exc)
                return
            success = message.rcode == RCODE_NOERROR
            shot.finish(
                ProbeOutcome(
                    duration_ms=shot.elapsed_ms,
                    success=success,
                    error_class=None if success else ErrorClass.DNS_RCODE,
                    error_detail=None if success else f"rcode={message.rcode}",
                    rcode=message.rcode,
                    http_status=response.status,
                    http_version="h3",
                    tls_version="quic",
                    response_size=len(response.body),
                    connection_reused=reused,
                    answers=message.answer_addresses(),
                    response_wire=dns_wire,
                    session_state=state,
                )
            )

        if reused:
            clock.enter("http_exchange")
            live.open_stream(stream_wire, lambda data: on_response_bytes(live, data))
            return

        quic_config = QuicConfig(
            session_cache=self.config.session_cache,
            enable_early_data=self.config.enable_early_data,
            early_data_reject_p=self.config.early_data_reject_p,
            early_data_rng=self.rng,
            cert_verify_ms=self.config.cert_verify_ms,
            connect_timeout_ms=max(1.0, self.config.timeout_ms - 1.0),
        )

        def on_quic_established(_conn) -> None:
            clock.enter("http_exchange")

        clock.enter("quic_handshake")
        conn = QuicClientConnection(
            self.host, self.service_ip, 443, self.server_name,
            config=quic_config, on_error=shot.fail,
            on_established=on_quic_established,
        )
        if self.config.reuse_connections:
            self._live_conn = conn
        else:
            shot.add_cleanup(conn.close)
        conn.open_stream(stream_wire, lambda data: on_response_bytes(conn, data))

    def close(self) -> None:
        if self._live_conn is not None:
            self._live_conn.close()
            self._live_conn = None


# ---------------------------------------------------------------------------
# Ping
# ---------------------------------------------------------------------------


class PingProbe:
    """ICMP echo probe pairing each DNS measurement with a latency sample."""

    def __init__(self, host: Host, target_ip: str, timeout_ms: float = 3000.0) -> None:
        _validate_timeout_ms(timeout_ms)
        self.host = host
        self.target_ip = target_ip
        self.timeout_ms = timeout_ms

    def send(self, on_complete: OutcomeCallback) -> None:
        def on_result(result: PingResult) -> None:
            if result.responded:
                on_complete(
                    ProbeOutcome(duration_ms=result.rtt_ms, success=True)
                )
            else:
                on_complete(
                    ProbeOutcome(
                        duration_ms=None,
                        success=False,
                        error_class=ErrorClass.TIMEOUT,
                        error_detail="no ICMP echo reply",
                    )
                )

        ping(self.host, self.target_ip, on_result, timeout_ms=self.timeout_ms)
