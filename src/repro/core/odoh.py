"""Oblivious DoH measurement probe.

Measures end-to-end ODoH response time: seal the query to the target,
POST it to the oblivious proxy with ``?targethost=&targetpath=``, and open
the sealed response.  Compared with a plain DoH probe against the same
target, the difference isolates the relay's cost — one extra hop each way
plus proxy processing.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional
from urllib.parse import quote

from repro.core.errors_taxonomy import ErrorClass
from repro.core.probes import DEFAULT_TIMEOUT_MS, OutcomeCallback, ProbeOutcome, _OneShot
from repro.dnswire.builder import make_query
from repro.dnswire.message import Message
from repro.dnswire.types import RCODE_NOERROR, TYPE_A
from repro.errors import DnsWireError, HttpStatusError
from repro.httpsim.h1 import HttpRequest
from repro.httpsim.h2 import H2ClientSession
from repro.httpsim.odoh_codec import (
    CONTENT_TYPE_ODOH,
    OdohCodecError,
    open_response,
    seal_query,
)
from repro.netsim.host import Host
from repro.netsim.sockets import SimTcpConnection
from repro.resolver.odoh_proxy import PROXY_PATH
from repro.tlssim.handshake import TlsClientConfig, TlsClientConnection


@dataclass
class OdohProbeConfig:
    """Knobs of the ODoH probe."""

    timeout_ms: float = DEFAULT_TIMEOUT_MS
    target_path: str = "/dns-query"
    key_id: int = 7  # the target key generation the client believes in


class OdohProbe:
    """Measures one target through one oblivious proxy."""

    def __init__(
        self,
        host: Host,
        proxy_ip: str,
        proxy_name: str,
        target_hostname: str,
        config: Optional[OdohProbeConfig] = None,
        rng: Optional[random.Random] = None,
    ) -> None:
        self.host = host
        self.proxy_ip = proxy_ip
        self.proxy_name = proxy_name
        self.target_hostname = target_hostname
        self.config = config or OdohProbeConfig()
        self.rng = rng if rng is not None else random.Random(0)

    @property
    def _loop(self):
        assert self.host.network is not None
        return self.host.network.loop

    def query(self, domain: str, on_complete: OutcomeCallback, qtype: int = TYPE_A) -> None:
        shot = _OneShot(self._loop, self.config.timeout_ms, on_complete)
        dns_wire = make_query(domain, qtype, msg_id=0, rng=self.rng).to_wire()
        sealed = seal_query(dns_wire, self.config.key_id)
        path = (
            f"{PROXY_PATH}?targethost={quote(self.target_hostname)}"
            f"&targetpath={quote(self.config.target_path, safe='')}"
        )
        request = HttpRequest(
            method="POST",
            path=path,
            headers={"Content-Type": CONTENT_TYPE_ODOH},
            body=sealed,
        )

        def on_http_response(response) -> None:
            if shot.done:
                return
            if response.status != 200:
                outcome = ProbeOutcome.failure(shot.elapsed_ms, HttpStatusError(response.status))
                outcome.http_status = response.status
                shot.finish(outcome)
                return
            try:
                response_wire = open_response(response.body, self.config.key_id)
                message = Message.from_wire(response_wire)
            except (OdohCodecError, DnsWireError) as exc:
                shot.fail(exc)
                return
            success = message.rcode == RCODE_NOERROR
            shot.finish(
                ProbeOutcome(
                    duration_ms=shot.elapsed_ms,
                    success=success,
                    error_class=None if success else ErrorClass.DNS_RCODE,
                    rcode=message.rcode,
                    http_status=response.status,
                    http_version="h2",
                    response_size=len(response.body),
                    answers=message.answer_addresses(),
                )
            )

        def on_tls(tls: TlsClientConnection) -> None:
            session = H2ClientSession(send=tls.send_application, authority=self.proxy_name)
            tls.on_application_data = session.feed
            shot.add_cleanup(tls.close)
            session.request(request, on_http_response)

        def on_tcp(conn: SimTcpConnection) -> None:
            if shot.done:
                conn.close()
                return
            TlsClientConnection(
                conn, self.proxy_name,
                TlsClientConfig(alpn=("h2",)),
                on_established=on_tls,
                on_error=shot.fail,
            )

        SimTcpConnection.connect(
            self.host, self.proxy_ip, 443, on_tcp,
            on_error=shot.fail,
            timeout_ms=max(1.0, self.config.timeout_ms - 1.0),
        )
