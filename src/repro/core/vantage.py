"""Vantage points: where measurements run from.

The study used two kinds of vantage points, with visibly different
measurement characteristics:

* **EC2 instances** (Ohio / Frankfurt / Seoul): data-centre connectivity —
  near-zero access delay, tiny jitter;
* **home network devices** (Raspberry Pis in Chicago apartments): consumer
  broadband — several milliseconds of access delay, heavier jitter, and
  occasional loss.

A :class:`VantagePoint` pairs an attached simulated host with its profile
metadata; the factory helpers build hosts with the right access profiles.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.geo.regions import City
from repro.netsim.host import Host
from repro.netsim.latency import DATACENTER, HOME_BROADBAND, AccessProfile
from repro.netsim.network import Network


@dataclass
class VantagePoint:
    """One measurement origin."""

    name: str
    kind: str  # "ec2" | "home"
    host: Host
    city: City

    @property
    def region_label(self) -> str:
        return f"{self.city.name} ({self.kind})"


def make_ec2_vantage(network: Network, name: str, ip: str, city: City) -> VantagePoint:
    """Attach an EC2-profile vantage point in ``city``."""
    host = network.attach(
        Host(
            name=f"vantage-{name}",
            ip=ip,
            coords=city.coords,
            continent=city.continent,
            access=DATACENTER,
        )
    )
    return VantagePoint(name=name, kind="ec2", host=host, city=city)


def make_home_vantage(
    network: Network,
    name: str,
    ip: str,
    city: City,
    access: AccessProfile = HOME_BROADBAND,
) -> VantagePoint:
    """Attach a home-broadband vantage point in ``city``."""
    host = network.attach(
        Host(
            name=f"vantage-{name}",
            ip=ip,
            coords=city.coords,
            continent=city.continent,
            access=access,
        )
    )
    return VantagePoint(name=name, kind="home", host=host, city=city)
