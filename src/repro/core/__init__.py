"""The encrypted-DNS measurement platform — the paper's open-source tool.

This package is the reproduction's primary contribution: a continuous
measurement platform (in the spirit of the Netrics test the paper added)
that probes a list of encrypted DNS resolvers from one or more vantage
points, recording per-query response times, per-resolver ICMP latency,
and a classified error for every failure, then writing results as JSON.

* :mod:`repro.core.vantage` — vantage-point profiles (EC2 / home network);
* :mod:`repro.core.probes` — DoH, DoT, Do53 and ping probes;
* :mod:`repro.core.results` — measurement records and the JSONL store;
* :mod:`repro.core.errors_taxonomy` — error classification;
* :mod:`repro.core.scheduler` — periodic rounds on the virtual clock;
* :mod:`repro.core.runner` — campaign orchestration (vantage × resolver
  × domain sweeps).
"""

from repro.core.vantage import VantagePoint, make_ec2_vantage, make_home_vantage
from repro.core.errors_taxonomy import ErrorClass, classify_error
from repro.core.results import MeasurementRecord, ResultStore
from repro.core.probes import (
    Do53Probe,
    DohProbe,
    DohProbeConfig,
    DotProbe,
    PingProbe,
    ProbeOutcome,
)
from repro.core.scheduler import PeriodicSchedule
from repro.core.runner import Campaign, CampaignConfig, ResolverTarget

__all__ = [
    "Campaign",
    "CampaignConfig",
    "Do53Probe",
    "DohProbe",
    "DohProbeConfig",
    "DotProbe",
    "ErrorClass",
    "MeasurementRecord",
    "PeriodicSchedule",
    "PingProbe",
    "ProbeOutcome",
    "ResolverTarget",
    "ResultStore",
    "VantagePoint",
    "classify_error",
    "make_ec2_vantage",
    "make_home_vantage",
]
