"""Config-driven measurement service (the Netrics integration shape).

The paper's tool ran inside Netrics: operators describe measurement tests
declaratively and the platform schedules them and writes JSON results.
This module gives the library the same operational surface: a JSON/dict
test specification that selects vantage points, resolvers (by name, by
region, by mainstream tier, or all), transport, domains and schedule —
plus a loader that turns a spec into a runnable campaign.

Example spec::

    {
      "name": "nightly-eu-check",
      "vantages": ["ec2-frankfurt"],
      "resolvers": {"region": "EU"},
      "transport": "doh",
      "domains": ["google.com", "wikipedia.com"],
      "rounds": 4,
      "interval_hours": 6,
      "stagger_minutes": 5,
      "seed": 7
    }
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Sequence, Union

from repro.core.probes import DohProbeConfig
from repro.core.results import ResultStore
from repro.core.runner import Campaign, CampaignConfig, ResolverTarget
from repro.core.scheduler import MS_PER_HOUR, PeriodicSchedule
from repro.errors import CampaignConfigError

_ALLOWED_KEYS = {
    "name", "vantages", "resolvers", "transport", "domains", "rounds",
    "interval_hours", "stagger_minutes", "seed", "ping", "method",
    "timeout_ms", "reuse_connections",
}


def parse_spec(spec: Mapping[str, Any]) -> Dict[str, Any]:
    """Validate a raw spec mapping; returns a normalized dict.

    Raises :class:`CampaignConfigError` on unknown keys or bad values so
    configuration typos fail loudly rather than silently measuring the
    wrong thing.
    """
    unknown = set(spec) - _ALLOWED_KEYS
    if unknown:
        raise CampaignConfigError(f"unknown spec keys: {sorted(unknown)}")
    if "name" not in spec or not str(spec["name"]).strip():
        raise CampaignConfigError("spec needs a non-empty 'name'")
    normalized: Dict[str, Any] = {
        "name": str(spec["name"]),
        "vantages": list(spec.get("vantages", ["ec2-ohio"])),
        "resolvers": spec.get("resolvers", "all"),
        "transport": str(spec.get("transport", "doh")),
        "domains": list(spec.get("domains", ["google.com", "amazon.com", "wikipedia.com"])),
        "rounds": int(spec.get("rounds", 3)),
        "interval_hours": float(spec.get("interval_hours", 8.0)),
        "stagger_minutes": float(spec.get("stagger_minutes", 5.0)),
        "seed": int(spec.get("seed", 0)),
        "ping": bool(spec.get("ping", True)),
        "method": str(spec.get("method", "POST")),
        "timeout_ms": float(spec.get("timeout_ms", 5000.0)),
        "reuse_connections": bool(spec.get("reuse_connections", False)),
    }
    if normalized["rounds"] <= 0:
        raise CampaignConfigError("rounds must be positive")
    if not normalized["vantages"]:
        raise CampaignConfigError("spec needs at least one vantage")
    if normalized["method"] not in ("POST", "GET"):
        raise CampaignConfigError(f"unknown method {normalized['method']!r}")
    return normalized


def load_spec(path: Union[str, Path]) -> Dict[str, Any]:
    """Read and validate a JSON spec file."""
    with Path(path).open("r", encoding="utf-8") as handle:
        raw = json.load(handle)
    if not isinstance(raw, dict):
        raise CampaignConfigError("spec file must contain a JSON object")
    return parse_spec(raw)


def select_targets(world, selector: Any) -> List[ResolverTarget]:
    """Resolve the spec's ``resolvers`` selector against a world.

    Accepts ``"all"``, an explicit hostname list, or a mapping with any of
    ``region`` (continent code), ``mainstream`` (bool), ``anycast`` (bool).
    """
    if selector == "all" or selector is None:
        return world.targets()
    if isinstance(selector, (list, tuple)):
        targets = world.targets(list(selector))
        missing = set(selector) - {t.hostname for t in targets}
        if missing:
            raise CampaignConfigError(f"unknown resolvers in spec: {sorted(missing)}")
        return targets
    if isinstance(selector, Mapping):
        entries = world.catalog
        if "region" in selector:
            entries = [e for e in entries if e.region == selector["region"]]
        if "mainstream" in selector:
            entries = [e for e in entries if e.mainstream == bool(selector["mainstream"])]
        if "anycast" in selector:
            entries = [e for e in entries if e.anycast == bool(selector["anycast"])]
        if not entries:
            raise CampaignConfigError(f"resolver selector matched nothing: {selector}")
        return world.targets([e.hostname for e in entries])
    raise CampaignConfigError(f"bad resolver selector: {selector!r}")


def build_campaign(world, spec: Mapping[str, Any], store: Optional[ResultStore] = None) -> Campaign:
    """Turn a validated spec into a runnable :class:`Campaign`."""
    normalized = parse_spec(spec)
    schedule = PeriodicSchedule(
        rounds=normalized["rounds"],
        interval_ms=normalized["interval_hours"] * MS_PER_HOUR,
        start_ms=world.network.loop.now,
        stagger_ms=min(
            normalized["stagger_minutes"] * 60_000.0,
            normalized["interval_hours"] * MS_PER_HOUR,
        ),
    )
    config = CampaignConfig(
        name=normalized["name"],
        domains=normalized["domains"],
        schedule=schedule,
        transport=normalized["transport"],
        probe_config=DohProbeConfig(
            method=normalized["method"],
            timeout_ms=normalized["timeout_ms"],
            reuse_connections=normalized["reuse_connections"],
        ),
        ping=normalized["ping"],
        seed=normalized["seed"],
    )
    vantages = [world.vantage(name) for name in normalized["vantages"]]
    targets = select_targets(world, normalized["resolvers"])
    return Campaign(
        network=world.network,
        vantages=vantages,
        targets=targets,
        config=config,
        store=store,
    )


def run_spec(world, spec: Mapping[str, Any]) -> ResultStore:
    """Build and run a campaign from a spec; returns its result store."""
    return build_campaign(world, spec).run()
