"""Campaign orchestration: vantage × resolver × domain measurement sweeps.

A :class:`Campaign` reproduces the paper's measurement procedure.  In each
round, from each vantage point, for each target resolver:

1. issue one DoH query per study domain, measuring end-to-end response
   time (each query on a fresh connection by default, like ``dig``);
2. issue one ICMP ping and record the round-trip latency.

Every outcome — success or classified failure — lands in the
:class:`~repro.core.results.ResultStore` as one record.  A
:class:`RetryPolicy` optionally re-issues failed queries with exponential
backoff; the final record's ``attempts`` field counts the tries.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Dict, FrozenSet, List, Optional, Sequence

from repro.core.errors_taxonomy import CONNECTION_ESTABLISHMENT_CLASSES, ErrorClass
from repro.core.probes import DohProbe, DohProbeConfig, PingProbe, ProbeOutcome
from repro.core.results import MeasurementRecord, ResultStore
from repro.core.scheduler import PeriodicSchedule
from repro.core.seeding import derive_rng
from repro.core.vantage import VantagePoint
from repro.errors import CampaignConfigError
from repro.netsim.network import Network
from repro.obs import (
    MetricsRegistry,
    SpanRecorder,
    get_metrics,
    get_monitor,
    get_recorder,
)
from repro.session import SESSION_TRANSPORTS, SessionBroker, SessionPolicy

#: Transports a campaign can measure (ping rides alongside, not listed).
VALID_TRANSPORTS = ("doh", "dot", "do53", "doq", "doh3")

#: Error classes a retry can plausibly help with: transient network and
#: connection-establishment conditions.  Protocol-level failures (bad
#: rcode, malformed message, HTTP error) repeat deterministically and are
#: not retried by default.
DEFAULT_RETRYABLE_CLASSES: FrozenSet[ErrorClass] = frozenset(
    CONNECTION_ESTABLISHMENT_CLASSES
    | {ErrorClass.CONNECTION_RESET, ErrorClass.TIMEOUT}
)


@dataclass(frozen=True)
class RetryPolicy:
    """Campaign-level retry behaviour for failed DNS queries.

    ``attempts`` is the total number of tries (1 = no retries).  The delay
    before attempt ``n+1`` is ``backoff_base_ms * backoff_factor**(n-1)``
    plus uniform jitter in ``[0, backoff_jitter_ms)`` drawn from the
    campaign's per-measurement RNG, so backoff stays deterministic under a
    fixed seed.
    """

    attempts: int = 1
    backoff_base_ms: float = 250.0
    backoff_factor: float = 2.0
    backoff_jitter_ms: float = 50.0
    retry_on: FrozenSet[ErrorClass] = DEFAULT_RETRYABLE_CLASSES
    #: Also store each intermediate failed attempt as a record with
    #: ``kind="dns_query_attempt"`` (final outcomes are always recorded).
    record_attempts: bool = False

    def __post_init__(self) -> None:
        if not isinstance(self.attempts, int) or self.attempts < 1:
            raise CampaignConfigError(
                f"retry attempts must be a positive integer, got {self.attempts!r}"
            )
        if self.backoff_base_ms < 0 or self.backoff_jitter_ms < 0:
            raise CampaignConfigError("retry backoff times must be non-negative")
        if self.backoff_factor < 1.0:
            raise CampaignConfigError(
                f"backoff factor {self.backoff_factor!r} must be >= 1"
            )

    def should_retry(self, outcome: ProbeOutcome, attempt: int) -> bool:
        """Whether a failed ``attempt`` (1-based) warrants another try."""
        if outcome.success or attempt >= self.attempts:
            return False
        return outcome.error_class in self.retry_on

    def backoff_ms(self, attempt: int, rng: random.Random) -> float:
        """Delay before the attempt following ``attempt`` (1-based)."""
        delay = self.backoff_base_ms * self.backoff_factor ** (attempt - 1)
        if self.backoff_jitter_ms > 0:
            delay += rng.uniform(0.0, self.backoff_jitter_ms)
        return delay


@dataclass(frozen=True)
class ResolverTarget:
    """The campaign-facing view of one resolver under test."""

    hostname: str
    service_ip: str
    doh_path: str = "/dns-query"
    region: Optional[str] = None  # continent code, None if not geolocatable
    mainstream: bool = False

    def __post_init__(self) -> None:
        if not self.hostname or not self.service_ip:
            raise CampaignConfigError("target needs hostname and service_ip")


@dataclass(frozen=True)
class RoundProgress:
    """Snapshot handed to ``on_round_complete`` when a round finishes.

    "Finishes" means every (vantage, target) measurement set of that round
    has recorded its final outcomes — retries and pings included — which
    may be after later rounds have already started probing.
    """

    round_index: int
    completed_at_ms: float
    records_total: int
    errors_total: int
    measurements: int

    def describe(self) -> str:
        return (
            f"progress round={self.round_index} t_ms={self.completed_at_ms:.1f} "
            f"measurements={self.measurements} records={self.records_total} "
            f"errors={self.errors_total}"
        )


@dataclass
class CampaignConfig:
    """Parameters of one measurement campaign.

    ``transport`` selects the probe type — the paper's tool "enables
    researchers to issue traditional DNS, DoT, and DoH queries"; the study
    itself ran DoH, the default here.  ``transports`` (plural) turns the
    campaign into a scenario matrix: each measurement set sweeps every
    listed transport in order, and ``session_policy`` decides what happens
    to connections and session tickets between queries (see
    :mod:`repro.session`).
    """

    name: str
    domains: Sequence[str] = ("google.com", "amazon.com", "wikipedia.com")
    schedule: PeriodicSchedule = field(
        default_factory=lambda: PeriodicSchedule(rounds=3, interval_ms=8 * 3600 * 1000.0)
    )
    transport: str = "doh"
    #: When set, measure every listed transport per (vantage, target)
    #: instead of the single ``transport``.  A one-element tuple keeps the
    #: legacy RNG stream (byte-identical to ``transport=...``); with more
    #: transports each gets its own derived stream so adding one never
    #: perturbs another's records.
    transports: Optional[Sequence[str]] = None
    probe_config: DohProbeConfig = field(default_factory=DohProbeConfig)
    #: Session management between queries; ``None`` and the ``cold``
    #: policy are both the legacy per-query-teardown behaviour.
    session_policy: Optional[SessionPolicy] = None
    ping: bool = True
    retry: RetryPolicy = field(default_factory=RetryPolicy)
    seed: int = 0
    #: Store the raw response message (hex) on each query record, enabling
    #: cross-resolver answer differencing (``repro.diff``).  Off by default:
    #: wire capture roughly doubles record size.
    capture_responses: bool = False

    def __post_init__(self) -> None:
        if not self.domains:
            raise CampaignConfigError("campaign needs at least one domain")
        if self.transport not in VALID_TRANSPORTS:
            raise CampaignConfigError(f"unknown transport {self.transport!r}")
        if self.transports is not None:
            if not self.transports:
                raise CampaignConfigError("transports must list at least one transport")
            unknown = [t for t in self.transports if t not in VALID_TRANSPORTS]
            if unknown:
                raise CampaignConfigError(f"unknown transports {unknown!r}")
            if len(set(self.transports)) != len(self.transports):
                raise CampaignConfigError("transports must not repeat")
            self.transports = tuple(self.transports)

    @property
    def transport_list(self) -> Sequence[str]:
        """The transports this campaign measures, in sweep order."""
        if self.transports is not None:
            return self.transports
        return (self.transport,)


class Campaign:
    """Runs one measurement campaign over the simulated world."""

    def __init__(
        self,
        network: Network,
        vantages: Sequence[VantagePoint],
        targets: Sequence[ResolverTarget],
        config: CampaignConfig,
        store: Optional[ResultStore] = None,
        recorder: Optional[SpanRecorder] = None,
        metrics: Optional[MetricsRegistry] = None,
        monitor: Optional[object] = None,
        on_round_complete: Optional[Callable[[RoundProgress], None]] = None,
    ) -> None:
        if not vantages:
            raise CampaignConfigError("campaign needs at least one vantage point")
        if not targets:
            raise CampaignConfigError("campaign needs at least one target")
        self.network = network
        self.vantages = list(vantages)
        self.targets = list(targets)
        self.config = config
        self.store = store if store is not None else ResultStore()
        self.on_round_complete = on_round_complete
        # One broker per Campaign instance: sharded runs build a fresh
        # world and a fresh Campaign per shard, so session caches can
        # never leak across shard boundaries by construction.
        policy = config.session_policy
        self._sessions: Optional[SessionBroker] = (
            SessionBroker(policy, network.loop)
            if policy is not None and policy.enabled
            else None
        )
        # Explicit recorder/metrics/monitor win; otherwise the ambient
        # ones are picked up at run() time (so ``with tracing():`` wraps
        # run()).
        self._recorder = recorder
        self._metrics = metrics
        self._monitor = monitor
        self._active_recorder: SpanRecorder = get_recorder()
        self._active_metrics: MetricsRegistry = get_metrics()
        self._active_monitor: Optional[object] = None
        self._campaign_span = 0
        self._round_spans: Dict[int, int] = {}
        self._round_outstanding: Dict[int, int] = {}
        self._errors_total = 0

    # -- execution -------------------------------------------------------------

    def run(self) -> ResultStore:
        """Schedule all rounds and drive the event loop to completion."""
        loop = self.network.loop
        recorder = self._recorder if self._recorder is not None else get_recorder()
        metrics = self._metrics if self._metrics is not None else get_metrics()
        self._active_recorder = recorder
        self._active_metrics = metrics
        self._active_monitor = (
            self._monitor if self._monitor is not None else get_monitor()
        )
        if recorder.enabled:
            self._campaign_span = recorder.begin(
                "campaign",
                loop.now,
                campaign=self.config.name,
                transport=",".join(self.config.transport_list),
                vantages=len(self.vantages),
                targets=len(self.targets),
            )
        per_round = len(self.vantages) * len(self.targets)
        for round_index, round_start in self.config.schedule.round_items():
            start = max(round_start, loop.now)
            self._round_outstanding[round_index] = per_round
            if recorder.enabled:
                self._round_spans[round_index] = recorder.begin(
                    "round", start, parent_id=self._campaign_span, round=round_index
                )
            for vantage in self.vantages:
                for target in self.targets:
                    rng = self._rng_for(round_index, vantage, target)
                    offset = self.config.schedule.probe_offset(rng)
                    loop.call_at(
                        max(round_start + offset, loop.now),
                        self._measure_target,
                        round_index,
                        vantage,
                        target,
                        rng,
                    )
        self.network.run()
        if self._sessions is not None:
            self._sessions.close_all()
        if recorder.enabled and self._campaign_span:
            recorder.end(self._campaign_span, loop.now, records=len(self.store))
        if metrics.enabled:
            metrics.set_gauge("campaign.records", len(self.store))
        return self.store

    def _rng_for(
        self, round_index: int, vantage: VantagePoint, target: ResolverTarget
    ) -> random.Random:
        """The (round, vantage, target) measurement's private RNG stream.

        Derived with a stable hash — not Python's salted ``hash`` — so the
        stream (and hence the probe stagger, backoff jitter, and every
        client-side draw) is identical across processes and identical
        whether the round runs inside a serial campaign or a shard.
        """
        return derive_rng(
            self.config.seed,
            "measurement",
            self.config.name,
            round_index,
            vantage.name,
            target.hostname,
        )

    def _transport_rng(
        self,
        base_rng: random.Random,
        round_index: int,
        vantage: VantagePoint,
        target: ResolverTarget,
        transport: str,
    ) -> random.Random:
        """RNG stream for one transport within a measurement set.

        With a single transport the base measurement stream is used
        unchanged, so ``transports=("dot",)`` is byte-identical to the
        legacy ``transport="dot"``.  With a matrix, each transport gets
        its own derived stream: adding or removing one transport never
        perturbs another's draws (and hence its records).
        """
        if self.config.transports is None or len(self.config.transport_list) == 1:
            return base_rng
        return derive_rng(
            self.config.seed,
            "measurement",
            self.config.name,
            round_index,
            vantage.name,
            target.hostname,
            transport,
        )

    # -- one (vantage, target) measurement set -----------------------------------

    def _make_probe(
        self,
        transport: str,
        vantage: VantagePoint,
        target: ResolverTarget,
        rng: random.Random,
    ):
        """Instantiate the probe for one transport of the campaign matrix.

        When a session policy is active the broker's wiring overrides the
        base probe config's reuse/cache/early-data knobs; otherwise the
        base config passes through unchanged (legacy behaviour).
        """
        recorder = self._active_recorder
        base = self.config.probe_config
        wiring = None
        if self._sessions is not None:
            wiring = self._sessions.wiring((vantage.name, target.hostname, transport))
        if transport == "doh":
            return DohProbe(
                host=vantage.host,
                service_ip=target.service_ip,
                server_name=target.hostname,
                config=DohProbeConfig(
                    method=base.method,
                    http_versions=base.http_versions,
                    tls_versions=base.tls_versions,
                    timeout_ms=base.timeout_ms,
                    reuse_connections=(
                        wiring.reuse_connections if wiring else base.reuse_connections
                    ),
                    session_cache=(
                        wiring.session_cache if wiring else base.session_cache
                    ),
                    enable_early_data=(
                        wiring.enable_early_data if wiring else base.enable_early_data
                    ),
                    early_data_reject_p=(
                        wiring.early_data_reject_p if wiring else 0.0
                    ),
                    cert_verify_ms=(wiring.cert_verify_ms if wiring else 0.0),
                    doh_path=target.doh_path,
                ),
                rng=rng,
                recorder=recorder,
            )
        if transport == "dot":
            from repro.core.probes import DotProbe, DotProbeConfig

            return DotProbe(
                host=vantage.host,
                service_ip=target.service_ip,
                server_name=target.hostname,
                config=DotProbeConfig(
                    tls_versions=base.tls_versions,
                    timeout_ms=base.timeout_ms,
                    reuse_connections=(
                        wiring.reuse_connections if wiring else base.reuse_connections
                    ),
                    session_cache=(
                        wiring.session_cache if wiring else base.session_cache
                    ),
                    enable_early_data=(
                        wiring.enable_early_data if wiring else False
                    ),
                    early_data_reject_p=(
                        wiring.early_data_reject_p if wiring else 0.0
                    ),
                    cert_verify_ms=(wiring.cert_verify_ms if wiring else 0.0),
                ),
                rng=rng,
                recorder=recorder,
            )
        if transport == "doq":
            from repro.core.probes import DoqProbe, DoqProbeConfig

            if wiring is not None:
                config = DoqProbeConfig(
                    timeout_ms=base.timeout_ms,
                    reuse_connections=wiring.reuse_connections,
                    session_cache=wiring.session_cache,
                    enable_early_data=wiring.enable_early_data,
                    early_data_reject_p=wiring.early_data_reject_p,
                    cert_verify_ms=wiring.cert_verify_ms,
                )
            else:
                config = DoqProbeConfig(
                    timeout_ms=base.timeout_ms,
                    reuse_connections=base.reuse_connections,
                    session_cache=base.session_cache,
                )
            return DoqProbe(
                host=vantage.host,
                service_ip=target.service_ip,
                server_name=target.hostname,
                config=config,
                rng=rng,
                recorder=recorder,
            )
        if transport == "doh3":
            from repro.core.probes import Doh3Probe, Doh3ProbeConfig

            return Doh3Probe(
                host=vantage.host,
                service_ip=target.service_ip,
                server_name=target.hostname,
                config=Doh3ProbeConfig(
                    method=base.method,
                    timeout_ms=base.timeout_ms,
                    reuse_connections=(
                        wiring.reuse_connections if wiring else False
                    ),
                    session_cache=(
                        wiring.session_cache if wiring else None
                    ),
                    enable_early_data=(
                        wiring.enable_early_data if wiring else True
                    ),
                    early_data_reject_p=(
                        wiring.early_data_reject_p if wiring else 0.0
                    ),
                    cert_verify_ms=(wiring.cert_verify_ms if wiring else 0.0),
                    doh_path=target.doh_path,
                ),
                rng=rng,
                recorder=recorder,
            )
        from repro.core.probes import Do53Probe, Do53ProbeConfig

        return Do53Probe(
            host=vantage.host,
            service_ip=target.service_ip,
            config=Do53ProbeConfig(timeout_ms=base.timeout_ms),
            rng=rng,
            recorder=recorder,
        )

    def _measure_target(
        self,
        round_index: int,
        vantage: VantagePoint,
        target: ResolverTarget,
        rng: random.Random,
    ) -> None:
        loop = self.network.loop
        recorder = self._active_recorder
        metrics = self._active_metrics
        measurement_span = 0
        if recorder.enabled:
            measurement_span = recorder.begin(
                "measurement",
                loop.now,
                parent_id=self._round_spans.get(round_index) or None,
                vantage=vantage.name,
                resolver=target.hostname,
                round=round_index,
            )
        domains = list(self.config.domains)
        transports = list(self.config.transport_list)
        policy = self.config.retry
        broker = self._sessions
        pending = {"parts": 1 + (1 if self.config.ping else 0)}

        def part_done() -> None:
            pending["parts"] -= 1
            if pending["parts"] == 0:
                if recorder.enabled and measurement_span:
                    recorder.end(measurement_span, loop.now)
                self._round_done(round_index)

        def run_transport(t_index: int) -> None:
            if t_index >= len(transports):
                part_done()
                return
            transport = transports[t_index]
            t_rng = self._transport_rng(rng, round_index, vantage, target, transport)
            key = (vantage.name, target.hostname, transport)
            if (
                broker is not None
                and broker.keeps_probes
                and transport in SESSION_TRANSPORTS
            ):
                probe = broker.checkout(
                    key,
                    t_rng,
                    lambda: self._make_probe(transport, vantage, target, t_rng),
                )
                managed = True
            else:
                probe = self._make_probe(transport, vantage, target, t_rng)
                managed = False

            def query_next(index: int) -> None:
                if index >= len(domains):
                    if managed and broker is not None:
                        broker.release(key, probe)
                    else:
                        probe.close()
                    run_transport(t_index + 1)
                    return
                domain = domains[index]

                def attempt(number: int) -> None:
                    started = loop.now

                    def on_outcome(outcome: ProbeOutcome) -> None:
                        if broker is not None:
                            broker.after_query(key)
                        if policy.should_retry(outcome, number):
                            if policy.record_attempts:
                                self._record_query(
                                    round_index, vantage, target, transport, domain,
                                    started, outcome, attempts=number,
                                    kind="dns_query_attempt",
                                )
                            if metrics.enabled:
                                metrics.inc("campaign.retries", transport=transport)
                            loop.call_later(
                                policy.backoff_ms(number, t_rng), attempt, number + 1
                            )
                            return
                        self._record_query(
                            round_index, vantage, target, transport, domain,
                            started, outcome, attempts=number,
                        )
                        query_next(index + 1)

                    if broker is not None:
                        broker.before_query(key, probe)
                    probe.query(domain, on_outcome, span_parent=measurement_span)

                attempt(1)

            query_next(0)

        run_transport(0)

        if self.config.ping:
            started = loop.now

            def on_ping(outcome: ProbeOutcome) -> None:
                self._record_ping(round_index, vantage, target, started, outcome)
                if recorder.enabled:
                    recorder.emit(
                        "probe",
                        started,
                        loop.now,
                        parent_id=measurement_span or None,
                        status="ok" if outcome.success else "error",
                        transport="icmp",
                        server=target.hostname,
                    )
                part_done()

            PingProbe(vantage.host, target.service_ip).send(on_ping)

    # -- recording -----------------------------------------------------------------

    def _record_query(
        self,
        round_index: int,
        vantage: VantagePoint,
        target: ResolverTarget,
        transport: str,
        domain: str,
        started_at: float,
        outcome: ProbeOutcome,
        attempts: int = 1,
        kind: str = "dns_query",
    ) -> None:
        record = MeasurementRecord(
            campaign=self.config.name,
            vantage=vantage.name,
            resolver=target.hostname,
            kind=kind,
            transport=transport,
            domain=domain,
            round_index=round_index,
            started_at_ms=started_at,
            duration_ms=outcome.duration_ms,
            success=outcome.success,
            error_class=outcome.error_class.value if outcome.error_class else None,
            rcode=outcome.rcode,
            http_status=outcome.http_status,
            http_version=outcome.http_version,
            tls_version=outcome.tls_version,
            response_size=outcome.response_size,
            connection_reused=outcome.connection_reused,
            attempts=attempts,
            connect_ms=outcome.connect_ms,
            tls_ms=outcome.tls_ms,
            query_ms=outcome.query_ms,
            failed_phase=outcome.failed_phase,
            response_wire=(
                outcome.response_wire.hex()
                if self.config.capture_responses
                and outcome.response_wire is not None
                else None
            ),
            # Session fields stay None (and absent from JSON) unless an
            # active policy governs this transport — legacy output frozen.
            session_state=(
                outcome.session_state
                if self._sessions is not None and transport in SESSION_TRANSPORTS
                else None
            ),
            session_policy=(
                self.config.session_policy.mode
                if self._sessions is not None and transport in SESSION_TRANSPORTS
                else None
            ),
        )
        self.store.add(record)
        if self._active_monitor is not None:
            self._active_monitor.observe(record)
        if kind == "dns_query" and not outcome.success:
            self._errors_total += 1
        metrics = self._active_metrics
        if metrics.enabled:
            metrics.inc("campaign.queries", transport=transport, kind=kind)
            if outcome.success:
                if outcome.duration_ms is not None:
                    metrics.observe(
                        "campaign.query_ms",
                        outcome.duration_ms,
                        transport=transport,
                    )
            elif outcome.error_class is not None:
                metrics.inc(
                    "campaign.query_errors",
                    error_class=outcome.error_class.value,
                    transport=transport,
                )

    def _record_ping(
        self,
        round_index: int,
        vantage: VantagePoint,
        target: ResolverTarget,
        started_at: float,
        outcome: ProbeOutcome,
    ) -> None:
        record = MeasurementRecord(
            campaign=self.config.name,
            vantage=vantage.name,
            resolver=target.hostname,
            kind="ping",
            transport="icmp",
            domain=None,
            round_index=round_index,
            started_at_ms=started_at,
            duration_ms=outcome.duration_ms,
            success=outcome.success,
            error_class=outcome.error_class.value if outcome.error_class else None,
        )
        self.store.add(record)
        if self._active_monitor is not None:
            self._active_monitor.observe(record)
        if not outcome.success:
            self._errors_total += 1
        metrics = self._active_metrics
        if metrics.enabled:
            metrics.inc("campaign.pings", success=outcome.success)
            if outcome.success and outcome.duration_ms is not None:
                metrics.observe("campaign.ping_ms", outcome.duration_ms)

    # -- round completion -----------------------------------------------------------

    def _round_done(self, round_index: int) -> None:
        """One (vantage, target) measurement set of ``round_index`` finished."""
        self._round_outstanding[round_index] -= 1
        if self._round_outstanding[round_index] > 0:
            return
        now = self.network.loop.now
        recorder = self._active_recorder
        span_id = self._round_spans.get(round_index)
        if recorder.enabled and span_id:
            recorder.end(span_id, now, records=len(self.store))
        metrics = self._active_metrics
        if metrics.enabled:
            metrics.inc("campaign.rounds_completed")
            metrics.set_gauge("campaign.records", len(self.store))
            metrics.set_gauge("campaign.errors", self._errors_total)
        if self.on_round_complete is not None:
            self.on_round_complete(
                RoundProgress(
                    round_index=round_index,
                    completed_at_ms=now,
                    records_total=len(self.store),
                    errors_total=self._errors_total,
                    measurements=len(self.vantages) * len(self.targets),
                )
            )
