"""Campaign orchestration: vantage × resolver × domain measurement sweeps.

A :class:`Campaign` reproduces the paper's measurement procedure.  In each
round, from each vantage point, for each target resolver:

1. issue one DoH query per study domain, measuring end-to-end response
   time (each query on a fresh connection by default, like ``dig``);
2. issue one ICMP ping and record the round-trip latency.

Every outcome — success or classified failure — lands in the
:class:`~repro.core.results.ResultStore` as one record.  A
:class:`RetryPolicy` optionally re-issues failed queries with exponential
backoff; the final record's ``attempts`` field counts the tries.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import FrozenSet, List, Optional, Sequence

from repro.core.errors_taxonomy import CONNECTION_ESTABLISHMENT_CLASSES, ErrorClass
from repro.core.probes import DohProbe, DohProbeConfig, PingProbe, ProbeOutcome
from repro.core.results import MeasurementRecord, ResultStore
from repro.core.scheduler import PeriodicSchedule
from repro.core.vantage import VantagePoint
from repro.errors import CampaignConfigError
from repro.netsim.network import Network

#: Error classes a retry can plausibly help with: transient network and
#: connection-establishment conditions.  Protocol-level failures (bad
#: rcode, malformed message, HTTP error) repeat deterministically and are
#: not retried by default.
DEFAULT_RETRYABLE_CLASSES: FrozenSet[ErrorClass] = frozenset(
    CONNECTION_ESTABLISHMENT_CLASSES
    | {ErrorClass.CONNECTION_RESET, ErrorClass.TIMEOUT}
)


@dataclass(frozen=True)
class RetryPolicy:
    """Campaign-level retry behaviour for failed DNS queries.

    ``attempts`` is the total number of tries (1 = no retries).  The delay
    before attempt ``n+1`` is ``backoff_base_ms * backoff_factor**(n-1)``
    plus uniform jitter in ``[0, backoff_jitter_ms)`` drawn from the
    campaign's per-measurement RNG, so backoff stays deterministic under a
    fixed seed.
    """

    attempts: int = 1
    backoff_base_ms: float = 250.0
    backoff_factor: float = 2.0
    backoff_jitter_ms: float = 50.0
    retry_on: FrozenSet[ErrorClass] = DEFAULT_RETRYABLE_CLASSES
    #: Also store each intermediate failed attempt as a record with
    #: ``kind="dns_query_attempt"`` (final outcomes are always recorded).
    record_attempts: bool = False

    def __post_init__(self) -> None:
        if not isinstance(self.attempts, int) or self.attempts < 1:
            raise CampaignConfigError(
                f"retry attempts must be a positive integer, got {self.attempts!r}"
            )
        if self.backoff_base_ms < 0 or self.backoff_jitter_ms < 0:
            raise CampaignConfigError("retry backoff times must be non-negative")
        if self.backoff_factor < 1.0:
            raise CampaignConfigError(
                f"backoff factor {self.backoff_factor!r} must be >= 1"
            )

    def should_retry(self, outcome: ProbeOutcome, attempt: int) -> bool:
        """Whether a failed ``attempt`` (1-based) warrants another try."""
        if outcome.success or attempt >= self.attempts:
            return False
        return outcome.error_class in self.retry_on

    def backoff_ms(self, attempt: int, rng: random.Random) -> float:
        """Delay before the attempt following ``attempt`` (1-based)."""
        delay = self.backoff_base_ms * self.backoff_factor ** (attempt - 1)
        if self.backoff_jitter_ms > 0:
            delay += rng.uniform(0.0, self.backoff_jitter_ms)
        return delay


@dataclass(frozen=True)
class ResolverTarget:
    """The campaign-facing view of one resolver under test."""

    hostname: str
    service_ip: str
    doh_path: str = "/dns-query"
    region: Optional[str] = None  # continent code, None if not geolocatable
    mainstream: bool = False

    def __post_init__(self) -> None:
        if not self.hostname or not self.service_ip:
            raise CampaignConfigError("target needs hostname and service_ip")


@dataclass
class CampaignConfig:
    """Parameters of one measurement campaign.

    ``transport`` selects the probe type — the paper's tool "enables
    researchers to issue traditional DNS, DoT, and DoH queries"; the study
    itself ran DoH, the default here.
    """

    name: str
    domains: Sequence[str] = ("google.com", "amazon.com", "wikipedia.com")
    schedule: PeriodicSchedule = field(
        default_factory=lambda: PeriodicSchedule(rounds=3, interval_ms=8 * 3600 * 1000.0)
    )
    transport: str = "doh"
    probe_config: DohProbeConfig = field(default_factory=DohProbeConfig)
    ping: bool = True
    retry: RetryPolicy = field(default_factory=RetryPolicy)
    seed: int = 0

    def __post_init__(self) -> None:
        if not self.domains:
            raise CampaignConfigError("campaign needs at least one domain")
        if self.transport not in ("doh", "dot", "do53", "doq"):
            raise CampaignConfigError(f"unknown transport {self.transport!r}")


class Campaign:
    """Runs one measurement campaign over the simulated world."""

    def __init__(
        self,
        network: Network,
        vantages: Sequence[VantagePoint],
        targets: Sequence[ResolverTarget],
        config: CampaignConfig,
        store: Optional[ResultStore] = None,
    ) -> None:
        if not vantages:
            raise CampaignConfigError("campaign needs at least one vantage point")
        if not targets:
            raise CampaignConfigError("campaign needs at least one target")
        self.network = network
        self.vantages = list(vantages)
        self.targets = list(targets)
        self.config = config
        self.store = store if store is not None else ResultStore()
        self._outstanding = 0

    # -- execution -------------------------------------------------------------

    def run(self) -> ResultStore:
        """Schedule all rounds and drive the event loop to completion."""
        for round_index, round_start in enumerate(self.config.schedule.round_starts()):
            for vantage in self.vantages:
                for target in self.targets:
                    rng = self._rng_for(round_index, vantage, target)
                    offset = self.config.schedule.probe_offset(rng)
                    self.network.loop.call_at(
                        max(round_start + offset, self.network.loop.now),
                        self._measure_target,
                        round_index,
                        vantage,
                        target,
                        rng,
                    )
        self.network.run()
        return self.store

    def _rng_for(
        self, round_index: int, vantage: VantagePoint, target: ResolverTarget
    ) -> random.Random:
        seed_material = (
            f"{self.config.name}|{self.config.seed}|{round_index}|"
            f"{vantage.name}|{target.hostname}"
        )
        return random.Random(hash(seed_material) & 0xFFFFFFFF)

    # -- one (vantage, target) measurement set -----------------------------------

    def _make_probe(
        self, vantage: VantagePoint, target: ResolverTarget, rng: random.Random
    ):
        """Instantiate the probe matching the campaign's transport."""
        if self.config.transport == "doh":
            return DohProbe(
                host=vantage.host,
                service_ip=target.service_ip,
                server_name=target.hostname,
                config=self._probe_config_for(target),
                rng=rng,
            )
        if self.config.transport == "dot":
            from repro.core.probes import DotProbe, DotProbeConfig

            base = self.config.probe_config
            return DotProbe(
                host=vantage.host,
                service_ip=target.service_ip,
                server_name=target.hostname,
                config=DotProbeConfig(
                    tls_versions=base.tls_versions,
                    timeout_ms=base.timeout_ms,
                    reuse_connections=base.reuse_connections,
                    session_cache=base.session_cache,
                ),
                rng=rng,
            )
        if self.config.transport == "doq":
            from repro.core.probes import DoqProbe, DoqProbeConfig

            base = self.config.probe_config
            return DoqProbe(
                host=vantage.host,
                service_ip=target.service_ip,
                server_name=target.hostname,
                config=DoqProbeConfig(
                    timeout_ms=base.timeout_ms,
                    reuse_connections=base.reuse_connections,
                    session_cache=base.session_cache,
                ),
                rng=rng,
            )
        from repro.core.probes import Do53Probe, Do53ProbeConfig

        return Do53Probe(
            host=vantage.host,
            service_ip=target.service_ip,
            config=Do53ProbeConfig(timeout_ms=self.config.probe_config.timeout_ms),
            rng=rng,
        )

    def _measure_target(
        self,
        round_index: int,
        vantage: VantagePoint,
        target: ResolverTarget,
        rng: random.Random,
    ) -> None:
        probe = self._make_probe(vantage, target, rng)
        domains = list(self.config.domains)
        policy = self.config.retry

        def query_next(index: int) -> None:
            if index >= len(domains):
                probe.close()
                return
            domain = domains[index]

            def attempt(number: int) -> None:
                started = self.network.loop.now

                def on_outcome(outcome: ProbeOutcome) -> None:
                    if policy.should_retry(outcome, number):
                        if policy.record_attempts:
                            self._record_query(
                                round_index, vantage, target, domain, started,
                                outcome, attempts=number, kind="dns_query_attempt",
                            )
                        self.network.loop.call_later(
                            policy.backoff_ms(number, rng), attempt, number + 1
                        )
                        return
                    self._record_query(
                        round_index, vantage, target, domain, started,
                        outcome, attempts=number,
                    )
                    query_next(index + 1)

                probe.query(domain, on_outcome)

            attempt(1)

        query_next(0)

        if self.config.ping:
            started = self.network.loop.now

            def on_ping(outcome: ProbeOutcome) -> None:
                self._record_ping(round_index, vantage, target, started, outcome)

            PingProbe(vantage.host, target.service_ip).send(on_ping)

    def _probe_config_for(self, target: ResolverTarget) -> DohProbeConfig:
        base = self.config.probe_config
        return DohProbeConfig(
            method=base.method,
            http_versions=base.http_versions,
            tls_versions=base.tls_versions,
            timeout_ms=base.timeout_ms,
            reuse_connections=base.reuse_connections,
            session_cache=base.session_cache,
            enable_early_data=base.enable_early_data,
            doh_path=target.doh_path,
        )

    # -- recording -----------------------------------------------------------------

    def _record_query(
        self,
        round_index: int,
        vantage: VantagePoint,
        target: ResolverTarget,
        domain: str,
        started_at: float,
        outcome: ProbeOutcome,
        attempts: int = 1,
        kind: str = "dns_query",
    ) -> None:
        self.store.add(
            MeasurementRecord(
                campaign=self.config.name,
                vantage=vantage.name,
                resolver=target.hostname,
                kind=kind,
                transport=self.config.transport,
                domain=domain,
                round_index=round_index,
                started_at_ms=started_at,
                duration_ms=outcome.duration_ms if outcome.success else outcome.duration_ms,
                success=outcome.success,
                error_class=outcome.error_class.value if outcome.error_class else None,
                rcode=outcome.rcode,
                http_status=outcome.http_status,
                http_version=outcome.http_version,
                tls_version=outcome.tls_version,
                response_size=outcome.response_size,
                connection_reused=outcome.connection_reused,
                attempts=attempts,
            )
        )

    def _record_ping(
        self,
        round_index: int,
        vantage: VantagePoint,
        target: ResolverTarget,
        started_at: float,
        outcome: ProbeOutcome,
    ) -> None:
        self.store.add(
            MeasurementRecord(
                campaign=self.config.name,
                vantage=vantage.name,
                resolver=target.hostname,
                kind="ping",
                transport="icmp",
                domain=None,
                round_index=round_index,
                started_at_ms=started_at,
                duration_ms=outcome.duration_ms,
                success=outcome.success,
                error_class=outcome.error_class.value if outcome.error_class else None,
            )
        )
