"""Deterministic IPv4 allocation for the simulated world.

Addresses are handed out sequentially from per-purpose blocks so that runs
are reproducible and addresses are recognizable in traces:

=============  ===================  =================================
Block          Purpose              Example
=============  ===================  =================================
``198.18/16``  vantage points       ``198.18.0.1`` (benchmarking range)
``203.0/16``   resolver sites       ``203.0.113.7``
``192.88/16``  anycast service IPs  ``192.88.99.1``
``199.7/16``   root + TLD servers   ``199.7.0.1``
``100.64/16``  authoritative farms  ``100.64.0.9``
=============  ===================  =================================
"""

from __future__ import annotations

import ipaddress
from typing import Dict

from repro.errors import AddressError

_BLOCKS = {
    "vantage": "198.18.0.0/16",
    "resolver": "203.0.0.0/16",
    "anycast": "192.88.0.0/16",
    "infra": "199.7.0.0/16",
    "auth": "100.64.0.0/16",
}


class IpAllocator:
    """Sequential allocator over named address blocks."""

    def __init__(self) -> None:
        self._networks: Dict[str, ipaddress.IPv4Network] = {
            name: ipaddress.IPv4Network(block) for name, block in _BLOCKS.items()
        }
        self._next_offset: Dict[str, int] = {name: 1 for name in _BLOCKS}
        self._assigned: Dict[str, str] = {}

    def allocate(self, block: str, owner: str) -> str:
        """Allocate the next address in ``block`` to ``owner``.

        Allocations are memoized by owner: asking twice for the same owner
        returns the same address.
        """
        if block not in self._networks:
            raise AddressError(f"unknown block {block!r}; known: {sorted(self._networks)}")
        key = f"{block}/{owner}"
        existing = self._assigned.get(key)
        if existing is not None:
            return existing
        network = self._networks[block]
        offset = self._next_offset[block]
        if offset >= network.num_addresses - 1:
            raise AddressError(f"block {block} exhausted")
        self._next_offset[block] = offset + 1
        address = str(network.network_address + offset)
        self._assigned[key] = address
        return address

    def owner_of(self, address: str) -> str:
        """Reverse lookup (raises if the address was never allocated)."""
        for key, assigned in self._assigned.items():
            if assigned == address:
                return key.split("/", 1)[1]
        raise AddressError(f"{address} was not allocated by this allocator")

    @property
    def allocated_count(self) -> int:
        return len(self._assigned)
