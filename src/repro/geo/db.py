"""The geolocation database (GeoLite2 substitute).

Maps IP addresses to :class:`GeoRecord` entries.  Lookups behave like
MaxMind's city database: known addresses return a record, unknown ones
raise :class:`~repro.errors.GeoError` (callers that tolerate missing
geolocation — like the paper's six unlocatable resolvers — use
:meth:`GeoDatabase.lookup_or_none`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.errors import GeoError
from repro.geo.regions import City
from repro.netsim.geo import Coordinates


@dataclass(frozen=True)
class GeoRecord:
    """One geolocation answer."""

    ip: str
    city: str
    country: str
    continent: str
    coords: Coordinates

    @classmethod
    def from_city(cls, ip: str, city: City) -> "GeoRecord":
        return cls(
            ip=ip,
            city=city.name,
            country=city.country,
            continent=city.continent,
            coords=city.coords,
        )


class GeoDatabase:
    """In-memory IP → location database."""

    def __init__(self) -> None:
        self._records: Dict[str, GeoRecord] = {}

    def register(self, record: GeoRecord) -> None:
        """Add (or replace) the record for an address."""
        self._records[record.ip] = record

    def register_city(self, ip: str, city: City) -> None:
        self.register(GeoRecord.from_city(ip, city))

    def lookup(self, ip: str) -> GeoRecord:
        """The record for ``ip``; raises :class:`GeoError` if unknown."""
        record = self._records.get(ip)
        if record is None:
            raise GeoError(f"no geolocation data for {ip}")
        return record

    def lookup_or_none(self, ip: str) -> Optional[GeoRecord]:
        """Like :meth:`lookup` but returns None for unknown addresses."""
        return self._records.get(ip)

    def continent_of(self, ip: str) -> Optional[str]:
        record = self._records.get(ip)
        return record.continent if record is not None else None

    def __len__(self) -> int:
        return len(self._records)

    def __contains__(self, ip: str) -> bool:
        return ip in self._records
