"""Continents and cities used by the simulated world.

Coordinates are real (city centroids), because the latency model converts
great-circle distance into propagation delay.  Continent codes follow the
GeoLite2 convention: NA, SA, EU, AS, AF, OC.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.netsim.geo import Coordinates

_CONTINENT_NAMES = {
    "NA": "North America",
    "SA": "South America",
    "EU": "Europe",
    "AS": "Asia",
    "AF": "Africa",
    "OC": "Oceania",
}


def continent_name(code: str) -> str:
    """Full name for a continent code (returns the code if unknown)."""
    return _CONTINENT_NAMES.get(code, code)


@dataclass(frozen=True)
class City:
    """A named location with country and continent."""

    name: str
    country: str  # ISO 3166-1 alpha-2
    continent: str  # GeoLite2 continent code
    coords: Coordinates


def _city(name: str, country: str, continent: str, lat: float, lon: float) -> City:
    return City(name, country, continent, Coordinates(lat, lon))


#: Cities referenced by vantage points and resolver deployments.
CITIES = {
    # North America
    "chicago": _city("Chicago", "US", "NA", 41.88, -87.63),
    "columbus": _city("Columbus (us-east-2)", "US", "NA", 39.96, -83.00),
    "ashburn": _city("Ashburn", "US", "NA", 39.04, -77.49),
    "new_york": _city("New York", "US", "NA", 40.71, -74.01),
    "mountain_view": _city("Mountain View", "US", "NA", 37.39, -122.08),
    "san_francisco": _city("San Francisco", "US", "NA", 37.77, -122.42),
    "fremont": _city("Fremont", "US", "NA", 37.55, -121.99),
    "los_angeles": _city("Los Angeles", "US", "NA", 34.05, -118.24),
    "dallas": _city("Dallas", "US", "NA", 32.78, -96.80),
    "seattle": _city("Seattle", "US", "NA", 47.61, -122.33),
    "miami": _city("Miami", "US", "NA", 25.76, -80.19),
    "toronto": _city("Toronto", "CA", "NA", 43.65, -79.38),
    "montreal": _city("Montreal", "CA", "NA", 45.50, -73.57),
    "berkeley": _city("Berkeley", "US", "NA", 37.87, -122.27),
    "denver": _city("Denver", "US", "NA", 39.74, -104.99),
    "atlanta": _city("Atlanta", "US", "NA", 33.75, -84.39),
    # Europe
    "frankfurt": _city("Frankfurt (eu-central-1)", "DE", "EU", 50.11, 8.68),
    "amsterdam": _city("Amsterdam", "NL", "EU", 52.37, 4.90),
    "london": _city("London", "GB", "EU", 51.51, -0.13),
    "paris": _city("Paris", "FR", "EU", 48.86, 2.35),
    "zurich": _city("Zurich", "CH", "EU", 47.38, 8.54),
    "munich": _city("Munich", "DE", "EU", 48.14, 11.58),
    "berlin": _city("Berlin", "DE", "EU", 52.52, 13.41),
    "vienna": _city("Vienna", "AT", "EU", 48.21, 16.37),
    "stockholm": _city("Stockholm", "SE", "EU", 59.33, 18.07),
    "copenhagen": _city("Copenhagen", "DK", "EU", 55.68, 12.57),
    "helsinki": _city("Helsinki", "FI", "EU", 60.17, 24.94),
    "oslo": _city("Oslo", "NO", "EU", 59.91, 10.75),
    "warsaw": _city("Warsaw", "PL", "EU", 52.23, 21.01),
    "prague": _city("Prague", "CZ", "EU", 50.08, 14.44),
    "athens": _city("Athens", "GR", "EU", 37.98, 23.73),
    "madrid": _city("Madrid", "ES", "EU", 40.42, -3.70),
    "milan": _city("Milan", "IT", "EU", 45.46, 9.19),
    "bucharest": _city("Bucharest", "RO", "EU", 44.43, 26.10),
    "luxembourg": _city("Luxembourg", "LU", "EU", 49.61, 6.13),
    "reykjavik": _city("Reykjavik", "IS", "EU", 64.15, -21.94),
    "dublin": _city("Dublin", "IE", "EU", 53.35, -6.26),
    # Asia
    "seoul": _city("Seoul (ap-northeast-2)", "KR", "AS", 37.57, 126.98),
    "tokyo": _city("Tokyo", "JP", "AS", 35.68, 139.69),
    "osaka": _city("Osaka", "JP", "AS", 34.69, 135.50),
    "taipei": _city("Taipei", "TW", "AS", 25.03, 121.57),
    "beijing": _city("Beijing", "CN", "AS", 39.90, 116.41),
    "shanghai": _city("Shanghai", "CN", "AS", 31.23, 121.47),
    "hangzhou": _city("Hangzhou", "CN", "AS", 30.27, 120.16),
    "hong_kong": _city("Hong Kong", "HK", "AS", 22.32, 114.17),
    "singapore": _city("Singapore", "SG", "AS", 1.35, 103.82),
    "jakarta": _city("Jakarta", "ID", "AS", -6.21, 106.85),
    "bandung": _city("Bandung", "ID", "AS", -6.92, 107.61),
    "mumbai": _city("Mumbai", "IN", "AS", 19.08, 72.88),
    "surabaya": _city("Surabaya", "ID", "AS", -7.26, 112.75),
    # Oceania
    "sydney": _city("Sydney", "AU", "OC", -33.87, 151.21),
    "perth": _city("Perth", "AU", "OC", -31.95, 115.86),
    "adelaide": _city("Adelaide", "AU", "OC", -34.93, 138.60),
}
