"""Offline IP geolocation — the library's GeoLite2 substitute.

The paper geolocates each resolver with MaxMind's GeoLite2 database to
group resolvers by region.  Here, every simulated prefix is registered in
a :class:`~repro.geo.db.GeoDatabase` when the world is built, and lookups
return the same city/country/continent/coordinate records GeoLite2 would.
A handful of resolver IPs are deliberately left unregistered to reproduce
the paper's "6 resolvers were unable to return a location".
"""

from repro.geo.regions import CITIES, City, continent_name
from repro.geo.ipalloc import IpAllocator
from repro.geo.db import GeoDatabase, GeoRecord

__all__ = [
    "CITIES",
    "City",
    "GeoDatabase",
    "GeoRecord",
    "IpAllocator",
    "continent_name",
]
