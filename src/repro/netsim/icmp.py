"""ICMP echo (ping) support for simulated hosts.

The paper pairs every DoH measurement with an ICMP ping to separate network
latency from resolver processing.  Some resolvers do not answer ICMP at all
(their figures show no ping distribution), which is modelled by the
:class:`IcmpPolicy` attached to each host.

Wire format: an ICMP message is a :class:`~repro.netsim.packet.Datagram`
with ``protocol="icmp"`` whose payload is ``type(1B) | ident(4B, BE)``.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Callable, Dict, Optional

from repro.netsim.clock import Timer
from repro.netsim.host import Host
from repro.netsim.packet import Datagram

ECHO_REQUEST = 8
ECHO_REPLY = 0

_HEADER = struct.Struct("!BI")


@dataclass(frozen=True)
class IcmpPolicy:
    """How a host treats inbound echo requests.

    Attributes
    ----------
    responds:
        Whether echo requests are answered at all.  Many resolver
        deployments filter ICMP; the paper shows no ping boxes for those.
    process_delay_ms:
        Fixed extra delay before the reply is sent (kernel/NIC time).
    """

    responds: bool = True
    process_delay_ms: float = 0.05


#: Default policy for hosts that never had one assigned.
DEFAULT_POLICY = IcmpPolicy()


@dataclass
class PingResult:
    """Outcome of one echo exchange."""

    target_ip: str
    rtt_ms: Optional[float]  # None on timeout

    @property
    def responded(self) -> bool:
        return self.rtt_ms is not None


class _PendingTable:
    """Per-host table of outstanding echo requests, keyed by ident."""

    def __init__(self) -> None:
        self.next_ident = 1
        self.callbacks: Dict[int, Callable[[float], None]] = {}


def _pending(host: Host) -> _PendingTable:
    table = getattr(host, "_icmp_table", None)
    if table is None:
        table = _PendingTable()
        host._icmp_table = table  # type: ignore[attr-defined]
    return table


def ping(
    host: Host,
    dst_ip: str,
    on_result: Callable[[PingResult], None],
    timeout_ms: float = 3000.0,
) -> None:
    """Send one echo request from ``host`` to ``dst_ip``.

    ``on_result`` always fires exactly once: either with the measured RTT
    or, after ``timeout_ms``, with ``rtt_ms=None``.
    """
    assert host.network is not None, f"{host.name} not attached"
    network = host.network
    table = _pending(host)
    ident = table.next_ident
    table.next_ident += 1
    sent_at = network.loop.now
    timeout_timer: Optional[Timer] = None

    def on_reply(received_at: float) -> None:
        if timeout_timer is not None:
            timeout_timer.cancel()
        on_result(PingResult(target_ip=dst_ip, rtt_ms=received_at - sent_at))

    def on_timeout() -> None:
        table.callbacks.pop(ident, None)
        on_result(PingResult(target_ip=dst_ip, rtt_ms=None))

    table.callbacks[ident] = on_reply
    timeout_timer = network.loop.call_later(timeout_ms, on_timeout)
    request = Datagram(
        src_ip=host.ip,
        src_port=0,
        dst_ip=dst_ip,
        dst_port=0,
        payload=_HEADER.pack(ECHO_REQUEST, ident),
        protocol="icmp",
    )
    network.transmit(host, request)


def handle_icmp(host: Host, dgram: Datagram) -> None:
    """Host-side ICMP dispatch (called from :meth:`Host.deliver_datagram`)."""
    if len(dgram.payload) < _HEADER.size:
        return
    msg_type, ident = _HEADER.unpack_from(dgram.payload)
    if msg_type == ECHO_REQUEST:
        policy = host.icmp_policy if host.icmp_policy is not None else DEFAULT_POLICY
        if not policy.responds:
            return
        assert host.network is not None
        reply = Datagram(
            src_ip=dgram.dst_ip,
            src_port=0,
            dst_ip=dgram.src_ip,
            dst_port=0,
            payload=_HEADER.pack(ECHO_REPLY, ident),
            protocol="icmp",
        )
        host.network.loop.call_later(
            policy.process_delay_ms, host.network.transmit, host, reply
        )
    elif msg_type == ECHO_REPLY:
        table = _pending(host)
        callback = table.callbacks.pop(ident, None)
        if callback is not None:
            assert host.network is not None
            callback(host.network.loop.now)
