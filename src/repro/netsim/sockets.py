"""Simulated sockets: UDP datagrams and TCP byte-stream connections.

The TCP model captures everything that matters for request/response timing:

* a three-way handshake (SYN / SYN-ACK / ACK) costing one RTT before data,
  with exponential-backoff SYN retransmission and a connect timeout;
* MSS segmentation of application writes;
* in-order delivery to the application via sequence-number reassembly
  (per-packet jitter can reorder segments in flight);
* loss recovery by retransmission timeout, using a smoothed RTT estimate
  taken from the handshake;
* FIN/RST teardown, including RST-on-refused for closed ports.

It intentionally omits congestion control and flow control: encrypted DNS
exchanges are a handful of small messages, far below the bandwidth-delay
product of any path in the study.
"""

from __future__ import annotations

import itertools
from typing import Callable, Optional

from repro.errors import (
    ConnectionRefused,
    ConnectionReset,
    ConnectTimeout,
    SocketError,
)
from repro.netsim.clock import Timer
from repro.netsim.host import Host
from repro.netsim.packet import Datagram, Segment

#: Maximum segment size for simulated TCP, bytes of payload per segment.
MSS = 1400

#: Initial SYN retransmission timeout (ms) and maximum attempt count,
#: mirroring common stack defaults (1 s initial RTO, exponential backoff).
SYN_RTO_MS = 1000.0
SYN_MAX_ATTEMPTS = 4

#: Floor for the data retransmission timeout (ms); Linux uses ~200 ms.
MIN_DATA_RTO_MS = 250.0
DATA_MAX_ATTEMPTS = 6

_conn_ids = itertools.count(1)


class SimUdpSocket:
    """A bound UDP socket on a simulated host.

    Assign :attr:`on_datagram` to receive inbound datagrams.  The socket
    stays bound until :meth:`close`.
    """

    def __init__(self, host: Host, port: Optional[int] = None) -> None:
        if host.network is None:
            raise SocketError(f"{host.name} is not attached to a network")
        self.host = host
        self.port = port if port is not None else host.allocate_port()
        self.on_datagram: Optional[Callable[[Datagram], None]] = None
        self._closed = False
        host.bind_udp(self.port, self._handle)

    def _handle(self, dgram: Datagram, _host: Host) -> None:
        if self.on_datagram is not None:
            self.on_datagram(dgram)

    def sendto(self, payload: bytes, dst_ip: str, dst_port: int) -> None:
        """Send one datagram; silently subject to path loss."""
        if self._closed:
            raise SocketError("sendto on closed UDP socket")
        dgram = Datagram(
            src_ip=self.host.ip,
            src_port=self.port,
            dst_ip=dst_ip,
            dst_port=dst_port,
            payload=payload,
        )
        assert self.host.network is not None
        self.host.network.transmit(self.host, dgram)

    def close(self) -> None:
        if not self._closed:
            self._closed = True
            self.host.unbind_udp(self.port)

    @property
    def closed(self) -> bool:
        return self._closed


class SimTcpConnection:
    """One end of a simulated TCP connection.

    Client ends are created with :meth:`connect`; server ends are created by
    the host's segment dispatcher via :meth:`accept_from_syn`.

    Callback surface (assign after creation / in the acceptor):

    * ``on_data(bytes)`` — in-order application bytes;
    * ``on_close()`` — peer sent FIN;
    * ``on_error(exc)`` — connection failed (refused, reset, timed out).
    """

    # Connection states.
    SYN_SENT = "SYN_SENT"
    SYN_RECEIVED = "SYN_RECEIVED"
    ESTABLISHED = "ESTABLISHED"
    CLOSED = "CLOSED"

    def __init__(
        self,
        host: Host,
        local_ip: str,
        local_port: int,
        remote_ip: str,
        remote_port: int,
        conn_id: int,
        is_client: bool,
    ) -> None:
        if host.network is None:
            raise SocketError(f"{host.name} is not attached to a network")
        self.host = host
        self.local_ip = local_ip
        self.local_port = local_port
        self.remote_ip = remote_ip
        self.remote_port = remote_port
        self.conn_id = conn_id
        self.is_client = is_client
        self.state = self.CLOSED

        self.on_data: Optional[Callable[[bytes], None]] = None
        self.on_close: Optional[Callable[[], None]] = None
        self.on_error: Optional[Callable[[Exception], None]] = None

        self.srtt_ms: Optional[float] = None
        self.established_at: Optional[float] = None
        self.bytes_sent = 0
        self.bytes_received = 0

        self._send_seq = 0
        self._recv_next = 0
        self._reassembly: dict = {}
        self._connect_timer: Optional[Timer] = None
        self._on_established: Optional[Callable[["SimTcpConnection"], None]] = None
        self._handshake_sent_at: Optional[float] = None
        host.register_connection(self)

    # -- establishment -----------------------------------------------------

    @classmethod
    def connect(
        cls,
        host: Host,
        dst_ip: str,
        dst_port: int,
        on_established: Callable[["SimTcpConnection"], None],
        on_error: Optional[Callable[[Exception], None]] = None,
        timeout_ms: float = 10_000.0,
    ) -> "SimTcpConnection":
        """Open a client connection; ``on_established(conn)`` fires after the
        handshake completes (one RTT later, absent loss)."""
        conn = cls(
            host=host,
            local_ip=host.ip,
            local_port=host.allocate_port(),
            remote_ip=dst_ip,
            remote_port=dst_port,
            conn_id=next(_conn_ids),
            is_client=True,
        )
        conn.state = cls.SYN_SENT
        conn._on_established = on_established
        conn.on_error = on_error
        loop = host.network.loop  # type: ignore[union-attr]
        conn._connect_timer = loop.call_later(timeout_ms, conn._connect_timed_out)
        conn._handshake_sent_at = loop.now
        conn._send_control("SYN", attempts_left=SYN_MAX_ATTEMPTS, rto_ms=SYN_RTO_MS)
        return conn

    @classmethod
    def accept_from_syn(
        cls,
        host: Host,
        syn: Segment,
        acceptor: Callable[["SimTcpConnection"], None],
    ) -> "SimTcpConnection":
        """Create the server end of a connection from an inbound SYN.

        ``local_ip`` is taken from the SYN's destination address, so servers
        behind an anycast address reply from that address.
        """
        conn = cls(
            host=host,
            local_ip=syn.dst_ip,
            local_port=syn.dst_port,
            remote_ip=syn.src_ip,
            remote_port=syn.src_port,
            conn_id=syn.conn_id,
            is_client=False,
        )
        conn.state = cls.SYN_RECEIVED
        conn._on_established = acceptor
        conn._handshake_sent_at = host.network.loop.now  # type: ignore[union-attr]
        conn._send_control("SYN-ACK", attempts_left=SYN_MAX_ATTEMPTS, rto_ms=SYN_RTO_MS)
        return conn

    def _connect_timed_out(self) -> None:
        if self.state in (self.SYN_SENT, self.SYN_RECEIVED):
            self._fail(ConnectTimeout(f"connect to {self.remote_ip}:{self.remote_port} timed out"))

    # -- sending ----------------------------------------------------------------

    def send(self, data: bytes) -> None:
        """Write application bytes; segmented at :data:`MSS` boundaries."""
        if self.state != self.ESTABLISHED:
            raise SocketError(f"send on {self.state} connection")
        if not data:
            return
        for offset in range(0, len(data), MSS):
            chunk = data[offset : offset + MSS]
            segment = self._make_segment("DATA", payload=chunk, seq=self._send_seq)
            self._send_seq += len(chunk)
            self._transmit_with_retry(segment, attempts_left=DATA_MAX_ATTEMPTS, rto_ms=self._data_rto_ms())
        self.bytes_sent += len(data)

    def close(self) -> None:
        """Send FIN (if established) and release local state."""
        if self.state == self.ESTABLISHED:
            fin = self._make_segment("FIN", seq=self._send_seq)
            assert self.host.network is not None
            self.host.network.transmit(self.host, fin)
        self._teardown()

    def abort(self) -> None:
        """Send RST and release local state."""
        if self.state != self.CLOSED:
            rst = self._make_segment("RST")
            assert self.host.network is not None
            self.host.network.transmit(self.host, rst)
        self._teardown()

    # -- segment handling --------------------------------------------------------

    def handle_segment(self, segment: Segment) -> None:
        """Dispatch one arriving segment (called by the host demux)."""
        flag = segment.flag
        if flag == "RST":
            self._handle_rst()
        elif flag == "SYN":
            # Duplicate SYN (retransmitted by the client): re-answer.
            if not self.is_client and self.state in (self.SYN_RECEIVED, self.ESTABLISHED):
                self._send_control_once("SYN-ACK")
        elif flag == "SYN-ACK":
            self._handle_syn_ack()
        elif flag == "ACK":
            self._handle_ack()
        elif flag == "DATA":
            self._handle_data(segment)
        elif flag == "FIN":
            self._handle_fin()

    def _handle_syn_ack(self) -> None:
        if not self.is_client or self.state != self.SYN_SENT:
            return
        now = self.host.network.loop.now  # type: ignore[union-attr]
        if self._handshake_sent_at is not None:
            self._rtt_sample(now - self._handshake_sent_at)
        self._send_control_once("ACK")
        self._become_established()

    def _handle_ack(self) -> None:
        if self.is_client or self.state != self.SYN_RECEIVED:
            return
        now = self.host.network.loop.now  # type: ignore[union-attr]
        if self._handshake_sent_at is not None:
            self._rtt_sample(now - self._handshake_sent_at)
        self._become_established()

    def _handle_data(self, segment: Segment) -> None:
        if self.state == self.SYN_RECEIVED:
            # The handshake ACK was reordered behind the first data segment;
            # data implies the peer is established.
            self._become_established()
        if self.state != self.ESTABLISHED:
            return
        self._reassembly[segment.seq] = segment.payload
        while self._recv_next in self._reassembly:
            payload = self._reassembly.pop(self._recv_next)
            self._recv_next += len(payload)
            self.bytes_received += len(payload)
            if self.on_data is not None:
                self.on_data(payload)
            if self.state != self.ESTABLISHED:
                break

    def _handle_fin(self) -> None:
        if self.state == self.CLOSED:
            return
        callback = self.on_close
        self._teardown()
        if callback is not None:
            callback()

    def _handle_rst(self) -> None:
        if self.state == self.CLOSED:
            return
        if self.state == self.SYN_SENT:
            exc: Exception = ConnectionRefused(
                f"{self.remote_ip}:{self.remote_port} refused the connection"
            )
        else:
            exc = ConnectionReset(f"{self.remote_ip}:{self.remote_port} reset the connection")
        self._fail(exc)

    def _become_established(self) -> None:
        if self.state == self.ESTABLISHED:
            return
        self.state = self.ESTABLISHED
        self.established_at = self.host.network.loop.now  # type: ignore[union-attr]
        if self._connect_timer is not None:
            self._connect_timer.cancel()
            self._connect_timer = None
        callback = self._on_established
        self._on_established = None
        if callback is not None:
            callback(self)

    # -- internals ------------------------------------------------------------

    def _rtt_sample(self, sample_ms: float) -> None:
        if self.srtt_ms is None:
            self.srtt_ms = sample_ms
        else:
            self.srtt_ms = 0.875 * self.srtt_ms + 0.125 * sample_ms

    def _data_rto_ms(self) -> float:
        if self.srtt_ms is None:
            return MIN_DATA_RTO_MS
        return max(MIN_DATA_RTO_MS, 2.0 * self.srtt_ms)

    def _make_segment(self, flag: str, payload: bytes = b"", seq: int = 0) -> Segment:
        return Segment(
            src_ip=self.local_ip,
            src_port=self.local_port,
            dst_ip=self.remote_ip,
            dst_port=self.remote_port,
            flag=flag,
            conn_id=self.conn_id,
            payload=payload,
            seq=seq,
        )

    def _send_control(self, flag: str, attempts_left: int, rto_ms: float) -> None:
        """Send a handshake segment with exponential-backoff retransmission."""
        segment = self._make_segment(flag)
        self._transmit_handshake(segment, attempts_left, rto_ms)

    def _send_control_once(self, flag: str) -> None:
        segment = self._make_segment(flag)
        assert self.host.network is not None
        self.host.network.transmit(self.host, segment)

    def _transmit_handshake(self, segment: Segment, attempts_left: int, rto_ms: float) -> None:
        if self.state not in (self.SYN_SENT, self.SYN_RECEIVED):
            return
        assert self.host.network is not None
        loop = self.host.network.loop

        def retransmit() -> None:
            if self.state not in (self.SYN_SENT, self.SYN_RECEIVED):
                return
            if attempts_left <= 1:
                self._fail(
                    ConnectTimeout(
                        f"handshake with {self.remote_ip}:{self.remote_port} "
                        f"failed after {SYN_MAX_ATTEMPTS} attempts"
                    )
                )
                return
            self._handshake_sent_at = loop.now
            self._transmit_handshake(segment, attempts_left - 1, rto_ms * 2.0)

        delivered = self.host.network.transmit(self.host, segment)
        # Whether or not this copy survived, arm the retransmission timer;
        # it is disarmed implicitly by the state change on establishment.
        if not delivered or attempts_left > 0:
            loop.call_later(rto_ms, retransmit)

    def _transmit_with_retry(self, segment: Segment, attempts_left: int, rto_ms: float) -> None:
        """Transmit a data segment, retransmitting after RTO on loss."""
        assert self.host.network is not None
        network = self.host.network

        def on_lost(_packet: object) -> None:
            if self.state != self.ESTABLISHED:
                return
            if attempts_left <= 1:
                self._fail(
                    ConnectionReset(
                        f"data to {self.remote_ip}:{self.remote_port} lost "
                        f"{DATA_MAX_ATTEMPTS} times"
                    )
                )
                return
            network.loop.call_later(
                rto_ms,
                self._transmit_with_retry,
                segment,
                attempts_left - 1,
                rto_ms * 2.0,
            )

        network.transmit(self.host, segment, on_lost=on_lost)

    def _fail(self, exc: Exception) -> None:
        callback = self.on_error
        self._teardown()
        if callback is not None:
            callback(exc)

    def _teardown(self) -> None:
        self.state = self.CLOSED
        if self._connect_timer is not None:
            self._connect_timer.cancel()
            self._connect_timer = None
        self.host.unregister_connection(self.conn_id)
        self._reassembly.clear()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        role = "client" if self.is_client else "server"
        return (
            f"SimTcpConnection({role} {self.local_ip}:{self.local_port} <-> "
            f"{self.remote_ip}:{self.remote_port} state={self.state})"
        )
