"""Geography-aware path latency model.

The one-way delay between two simulated hosts is::

    propagation = great_circle_km(src, dst) / FIBER_KM_PER_MS * inflation
    one_way     = propagation + src.access.delay + dst.access.delay
                  + queueing jitter (sampled per packet)

``inflation`` captures the fact that Internet routes are not geodesics: real
paths detour through exchange points and submarine cable landing sites.
Measured inflation factors cluster between ~1.3 (well-peered same-continent
paths) and ~2.2 (intercontinental paths) [see e.g. RIPE Atlas studies], so
the model keys inflation on the (continent, continent) pair.

Loss is Bernoulli per packet: a small core rate plus the access-link rates
of both endpoints.  Home access links (cable/DSL) get a higher base delay,
heavier jitter, and more loss than EC2 data-centre uplinks, which is what
produces the home-vs-EC2 contrast reported in the paper.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Optional, Tuple

from repro.netsim.geo import Coordinates, great_circle_km

#: Speed of light in fiber, expressed in kilometres per millisecond.
FIBER_KM_PER_MS = 200.0

#: Minimum one-way propagation even for co-located hosts (last-mile, LAN).
MIN_PROPAGATION_MS = 0.15


@dataclass(frozen=True)
class AccessProfile:
    """Access-network characteristics of one endpoint.

    Attributes
    ----------
    name:
        Human-readable profile name (``"datacenter"``, ``"home-cable"`` …).
    delay_ms:
        Fixed one-way delay added by the access link.
    jitter_ms:
        Scale of the exponential queueing jitter added per packet.
    loss_rate:
        Bernoulli per-packet loss probability contributed by this link.
    """

    name: str
    delay_ms: float = 0.0
    jitter_ms: float = 0.0
    loss_rate: float = 0.0

    def __post_init__(self) -> None:
        if self.delay_ms < 0 or self.jitter_ms < 0:
            raise ValueError("access delay/jitter must be non-negative")
        if not 0.0 <= self.loss_rate < 1.0:
            raise ValueError("loss_rate must be in [0, 1)")


#: Profile of an EC2 instance: negligible access delay, tiny jitter.
DATACENTER = AccessProfile("datacenter", delay_ms=0.3, jitter_ms=0.15, loss_rate=0.0)

#: Profile of a home broadband connection behind a Raspberry Pi.
HOME_BROADBAND = AccessProfile("home-broadband", delay_ms=4.0, jitter_ms=1.2, loss_rate=0.002)

#: Profile of a well-connected server (resolver PoP, authoritative server).
SERVER = AccessProfile("server", delay_ms=0.2, jitter_ms=0.1, loss_rate=0.0)


@dataclass(frozen=True)
class PathCharacteristics:
    """Deterministic (pre-jitter) characteristics of a host-to-host path."""

    distance_km: float
    inflation: float
    propagation_ms: float
    fixed_one_way_ms: float
    jitter_scale_ms: float
    loss_rate: float

    @property
    def base_rtt_ms(self) -> float:
        """Round-trip time with zero jitter (2 × fixed one-way)."""
        return 2.0 * self.fixed_one_way_ms


@dataclass
class LatencyModel:
    """Computes per-packet one-way delays and loss between hosts.

    Parameters
    ----------
    inflation_by_pair:
        Route-inflation factors keyed by frozenset of continent codes
        (``frozenset({"NA", "EU"})``); a singleton frozenset keys
        same-continent paths.
    default_inflation:
        Used when a pair has no explicit entry.
    core_jitter_ms:
        Exponential jitter scale contributed by the network core,
        proportional applied on top of access jitter.
    core_loss_rate:
        Per-packet loss probability of the core path.
    """

    inflation_by_pair: Dict[FrozenSet[str], float] = field(default_factory=dict)
    default_inflation: float = 1.8
    core_jitter_ms: float = 0.25
    core_loss_rate: float = 0.0005

    @classmethod
    def internet_default(cls) -> "LatencyModel":
        """Model calibrated for the paper's vantage points (see DESIGN.md §5)."""
        pairs = {
            frozenset({"NA"}): 1.55,
            frozenset({"EU"}): 1.5,
            frozenset({"AS"}): 1.9,
            frozenset({"OC"}): 1.7,
            frozenset({"NA", "EU"}): 1.45,
            frozenset({"NA", "AS"}): 1.55,
            frozenset({"EU", "AS"}): 1.6,
            frozenset({"NA", "OC"}): 1.6,
            frozenset({"EU", "OC"}): 1.8,
            frozenset({"AS", "OC"}): 1.7,
        }
        return cls(inflation_by_pair=pairs)

    def inflation_for(self, continent_a: str, continent_b: str) -> float:
        """Route-inflation factor between two continents."""
        key = frozenset({continent_a, continent_b})
        return self.inflation_by_pair.get(key, self.default_inflation)

    def path(
        self,
        src_coords: Coordinates,
        dst_coords: Coordinates,
        src_continent: str,
        dst_continent: str,
        src_access: AccessProfile,
        dst_access: AccessProfile,
    ) -> PathCharacteristics:
        """Compute the deterministic characteristics of a path."""
        distance = great_circle_km(src_coords, dst_coords)
        inflation = self.inflation_for(src_continent, dst_continent)
        propagation = max(MIN_PROPAGATION_MS, distance / FIBER_KM_PER_MS * inflation)
        fixed = propagation + src_access.delay_ms + dst_access.delay_ms
        jitter_scale = self.core_jitter_ms + src_access.jitter_ms + dst_access.jitter_ms
        loss = 1.0 - (
            (1.0 - self.core_loss_rate)
            * (1.0 - src_access.loss_rate)
            * (1.0 - dst_access.loss_rate)
        )
        return PathCharacteristics(
            distance_km=distance,
            inflation=inflation,
            propagation_ms=propagation,
            fixed_one_way_ms=fixed,
            jitter_scale_ms=jitter_scale,
            loss_rate=loss,
        )

    @staticmethod
    def sample_one_way_ms(path: PathCharacteristics, rng: random.Random) -> float:
        """Sample a per-packet one-way delay: fixed part + exponential jitter."""
        jitter = rng.expovariate(1.0 / path.jitter_scale_ms) if path.jitter_scale_ms > 0 else 0.0
        return path.fixed_one_way_ms + jitter

    @staticmethod
    def sample_loss(path: PathCharacteristics, rng: random.Random) -> bool:
        """Sample whether a packet on this path is lost."""
        return path.loss_rate > 0 and rng.random() < path.loss_rate

    @staticmethod
    def combined_loss_rate(*rates: float) -> float:
        """Loss probability of independent loss processes stacked on a path.

        Used to merge a path's steady-state loss with transient spikes
        injected by the fault subsystem; each rate is clamped to [0, 1].
        """
        survive = 1.0
        for rate in rates:
            survive *= 1.0 - min(1.0, max(0.0, rate))
        return 1.0 - survive
