"""Event trace recorder — a pcap-lite for the simulator.

Attach an :class:`EventTrace` to a :class:`~repro.netsim.network.Network`
and every packet send/loss/delivery is recorded with its virtual timestamp.
Used by tests to assert on protocol behaviour (e.g. "a fresh DoH query
crosses the wire exactly N times") and handy when debugging new protocols.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from typing import Dict, Iterator, List, Optional, Union

from repro.netsim.packet import Datagram, Segment

Packet = Union[Datagram, Segment]


@dataclass(frozen=True)
class TraceEvent:
    """One recorded simulator event."""

    time_ms: float
    kind: str  # "sent" | "delivered" | "lost" | "unroutable"
    protocol: str  # "udp" | "tcp" | "icmp"
    src_ip: str
    src_port: int
    dst_ip: str
    dst_port: int
    size: int
    flag: Optional[str] = None  # TCP flag, if a segment
    delay_ms: Optional[float] = None
    packet_id: int = 0

    def describe(self) -> str:
        """One-line human-readable rendering."""
        flag = f" {self.flag}" if self.flag else ""
        return (
            f"{self.time_ms:10.3f}ms {self.kind:<11} {self.protocol}{flag} "
            f"{self.src_ip}:{self.src_port} -> {self.dst_ip}:{self.dst_port} "
            f"({self.size}B)"
        )

    def to_json(self) -> str:
        """Compact JSON line (same convention as obs span export)."""
        return json.dumps(asdict(self), sort_keys=True, separators=(",", ":"))


@dataclass
class EventTrace:
    """A bounded in-memory list of :class:`TraceEvent`."""

    max_events: int = 1_000_000
    events: List[TraceEvent] = field(default_factory=list)

    def record(self, time_ms: float, kind: str, packet: Packet, delay_ms: Optional[float] = None) -> None:
        if len(self.events) >= self.max_events:
            return
        if isinstance(packet, Segment):
            protocol: str = "tcp"
            flag: Optional[str] = packet.flag
        else:
            protocol = packet.protocol
            flag = None
        self.events.append(
            TraceEvent(
                time_ms=time_ms,
                kind=kind,
                protocol=protocol,
                src_ip=packet.src_ip,
                src_port=packet.src_port,
                dst_ip=packet.dst_ip,
                dst_port=packet.dst_port,
                size=packet.size,
                flag=flag,
                delay_ms=delay_ms,
                packet_id=packet.packet_id,
            )
        )

    def clear(self) -> None:
        self.events.clear()

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self.events)

    def filter(self, kind: Optional[str] = None, protocol: Optional[str] = None) -> List[TraceEvent]:
        """Events matching the given kind and/or protocol."""
        out = self.events
        if kind is not None:
            out = [e for e in out if e.kind == kind]
        if protocol is not None:
            out = [e for e in out if e.protocol == protocol]
        return list(out)

    def sent_count(self, protocol: Optional[str] = None) -> int:
        return len(self.filter(kind="sent", protocol=protocol))

    def by_protocol(self, kind: Optional[str] = None) -> Dict[str, int]:
        """Event counts keyed by protocol, optionally for one kind only."""
        counts: Dict[str, int] = {}
        for event in self.filter(kind=kind):
            counts[event.protocol] = counts.get(event.protocol, 0) + 1
        return dict(sorted(counts.items()))

    def between_ms(self, start_ms: float, end_ms: float) -> List[TraceEvent]:
        """Events with ``start_ms <= time_ms < end_ms`` (half-open window).

        The half-open convention lets adjacent windows partition a trace
        without double-counting events on the boundary — the same contract
        as span ``[start_ms, end_ms)`` intervals in :mod:`repro.obs`.
        """
        return [e for e in self.events if start_ms <= e.time_ms < end_ms]

    def describe(self) -> str:
        """Multi-line rendering of the whole trace."""
        return "\n".join(event.describe() for event in self.events)

    def to_jsonl(self) -> str:
        """The whole trace as JSON lines — one event per line."""
        return "\n".join(event.to_json() for event in self.events) + ("\n" if self.events else "")

    def save_jsonl(self, path: str) -> None:
        """Write the trace to ``path`` in the shared JSONL event format."""
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.to_jsonl())
