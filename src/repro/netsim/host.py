"""Simulated hosts.

A :class:`Host` is a named endpoint with an IPv4 address, geographic
coordinates, a continent code (used by the latency model's route-inflation
table), and an access profile.  Hosts expose the registration surface used
by the socket layer: UDP port bindings, TCP listeners, per-connection demux,
and an ICMP policy.

Application code should not normally touch the ``_deliver_*`` methods; they
are invoked by :class:`repro.netsim.network.Network` when packets arrive.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Dict, Optional

from repro.errors import AddressError, SocketError
from repro.netsim.geo import Coordinates
from repro.netsim.latency import SERVER, AccessProfile
from repro.netsim.packet import Datagram, Segment

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.netsim.icmp import IcmpPolicy
    from repro.netsim.network import Network
    from repro.netsim.sockets import SimTcpConnection

#: First ephemeral port handed out by :meth:`Host.allocate_port`.
EPHEMERAL_PORT_START = 49152


@dataclass
class HostImpairments:
    """Time-varying impairments placed on a host by a fault injector.

    These are the mutation points the fault subsystem uses to model
    transient outages and degradations; they compose with (and take
    precedence over) the host's static policies.  All fields are reverted
    by the injector when a fault window closes.

    Attributes
    ----------
    syn_override:
        ``"refuse"`` answers every inbound SYN with RST, ``"drop"``
        silently discards it (the client times out).  ``None`` defers to
        the host's normal :attr:`Host.syn_policy`.
    tls_failure:
        When True the host aborts every TLS handshake it serves with a
        fatal alert (models certificate/configuration breakage windows).
    extra_loss_rate:
        Additional Bernoulli loss applied to every packet sent to or from
        this host (a loss spike on its links).
    extra_delay_ms:
        Additional one-way delay applied to every packet sent to or from
        this host (a latency spike / congested path).
    extra_processing_ms:
        Additional frontend service time per query (slow-start /
        overload degradation).
    """

    syn_override: Optional[str] = None
    tls_failure: bool = False
    extra_loss_rate: float = 0.0
    extra_delay_ms: float = 0.0
    extra_processing_ms: float = 0.0

    def clear(self) -> None:
        """Reset every impairment to its neutral value."""
        self.syn_override = None
        self.tls_failure = False
        self.extra_loss_rate = 0.0
        self.extra_delay_ms = 0.0
        self.extra_processing_ms = 0.0

    @property
    def any_active(self) -> bool:
        return (
            self.syn_override is not None
            or self.tls_failure
            or self.extra_loss_rate > 0.0
            or self.extra_delay_ms > 0.0
            or self.extra_processing_ms > 0.0
        )


class Host:
    """One simulated machine attached to a :class:`Network`.

    Parameters
    ----------
    name:
        Unique human-readable identifier (``"vantage-ohio"``,
        ``"site-cloudflare-fra"``).
    ip:
        Unicast IPv4 address, unique within the network.
    coords:
        Geographic position used for propagation delay.
    continent:
        Two-letter continent code (``"NA"``, ``"EU"``, ``"AS"``, ``"OC"``).
    access:
        Access-link profile; defaults to a well-connected server.
    """

    def __init__(
        self,
        name: str,
        ip: str,
        coords: Coordinates,
        continent: str,
        access: AccessProfile = SERVER,
    ) -> None:
        self.name = name
        self.ip = ip
        self.coords = coords
        self.continent = continent
        self.access = access
        self.network: Optional["Network"] = None
        self.icmp_policy: Optional["IcmpPolicy"] = None

        self._udp_handlers: Dict[int, Callable[[Datagram, "Host"], None]] = {}
        self._tcp_listeners: Dict[int, Callable[["SimTcpConnection"], None]] = {}
        self._tcp_connections: Dict[int, "SimTcpConnection"] = {}
        self._next_port = EPHEMERAL_PORT_START
        #: When True the host ignores all inbound packets (simulates a host
        #: that is down or firewalled off; used for availability modelling).
        self.blackholed = False
        #: Optional connection-admission policy consulted for each inbound
        #: SYN: return "accept", "refuse" (RST back) or "drop" (silent).
        #: Used by resolver deployments to model flaky availability.
        self.syn_policy: Optional[Callable[[Segment], str]] = None
        #: Mutable impairment state driven by the fault-injection subsystem
        #: (see :mod:`repro.faults`); neutral by default.
        self.impairments = HostImpairments()

    # -- port management ---------------------------------------------------

    def allocate_port(self) -> int:
        """Return a fresh ephemeral port number."""
        port = self._next_port
        self._next_port += 1
        if self._next_port > 65535:
            self._next_port = EPHEMERAL_PORT_START
        return port

    def bind_udp(self, port: int, handler: Callable[[Datagram, "Host"], None]) -> None:
        """Register ``handler(datagram, host)`` for UDP packets to ``port``."""
        if port in self._udp_handlers:
            raise AddressError(f"{self.name}: UDP port {port} already bound")
        self._udp_handlers[port] = handler

    def unbind_udp(self, port: int) -> None:
        self._udp_handlers.pop(port, None)

    def listen_tcp(self, port: int, acceptor: Callable[["SimTcpConnection"], None]) -> None:
        """Register ``acceptor(connection)`` for inbound TCP connections."""
        if port in self._tcp_listeners:
            raise AddressError(f"{self.name}: TCP port {port} already listening")
        self._tcp_listeners[port] = acceptor

    def close_tcp_listener(self, port: int) -> None:
        self._tcp_listeners.pop(port, None)

    def tcp_listener(self, port: int) -> Optional[Callable[["SimTcpConnection"], None]]:
        return self._tcp_listeners.get(port)

    # -- connection demux ----------------------------------------------------

    def register_connection(self, conn: "SimTcpConnection") -> None:
        self._tcp_connections[conn.conn_id] = conn

    def unregister_connection(self, conn_id: int) -> None:
        self._tcp_connections.pop(conn_id, None)

    def connection(self, conn_id: int) -> Optional["SimTcpConnection"]:
        return self._tcp_connections.get(conn_id)

    # -- delivery (called by Network) ---------------------------------------

    def deliver_datagram(self, dgram: Datagram) -> None:
        """Dispatch an arriving UDP/ICMP datagram."""
        if self.blackholed:
            return
        if dgram.protocol == "icmp":
            from repro.netsim.icmp import handle_icmp  # local import: cycle

            handle_icmp(self, dgram)
            return
        handler = self._udp_handlers.get(dgram.dst_port)
        if handler is not None:
            handler(dgram, self)
        # Unbound UDP ports silently drop, as real stacks do from the point
        # of view of a sender that never sees the ICMP port-unreachable.

    def deliver_segment(self, segment: Segment) -> None:
        """Dispatch an arriving TCP segment."""
        if self.blackholed:
            return
        from repro.netsim.sockets import SimTcpConnection  # local import: cycle

        conn = self._tcp_connections.get(segment.conn_id)
        if conn is not None:
            conn.handle_segment(segment)
            return
        if segment.flag == "SYN":
            # Fault-injection override pre-empts both the listener table and
            # the deployment's own admission policy: an outage window turns
            # the whole host away regardless of its steady-state behaviour.
            override = self.impairments.syn_override
            if override == "refuse":
                self._refuse(segment)
                return
            if override == "drop":
                return
            acceptor = self._tcp_listeners.get(segment.dst_port)
            if acceptor is None:
                self._refuse(segment)
                return
            if self.syn_policy is not None:
                verdict = self.syn_policy(segment)
                if verdict == "refuse":
                    self._refuse(segment)
                    return
                if verdict == "drop":
                    return
            SimTcpConnection.accept_from_syn(self, segment, acceptor)
            return
        # Segment for a connection we no longer know: real stacks answer RST
        # to non-RST segments; we simply drop, which the peer handles by RTO.

    def _refuse(self, syn: Segment) -> None:
        """Answer a SYN to a closed port with RST (connection refused)."""
        if self.network is None:
            raise SocketError(f"{self.name} is not attached to a network")
        rst = Segment(
            src_ip=syn.dst_ip,
            src_port=syn.dst_port,
            dst_ip=syn.src_ip,
            dst_port=syn.src_port,
            flag="RST",
            conn_id=syn.conn_id,
        )
        self.network.transmit(self, rst)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Host({self.name} ip={self.ip} {self.continent})"
