"""Geographic primitives: coordinates and great-circle distance.

The latency model in :mod:`repro.netsim.latency` turns great-circle
kilometres into propagation milliseconds, so every simulated host carries a
:class:`Coordinates`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

EARTH_RADIUS_KM = 6371.0088  # mean Earth radius (IUGG)


@dataclass(frozen=True)
class Coordinates:
    """A (latitude, longitude) pair in decimal degrees."""

    lat: float
    lon: float

    def __post_init__(self) -> None:
        if not -90.0 <= self.lat <= 90.0:
            raise ValueError(f"latitude {self.lat} out of range [-90, 90]")
        if not -180.0 <= self.lon <= 180.0:
            raise ValueError(f"longitude {self.lon} out of range [-180, 180]")

    def distance_km(self, other: "Coordinates") -> float:
        """Great-circle distance to ``other`` in kilometres."""
        return great_circle_km(self, other)


def great_circle_km(a: Coordinates, b: Coordinates) -> float:
    """Great-circle distance between two points using the haversine formula.

    Accurate to ~0.5% (the Earth is not a perfect sphere), which is far
    below the route-inflation uncertainty in the latency model.
    """
    lat1, lon1 = math.radians(a.lat), math.radians(a.lon)
    lat2, lon2 = math.radians(b.lat), math.radians(b.lon)
    dlat = lat2 - lat1
    dlon = lon2 - lon1
    h = math.sin(dlat / 2.0) ** 2 + math.cos(lat1) * math.cos(lat2) * math.sin(dlon / 2.0) ** 2
    return 2.0 * EARTH_RADIUS_KM * math.asin(min(1.0, math.sqrt(h)))
