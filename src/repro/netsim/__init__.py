"""Deterministic discrete-event Internet simulator.

This package provides the network substrate under the measurement platform:
a virtual clock and event loop (:mod:`repro.netsim.clock`), a geography-aware
latency model (:mod:`repro.netsim.latency`), a network fabric with unicast
and anycast routing (:mod:`repro.netsim.network`), simulated hosts and
sockets (:mod:`repro.netsim.host`, :mod:`repro.netsim.sockets`), and ICMP
echo support (:mod:`repro.netsim.icmp`).

The simulator models the *timing structure* of Internet paths — propagation
delay, route inflation, queueing jitter, access-link delay, and packet loss —
which is exactly what determines encrypted-DNS response times in the paper.
It does not model bandwidth contention or congestion control; DNS messages
are far below the bandwidth-delay product of any modern path.
"""

from repro.netsim.clock import EventLoop, Timer
from repro.netsim.geo import Coordinates, great_circle_km
from repro.netsim.latency import AccessProfile, LatencyModel, PathCharacteristics
from repro.netsim.packet import Datagram, Segment
from repro.netsim.network import Network
from repro.netsim.host import Host
from repro.netsim.sockets import SimTcpConnection, SimUdpSocket
from repro.netsim.icmp import IcmpPolicy, PingResult
from repro.netsim.trace import EventTrace, TraceEvent

__all__ = [
    "AccessProfile",
    "Coordinates",
    "Datagram",
    "EventLoop",
    "EventTrace",
    "Host",
    "IcmpPolicy",
    "LatencyModel",
    "Network",
    "PathCharacteristics",
    "PingResult",
    "Segment",
    "SimTcpConnection",
    "SimUdpSocket",
    "Timer",
    "TraceEvent",
    "great_circle_km",
]
