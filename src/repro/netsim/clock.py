"""Virtual clock and discrete-event loop.

All simulated time is measured in **milliseconds** as a ``float``.  The event
loop is a plain heap-ordered scheduler: callbacks are scheduled at absolute
virtual times and executed in order.  Ties break by insertion order, which
keeps runs fully deterministic.

The loop deliberately has no notion of wall-clock time; a full month-long
measurement campaign runs in however long the Python executes.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, List, Optional, Tuple

from repro.errors import ClockError


class Timer:
    """Handle for a scheduled event, supporting cancellation.

    Returned by :meth:`EventLoop.call_at` / :meth:`EventLoop.call_later`.
    Cancelling a timer is O(1); the dead entry is discarded lazily when the
    heap pops it.
    """

    __slots__ = ("when", "_callback", "_args", "_cancelled", "_fired")

    def __init__(self, when: float, callback: Callable[..., None], args: Tuple[Any, ...]):
        self.when = when
        self._callback = callback
        self._args = args
        self._cancelled = False
        self._fired = False

    def cancel(self) -> None:
        """Prevent the callback from running.  Idempotent."""
        self._cancelled = True

    @property
    def cancelled(self) -> bool:
        return self._cancelled

    @property
    def fired(self) -> bool:
        return self._fired

    def _run(self) -> None:
        if not self._cancelled:
            self._fired = True
            self._callback(*self._args)


class EventLoop:
    """Heap-based discrete-event scheduler with a millisecond virtual clock."""

    def __init__(self, start_time: float = 0.0) -> None:
        self._now = float(start_time)
        self._heap: List[Tuple[float, int, Timer]] = []
        self._seq = itertools.count()
        self._running = False
        self._events_processed = 0

    @property
    def now(self) -> float:
        """Current virtual time in milliseconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Total number of callbacks executed so far (for diagnostics)."""
        return self._events_processed

    @property
    def pending(self) -> int:
        """Number of scheduled (possibly cancelled) events still queued."""
        return len(self._heap)

    def call_at(self, when: float, callback: Callable[..., None], *args: Any) -> Timer:
        """Schedule ``callback(*args)`` at absolute virtual time ``when``."""
        if when < self._now:
            raise ClockError(
                f"cannot schedule at t={when:.6f} ms; clock already at {self._now:.6f} ms"
            )
        timer = Timer(when, callback, args)
        heapq.heappush(self._heap, (when, next(self._seq), timer))
        return timer

    def call_later(self, delay: float, callback: Callable[..., None], *args: Any) -> Timer:
        """Schedule ``callback(*args)`` after ``delay`` milliseconds."""
        if delay < 0:
            raise ClockError(f"negative delay {delay!r}")
        return self.call_at(self._now + delay, callback, *args)

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> float:
        """Run events in order until the queue drains.

        Parameters
        ----------
        until:
            If given, stop once the next event would occur strictly after
            this virtual time; the clock is advanced to ``until``.
        max_events:
            Safety valve for tests; raise :class:`ClockError` if exceeded.

        Returns the virtual time at which the loop stopped.
        """
        if self._running:
            raise ClockError("event loop is already running (re-entrant run())")
        self._running = True
        try:
            processed = 0
            while self._heap:
                when, _seq, timer = self._heap[0]
                if until is not None and when > until:
                    break
                heapq.heappop(self._heap)
                if timer.cancelled:
                    continue
                self._now = when
                timer._run()
                self._events_processed += 1
                processed += 1
                if max_events is not None and processed > max_events:
                    raise ClockError(f"exceeded max_events={max_events}")
            if until is not None and self._now < until:
                self._now = until
        finally:
            self._running = False
        return self._now

    def advance(self, delta: float) -> float:
        """Run all events within the next ``delta`` milliseconds."""
        if delta < 0:
            raise ClockError(f"negative advance {delta!r}")
        return self.run(until=self._now + delta)
