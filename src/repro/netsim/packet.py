"""Packet dataclasses carried by the simulated network.

The simulator is message-granular rather than byte-granular: a
:class:`Datagram` models one UDP datagram or ICMP message, while a
:class:`Segment` models one TCP segment (including the control segments of
the three-way handshake).  Payloads are real ``bytes`` — DNS messages on the
wire are genuine RFC 1035 encodings produced by :mod:`repro.dnswire`.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Optional

_packet_ids = itertools.count(1)


def _next_packet_id() -> int:
    return next(_packet_ids)


@dataclass
class Datagram:
    """A UDP datagram (or ICMP message when ``protocol == "icmp"``)."""

    src_ip: str
    src_port: int
    dst_ip: str
    dst_port: int
    payload: bytes
    protocol: str = "udp"
    packet_id: int = field(default_factory=_next_packet_id)

    @property
    def size(self) -> int:
        """Payload size in bytes (headers are not modelled)."""
        return len(self.payload)


# TCP segment flags are modelled as simple strings for readability.
SYN = "SYN"
SYN_ACK = "SYN-ACK"
ACK = "ACK"
FIN = "FIN"
RST = "RST"
DATA = "DATA"


@dataclass
class Segment:
    """A TCP segment.

    ``conn_id`` ties the segment to a :class:`~repro.netsim.sockets.SimTcpConnection`
    pair; the simulator does not model sequence-number arithmetic, but it does
    model handshake round trips, MSS segmentation, and retransmission on loss,
    which are the components that matter for DNS-over-TCP/TLS/HTTPS timing.
    """

    src_ip: str
    src_port: int
    dst_ip: str
    dst_port: int
    flag: str
    conn_id: int
    payload: bytes = b""
    seq: int = 0
    packet_id: int = field(default_factory=_next_packet_id)

    @property
    def size(self) -> int:
        return len(self.payload)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Segment({self.flag} {self.src_ip}:{self.src_port}->"
            f"{self.dst_ip}:{self.dst_port} conn={self.conn_id} "
            f"seq={self.seq} len={len(self.payload)})"
        )
