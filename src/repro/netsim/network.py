"""The network fabric: host registry, unicast/anycast routing, delivery.

:class:`Network` owns the event loop, the latency model, and a seeded RNG
(used for per-packet jitter and loss).  Sending is a single call —
:meth:`Network.transmit` — which resolves the destination (following anycast
groups to the lowest-latency site), samples loss and one-way delay, and
schedules delivery on the event loop.

Anycast is modelled the way it behaves in practice for measurement studies:
BGP routes a client to a stable nearby site, so site selection here is the
minimum fixed one-way delay from the source, cached per (source, anycast IP).
"""

from __future__ import annotations

import random
from typing import Callable, Dict, List, Optional, Tuple, Union

from repro.errors import AddressError, RoutingError
from repro.netsim.clock import EventLoop
from repro.netsim.host import Host
from repro.netsim.latency import LatencyModel, PathCharacteristics
from repro.netsim.packet import Datagram, Segment
from repro.netsim.trace import EventTrace
from repro.obs import get_metrics

Packet = Union[Datagram, Segment]


def _packet_protocol(packet: Packet) -> str:
    return "tcp" if isinstance(packet, Segment) else packet.protocol


class Network:
    """A simulated Internet: hosts, anycast groups, and packet delivery."""

    def __init__(
        self,
        loop: Optional[EventLoop] = None,
        latency_model: Optional[LatencyModel] = None,
        seed: int = 0,
        trace: Optional[EventTrace] = None,
    ) -> None:
        self.loop = loop if loop is not None else EventLoop()
        self.latency = latency_model if latency_model is not None else LatencyModel.internet_default()
        self.rng = random.Random(seed)
        self.trace = trace
        self._hosts_by_ip: Dict[str, Host] = {}
        self._hosts_by_name: Dict[str, Host] = {}
        self._anycast: Dict[str, List[Host]] = {}
        self._anycast_choice: Dict[Tuple[str, str], Host] = {}
        self._path_cache: Dict[Tuple[str, str], PathCharacteristics] = {}

    # -- topology ------------------------------------------------------------

    def attach(self, host: Host) -> Host:
        """Attach a host to the network; its unicast IP becomes routable."""
        if host.ip in self._hosts_by_ip:
            raise AddressError(f"duplicate IP {host.ip} ({host.name})")
        if host.name in self._hosts_by_name:
            raise AddressError(f"duplicate host name {host.name}")
        self._hosts_by_ip[host.ip] = host
        self._hosts_by_name[host.name] = host
        host.network = self
        return host

    def add_anycast(self, anycast_ip: str, sites: List[Host]) -> None:
        """Announce ``anycast_ip`` from every host in ``sites``.

        Sites must already be attached.  The anycast IP must not collide
        with any unicast address.
        """
        if not sites:
            raise AddressError(f"anycast group {anycast_ip} has no sites")
        if anycast_ip in self._hosts_by_ip:
            raise AddressError(f"anycast IP {anycast_ip} collides with a unicast host")
        for site in sites:
            if site.ip not in self._hosts_by_ip:
                raise AddressError(f"anycast site {site.name} is not attached")
        self._anycast[anycast_ip] = list(sites)

    def host_by_ip(self, ip: str) -> Optional[Host]:
        return self._hosts_by_ip.get(ip)

    def host_by_name(self, name: str) -> Optional[Host]:
        return self._hosts_by_name.get(name)

    @property
    def hosts(self) -> List[Host]:
        return list(self._hosts_by_ip.values())

    def anycast_sites(self, anycast_ip: str) -> List[Host]:
        return list(self._anycast.get(anycast_ip, []))

    def is_anycast(self, ip: str) -> bool:
        return ip in self._anycast

    # -- routing ---------------------------------------------------------------

    def resolve_destination(self, src: Host, dst_ip: str) -> Host:
        """Resolve ``dst_ip`` to a concrete host, following anycast groups."""
        direct = self._hosts_by_ip.get(dst_ip)
        if direct is not None:
            return direct
        sites = self._anycast.get(dst_ip)
        if sites is None:
            raise RoutingError(f"no route to {dst_ip} from {src.name}")
        cache_key = (src.ip, dst_ip)
        chosen = self._anycast_choice.get(cache_key)
        if chosen is None or chosen.ip not in self._hosts_by_ip:
            chosen = min(sites, key=lambda s: self.path_between(src, s).fixed_one_way_ms)
            self._anycast_choice[cache_key] = chosen
        return chosen

    def path_between(self, src: Host, dst: Host) -> PathCharacteristics:
        """Deterministic path characteristics between two hosts (cached)."""
        key = (src.name, dst.name)
        path = self._path_cache.get(key)
        if path is None:
            path = self.latency.path(
                src.coords,
                dst.coords,
                src.continent,
                dst.continent,
                src.access,
                dst.access,
            )
            self._path_cache[key] = path
        return path

    def rtt_between(self, src: Host, dst_ip: str) -> float:
        """Base RTT (ms, no jitter) between ``src`` and ``dst_ip``."""
        dst = self.resolve_destination(src, dst_ip)
        return self.path_between(src, dst).base_rtt_ms

    # -- transmission ------------------------------------------------------------

    def transmit(
        self,
        src: Host,
        packet: Packet,
        on_lost: Optional[Callable[[Packet], None]] = None,
    ) -> bool:
        """Send one packet from ``src`` toward ``packet.dst_ip``.

        Samples loss and one-way delay, then schedules delivery.  Returns
        ``True`` if the packet was scheduled for delivery, ``False`` if it
        was lost (in which case ``on_lost`` — if provided — is invoked
        immediately so the sender can arm a retransmission timer).

        An unroutable destination is treated as loss rather than an error:
        from a measurement client's perspective a dead resolver and a
        blackholed path are indistinguishable (both end in a timeout).
        """
        metrics = get_metrics()
        try:
            dst = self.resolve_destination(src, packet.dst_ip)
        except RoutingError:
            if self.trace is not None:
                self.trace.record(self.loop.now, "unroutable", packet)
            if metrics.enabled:
                metrics.inc("net.packets_unroutable", protocol=_packet_protocol(packet))
            if on_lost is not None:
                on_lost(packet)
            return False
        path = self.path_between(src, dst)
        # Transient impairments (fault windows) stack on top of the path's
        # steady-state characteristics at both endpoints.
        extra_delay = 0.0
        impaired = src.impairments.any_active or dst.impairments.any_active
        if impaired:
            if metrics.enabled:
                metrics.inc("net.fault_hits", protocol=_packet_protocol(packet))
            loss_rate = LatencyModel.combined_loss_rate(
                path.loss_rate,
                src.impairments.extra_loss_rate,
                dst.impairments.extra_loss_rate,
            )
            lost = loss_rate > 0 and self.rng.random() < loss_rate
            extra_delay = src.impairments.extra_delay_ms + dst.impairments.extra_delay_ms
        else:
            lost = LatencyModel.sample_loss(path, self.rng)
        if lost:
            if self.trace is not None:
                self.trace.record(self.loop.now, "lost", packet)
            if metrics.enabled:
                metrics.inc(
                    "net.packets_lost",
                    protocol=_packet_protocol(packet),
                    impaired=impaired,
                )
            if on_lost is not None:
                on_lost(packet)
            return False
        delay = LatencyModel.sample_one_way_ms(path, self.rng) + extra_delay
        if self.trace is not None:
            self.trace.record(self.loop.now, "sent", packet, delay_ms=delay)
        if metrics.enabled:
            metrics.inc("net.packets_sent", protocol=_packet_protocol(packet))
            metrics.inc("net.bytes_sent", packet.size, protocol=_packet_protocol(packet))
        self.loop.call_later(delay, self._deliver, dst, packet)
        return True

    def _deliver(self, dst: Host, packet: Packet) -> None:
        if self.trace is not None:
            self.trace.record(self.loop.now, "delivered", packet)
        metrics = get_metrics()
        if metrics.enabled:
            metrics.inc("net.packets_delivered", protocol=_packet_protocol(packet))
        if isinstance(packet, Segment):
            dst.deliver_segment(packet)
        else:
            dst.deliver_datagram(packet)

    # -- convenience ----------------------------------------------------------

    def run(self, until: Optional[float] = None) -> float:
        """Run the event loop (delegates to :meth:`EventLoop.run`)."""
        return self.loop.run(until=until)

    @property
    def now(self) -> float:
        return self.loop.now
