"""Domain names and their wire codec, including RFC 1035 §4.1.4 compression.

A :class:`Name` is an immutable tuple of labels (``bytes``), always stored
fully qualified (the empty root label is implicit, not stored).  Parsing
enforces the RFC limits — 63 bytes per label, 255 bytes total — and the
decompressor rejects pointer loops and forward pointers.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Tuple

from repro.errors import CompressionError, MessageTruncated
from repro.errors import NameError_ as DnsNameError

MAX_LABEL_LENGTH = 63
MAX_NAME_LENGTH = 255

_POINTER_MASK = 0xC0


class Name:
    """An immutable, case-preserving (but case-insensitively comparing)
    fully-qualified domain name."""

    __slots__ = ("_labels", "_hash")

    def __init__(self, labels: Iterable[bytes]) -> None:
        labels = tuple(labels)
        total = 0
        for label in labels:
            if not isinstance(label, bytes):
                raise DnsNameError(f"label {label!r} is not bytes")
            if not label:
                raise DnsNameError("empty interior label")
            if len(label) > MAX_LABEL_LENGTH:
                raise DnsNameError(f"label {label!r} exceeds {MAX_LABEL_LENGTH} bytes")
            total += len(label) + 1
        if total + 1 > MAX_NAME_LENGTH:
            raise DnsNameError(f"name exceeds {MAX_NAME_LENGTH} bytes on the wire")
        self._labels = labels
        self._hash: Optional[int] = None

    # -- constructors --------------------------------------------------------

    @classmethod
    def from_text(cls, text: str) -> "Name":
        """Parse a textual name; trailing dot optional; ``"."`` is the root."""
        text = text.strip()
        if text in (".", ""):
            return cls(())
        if text.endswith("."):
            text = text[:-1]
        labels = []
        for part in text.split("."):
            if not part:
                raise DnsNameError(f"empty label in {text!r}")
            labels.append(part.encode("ascii"))
        return cls(labels)

    @classmethod
    def root(cls) -> "Name":
        return cls(())

    # -- attributes ----------------------------------------------------------

    @property
    def labels(self) -> Tuple[bytes, ...]:
        return self._labels

    @property
    def is_root(self) -> bool:
        return not self._labels

    def to_text(self) -> str:
        """Textual form; always ends with a trailing dot."""
        if not self._labels:
            return "."
        return ".".join(label.decode("ascii") for label in self._labels) + "."

    def __str__(self) -> str:
        return self.to_text()

    def __repr__(self) -> str:
        return f"Name({self.to_text()!r})"

    # -- comparisons (case-insensitive per RFC 1035 §2.3.3) -------------------

    def _key(self) -> Tuple[bytes, ...]:
        return tuple(label.lower() for label in self._labels)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Name):
            return NotImplemented
        return self._key() == other._key()

    def __hash__(self) -> int:
        if self._hash is None:
            self._hash = hash(self._key())
        return self._hash

    # -- structure -------------------------------------------------------------

    def parent(self) -> "Name":
        """The name with the leftmost label removed; root's parent is root."""
        if not self._labels:
            return self
        return Name(self._labels[1:])

    def is_subdomain_of(self, other: "Name") -> bool:
        """True if ``self`` equals ``other`` or is beneath it."""
        if len(other._labels) > len(self._labels):
            return False
        if not other._labels:
            return True
        return self._key()[-len(other._labels):] == other._key()

    def relativize(self, origin: "Name") -> Tuple[bytes, ...]:
        """Labels of ``self`` below ``origin`` (requires subdomain)."""
        if not self.is_subdomain_of(origin):
            raise DnsNameError(f"{self} is not under {origin}")
        count = len(self._labels) - len(origin._labels)
        return self._labels[:count]

    def concatenated(self, suffix: "Name") -> "Name":
        """``self`` + ``suffix`` (self becomes the leading labels)."""
        return Name(self._labels + suffix._labels)

    @property
    def wire_length(self) -> int:
        """Uncompressed wire length in bytes."""
        return sum(len(label) + 1 for label in self._labels) + 1

    # -- wire codec ------------------------------------------------------------

    def encode(self, buffer: bytearray, compress: Optional[Dict[Tuple[bytes, ...], int]] = None) -> None:
        """Append the wire form to ``buffer``.

        If ``compress`` is given it maps lowercase label-suffix tuples to
        message offsets; suffixes already present are replaced by a pointer
        and new suffixes at pointer-encodable offsets are registered.
        """
        labels = self._labels
        for index in range(len(labels)):
            suffix = tuple(label.lower() for label in labels[index:])
            if compress is not None:
                offset = compress.get(suffix)
                if offset is not None:
                    buffer += bytes(((_POINTER_MASK | (offset >> 8)) & 0xFF, offset & 0xFF))
                    return
                here = len(buffer)
                if here < 0x4000:
                    compress[suffix] = here
            label = labels[index]
            buffer.append(len(label))
            buffer += label
        buffer.append(0)

    def to_wire(self) -> bytes:
        """Uncompressed wire form as standalone bytes."""
        out = bytearray()
        self.encode(out)
        return bytes(out)

    @classmethod
    def decode(cls, wire: bytes, offset: int) -> Tuple["Name", int]:
        """Parse a (possibly compressed) name at ``offset``.

        Returns ``(name, next_offset)`` where ``next_offset`` is the first
        byte after the name *in the original stream* (i.e. after the pointer
        if the name was compressed).  Rejects forward pointers and loops.
        """
        labels = []
        cursor = offset
        end_of_name: Optional[int] = None
        seen_offsets = set()
        total = 0
        while True:
            if cursor >= len(wire):
                raise MessageTruncated(f"name at {offset} runs past end of message")
            length = wire[cursor]
            if length & _POINTER_MASK == _POINTER_MASK:
                if cursor + 1 >= len(wire):
                    raise MessageTruncated("truncated compression pointer")
                pointer = ((length & 0x3F) << 8) | wire[cursor + 1]
                if end_of_name is None:
                    end_of_name = cursor + 2
                if pointer >= cursor:
                    raise CompressionError(
                        f"forward compression pointer {pointer} at offset {cursor}"
                    )
                if pointer in seen_offsets:
                    raise CompressionError(f"compression pointer loop via {pointer}")
                seen_offsets.add(pointer)
                cursor = pointer
                continue
            if length & _POINTER_MASK:
                raise CompressionError(f"reserved label type 0x{length:02x}")
            if length == 0:
                if end_of_name is None:
                    end_of_name = cursor + 1
                break
            if cursor + 1 + length > len(wire):
                raise MessageTruncated("label runs past end of message")
            total += length + 1
            if total + 1 > MAX_NAME_LENGTH:
                raise DnsNameError("decoded name exceeds 255 bytes")
            labels.append(wire[cursor + 1 : cursor + 1 + length])
            cursor += 1 + length
        return cls(labels), end_of_name
