"""EDNS(0) support (RFC 6891).

The OPT pseudo-RR overloads the record fields: the owner name is root, the
class carries the advertised UDP payload size, and the TTL packs the
extended RCODE, EDNS version, and flags (DO bit).  This module converts
between that packed form and a friendly :class:`EdnsOptions` view.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.dnswire.message import Message, ResourceRecord
from repro.dnswire.name import Name
from repro.dnswire.rdata import GenericRdata
from repro.dnswire.types import EDNS_DEFAULT_PAYLOAD, TYPE_OPT
from repro.errors import MessageMalformed

#: DO ("DNSSEC OK") flag bit within the EDNS flags word.
EDNS_FLAG_DO = 0x8000

#: Option code for EDNS padding (RFC 7830), used by encrypted transports.
OPTION_PADDING = 12

#: Option code for Extended DNS Errors (RFC 8914).
OPTION_EDE = 15

# RFC 8914 info codes used by the resolver substrate.
EDE_NOT_READY = 14
EDE_NO_REACHABLE_AUTHORITY = 22


@dataclass(frozen=True)
class EdnsOption:
    """One EDNS option (code, value)."""

    code: int
    value: bytes


@dataclass
class EdnsOptions:
    """Decoded view of an OPT pseudo-record."""

    payload_size: int = EDNS_DEFAULT_PAYLOAD
    extended_rcode: int = 0
    version: int = 0
    dnssec_ok: bool = False
    options: List[EdnsOption] = field(default_factory=list)

    def to_record(self) -> ResourceRecord:
        """Pack into an OPT resource record."""
        if self.version != 0:
            raise MessageMalformed(f"unsupported EDNS version {self.version}")
        ttl = (self.extended_rcode & 0xFF) << 24 | (self.version & 0xFF) << 16
        if self.dnssec_ok:
            ttl |= EDNS_FLAG_DO
        rdata = bytearray()
        for option in self.options:
            rdata += struct.pack("!HH", option.code, len(option.value))
            rdata += option.value
        return ResourceRecord(
            name=Name.root(),
            rdtype=TYPE_OPT,
            rdclass=self.payload_size,
            ttl=ttl,
            rdata=GenericRdata(TYPE_OPT, bytes(rdata)),
        )

    @classmethod
    def from_record(cls, record: ResourceRecord) -> "EdnsOptions":
        """Unpack an OPT resource record."""
        if record.rdtype != TYPE_OPT:
            raise MessageMalformed(f"record type {record.rdtype} is not OPT")
        ttl = record.ttl
        data = getattr(record.rdata, "data", b"")
        options = []
        cursor = 0
        while cursor + 4 <= len(data):
            code, length = struct.unpack_from("!HH", data, cursor)
            cursor += 4
            if cursor + length > len(data):
                raise MessageMalformed("truncated EDNS option")
            options.append(EdnsOption(code, data[cursor : cursor + length]))
            cursor += length
        if cursor != len(data):
            raise MessageMalformed("trailing bytes in OPT rdata")
        return cls(
            payload_size=record.rdclass,
            extended_rcode=(ttl >> 24) & 0xFF,
            version=(ttl >> 16) & 0xFF,
            dnssec_ok=bool(ttl & EDNS_FLAG_DO),
            options=options,
        )


def add_edns(message: Message, options: Optional[EdnsOptions] = None) -> Message:
    """Attach an OPT record to the message (replacing any existing one)."""
    message.additionals = [r for r in message.additionals if r.rdtype != TYPE_OPT]
    message.additionals.append((options or EdnsOptions()).to_record())
    return message


def get_edns(message: Message) -> Optional[EdnsOptions]:
    """The message's EDNS options, or None if no OPT record is present."""
    record = message.opt_record()
    if record is None:
        return None
    return EdnsOptions.from_record(record)


def make_ede_option(info_code: int, text: str = "") -> EdnsOption:
    """Build an Extended DNS Error option (RFC 8914)."""
    return EdnsOption(OPTION_EDE, struct.pack("!H", info_code) + text.encode("utf-8"))


def get_ede(message: Message) -> Optional[Tuple[int, str]]:
    """The first Extended DNS Error in the message, as (info_code, text)."""
    edns = get_edns(message)
    if edns is None:
        return None
    for option in edns.options:
        if option.code == OPTION_EDE and len(option.value) >= 2:
            (info_code,) = struct.unpack_from("!H", option.value, 0)
            return info_code, option.value[2:].decode("utf-8", "replace")
    return None


def attach_ede(message: Message, info_code: int, text: str = "") -> Message:
    """Attach an EDE option, preserving any existing EDNS state."""
    edns = get_edns(message) or EdnsOptions()
    edns.options = [o for o in edns.options if o.code != OPTION_EDE]
    edns.options.append(make_ede_option(info_code, text))
    return add_edns(message, edns)


def pad_query(message: Message, block_size: int = 128) -> Message:
    """Apply RFC 8467 recommended padding to a query (multiple of 128B).

    Encrypted transports pad queries so that message sizes do not leak the
    queried name.  The padding lives in an EDNS padding option; callers must
    have added EDNS first (or this adds a default OPT record).
    """
    edns = get_edns(message) or EdnsOptions()
    edns.options = [o for o in edns.options if o.code != OPTION_PADDING]
    add_edns(message, edns)
    unpadded_len = len(message.to_wire())
    # Option header is 4 bytes; find the smallest padding reaching a multiple.
    target = ((unpadded_len + 4 + block_size - 1) // block_size) * block_size
    pad_len = target - unpadded_len - 4
    edns.options.append(EdnsOption(OPTION_PADDING, b"\x00" * pad_len))
    return add_edns(message, edns)


def unpadded_equal(a: Message, b: Message) -> bool:
    """Compare two messages ignoring EDNS padding (test helper)."""

    def strip(m: Message) -> Tuple[bytes, ...]:
        edns = get_edns(m)
        clone = Message.from_wire(m.to_wire())
        if edns is not None:
            edns.options = [o for o in edns.options if o.code != OPTION_PADDING]
            add_edns(clone, edns)
        return (clone.to_wire(),)

    return strip(a) == strip(b)
