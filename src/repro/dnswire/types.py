"""DNS constants: RR types, classes, opcodes, rcodes, and header flags.

Values follow the IANA DNS parameters registry.  Only the subset the
library actually speaks is given a symbolic name; unknown values round-trip
through the codec untouched (RFC 3597 unknown-type handling).
"""

from __future__ import annotations

from typing import Dict

# -- RR types ---------------------------------------------------------------

TYPE_A = 1
TYPE_NS = 2
TYPE_CNAME = 5
TYPE_SOA = 6
TYPE_PTR = 12
TYPE_MX = 15
TYPE_TXT = 16
TYPE_AAAA = 28
TYPE_OPT = 41
TYPE_HTTPS = 65
TYPE_ANY = 255

_TYPE_NAMES: Dict[int, str] = {
    TYPE_A: "A",
    TYPE_NS: "NS",
    TYPE_CNAME: "CNAME",
    TYPE_SOA: "SOA",
    TYPE_PTR: "PTR",
    TYPE_MX: "MX",
    TYPE_TXT: "TXT",
    TYPE_AAAA: "AAAA",
    TYPE_OPT: "OPT",
    TYPE_HTTPS: "HTTPS",
    TYPE_ANY: "ANY",
}

_TYPE_VALUES: Dict[str, int] = {name: value for value, name in _TYPE_NAMES.items()}


def type_name(value: int) -> str:
    """Symbolic name for an RR type (``"TYPE123"`` for unknown types)."""
    return _TYPE_NAMES.get(value, f"TYPE{value}")


def type_value(name: str) -> int:
    """RR type value for a symbolic name; accepts ``"TYPE123"`` form."""
    upper = name.upper()
    if upper in _TYPE_VALUES:
        return _TYPE_VALUES[upper]
    if upper.startswith("TYPE") and upper[4:].isdigit():
        return int(upper[4:])
    raise ValueError(f"unknown RR type name {name!r}")


# -- classes -------------------------------------------------------------------

CLASS_IN = 1
CLASS_CH = 3
CLASS_ANY = 255

_CLASS_NAMES: Dict[int, str] = {CLASS_IN: "IN", CLASS_CH: "CH", CLASS_ANY: "ANY"}


def class_name(value: int) -> str:
    """Symbolic name for a class (``"CLASS123"`` for unknown classes)."""
    return _CLASS_NAMES.get(value, f"CLASS{value}")


# -- opcodes ----------------------------------------------------------------------

OPCODE_QUERY = 0
OPCODE_IQUERY = 1
OPCODE_STATUS = 2
OPCODE_NOTIFY = 4
OPCODE_UPDATE = 5

_OPCODE_NAMES: Dict[int, str] = {
    OPCODE_QUERY: "QUERY",
    OPCODE_IQUERY: "IQUERY",
    OPCODE_STATUS: "STATUS",
    OPCODE_NOTIFY: "NOTIFY",
    OPCODE_UPDATE: "UPDATE",
}


def opcode_name(value: int) -> str:
    return _OPCODE_NAMES.get(value, f"OPCODE{value}")


# -- rcodes ---------------------------------------------------------------------

RCODE_NOERROR = 0
RCODE_FORMERR = 1
RCODE_SERVFAIL = 2
RCODE_NXDOMAIN = 3
RCODE_NOTIMP = 4
RCODE_REFUSED = 5

_RCODE_NAMES: Dict[int, str] = {
    RCODE_NOERROR: "NOERROR",
    RCODE_FORMERR: "FORMERR",
    RCODE_SERVFAIL: "SERVFAIL",
    RCODE_NXDOMAIN: "NXDOMAIN",
    RCODE_NOTIMP: "NOTIMP",
    RCODE_REFUSED: "REFUSED",
}


def rcode_name(value: int) -> str:
    return _RCODE_NAMES.get(value, f"RCODE{value}")


# -- header flag bit positions (within the 16-bit flags field) -------------------

FLAG_QR = 0x8000  # response
FLAG_AA = 0x0400  # authoritative answer
FLAG_TC = 0x0200  # truncated
FLAG_RD = 0x0100  # recursion desired
FLAG_RA = 0x0080  # recursion available
FLAG_AD = 0x0020  # authenticated data (DNSSEC)
FLAG_CD = 0x0010  # checking disabled (DNSSEC)

OPCODE_SHIFT = 11
OPCODE_MASK = 0x7800
RCODE_MASK = 0x000F

#: Maximum size of a DNS message over UDP without EDNS (RFC 1035 §4.2.1).
MAX_UDP_SIZE = 512

#: Common EDNS0 advertised buffer size.
EDNS_DEFAULT_PAYLOAD = 1232
