"""Canonical normalization of DNS responses for answer differencing.

Two resolvers that serve the same zone data can still emit byte-different
responses: message IDs differ per query, name case is preserved wherever
the authority typed it, answer records arrive in rotated orders, and TTLs
decay with cache age.  The differ must not count any of that as
disagreement, so this module defines a *canonical form* — the projection
of a response that two correct resolvers are expected to share — plus the
field-by-field comparison and the disagreement taxonomy built on it.

Normalization rules (respdiff's msgdiff criteria, adapted):

* **case-folded names** — owner names and name-bearing RDATA (CNAME, NS,
  PTR, SOA, MX) are lowercased; RFC 1035 §2.3.3 comparisons are
  case-insensitive.  Free-form RDATA (TXT) keeps its case.
* **sorted answer sets** — sections are sorted by (owner, type, rdata);
  record rotation is load balancing, not disagreement.
* **TTL bands** — TTLs collapse onto coarse band floors (0 / 1s+ / 1m+ /
  1h+ / 1d+) so cache-age decay within a band is invisible while a
  resolver that rewrites TTLs across bands is not.
* **rcode classes** — response codes map to lowercase class labels
  (``noerror``, ``nxdomain``, ``servfail``, …).
* **message identity erased** — the ID is zeroed; EDNS OPT and the
  authority/additional sections are resolver-local detail and excluded
  from the comparable form.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import List, Optional, Tuple

from repro.dnswire.message import Header, Message, Question, ResourceRecord
from repro.dnswire.name import Name
from repro.dnswire.rdata import (
    CnameRdata,
    MxRdata,
    NsRdata,
    PtrRdata,
    Rdata,
    SoaRdata,
)
from repro.dnswire.types import TYPE_OPT, rcode_name, type_name

#: TTL band floors, highest first: a TTL maps to the first floor it meets.
#: Bands are coarse on purpose — simulated caches hand out decayed TTLs,
#: and decay within a band must not read as drift.
TTL_BANDS: Tuple[Tuple[int, str], ...] = (
    (86400, "1d+"),
    (3600, "1h+"),
    (60, "1m+"),
    (1, "1s+"),
    (0, "0"),
)

#: Deterministic field order for mismatch lists and per-field tables.
FIELD_ORDER: Tuple[str, ...] = ("rcode", "flags.tc", "answers", "ttl")


def ttl_band(ttl: int) -> str:
    """The band label for a TTL (``"1d+"``, ``"1h+"``, … ``"0"``)."""
    for floor, label in TTL_BANDS:
        if ttl >= floor:
            return label
    return TTL_BANDS[-1][1]


def ttl_band_floor(ttl: int) -> int:
    """The numeric floor of a TTL's band (the canonical TTL value)."""
    for floor, _label in TTL_BANDS:
        if ttl >= floor:
            return floor
    return 0


def rcode_class(rcode: int) -> str:
    """Lowercase rcode class label (``noerror``, ``nxdomain``, …)."""
    return rcode_name(rcode).lower()


def _fold_name(name: Name) -> Name:
    return Name(tuple(label.lower() for label in name.labels))


def _fold_rdata(rdata: Rdata) -> Rdata:
    """Case-fold the name-bearing RDATA fields; leave free-form data alone."""
    if isinstance(rdata, (CnameRdata, NsRdata, PtrRdata)):
        return type(rdata)(_fold_name(rdata.target))
    if isinstance(rdata, MxRdata):
        return MxRdata(rdata.preference, _fold_name(rdata.exchange))
    if isinstance(rdata, SoaRdata):
        return replace(
            rdata,
            mname=_fold_name(rdata.mname),
            rname=_fold_name(rdata.rname),
        )
    return rdata


def _record_sort_key(record: ResourceRecord) -> tuple:
    return (
        record.name.to_text(),
        record.rdtype,
        record.rdclass,
        record.rdata.to_text(),
        record.ttl,
    )


def _normalize_record(record: ResourceRecord) -> ResourceRecord:
    return ResourceRecord(
        name=_fold_name(record.name),
        rdtype=record.rdtype,
        rdclass=record.rdclass,
        ttl=ttl_band_floor(record.ttl),
        rdata=_fold_rdata(record.rdata),
    )


def normalize_message(message: Message) -> Message:
    """A canonically normalized copy of ``message``.

    Idempotent, and invariant under answer reordering and name-case
    changes of the input: ``normalize_message(m)`` equals (in wire bytes)
    ``normalize_message(shuffle(fold_case(m)))``.
    """
    header = Header(
        msg_id=0,
        qr=message.header.qr,
        opcode=message.header.opcode,
        aa=message.header.aa,
        tc=message.header.tc,
        rd=message.header.rd,
        ra=message.header.ra,
        ad=message.header.ad,
        cd=message.header.cd,
        rcode=message.header.rcode,
    )
    questions = [
        Question(_fold_name(q.qname), q.qtype, q.qclass)
        for q in message.questions
    ]
    sections = []
    for section in (message.answers, message.authorities, message.additionals):
        normalized = [
            _normalize_record(record)
            for record in section
            if record.rdtype != TYPE_OPT
        ]
        normalized.sort(key=_record_sort_key)
        sections.append(normalized)
    return Message(
        header=header,
        questions=questions,
        answers=sections[0],
        authorities=sections[1],
        additionals=sections[2],
    )


# ---------------------------------------------------------------------------
# Canonical comparable form
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class CanonicalAnswer:
    """One answer record in comparable form."""

    name: str  # lowercased owner, trailing dot
    rdtype: str  # mnemonic type name
    rdata: str  # canonical rdata text
    ttl_band: str

    @property
    def identity(self) -> Tuple[str, str, str]:
        """The record sans TTL — what "same answer set" means."""
        return (self.name, self.rdtype, self.rdata)


@dataclass(frozen=True)
class CanonicalForm:
    """The comparable projection of one response message."""

    rcode_class: str
    tc: bool
    answers: Tuple[CanonicalAnswer, ...]  # sorted

    @property
    def answer_identities(self) -> Tuple[Tuple[str, str, str], ...]:
        return tuple(answer.identity for answer in self.answers)

    def render(self) -> str:
        """One-line human form for report rows."""
        parts = [self.rcode_class]
        if self.tc:
            parts.append("tc")
        if self.answers:
            parts.append(
                " ".join(
                    f"{a.rdtype}:{a.rdata}/{a.ttl_band}" for a in self.answers
                )
            )
        else:
            parts.append("-")
        return " ".join(parts)

    def to_dict(self) -> dict:
        return {
            "rcode_class": self.rcode_class,
            "tc": self.tc,
            "answers": [
                {
                    "name": a.name,
                    "rdtype": a.rdtype,
                    "rdata": a.rdata,
                    "ttl_band": a.ttl_band,
                }
                for a in self.answers
            ],
        }


def canonical_form(message: Message) -> CanonicalForm:
    """Project a response message onto its canonical comparable form."""
    normalized = normalize_message(message)
    answers = tuple(
        CanonicalAnswer(
            name=record.name.to_text(),
            rdtype=type_name(record.rdtype),
            rdata=record.rdata.to_text(),
            ttl_band=ttl_band(record.ttl),
        )
        for record in normalized.answers
    )
    return CanonicalForm(
        rcode_class=rcode_class(normalized.header.rcode),
        tc=normalized.header.tc,
        answers=answers,
    )


def canonical_form_from_wire(wire: bytes) -> CanonicalForm:
    return canonical_form(Message.from_wire(wire))


# ---------------------------------------------------------------------------
# Field-by-field comparison and disagreement taxonomy
# ---------------------------------------------------------------------------

CLASS_AGREE = "agree"
CLASS_NXDOMAIN_VS_NOERROR = "nxdomain_vs_noerror"
CLASS_RCODE_MISMATCH = "rcode_mismatch"
CLASS_ANSWER_SET_MISMATCH = "answer_set_mismatch"
CLASS_TTL_BAND_DRIFT = "ttl_band_drift"
CLASS_TRUNCATION = "truncation"
CLASS_UNANSWERED = "unanswered"

#: The documented disagreement taxonomy, in report order.
TAXONOMY: Tuple[str, ...] = (
    CLASS_NXDOMAIN_VS_NOERROR,
    CLASS_RCODE_MISMATCH,
    CLASS_ANSWER_SET_MISMATCH,
    CLASS_TTL_BAND_DRIFT,
    CLASS_TRUNCATION,
    CLASS_UNANSWERED,
)


def diff_forms(observed: CanonicalForm, expected: CanonicalForm) -> List[str]:
    """Mismatching field names between two canonical forms.

    Fields are reported in :data:`FIELD_ORDER`.  An empty list means the
    forms agree.  ``ttl`` is only reported when the answer *identities*
    match but land in different TTL bands — if the sets themselves differ
    the TTL comparison is meaningless and ``answers`` subsumes it.
    """
    fields = []
    if observed.rcode_class != expected.rcode_class:
        fields.append("rcode")
    if observed.tc != expected.tc:
        fields.append("flags.tc")
    if observed.answer_identities != expected.answer_identities:
        fields.append("answers")
    elif observed.answers != expected.answers:
        fields.append("ttl")
    return sorted(fields, key=FIELD_ORDER.index)


def classify(
    mismatch_fields: List[str],
    observed: Optional[CanonicalForm],
    expected: Optional[CanonicalForm],
) -> str:
    """Map a field-level diff onto the disagreement taxonomy.

    Priority: rcode disagreements outrank truncation, which outranks
    answer-set mismatch, which outranks TTL-band drift — a truncated
    response legitimately drops answer records, so the higher class is
    the informative one.
    """
    if observed is None or expected is None:
        return CLASS_UNANSWERED
    if not mismatch_fields:
        return CLASS_AGREE
    if "rcode" in mismatch_fields:
        classes = {observed.rcode_class, expected.rcode_class}
        if classes == {"noerror", "nxdomain"}:
            return CLASS_NXDOMAIN_VS_NOERROR
        return CLASS_RCODE_MISMATCH
    if "flags.tc" in mismatch_fields:
        return CLASS_TRUNCATION
    if "answers" in mismatch_fields:
        return CLASS_ANSWER_SET_MISMATCH
    return CLASS_TTL_BAND_DRIFT
