"""DNS wire format, implemented from scratch per RFC 1035 / 3596 / 6891.

The measurement platform carries genuine DNS messages over every transport:
queries built with :mod:`repro.dnswire.builder` are encoded to wire bytes,
shipped through the simulated network, parsed by the resolver substrate,
answered, and decoded again by the probe.

Public surface:

* :class:`~repro.dnswire.name.Name` — domain names with compression-aware
  wire codec;
* :class:`~repro.dnswire.message.Message` /
  :class:`~repro.dnswire.message.Header` /
  :class:`~repro.dnswire.message.Question` /
  :class:`~repro.dnswire.message.ResourceRecord` — full message codec;
* :mod:`~repro.dnswire.rdata` — typed RDATA for A, AAAA, CNAME, NS, SOA,
  PTR, MX, TXT and OPT;
* :mod:`~repro.dnswire.builder` — convenience query/response builders.
"""

from repro.dnswire.types import (
    CLASS_ANY,
    CLASS_IN,
    OPCODE_QUERY,
    RCODE_FORMERR,
    RCODE_NOERROR,
    RCODE_NXDOMAIN,
    RCODE_REFUSED,
    RCODE_SERVFAIL,
    TYPE_A,
    TYPE_AAAA,
    TYPE_CNAME,
    TYPE_MX,
    TYPE_NS,
    TYPE_OPT,
    TYPE_PTR,
    TYPE_SOA,
    TYPE_TXT,
    class_name,
    rcode_name,
    type_name,
)
from repro.dnswire.name import Name
from repro.dnswire.message import Header, Message, Question, ResourceRecord
from repro.dnswire.builder import make_query, make_response
from repro.errors import (
    CompressionError,
    DnsWireError,
    MessageMalformed,
    MessageTruncated,
)
from repro.errors import NameError_ as DnsNameError

__all__ = [
    "CLASS_ANY",
    "CLASS_IN",
    "CompressionError",
    "DnsNameError",
    "DnsWireError",
    "Header",
    "Message",
    "MessageMalformed",
    "MessageTruncated",
    "Name",
    "OPCODE_QUERY",
    "Question",
    "RCODE_FORMERR",
    "RCODE_NOERROR",
    "RCODE_NXDOMAIN",
    "RCODE_REFUSED",
    "RCODE_SERVFAIL",
    "ResourceRecord",
    "TYPE_A",
    "TYPE_AAAA",
    "TYPE_CNAME",
    "TYPE_MX",
    "TYPE_NS",
    "TYPE_OPT",
    "TYPE_PTR",
    "TYPE_SOA",
    "TYPE_TXT",
    "class_name",
    "make_query",
    "make_response",
    "rcode_name",
    "type_name",
]
