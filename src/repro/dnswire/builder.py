"""Convenience builders for queries and responses.

These mirror what ``dig`` and a recursive resolver would produce: queries
with RD set and EDNS attached; responses echoing the question with RA set.
"""

from __future__ import annotations

import random
from typing import Iterable, Optional, Union

from repro.dnswire.edns import EdnsOptions, add_edns
from repro.dnswire.message import Header, Message, Question, ResourceRecord
from repro.dnswire.name import Name
from repro.dnswire.types import CLASS_IN, RCODE_NOERROR, TYPE_A

NameLike = Union[str, Name]


def _as_name(value: NameLike) -> Name:
    return value if isinstance(value, Name) else Name.from_text(value)


def make_query(
    qname: NameLike,
    qtype: int = TYPE_A,
    qclass: int = CLASS_IN,
    msg_id: Optional[int] = None,
    recursion_desired: bool = True,
    edns: bool = True,
    rng: Optional[random.Random] = None,
) -> Message:
    """Build a standard query message.

    RFC 8484 recommends ``msg_id = 0`` for DoH (cache friendliness); pass
    ``msg_id=0`` explicitly for that. By default a random ID is chosen from
    ``rng`` (or the module RNG).
    """
    if msg_id is None:
        msg_id = (rng or random).randint(0, 0xFFFF)
    message = Message(
        header=Header(msg_id=msg_id, qr=False, rd=recursion_desired),
        questions=[Question(_as_name(qname), qtype, qclass)],
    )
    if edns:
        add_edns(message, EdnsOptions())
    return message


def make_response(
    query: Message,
    answers: Iterable[ResourceRecord] = (),
    authorities: Iterable[ResourceRecord] = (),
    additionals: Iterable[ResourceRecord] = (),
    rcode: int = RCODE_NOERROR,
    authoritative: bool = False,
    recursion_available: bool = True,
) -> Message:
    """Build a response echoing the query's ID and question section."""
    header = Header(
        msg_id=query.header.msg_id,
        qr=True,
        opcode=query.header.opcode,
        aa=authoritative,
        rd=query.header.rd,
        ra=recursion_available,
        rcode=rcode,
    )
    return Message(
        header=header,
        questions=list(query.questions),
        answers=list(answers),
        authorities=list(authorities),
        additionals=list(additionals),
    )
