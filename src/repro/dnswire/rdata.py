"""Typed RDATA codecs.

Each RDATA class knows how to encode itself into a message buffer (names in
well-known types participate in compression, per RFC 1035 §4.1.4) and how to
decode itself from wire bytes.  Types without a specific class round-trip as
:class:`GenericRdata` (RFC 3597 style).
"""

from __future__ import annotations

import ipaddress
import struct
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple, Type

from repro.dnswire.name import Name
from repro.dnswire.types import (
    TYPE_A,
    TYPE_AAAA,
    TYPE_CNAME,
    TYPE_MX,
    TYPE_NS,
    TYPE_PTR,
    TYPE_SOA,
    TYPE_TXT,
)
from repro.errors import MessageMalformed, MessageTruncated

CompressMap = Dict[Tuple[bytes, ...], int]


class Rdata:
    """Base class for typed RDATA."""

    rdtype: int = 0

    def encode(self, buffer: bytearray, compress: Optional[CompressMap]) -> None:
        raise NotImplementedError

    @classmethod
    def decode(cls, wire: bytes, offset: int, rdlength: int) -> "Rdata":
        raise NotImplementedError

    def to_text(self) -> str:
        raise NotImplementedError


@dataclass(frozen=True)
class ARdata(Rdata):
    """IPv4 address record."""

    address: str
    rdtype = TYPE_A

    def __post_init__(self) -> None:
        ipaddress.IPv4Address(self.address)  # validates

    def encode(self, buffer: bytearray, compress: Optional[CompressMap]) -> None:
        buffer += ipaddress.IPv4Address(self.address).packed

    @classmethod
    def decode(cls, wire: bytes, offset: int, rdlength: int) -> "ARdata":
        if rdlength != 4:
            raise MessageMalformed(f"A rdata must be 4 bytes, got {rdlength}")
        return cls(str(ipaddress.IPv4Address(wire[offset : offset + 4])))

    def to_text(self) -> str:
        return self.address


@dataclass(frozen=True)
class AaaaRdata(Rdata):
    """IPv6 address record."""

    address: str
    rdtype = TYPE_AAAA

    def __post_init__(self) -> None:
        ipaddress.IPv6Address(self.address)

    def encode(self, buffer: bytearray, compress: Optional[CompressMap]) -> None:
        buffer += ipaddress.IPv6Address(self.address).packed

    @classmethod
    def decode(cls, wire: bytes, offset: int, rdlength: int) -> "AaaaRdata":
        if rdlength != 16:
            raise MessageMalformed(f"AAAA rdata must be 16 bytes, got {rdlength}")
        return cls(str(ipaddress.IPv6Address(wire[offset : offset + 16])))

    def to_text(self) -> str:
        return self.address


class _SingleNameRdata(Rdata):
    """Common base for RDATA consisting of exactly one domain name."""

    __slots__ = ("target",)

    def __init__(self, target: Name) -> None:
        self.target = target

    def encode(self, buffer: bytearray, compress: Optional[CompressMap]) -> None:
        self.target.encode(buffer, compress)

    @classmethod
    def decode(cls, wire: bytes, offset: int, rdlength: int):
        name, _end = Name.decode(wire, offset)
        return cls(name)

    def to_text(self) -> str:
        return self.target.to_text()

    def __eq__(self, other: object) -> bool:
        return type(other) is type(self) and other.target == self.target  # type: ignore[attr-defined]

    def __hash__(self) -> int:
        return hash((type(self).__name__, self.target))

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.target.to_text()!r})"


class CnameRdata(_SingleNameRdata):
    rdtype = TYPE_CNAME


class NsRdata(_SingleNameRdata):
    rdtype = TYPE_NS


class PtrRdata(_SingleNameRdata):
    rdtype = TYPE_PTR


@dataclass(frozen=True)
class SoaRdata(Rdata):
    """Start-of-authority record."""

    mname: Name
    rname: Name
    serial: int
    refresh: int
    retry: int
    expire: int
    minimum: int
    rdtype = TYPE_SOA

    def encode(self, buffer: bytearray, compress: Optional[CompressMap]) -> None:
        self.mname.encode(buffer, compress)
        self.rname.encode(buffer, compress)
        buffer += struct.pack(
            "!IIIII", self.serial, self.refresh, self.retry, self.expire, self.minimum
        )

    @classmethod
    def decode(cls, wire: bytes, offset: int, rdlength: int) -> "SoaRdata":
        mname, offset = Name.decode(wire, offset)
        rname, offset = Name.decode(wire, offset)
        if offset + 20 > len(wire):
            raise MessageTruncated("truncated SOA rdata")
        serial, refresh, retry, expire, minimum = struct.unpack_from("!IIIII", wire, offset)
        return cls(mname, rname, serial, refresh, retry, expire, minimum)

    def to_text(self) -> str:
        return (
            f"{self.mname.to_text()} {self.rname.to_text()} {self.serial} "
            f"{self.refresh} {self.retry} {self.expire} {self.minimum}"
        )


@dataclass(frozen=True)
class MxRdata(Rdata):
    """Mail-exchanger record."""

    preference: int
    exchange: Name
    rdtype = TYPE_MX

    def encode(self, buffer: bytearray, compress: Optional[CompressMap]) -> None:
        buffer += struct.pack("!H", self.preference)
        self.exchange.encode(buffer, compress)

    @classmethod
    def decode(cls, wire: bytes, offset: int, rdlength: int) -> "MxRdata":
        if offset + 2 > len(wire):
            raise MessageTruncated("truncated MX rdata")
        (preference,) = struct.unpack_from("!H", wire, offset)
        exchange, _end = Name.decode(wire, offset + 2)
        return cls(preference, exchange)

    def to_text(self) -> str:
        return f"{self.preference} {self.exchange.to_text()}"


class TxtRdata(Rdata):
    """TXT record: one or more character-strings."""

    rdtype = TYPE_TXT
    __slots__ = ("strings",)

    def __init__(self, strings: List[bytes]) -> None:
        if not strings:
            raise MessageMalformed("TXT rdata needs at least one string")
        for s in strings:
            if len(s) > 255:
                raise MessageMalformed("TXT character-string exceeds 255 bytes")
        self.strings = list(strings)

    def encode(self, buffer: bytearray, compress: Optional[CompressMap]) -> None:
        for s in self.strings:
            buffer.append(len(s))
            buffer += s

    @classmethod
    def decode(cls, wire: bytes, offset: int, rdlength: int) -> "TxtRdata":
        end = offset + rdlength
        strings = []
        cursor = offset
        while cursor < end:
            length = wire[cursor]
            cursor += 1
            if cursor + length > end:
                raise MessageTruncated("truncated TXT character-string")
            strings.append(wire[cursor : cursor + length])
            cursor += length
        return cls(strings)

    def to_text(self) -> str:
        return " ".join('"' + s.decode("ascii", "replace") + '"' for s in self.strings)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, TxtRdata) and other.strings == self.strings

    def __hash__(self) -> int:
        return hash(tuple(self.strings))

    def __repr__(self) -> str:
        return f"TxtRdata({self.strings!r})"


class GenericRdata(Rdata):
    """Opaque RDATA for types without a dedicated codec (RFC 3597)."""

    __slots__ = ("rdtype", "data")

    def __init__(self, rdtype: int, data: bytes) -> None:
        self.rdtype = rdtype
        self.data = data

    def encode(self, buffer: bytearray, compress: Optional[CompressMap]) -> None:
        buffer += self.data

    @classmethod
    def decode_generic(cls, rdtype: int, wire: bytes, offset: int, rdlength: int) -> "GenericRdata":
        return cls(rdtype, wire[offset : offset + rdlength])

    def to_text(self) -> str:
        return f"\\# {len(self.data)} {self.data.hex()}"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, GenericRdata)
            and other.rdtype == self.rdtype
            and other.data == self.data
        )

    def __hash__(self) -> int:
        return hash((self.rdtype, self.data))

    def __repr__(self) -> str:
        return f"GenericRdata(type={self.rdtype}, {len(self.data)}B)"


_REGISTRY: Dict[int, Type[Rdata]] = {
    TYPE_A: ARdata,
    TYPE_AAAA: AaaaRdata,
    TYPE_CNAME: CnameRdata,
    TYPE_NS: NsRdata,
    TYPE_PTR: PtrRdata,
    TYPE_SOA: SoaRdata,
    TYPE_MX: MxRdata,
    TYPE_TXT: TxtRdata,
}


def decode_rdata(rdtype: int, wire: bytes, offset: int, rdlength: int) -> Rdata:
    """Decode RDATA of the given type; unknown types yield GenericRdata."""
    if offset + rdlength > len(wire):
        raise MessageTruncated(f"rdata of type {rdtype} runs past end of message")
    codec = _REGISTRY.get(rdtype)
    if codec is None:
        return GenericRdata.decode_generic(rdtype, wire, offset, rdlength)
    return codec.decode(wire, offset, rdlength)
