"""DNS message codec: header, question, resource records, full messages.

Encoding builds one shared compression map across the whole message (names
in owner fields and well-known RDATA all participate).  Decoding is strict:
counts must match the body, trailing bytes are rejected, and all the
name-decompression safety rules from :mod:`repro.dnswire.name` apply.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field, replace
from typing import List, Optional, Tuple

from repro.dnswire.name import Name
from repro.dnswire.rdata import Rdata, decode_rdata
from repro.dnswire.types import (
    CLASS_IN,
    FLAG_AA,
    FLAG_AD,
    FLAG_CD,
    FLAG_QR,
    FLAG_RA,
    FLAG_RD,
    FLAG_TC,
    OPCODE_MASK,
    OPCODE_SHIFT,
    RCODE_MASK,
    TYPE_OPT,
    class_name,
    opcode_name,
    rcode_name,
    type_name,
)
from repro.errors import MessageMalformed, MessageTruncated

_HEADER = struct.Struct("!HHHHHH")


@dataclass
class Header:
    """The 12-byte DNS header."""

    msg_id: int = 0
    qr: bool = False
    opcode: int = 0
    aa: bool = False
    tc: bool = False
    rd: bool = True
    ra: bool = False
    ad: bool = False
    cd: bool = False
    rcode: int = 0
    qdcount: int = 0
    ancount: int = 0
    nscount: int = 0
    arcount: int = 0

    def flags_word(self) -> int:
        word = (self.opcode << OPCODE_SHIFT) & OPCODE_MASK
        word |= self.rcode & RCODE_MASK
        if self.qr:
            word |= FLAG_QR
        if self.aa:
            word |= FLAG_AA
        if self.tc:
            word |= FLAG_TC
        if self.rd:
            word |= FLAG_RD
        if self.ra:
            word |= FLAG_RA
        if self.ad:
            word |= FLAG_AD
        if self.cd:
            word |= FLAG_CD
        return word

    @classmethod
    def from_words(cls, msg_id: int, flags: int, qd: int, an: int, ns: int, ar: int) -> "Header":
        return cls(
            msg_id=msg_id,
            qr=bool(flags & FLAG_QR),
            opcode=(flags & OPCODE_MASK) >> OPCODE_SHIFT,
            aa=bool(flags & FLAG_AA),
            tc=bool(flags & FLAG_TC),
            rd=bool(flags & FLAG_RD),
            ra=bool(flags & FLAG_RA),
            ad=bool(flags & FLAG_AD),
            cd=bool(flags & FLAG_CD),
            rcode=flags & RCODE_MASK,
            qdcount=qd,
            ancount=an,
            nscount=ns,
            arcount=ar,
        )

    def encode(self, buffer: bytearray) -> None:
        if not 0 <= self.msg_id <= 0xFFFF:
            raise MessageMalformed(f"message id {self.msg_id} out of range")
        buffer += _HEADER.pack(
            self.msg_id,
            self.flags_word(),
            self.qdcount,
            self.ancount,
            self.nscount,
            self.arcount,
        )

    def describe(self) -> str:
        flags = " ".join(
            name
            for name, on in (
                ("qr", self.qr),
                ("aa", self.aa),
                ("tc", self.tc),
                ("rd", self.rd),
                ("ra", self.ra),
                ("ad", self.ad),
                ("cd", self.cd),
            )
            if on
        )
        return (
            f"id={self.msg_id} {opcode_name(self.opcode)} {rcode_name(self.rcode)} "
            f"[{flags}] qd={self.qdcount} an={self.ancount} ns={self.nscount} ar={self.arcount}"
        )


@dataclass(frozen=True)
class Question:
    """One entry of the question section."""

    qname: Name
    qtype: int
    qclass: int = CLASS_IN

    def encode(self, buffer: bytearray, compress) -> None:
        self.qname.encode(buffer, compress)
        buffer += struct.pack("!HH", self.qtype, self.qclass)

    @classmethod
    def decode(cls, wire: bytes, offset: int) -> Tuple["Question", int]:
        qname, offset = Name.decode(wire, offset)
        if offset + 4 > len(wire):
            raise MessageTruncated("truncated question")
        qtype, qclass = struct.unpack_from("!HH", wire, offset)
        return cls(qname, qtype, qclass), offset + 4

    def to_text(self) -> str:
        return f"{self.qname.to_text()} {class_name(self.qclass)} {type_name(self.qtype)}"


@dataclass(frozen=True)
class ResourceRecord:
    """One resource record (answer/authority/additional sections)."""

    name: Name
    rdtype: int
    rdclass: int
    ttl: int
    rdata: Rdata

    def encode(self, buffer: bytearray, compress) -> None:
        self.name.encode(buffer, compress)
        buffer += struct.pack("!HHI", self.rdtype, self.rdclass, self.ttl)
        rdlength_at = len(buffer)
        buffer += b"\x00\x00"  # placeholder, patched below
        start = len(buffer)
        self.rdata.encode(buffer, compress)
        rdlength = len(buffer) - start
        if rdlength > 0xFFFF:
            raise MessageMalformed(f"rdata of {self.name} exceeds 65535 bytes")
        struct.pack_into("!H", buffer, rdlength_at, rdlength)

    @classmethod
    def decode(cls, wire: bytes, offset: int) -> Tuple["ResourceRecord", int]:
        name, offset = Name.decode(wire, offset)
        if offset + 10 > len(wire):
            raise MessageTruncated("truncated resource record header")
        rdtype, rdclass, ttl, rdlength = struct.unpack_from("!HHIH", wire, offset)
        offset += 10
        rdata = decode_rdata(rdtype, wire, offset, rdlength)
        return cls(name, rdtype, rdclass, ttl, rdata), offset + rdlength

    def with_ttl(self, ttl: int) -> "ResourceRecord":
        return replace(self, ttl=ttl)

    def to_text(self) -> str:
        return (
            f"{self.name.to_text()} {self.ttl} {class_name(self.rdclass)} "
            f"{type_name(self.rdtype)} {self.rdata.to_text()}"
        )


@dataclass
class Message:
    """A complete DNS message."""

    header: Header = field(default_factory=Header)
    questions: List[Question] = field(default_factory=list)
    answers: List[ResourceRecord] = field(default_factory=list)
    authorities: List[ResourceRecord] = field(default_factory=list)
    additionals: List[ResourceRecord] = field(default_factory=list)

    # -- derived views ------------------------------------------------------

    @property
    def question(self) -> Optional[Question]:
        """The first question, or None."""
        return self.questions[0] if self.questions else None

    @property
    def rcode(self) -> int:
        return self.header.rcode

    @property
    def is_response(self) -> bool:
        return self.header.qr

    def opt_record(self) -> Optional[ResourceRecord]:
        """The EDNS OPT pseudo-record, if present in additionals."""
        for record in self.additionals:
            if record.rdtype == TYPE_OPT:
                return record
        return None

    def answer_addresses(self) -> List[str]:
        """All A/AAAA addresses in the answer section, in order."""
        addresses = []
        for record in self.answers:
            text = getattr(record.rdata, "address", None)
            if text is not None:
                addresses.append(text)
        return addresses

    # -- codec ----------------------------------------------------------------

    def to_wire(self, compress: bool = True) -> bytes:
        """Encode to wire bytes, updating the header section counts."""
        self.header.qdcount = len(self.questions)
        self.header.ancount = len(self.answers)
        self.header.nscount = len(self.authorities)
        self.header.arcount = len(self.additionals)
        buffer = bytearray()
        self.header.encode(buffer)
        compress_map = {} if compress else None
        for question in self.questions:
            question.encode(buffer, compress_map)
        for section in (self.answers, self.authorities, self.additionals):
            for record in section:
                record.encode(buffer, compress_map)
        return bytes(buffer)

    @classmethod
    def from_wire(cls, wire: bytes) -> "Message":
        """Decode wire bytes; strict about counts and trailing data."""
        if len(wire) < _HEADER.size:
            raise MessageTruncated(f"message is {len(wire)} bytes; header needs 12")
        msg_id, flags, qd, an, ns, ar = _HEADER.unpack_from(wire, 0)
        header = Header.from_words(msg_id, flags, qd, an, ns, ar)
        offset = _HEADER.size
        questions = []
        for _ in range(qd):
            question, offset = Question.decode(wire, offset)
            questions.append(question)
        sections: List[List[ResourceRecord]] = [[], [], []]
        for section, count in zip(sections, (an, ns, ar)):
            for _ in range(count):
                record, offset = ResourceRecord.decode(wire, offset)
                section.append(record)
        if offset != len(wire):
            raise MessageMalformed(
                f"{len(wire) - offset} trailing bytes after message body"
            )
        return cls(
            header=header,
            questions=questions,
            answers=sections[0],
            authorities=sections[1],
            additionals=sections[2],
        )

    def describe(self) -> str:
        """dig-style multi-line rendering."""
        lines = [";; " + self.header.describe()]
        if self.questions:
            lines.append(";; QUESTION")
            lines.extend("; " + q.to_text() for q in self.questions)
        for title, section in (
            ("ANSWER", self.answers),
            ("AUTHORITY", self.authorities),
            ("ADDITIONAL", self.additionals),
        ):
            if section:
                lines.append(f";; {title}")
                lines.extend(record.to_text() for record in section)
        return "\n".join(lines)
