"""Static HTTPS servers for page objects.

A :class:`StaticWebServer` binds port 443 on a simulated host and serves
``GET /obj/<name>`` with a body of the registered size over TLS + HTTP/2
(or HTTP/1.1 by ALPN).  Bodies are synthetic (repeated filler bytes); only
their size matters for load timing.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.httpsim.h1 import H1RequestParser, HttpRequest, HttpResponse, encode_response
from repro.httpsim.h2 import H2ServerSession
from repro.netsim.host import Host
from repro.netsim.sockets import SimTcpConnection
from repro.tlssim.handshake import TlsServerConfig, TlsServerConnection


class StaticWebServer:
    """Serves fixed-size objects on one host."""

    def __init__(
        self,
        host: Host,
        tls_config: Optional[TlsServerConfig] = None,
        processing_delay_ms: float = 0.5,
    ) -> None:
        self.host = host
        self.tls_config = tls_config or TlsServerConfig()
        self.processing_delay_ms = processing_delay_ms
        self._objects: Dict[str, int] = {}
        self.requests_served = 0
        host.listen_tcp(443, self._accept)

    @property
    def _loop(self):
        assert self.host.network is not None
        return self.host.network.loop

    def register(self, name: str, size_bytes: int) -> None:
        """Make ``GET /obj/<name>`` return ``size_bytes`` of body."""
        self._objects[name] = size_bytes

    def _respond(self, request: HttpRequest, send) -> None:
        if not request.path.startswith("/obj/"):
            send(HttpResponse(status=404, body=b"not found"))
            return
        name = request.path[len("/obj/"):]
        size = self._objects.get(name)
        if size is None:
            send(HttpResponse(status=404, body=b"unknown object"))
            return
        self.requests_served += 1
        body = (name.encode("ascii", "replace") + b"-") * (
            size // (len(name) + 1) + 1
        )
        send(
            HttpResponse(
                status=200,
                headers={"Content-Type": "application/octet-stream"},
                body=body[:size],
            )
        )

    def _accept(self, conn: SimTcpConnection) -> None:
        tls = TlsServerConnection(conn, self.tls_config)
        state: Dict[str, object] = {}

        def handle_h2(request: HttpRequest, stream_id: int) -> None:
            session = state["session"]
            assert isinstance(session, H2ServerSession)
            self._loop.call_later(
                self.processing_delay_ms,
                self._respond,
                request,
                lambda response: session.respond(stream_id, response),
            )

        def on_app_data(data: bytes) -> None:
            if "session" not in state:
                if tls.negotiated_alpn == "h2":
                    state["session"] = H2ServerSession(
                        send=tls.send_application, on_request=handle_h2
                    )
                else:
                    state["session"] = H1RequestParser()
            session = state["session"]
            if isinstance(session, H2ServerSession):
                session.feed(data)
            else:
                assert isinstance(session, H1RequestParser)
                for request in session.feed(data):
                    self._loop.call_later(
                        self.processing_delay_ms,
                        self._respond,
                        request,
                        lambda response: tls.send_application(encode_response(response)),
                    )

        tls.on_application_data = on_app_data
