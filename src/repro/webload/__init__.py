"""Web page-load modelling: the paper's stated future work.

§3 (Limitations): "we do not measure how encrypted DNS affects application
performance, such as web page load time ... doing so would be a natural
direction for future work."  This package implements that direction on the
simulated substrate, in the spirit of Hounsel et al. and WProf:

* :mod:`repro.webload.page` — page specifications: objects, sizes, the
  domains they load from, and discovery dependencies;
* :mod:`repro.webload.server` — static HTTPS servers hosting the objects;
* :mod:`repro.webload.dnsclient` — a client-side stub resolver (DoH or
  Do53 upstream) with its own TTL cache, as a browser would run;
* :mod:`repro.webload.loader` — the page loader: resolves, pools one
  HTTP/2 connection per origin, honours discovery dependencies, and
  reports page load time with a DNS-time breakdown;
* :mod:`repro.webload.world` — attaches web servers for the simulated
  zones' addresses to an existing measurement world.
"""

from repro.webload.page import ObjectSpec, PageSpec, news_site_page, simple_page
from repro.webload.server import StaticWebServer
from repro.webload.dnsclient import StubResolver, StubResolverConfig
from repro.webload.loader import PageLoadResult, PageLoader
from repro.webload.world import attach_web_servers

__all__ = [
    "ObjectSpec",
    "PageLoadResult",
    "PageLoader",
    "PageSpec",
    "StaticWebServer",
    "StubResolver",
    "StubResolverConfig",
    "attach_web_servers",
    "news_site_page",
    "simple_page",
]
