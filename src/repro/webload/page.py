"""Page specifications.

A page is a root HTML object plus a set of sub-resources (scripts, styles,
images, fonts), each hosted on some domain and *discovered* by another
object: nothing can be fetched before the object that references it has
arrived.  This dependency structure is what makes DNS latency matter — a
slow resolver stalls the first fetch from every new domain on the critical
path (WProf's observation that uncached lookups can be ~13% of it).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.errors import CampaignConfigError


@dataclass(frozen=True)
class ObjectSpec:
    """One fetchable resource."""

    name: str
    domain: str
    size_bytes: int
    discovered_by: Optional[str] = None  # None = the root object

    def __post_init__(self) -> None:
        if self.size_bytes <= 0:
            raise CampaignConfigError(f"{self.name}: size must be positive")


@dataclass
class PageSpec:
    """A full page: root object plus sub-resources."""

    root: ObjectSpec
    objects: List[ObjectSpec] = field(default_factory=list)

    def __post_init__(self) -> None:
        names = {self.root.name}
        for spec in self.objects:
            if spec.name in names:
                raise CampaignConfigError(f"duplicate object name {spec.name!r}")
            names.add(spec.name)
        for spec in self.objects:
            parent = spec.discovered_by or self.root.name
            if parent not in names:
                raise CampaignConfigError(
                    f"{spec.name} discovered by unknown object {parent!r}"
                )
        # Reject dependency cycles (the loader would deadlock).
        self._check_acyclic()

    def _check_acyclic(self) -> None:
        parents = {spec.name: spec.discovered_by or self.root.name for spec in self.objects}
        for start in parents:
            seen = {start}
            node = parents[start]
            while node != self.root.name:
                if node in seen:
                    raise CampaignConfigError(f"dependency cycle through {node!r}")
                seen.add(node)
                node = parents.get(node, self.root.name)

    @property
    def all_objects(self) -> List[ObjectSpec]:
        return [self.root] + list(self.objects)

    @property
    def domains(self) -> List[str]:
        ordered: List[str] = []
        for spec in self.all_objects:
            if spec.domain not in ordered:
                ordered.append(spec.domain)
        return ordered

    @property
    def total_bytes(self) -> int:
        return sum(spec.size_bytes for spec in self.all_objects)

    def children_of(self, name: str) -> List[ObjectSpec]:
        return [
            spec
            for spec in self.objects
            if (spec.discovered_by or self.root.name) == name
        ]


def simple_page(
    primary_domain: str,
    object_domains: Sequence[str],
    objects_per_domain: int = 2,
    object_bytes: int = 20_000,
    html_bytes: int = 40_000,
) -> PageSpec:
    """A flat page: HTML on the primary domain, objects fanned out."""
    root = ObjectSpec(name="index.html", domain=primary_domain, size_bytes=html_bytes)
    objects = []
    for domain_index, domain in enumerate(object_domains):
        for object_index in range(objects_per_domain):
            objects.append(
                ObjectSpec(
                    name=f"obj-{domain_index}-{object_index}",
                    domain=domain,
                    size_bytes=object_bytes,
                )
            )
    return PageSpec(root=root, objects=objects)


def news_site_page(
    primary_domain: str,
    third_party_domains: Sequence[str],
) -> PageSpec:
    """A nested page shaped like a media site.

    HTML discovers CSS/JS on the primary domain; the JS discovers
    third-party resources (ads/analytics/CDN images); one third-party
    script discovers yet another domain — a three-level critical path,
    where late-discovered domains pay their DNS lookup mid-load.
    """
    if len(third_party_domains) < 2:
        raise CampaignConfigError("news_site_page needs >= 2 third-party domains")
    root = ObjectSpec(name="index.html", domain=primary_domain, size_bytes=60_000)
    objects = [
        ObjectSpec("app.css", primary_domain, 30_000),
        ObjectSpec("app.js", primary_domain, 120_000),
        ObjectSpec("hero.jpg", primary_domain, 200_000),
    ]
    for index, domain in enumerate(third_party_domains):
        objects.append(
            ObjectSpec(
                name=f"vendor-{index}.js",
                domain=domain,
                size_bytes=40_000,
                discovered_by="app.js",
            )
        )
        objects.append(
            ObjectSpec(
                name=f"asset-{index}.img",
                domain=domain,
                size_bytes=80_000,
                discovered_by=f"vendor-{index}.js",
            )
        )
    return PageSpec(root=root, objects=objects)
