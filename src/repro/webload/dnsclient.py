"""The browser-side stub resolver.

Resolves domains through a configured upstream (DoH with a kept-alive
connection — how browsers actually run DoH — or classic Do53), and caches
answers by TTL like a real stub, so only the *first* lookup of each domain
during a page load pays the resolver round trip.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.core.probes import Do53Probe, Do53ProbeConfig, DohProbe, DohProbeConfig
from repro.errors import CampaignConfigError, ResolutionFailed
from repro.netsim.host import Host

ResolveCallback = Callable[[Optional[List[str]], Optional[Exception]], None]


@dataclass
class StubResolverConfig:
    """Upstream choice and cache behaviour."""

    transport: str = "doh"  # "doh" | "do53"
    reuse_connections: bool = True
    cache_ttl_ms: float = 300_000.0
    timeout_ms: float = 5000.0

    def __post_init__(self) -> None:
        if self.transport not in ("doh", "do53"):
            raise CampaignConfigError(f"unknown stub transport {self.transport!r}")


class StubResolver:
    """Client-side resolver bound to one upstream recursive resolver."""

    def __init__(
        self,
        host: Host,
        resolver_ip: str,
        resolver_name: str,
        config: Optional[StubResolverConfig] = None,
        rng: Optional[random.Random] = None,
    ) -> None:
        self.host = host
        self.config = config or StubResolverConfig()
        self.rng = rng if rng is not None else random.Random(0)
        self._cache: Dict[str, Tuple[List[str], float]] = {}
        self._pending: Dict[str, List[ResolveCallback]] = {}
        self.lookups = 0
        self.cache_hits = 0
        self.upstream_queries = 0
        self.total_lookup_ms = 0.0
        if self.config.transport == "doh":
            self._probe = DohProbe(
                host, resolver_ip, resolver_name,
                DohProbeConfig(
                    reuse_connections=self.config.reuse_connections,
                    timeout_ms=self.config.timeout_ms,
                ),
                rng=self.rng,
            )
        else:
            self._probe = Do53Probe(
                host, resolver_ip,
                Do53ProbeConfig(timeout_ms=self.config.timeout_ms),
                rng=self.rng,
            )

    @property
    def _loop(self):
        assert self.host.network is not None
        return self.host.network.loop

    def resolve(self, domain: str, callback: ResolveCallback) -> None:
        """Resolve ``domain`` to addresses; cached answers return instantly."""
        self.lookups += 1
        cached = self._cache.get(domain)
        now = self._loop.now
        if cached is not None and now < cached[1]:
            self.cache_hits += 1
            callback(list(cached[0]), None)
            return
        waiters = self._pending.get(domain)
        if waiters is not None:
            # Coalesce with the in-flight lookup, as real stubs do.
            waiters.append(callback)
            return
        self._pending[domain] = [callback]
        self.upstream_queries += 1
        started = now

        def on_outcome(outcome) -> None:
            self.total_lookup_ms += self._loop.now - started
            callbacks = self._pending.pop(domain, [])
            if outcome.success and outcome.answers:
                self._cache[domain] = (
                    list(outcome.answers),
                    self._loop.now + self.config.cache_ttl_ms,
                )
                for waiting in callbacks:
                    waiting(list(outcome.answers), None)
            else:
                error = ResolutionFailed(
                    f"{domain}: {outcome.error_class or 'no addresses'}"
                )
                for waiting in callbacks:
                    waiting(None, error)

        self._probe.query(domain, on_outcome)

    def flush_cache(self) -> None:
        self._cache.clear()

    def close(self) -> None:
        self._probe.close()
