"""Wires web servers into an existing measurement world.

The simulated zones already publish A records (``google.com``,
``amazon.com``, ``wikipedia.org``, ``host1..20.example-sites.net``);
:func:`attach_web_servers` attaches hosts at those exact addresses running
:class:`~repro.webload.server.StaticWebServer`, so that a page whose
objects live on those domains is loadable end to end: stub DNS lookup →
recursive resolver → connect to the answer's address → fetch.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.errors import CampaignConfigError
from repro.geo.regions import CITIES
from repro.netsim.host import Host
from repro.netsim.latency import SERVER
from repro.resolver.zones import STUDY_DOMAINS
from repro.webload.page import PageSpec
from repro.webload.server import StaticWebServer

#: Where each study-domain web property is hosted.
_WEB_PLACEMENT: Dict[str, Tuple[str, str]] = {
    # domain: (address from the zone data, city)
    "google.com": (STUDY_DOMAINS["google.com."], "mountain_view"),
    "amazon.com": (STUDY_DOMAINS["amazon.com."], "ashburn"),
    "wikipedia.org": (STUDY_DOMAINS["wikipedia.org."], "ashburn"),
}

#: example-sites hosts: hostN.example-sites.net -> 100.64.1.(N+1) (zone data),
#: spread across cities like a small CDN-less web.
_EXAMPLE_CITIES = ("new_york", "chicago", "frankfurt", "london", "tokyo",
                   "singapore", "sydney", "los_angeles")


def attach_web_servers(
    world,
    example_hosts: int = 8,
    extra_domains: Optional[Dict[str, Tuple[str, str]]] = None,
) -> Dict[str, StaticWebServer]:
    """Attach web servers for the study domains + N example hosts.

    Returns a mapping domain -> server.  Servers are keyed by the domain
    whose zone A record points at them; register page objects on them via
    :func:`register_page`.
    """
    servers: Dict[str, StaticWebServer] = {}
    placements = dict(_WEB_PLACEMENT)
    for index in range(1, example_hosts + 1):
        domain = f"host{index}.example-sites.net"
        address = f"100.64.1.{index + 1}"
        city = _EXAMPLE_CITIES[(index - 1) % len(_EXAMPLE_CITIES)]
        placements[domain] = (address, city)
    if extra_domains:
        placements.update(extra_domains)

    for domain, (address, city_key) in placements.items():
        city = CITIES[city_key]
        host = world.network.attach(
            Host(
                name=f"web-{domain}",
                ip=address,
                coords=city.coords,
                continent=city.continent,
                access=SERVER,
            )
        )
        servers[domain] = StaticWebServer(host)
    return servers


def register_page(servers: Dict[str, StaticWebServer], page: PageSpec) -> None:
    """Register every object of ``page`` on its domain's server."""
    for spec in page.all_objects:
        server = servers.get(spec.domain)
        if server is None:
            raise CampaignConfigError(
                f"no web server for {spec.domain}; attach it first"
            )
        server.register(spec.name, spec.size_bytes)
