"""The page loader: fetches a :class:`PageSpec` and times it.

Model (after how browsers actually behave, scoped to what affects the
DNS comparison):

* one HTTP/2 connection per origin, shared by every object from that
  domain (requests multiplex; the first object pays TCP + TLS);
* an object becomes fetchable the moment the object that discovered it
  finishes (parse time is folded into server/processing constants);
* DNS lookups go through the :class:`~repro.webload.dnsclient.StubResolver`
  — the first lookup of each domain pays the configured resolver's
  response time, on the critical path of that domain's first object.

Page load time is the instant the last object completes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.errors import ReproError
from repro.httpsim.h1 import HttpRequest
from repro.httpsim.h2 import H2ClientSession
from repro.netsim.host import Host
from repro.tlssim.handshake import TlsClientConfig, TlsClientConnection
from repro.netsim.sockets import SimTcpConnection
from repro.webload.dnsclient import StubResolver
from repro.webload.page import ObjectSpec, PageSpec


@dataclass
class ObjectTiming:
    """Timing of one object fetch."""

    name: str
    domain: str
    started_ms: float
    finished_ms: Optional[float] = None
    size_bytes: int = 0

    @property
    def duration_ms(self) -> Optional[float]:
        if self.finished_ms is None:
            return None
        return self.finished_ms - self.started_ms


@dataclass
class PageLoadResult:
    """Outcome of one page load."""

    page_domains: List[str]
    plt_ms: Optional[float]
    success: bool
    error: Optional[str] = None
    objects: Dict[str, ObjectTiming] = field(default_factory=dict)
    dns_lookups: int = 0
    dns_cache_hits: int = 0
    dns_total_ms: float = 0.0
    bytes_fetched: int = 0

    def describe(self) -> str:
        if not self.success:
            return f"FAILED after {self.plt_ms or 0:.0f} ms: {self.error}"
        return (
            f"PLT {self.plt_ms:.1f} ms | {len(self.objects)} objects, "
            f"{self.bytes_fetched / 1024:.0f} kB | DNS: {self.dns_lookups} lookups "
            f"({self.dns_cache_hits} cached), {self.dns_total_ms:.1f} ms total"
        )


class PageLoader:
    """Loads pages from one client host through one stub resolver."""

    def __init__(
        self,
        host: Host,
        stub_resolver: StubResolver,
        timeout_ms: float = 60_000.0,
    ) -> None:
        self.host = host
        self.stub = stub_resolver
        self.timeout_ms = timeout_ms
        self._pool: Dict[str, object] = {}  # domain -> session | list of waiters

    @property
    def _loop(self):
        assert self.host.network is not None
        return self.host.network.loop

    # -- public API -----------------------------------------------------------

    def load(self, page: PageSpec, on_complete: Callable[[PageLoadResult], None]) -> None:
        """Load ``page``; ``on_complete`` fires exactly once."""
        state = _LoadState(self, page, on_complete)
        state.start()

    def close(self) -> None:
        """Drop pooled connections (between page loads)."""
        for entry in self._pool.values():
            tls = getattr(entry, "tls", None)
            if tls is not None:
                tls.close()
        self._pool.clear()

    # -- connection pool ----------------------------------------------------------

    def _with_connection(
        self,
        domain: str,
        ip: str,
        use: Callable[[H2ClientSession], None],
        fail: Callable[[Exception], None],
    ) -> None:
        entry = self._pool.get(domain)
        if isinstance(entry, _PooledConnection):
            use(entry.session)
            return
        if isinstance(entry, list):
            entry.append((use, fail))
            return
        waiters: List[Tuple[Callable, Callable]] = [(use, fail)]
        self._pool[domain] = waiters

        def on_tls(tls: TlsClientConnection) -> None:
            session = H2ClientSession(send=tls.send_application, authority=domain)
            tls.on_application_data = session.feed
            self._pool[domain] = _PooledConnection(tls=tls, session=session)
            for use_fn, _fail_fn in waiters:
                use_fn(session)

        def on_error(exc: Exception) -> None:
            self._pool.pop(domain, None)
            for _use_fn, fail_fn in waiters:
                fail_fn(exc)

        def on_tcp(conn: SimTcpConnection) -> None:
            TlsClientConnection(
                conn, domain, TlsClientConfig(alpn=("h2",)),
                on_established=on_tls, on_error=on_error,
            )

        SimTcpConnection.connect(self.host, ip, 443, on_tcp, on_error=on_error)


@dataclass
class _PooledConnection:
    tls: TlsClientConnection
    session: H2ClientSession


class _LoadState:
    """State of one in-flight page load."""

    def __init__(self, loader: PageLoader, page: PageSpec, on_complete) -> None:
        self.loader = loader
        self.page = page
        self.on_complete = on_complete
        self.result = PageLoadResult(
            page_domains=page.domains, plt_ms=None, success=False
        )
        self.started_at = loader._loop.now
        self.outstanding = 0
        self.done = False
        self.dns_lookups_before = loader.stub.upstream_queries
        self.dns_hits_before = loader.stub.cache_hits
        self.dns_ms_before = loader.stub.total_lookup_ms
        self._timer = loader._loop.call_later(loader.timeout_ms, self._timeout)

    def start(self) -> None:
        self._fetch(self.page.root)

    # -- object lifecycle -------------------------------------------------------

    def _fetch(self, spec: ObjectSpec) -> None:
        if self.done:
            return
        self.outstanding += 1
        timing = ObjectTiming(
            name=spec.name, domain=spec.domain, started_ms=self.loader._loop.now
        )
        self.result.objects[spec.name] = timing

        def fail(exc: Exception) -> None:
            self._fail(f"{spec.name} ({spec.domain}): {exc}")

        def on_addresses(addresses, error) -> None:
            if self.done:
                return
            if error is not None or not addresses:
                fail(error or ReproError("no addresses"))
                return
            self.loader._with_connection(
                spec.domain, addresses[0],
                lambda session: self._request(session, spec, timing, fail),
                fail,
            )

        self.loader.stub.resolve(spec.domain, on_addresses)

    def _request(self, session, spec: ObjectSpec, timing: ObjectTiming, fail) -> None:
        if self.done:
            return

        def on_response(response) -> None:
            if self.done:
                return
            if response.status != 200:
                fail(ReproError(f"HTTP {response.status}"))
                return
            timing.finished_ms = self.loader._loop.now
            timing.size_bytes = len(response.body)
            self.result.bytes_fetched += len(response.body)
            self.outstanding -= 1
            for child in self.page.children_of(spec.name):
                self._fetch(child)
            if self.outstanding == 0:
                self._succeed()

        try:
            session.request(
                HttpRequest(method="GET", path=f"/obj/{spec.name}"), on_response
            )
        except Exception as exc:
            fail(exc)

    # -- completion ------------------------------------------------------------------

    def _collect_dns_stats(self) -> None:
        stub = self.loader.stub
        self.result.dns_lookups = stub.upstream_queries - self.dns_lookups_before
        self.result.dns_cache_hits = stub.cache_hits - self.dns_hits_before
        self.result.dns_total_ms = stub.total_lookup_ms - self.dns_ms_before

    def _succeed(self) -> None:
        if self.done:
            return
        self.done = True
        self._timer.cancel()
        self.result.success = True
        self.result.plt_ms = self.loader._loop.now - self.started_at
        self._collect_dns_stats()
        self.on_complete(self.result)

    def _fail(self, message: str) -> None:
        if self.done:
            return
        self.done = True
        self._timer.cancel()
        self.result.success = False
        self.result.error = message
        self.result.plt_ms = self.loader._loop.now - self.started_at
        self._collect_dns_stats()
        self.on_complete(self.result)

    def _timeout(self) -> None:
        self._fail(f"page load exceeded {self.loader.timeout_ms:.0f} ms")
