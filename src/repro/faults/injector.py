"""Applies a :class:`~repro.faults.plan.FaultPlan` to a simulated world.

The injector schedules two callbacks per fault window on the virtual
clock — apply at ``start_ms``, revert at ``end_ms`` — and recomputes the
:class:`~repro.netsim.host.HostImpairments` of every affected host from
the set of windows currently active there.  Recomputing (rather than
toggling fields) makes overlapping windows compose correctly: numeric
impairments stack, and an outage that outlasts a nested TLS window stays
in force until its own end.

Everything is driven by the event loop, so injection is deterministic
given the plan, and arming the same plan on identically seeded worlds
yields packet-for-packet identical runs.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Union

from repro.errors import CampaignConfigError
from repro.faults.plan import FaultEvent, FaultKind, FaultPlan
from repro.netsim.host import Host
from repro.netsim.network import Network

#: ``World.deployments`` mapping or any iterable of deployment objects.
DeploymentsLike = Union[Mapping[str, object], Iterable[object]]


class FaultInjector:
    """Schedules a fault plan's windows onto a network's virtual clock.

    Parameters
    ----------
    network:
        The simulated network whose event loop drives the windows.
    hosts_by_target:
        Maps each plan hostname to the hosts it impairs — normally every
        site of the resolver's deployment (see :func:`deployment_hosts`).
        Plan events naming an unknown hostname raise at :meth:`arm` time,
        so typos fail loudly instead of silently injecting nothing.
    """

    def __init__(
        self,
        network: Network,
        hosts_by_target: Mapping[str, Sequence[Host]],
        plan: FaultPlan,
    ) -> None:
        self.network = network
        self.plan = plan
        self._hosts_by_target: Dict[str, List[Host]] = {
            hostname: list(hosts) for hostname, hosts in hosts_by_target.items()
        }
        self._active: Dict[str, List[FaultEvent]] = {}
        self._armed = False
        self.applied_count = 0
        self.reverted_count = 0

    # -- arming ----------------------------------------------------------------

    def arm(self, offset_ms: float = 0.0) -> int:
        """Schedule every window; returns the number of events armed.

        ``offset_ms`` shifts the whole plan (whose events are relative to
        0) to start at ``now + offset_ms``, so a plan generated for a
        campaign horizon can be armed just before the campaign runs.
        """
        if self._armed:
            raise CampaignConfigError("fault injector is already armed")
        if offset_ms < 0:
            raise CampaignConfigError(f"negative fault plan offset {offset_ms!r}")
        unknown = sorted(
            {e.hostname for e in self.plan.events} - set(self._hosts_by_target)
        )
        if unknown:
            raise CampaignConfigError(
                f"fault plan targets unknown hostnames: {', '.join(unknown)}"
            )
        base = self.network.loop.now + offset_ms
        for event in self.plan.events:
            self.network.loop.call_at(base + event.start_ms, self._apply, event)
            self.network.loop.call_at(base + event.end_ms, self._revert, event)
        self._armed = True
        return len(self.plan.events)

    # -- window lifecycle ------------------------------------------------------

    def _apply(self, event: FaultEvent) -> None:
        self._active.setdefault(event.hostname, []).append(event)
        self.applied_count += 1
        self._recompute(event.hostname)

    def _revert(self, event: FaultEvent) -> None:
        active = self._active.get(event.hostname, [])
        if event in active:
            active.remove(event)
            self.reverted_count += 1
        self._recompute(event.hostname)

    def _recompute(self, hostname: str) -> None:
        """Rebuild each affected host's impairments from its active windows."""
        active = self._active.get(hostname, [])
        for host in self._hosts_by_target[hostname]:
            imp = host.impairments
            imp.clear()
            for event in active:
                if event.kind == FaultKind.OUTAGE_REFUSE:
                    # Refuse wins over drop when both are active: the RST
                    # path is the observable one.
                    imp.syn_override = "refuse"
                elif event.kind == FaultKind.OUTAGE_DROP:
                    if imp.syn_override is None:
                        imp.syn_override = "drop"
                elif event.kind == FaultKind.TLS_WINDOW:
                    imp.tls_failure = True
                elif event.kind == FaultKind.LOSS_SPIKE:
                    imp.extra_loss_rate = 1.0 - (1.0 - imp.extra_loss_rate) * (
                        1.0 - event.magnitude
                    )
                elif event.kind == FaultKind.LATENCY_SPIKE:
                    imp.extra_delay_ms += event.magnitude
                elif event.kind == FaultKind.DEGRADATION:
                    imp.extra_processing_ms += event.magnitude

    # -- introspection ---------------------------------------------------------

    @property
    def active_events(self) -> List[FaultEvent]:
        """Windows currently in force (in plan order)."""
        return [e for events in self._active.values() for e in events]

    def describe(self) -> str:
        return (
            f"FaultInjector: {len(self.plan)} windows, "
            f"{self.applied_count} applied, {self.reverted_count} reverted, "
            f"{len(self.active_events)} active"
        )


def deployment_hosts(deployments: "DeploymentsLike") -> Dict[str, List[Host]]:
    """Target map covering every site host of every resolver deployment.

    Accepts the ``World.deployments`` mapping (hostname →
    :class:`~repro.resolver.deployment.ResolverDeployment`) or any
    iterable of deployments (each carrying ``hostname`` and ``sites``).
    """
    if isinstance(deployments, Mapping):
        items = deployments.values()
    else:
        items = deployments
    return {
        deployment.hostname: [site.host for site in deployment.sites]  # type: ignore[attr-defined]
        for deployment in items
    }


def inject_faults(
    network: Network,
    deployments: "DeploymentsLike",
    plan: FaultPlan,
    offset_ms: float = 0.0,
) -> FaultInjector:
    """Convenience: build an injector over whole deployments and arm it."""
    injector = FaultInjector(network, deployment_hosts(deployments), plan)
    injector.arm(offset_ms=offset_ms)
    return injector
