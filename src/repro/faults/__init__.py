"""Deterministic fault injection for the simulated measurement world.

The subsystem has two halves:

* :mod:`repro.faults.plan` — :class:`FaultPlan`, a seeded, serializable
  schedule of time-windowed impairments (:class:`FaultEvent`) over
  resolver hostnames;
* :mod:`repro.faults.injector` — :class:`FaultInjector`, which arms a
  plan on a network's virtual clock and mutates host impairments as
  windows open and close.

Together they reproduce the paper's transient-failure phenomenology:
resolver outages (refused or silently dropped connections), TLS
handshake failure windows, loss and latency spikes, and overload
degradation — all reproducible from a single seed.
"""

from repro.faults.injector import FaultInjector, deployment_hosts, inject_faults
from repro.faults.plan import (
    DEFAULT_KIND_WEIGHTS,
    FaultEvent,
    FaultKind,
    FaultPlan,
    FaultPlanConfig,
)

__all__ = [
    "DEFAULT_KIND_WEIGHTS",
    "FaultEvent",
    "FaultInjector",
    "FaultKind",
    "FaultPlan",
    "FaultPlanConfig",
    "deployment_hosts",
    "inject_faults",
]
