"""Deterministic fault plans: time-windowed impairments on resolvers.

The paper's availability finding — ~311k of ~5.4M query attempts failed
(≈5.8%), dominated by connection-establishment errors with *no consistent
per-resolver pattern* — is a statement about transient behaviour.  A
static per-link Bernoulli loss rate cannot reproduce it; what is needed
is resolvers that are briefly refusing, silently dropping, mis-handshaking
or degraded, at different times, round after round.

A :class:`FaultPlan` is an explicit, seeded list of :class:`FaultEvent`
windows.  The plan is pure data: generating it draws no simulation state,
so the same seed always yields byte-identical plans across processes
(seeding uses CRC32, not Python's randomized ``hash``), and a plan can be
serialized, inspected and replayed.  The
:class:`~repro.faults.injector.FaultInjector` schedules the windows on
the virtual clock.
"""

from __future__ import annotations

import json
import random
import zlib
from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, Iterable, List, Optional, Sequence

from repro.errors import CampaignConfigError


class FaultKind(str, Enum):
    """What a fault window does to the resolver it targets."""

    #: Every inbound SYN is answered with RST (fast "connection refused").
    OUTAGE_REFUSE = "outage_refuse"
    #: Every inbound SYN is silently dropped (client connect timeout).
    OUTAGE_DROP = "outage_drop"
    #: TLS handshakes are aborted with a fatal alert.
    TLS_WINDOW = "tls_window"
    #: Extra Bernoulli loss on every packet to/from the resolver's hosts.
    LOSS_SPIKE = "loss_spike"
    #: Extra one-way delay on every packet to/from the resolver's hosts.
    LATENCY_SPIKE = "latency_spike"
    #: Extra frontend service time per query (overload / slow start).
    DEGRADATION = "degradation"


#: Kinds whose magnitude is a probability in [0, 1].
_PROBABILITY_KINDS = frozenset({FaultKind.LOSS_SPIKE})
#: Kinds whose magnitude is a duration in milliseconds.
_DELAY_KINDS = frozenset({FaultKind.LATENCY_SPIKE, FaultKind.DEGRADATION})


@dataclass(frozen=True)
class FaultEvent:
    """One impairment window on one resolver deployment.

    ``magnitude`` is kind-dependent: a loss probability for
    :attr:`FaultKind.LOSS_SPIKE`, extra milliseconds for
    :attr:`FaultKind.LATENCY_SPIKE`/:attr:`FaultKind.DEGRADATION`, and
    unused (0) for the outage/TLS kinds.
    """

    kind: FaultKind
    hostname: str
    start_ms: float
    duration_ms: float
    magnitude: float = 0.0

    def __post_init__(self) -> None:
        if not self.hostname:
            raise CampaignConfigError("fault event needs a target hostname")
        if self.start_ms < 0:
            raise CampaignConfigError(f"fault start {self.start_ms!r} is negative")
        if self.duration_ms <= 0:
            raise CampaignConfigError(f"fault duration {self.duration_ms!r} must be positive")
        if self.kind in _PROBABILITY_KINDS and not 0.0 < self.magnitude <= 1.0:
            raise CampaignConfigError(
                f"{self.kind.value} magnitude {self.magnitude!r} must be a loss rate in (0, 1]"
            )
        if self.kind in _DELAY_KINDS and self.magnitude <= 0.0:
            raise CampaignConfigError(
                f"{self.kind.value} magnitude {self.magnitude!r} must be positive milliseconds"
            )

    @property
    def end_ms(self) -> float:
        return self.start_ms + self.duration_ms

    def overlaps(self, at_ms: float) -> bool:
        """Whether the window is active at virtual time ``at_ms``."""
        return self.start_ms <= at_ms < self.end_ms

    def to_dict(self) -> Dict:
        return {
            "kind": self.kind.value,
            "hostname": self.hostname,
            "start_ms": self.start_ms,
            "duration_ms": self.duration_ms,
            "magnitude": self.magnitude,
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "FaultEvent":
        return cls(
            kind=FaultKind(data["kind"]),
            hostname=data["hostname"],
            start_ms=float(data["start_ms"]),
            duration_ms=float(data["duration_ms"]),
            magnitude=float(data.get("magnitude", 0.0)),
        )


#: Default mix of fault kinds, weighted so connection-establishment
#: failures (refuse + drop + TLS) dominate the resulting error breakdown,
#: as the paper observed.
DEFAULT_KIND_WEIGHTS: Dict[FaultKind, float] = {
    FaultKind.OUTAGE_REFUSE: 0.32,
    FaultKind.OUTAGE_DROP: 0.26,
    FaultKind.TLS_WINDOW: 0.20,
    FaultKind.LOSS_SPIKE: 0.10,
    FaultKind.LATENCY_SPIKE: 0.06,
    FaultKind.DEGRADATION: 0.06,
}


@dataclass(frozen=True)
class FaultPlanConfig:
    """Knobs of the random plan generator.

    ``impaired_time_fraction`` is the expected fraction of each resolver's
    (time × availability) budget covered by fault windows; because a query
    landing inside an outage/TLS window fails deterministically, it is
    approximately the error rate those kinds contribute.  The default
    (together with the catalog's steady-state reliability tiers) lands
    the overall campaign error rate in the paper's ≈5–6% band.
    """

    impaired_time_fraction: float = 0.030
    mean_window_ms: float = 45 * 60 * 1000.0  # 45 virtual minutes
    min_window_ms: float = 5 * 60 * 1000.0
    kind_weights: Dict[FaultKind, float] = field(
        default_factory=lambda: dict(DEFAULT_KIND_WEIGHTS)
    )
    loss_spike_rate: float = 0.9
    latency_spike_ms: float = 350.0
    degradation_ms: float = 180.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.impaired_time_fraction < 1.0:
            raise CampaignConfigError("impaired_time_fraction must be in [0, 1)")
        if self.mean_window_ms <= 0 or self.min_window_ms <= 0:
            raise CampaignConfigError("fault window durations must be positive")
        if not self.kind_weights or any(w < 0 for w in self.kind_weights.values()):
            raise CampaignConfigError("kind_weights must be non-empty and non-negative")
        if not 0.0 < self.loss_spike_rate <= 1.0:
            raise CampaignConfigError("loss_spike_rate must be in (0, 1]")


def _stable_seed(*parts: object) -> int:
    """Process-independent 32-bit seed from arbitrary parts (CRC32, not hash)."""
    material = "|".join(str(part) for part in parts).encode("utf-8")
    return zlib.crc32(material) & 0xFFFFFFFF


class FaultPlan:
    """An immutable schedule of fault windows over a set of resolvers."""

    def __init__(self, events: Iterable[FaultEvent] = ()) -> None:
        self.events: List[FaultEvent] = sorted(
            events, key=lambda e: (e.start_ms, e.hostname, e.kind.value)
        )

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, FaultPlan):
            return NotImplemented
        return self.events == other.events

    def events_for(self, hostname: str) -> List[FaultEvent]:
        return [event for event in self.events if event.hostname == hostname]

    def restricted_to(self, hostnames: Iterable[str]) -> "FaultPlan":
        """The sub-plan touching only ``hostnames``.

        Because :meth:`generate` derives an independent RNG per hostname,
        restricting a plan equals generating one for the subset: a
        campaign shard arms exactly the windows the full serial campaign
        would have armed for its resolvers.
        """
        wanted = set(hostnames)
        return FaultPlan(event for event in self.events if event.hostname in wanted)

    def active_at(self, at_ms: float) -> List[FaultEvent]:
        return [event for event in self.events if event.overlaps(at_ms)]

    @property
    def hostnames(self) -> List[str]:
        return sorted({event.hostname for event in self.events})

    # -- generation -----------------------------------------------------------

    @classmethod
    def generate(
        cls,
        hostnames: Sequence[str],
        horizon_ms: float,
        seed: int = 0,
        config: Optional[FaultPlanConfig] = None,
    ) -> "FaultPlan":
        """Draw a seeded random plan covering ``[0, horizon_ms)``.

        Each resolver gets its own derived RNG (so adding or removing one
        hostname does not reshuffle the others), and window placement is
        uniform over the horizon — transient failures hit different
        resolvers at different times, which is what produces the paper's
        "no consistent pattern" observation.
        """
        if horizon_ms <= 0:
            raise CampaignConfigError(f"fault horizon {horizon_ms!r} must be positive")
        config = config or FaultPlanConfig()
        kinds = list(config.kind_weights.keys())
        weights = [config.kind_weights[k] for k in kinds]
        events: List[FaultEvent] = []
        for hostname in hostnames:
            rng = random.Random(_stable_seed("fault-plan", seed, hostname))
            budget_ms = config.impaired_time_fraction * horizon_ms
            while budget_ms > 0:
                duration = max(
                    config.min_window_ms, rng.expovariate(1.0 / config.mean_window_ms)
                )
                duration = min(duration, horizon_ms)
                # Spend the budget in expectation: short leftover budgets
                # convert into a *chance* of one more window, so the
                # expected impaired time matches the configured fraction.
                if duration > budget_ms and rng.random() > budget_ms / duration:
                    break
                budget_ms -= duration
                start = rng.uniform(0.0, max(0.0, horizon_ms - duration))
                kind = rng.choices(kinds, weights=weights, k=1)[0]
                if kind in _PROBABILITY_KINDS:
                    magnitude = config.loss_spike_rate
                elif kind == FaultKind.LATENCY_SPIKE:
                    magnitude = config.latency_spike_ms
                elif kind == FaultKind.DEGRADATION:
                    magnitude = config.degradation_ms
                else:
                    magnitude = 0.0
                events.append(
                    FaultEvent(
                        kind=kind,
                        hostname=hostname,
                        start_ms=start,
                        duration_ms=duration,
                        magnitude=magnitude,
                    )
                )
        return cls(events)

    # -- persistence ----------------------------------------------------------

    def to_json(self) -> str:
        return json.dumps(
            [event.to_dict() for event in self.events],
            separators=(",", ":"),
            sort_keys=True,
        )

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        return cls(FaultEvent.from_dict(item) for item in json.loads(text))

    def describe(self) -> str:
        """Human-readable summary: events per kind and per resolver count."""
        by_kind: Dict[str, int] = {}
        for event in self.events:
            by_kind[event.kind.value] = by_kind.get(event.kind.value, 0) + 1
        kinds = ", ".join(f"{kind}={count}" for kind, count in sorted(by_kind.items()))
        return (
            f"FaultPlan: {len(self.events)} windows over "
            f"{len(self.hostnames)} resolvers ({kinds or 'none'})"
        )
