"""Oblivious DoH message encapsulation (RFC 9230, simulated sealing).

ODoH separates *who you are* from *what you ask*: the client seals the DNS
query to the target's public key and sends it via an oblivious proxy, so
the proxy sees the client but not the query, and the target sees the query
but not the client.

The study's catalog contains four ``odoh-target-*.alekberg.net`` rows, so
the reproduction implements the message flow.  Sealing is simulated — the
wire format matches ODoH's shape (message type, key id, length-prefixed
payload) and the "ciphertext" is an involutive byte transform, carrying no
secrecy but making accidental plaintext handling fail loudly in tests.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Tuple

from repro.errors import HttpError

#: Media type of ODoH messages (RFC 9230 §5).
CONTENT_TYPE_ODOH = "application/oblivious-dns-message"

MESSAGE_TYPE_QUERY = 1
MESSAGE_TYPE_RESPONSE = 2

_HEADER = struct.Struct("!BHH")


class OdohCodecError(HttpError):
    """Raised for malformed oblivious DNS messages."""


def _transform(data: bytes) -> bytes:
    """Involutive stand-in for HPKE seal/open (xor with a fixed pad)."""
    return bytes(byte ^ 0xA5 for byte in data)


@dataclass(frozen=True)
class OdohMessage:
    """One sealed ODoH message."""

    message_type: int
    key_id: int
    sealed: bytes

    def to_wire(self) -> bytes:
        return _HEADER.pack(self.message_type, self.key_id, len(self.sealed)) + self.sealed

    @classmethod
    def from_wire(cls, wire: bytes) -> "OdohMessage":
        if len(wire) < _HEADER.size:
            raise OdohCodecError("oblivious message shorter than its header")
        message_type, key_id, length = _HEADER.unpack_from(wire, 0)
        if message_type not in (MESSAGE_TYPE_QUERY, MESSAGE_TYPE_RESPONSE):
            raise OdohCodecError(f"unknown oblivious message type {message_type}")
        body = wire[_HEADER.size:]
        if len(body) != length:
            raise OdohCodecError(
                f"oblivious payload length mismatch: header says {length}, got {len(body)}"
            )
        return cls(message_type=message_type, key_id=key_id, sealed=body)


def seal_query(dns_wire: bytes, key_id: int) -> bytes:
    """Client side: seal a DNS query toward the target's key."""
    message = OdohMessage(MESSAGE_TYPE_QUERY, key_id, _transform(dns_wire))
    return message.to_wire()


def open_query(wire: bytes) -> Tuple[bytes, int]:
    """Target side: open a sealed query; returns (dns_wire, key_id)."""
    message = OdohMessage.from_wire(wire)
    if message.message_type != MESSAGE_TYPE_QUERY:
        raise OdohCodecError("expected a sealed query")
    return _transform(message.sealed), message.key_id


def seal_response(dns_wire: bytes, key_id: int) -> bytes:
    """Target side: seal the DNS response under the query's key context."""
    message = OdohMessage(MESSAGE_TYPE_RESPONSE, key_id, _transform(dns_wire))
    return message.to_wire()


def open_response(wire: bytes, expected_key_id: int) -> bytes:
    """Client side: open a sealed response, checking the key context."""
    message = OdohMessage.from_wire(wire)
    if message.message_type != MESSAGE_TYPE_RESPONSE:
        raise OdohCodecError("expected a sealed response")
    if message.key_id != expected_key_id:
        raise OdohCodecError(
            f"response sealed under key {message.key_id}, expected {expected_key_id}"
        )
    return _transform(message.sealed)
