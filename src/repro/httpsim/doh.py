"""RFC 8484: mapping DNS messages onto HTTP.

Two request forms are supported, as in the RFC and in real deployments:

* ``POST`` — the DNS message is the request body, with
  ``Content-Type: application/dns-message``;
* ``GET`` — the DNS message rides in a ``?dns=`` query parameter,
  base64url-encoded without padding (cache-friendly; pairs with
  ``msg_id = 0``).

Responses always carry the DNS message as an ``application/dns-message``
body with the TTL-derived ``Cache-Control`` the RFC suggests.
"""

from __future__ import annotations

import base64
from typing import Optional, Tuple
from urllib.parse import parse_qs, quote, urlsplit

from repro.errors import HttpError
from repro.httpsim.h1 import HttpRequest, HttpResponse
from repro.obs import get_metrics

CONTENT_TYPE_DNS = "application/dns-message"

#: Default URI template path used by most public resolvers.
DEFAULT_DOH_PATH = "/dns-query"


class DohCodecError(HttpError):
    """Raised when an HTTP message is not a valid DoH exchange."""


def _b64url_encode(data: bytes) -> str:
    return base64.urlsafe_b64encode(data).rstrip(b"=").decode("ascii")


def _b64url_decode(text: str) -> bytes:
    padding = -len(text) % 4
    try:
        return base64.urlsafe_b64decode(text + "=" * padding)
    except (ValueError, TypeError) as exc:
        raise DohCodecError(f"bad base64url dns parameter: {exc}")


def encode_doh_request(
    dns_wire: bytes,
    method: str = "POST",
    path: str = DEFAULT_DOH_PATH,
    accept_header: bool = True,
) -> HttpRequest:
    """Build the HTTP request carrying a DNS query."""
    metrics = get_metrics()
    if metrics.enabled:
        metrics.inc("doh.requests", method=method)
        metrics.observe("doh.query_bytes", len(dns_wire))
    headers = {}
    if accept_header:
        headers["Accept"] = CONTENT_TYPE_DNS
    if method == "POST":
        headers["Content-Type"] = CONTENT_TYPE_DNS
        return HttpRequest(method="POST", path=path, headers=headers, body=dns_wire)
    if method == "GET":
        query_path = f"{path}?dns={quote(_b64url_encode(dns_wire), safe='')}"
        return HttpRequest(method="GET", path=query_path, headers=headers, body=b"")
    raise DohCodecError(f"unsupported DoH method {method!r}")


def decode_doh_request(request: HttpRequest, expected_path: str = DEFAULT_DOH_PATH) -> bytes:
    """Extract the DNS query wire bytes from an HTTP request.

    Raises :class:`DohCodecError` with an HTTP-status hint attribute when
    the request is not a valid DoH query, so servers can answer 4xx.
    """
    split = urlsplit(request.path)
    if split.path != expected_path:
        exc = DohCodecError(f"unknown path {split.path!r}")
        exc.status_hint = 404  # type: ignore[attr-defined]
        raise exc
    if request.method == "POST":
        content_type = request.header("Content-Type", "")
        if content_type != CONTENT_TYPE_DNS:
            exc = DohCodecError(f"unsupported media type {content_type!r}")
            exc.status_hint = 415  # type: ignore[attr-defined]
            raise exc
        if not request.body:
            exc = DohCodecError("empty POST body")
            exc.status_hint = 400  # type: ignore[attr-defined]
            raise exc
        return request.body
    if request.method == "GET":
        params = parse_qs(split.query)
        values = params.get("dns")
        if not values:
            exc = DohCodecError("missing dns parameter")
            exc.status_hint = 400  # type: ignore[attr-defined]
            raise exc
        return _b64url_decode(values[0])
    exc = DohCodecError(f"method {request.method} not allowed")
    exc.status_hint = 405  # type: ignore[attr-defined]
    raise exc


def encode_doh_response(dns_wire: bytes, min_ttl: Optional[int] = None) -> HttpResponse:
    """Build the HTTP response carrying a DNS answer."""
    headers = {"Content-Type": CONTENT_TYPE_DNS}
    if min_ttl is not None:
        headers["Cache-Control"] = f"max-age={min_ttl}"
    return HttpResponse(status=200, headers=headers, body=dns_wire)


def encode_doh_error(status: int, detail: str = "") -> HttpResponse:
    """Build a non-200 DoH response (problem text body)."""
    body = detail.encode("utf-8")
    return HttpResponse(status=status, headers={"Content-Type": "text/plain"}, body=body)


def decode_doh_response(response: HttpResponse) -> bytes:
    """Extract the DNS answer wire bytes from an HTTP response."""
    metrics = get_metrics()
    if response.status != 200:
        if metrics.enabled:
            metrics.inc("doh.codec_errors", reason="http_status")
        exc = DohCodecError(f"HTTP {response.status}")
        exc.status_hint = response.status  # type: ignore[attr-defined]
        raise exc
    content_type = response.header("Content-Type", "")
    if content_type != CONTENT_TYPE_DNS:
        if metrics.enabled:
            metrics.inc("doh.codec_errors", reason="content_type")
        raise DohCodecError(f"unexpected response content type {content_type!r}")
    if not response.body:
        if metrics.enabled:
            metrics.inc("doh.codec_errors", reason="empty_body")
        raise DohCodecError("empty DoH response body")
    if metrics.enabled:
        metrics.observe("doh.response_bytes", len(response.body))
    return response.body


def split_get_request(request: HttpRequest) -> Tuple[str, Optional[str]]:
    """(path, dns-parameter) view of a GET request (diagnostics helper)."""
    split = urlsplit(request.path)
    params = parse_qs(split.query)
    values = params.get("dns")
    return split.path, values[0] if values else None
