"""HTTP/2 framing: client/server sessions with stream multiplexing.

Frames use the real 9-byte header — ``length(3) | type(1) | flags(1) |
stream(4)`` — so sizes and segmentation are realistic.  Header blocks are
JSON-encoded name/value maps standing in for HPACK (the compression ratio
difference is a few dozen bytes, far below MSS granularity).

Both sessions sit on top of a byte-stream ``send`` callable (typically
``TlsConnection.send_application``) and are fed inbound bytes via
:meth:`feed`.  The client session multiplexes concurrent requests on
odd-numbered streams, which is what lets a DoH client reuse one connection
for many in-flight queries.
"""

from __future__ import annotations

import json
import struct
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.errors import HttpProtocolError
from repro.httpsim.h1 import HttpRequest, HttpResponse
from repro.obs import get_metrics

FRAME_DATA = 0x0
FRAME_HEADERS = 0x1
FRAME_RST_STREAM = 0x3
FRAME_SETTINGS = 0x4
FRAME_GOAWAY = 0x7

FLAG_END_STREAM = 0x1
FLAG_END_HEADERS = 0x4
FLAG_ACK = 0x1  # on SETTINGS

#: The client connection preface (RFC 9113 §3.4).
PREFACE = b"PRI * HTTP/2.0\r\n\r\nSM\r\n\r\n"

_FRAME_HEADER = struct.Struct("!3sBBI")
MAX_FRAME_SIZE = 16384


def encode_frame(frame_type: int, flags: int, stream_id: int, payload: bytes) -> bytes:
    if len(payload) > MAX_FRAME_SIZE:
        raise HttpProtocolError(f"frame payload {len(payload)} exceeds max")
    return _FRAME_HEADER.pack(len(payload).to_bytes(3, "big"), frame_type, flags, stream_id) + payload


def _encode_headers_block(headers: Dict[str, str]) -> bytes:
    return json.dumps(headers, separators=(",", ":")).encode("utf-8")


def _decode_headers_block(payload: bytes) -> Dict[str, str]:
    try:
        decoded = json.loads(payload.decode("utf-8"))
    except (ValueError, UnicodeDecodeError) as exc:
        raise HttpProtocolError(f"bad header block: {exc}")
    if not isinstance(decoded, dict):
        raise HttpProtocolError("header block is not a map")
    return {str(k): str(v) for k, v in decoded.items()}


class _FrameBuffer:
    """Incremental frame splitter."""

    def __init__(self) -> None:
        self._buffer = bytearray()
        self.preface_pending = False

    def feed(self, data: bytes) -> List[Tuple[int, int, int, bytes]]:
        self._buffer += data
        frames = []
        if self.preface_pending:
            if len(self._buffer) < len(PREFACE):
                return frames
            if bytes(self._buffer[: len(PREFACE)]) != PREFACE:
                raise HttpProtocolError("bad HTTP/2 connection preface")
            del self._buffer[: len(PREFACE)]
            self.preface_pending = False
        while len(self._buffer) >= _FRAME_HEADER.size:
            length_bytes, frame_type, flags, stream_id = _FRAME_HEADER.unpack_from(self._buffer, 0)
            length = int.from_bytes(length_bytes, "big")
            if len(self._buffer) < _FRAME_HEADER.size + length:
                break
            payload = bytes(self._buffer[_FRAME_HEADER.size : _FRAME_HEADER.size + length])
            del self._buffer[: _FRAME_HEADER.size + length]
            frames.append((frame_type, flags, stream_id & 0x7FFFFFFF, payload))
        return frames


@dataclass
class _Stream:
    stream_id: int
    headers: Dict[str, str] = field(default_factory=dict)
    body: bytearray = field(default_factory=bytearray)
    headers_complete: bool = False
    ended: bool = False


class H2ClientSession:
    """Client half of an HTTP/2 connection.

    ``send`` transmits raw bytes toward the server (through TLS).  Call
    :meth:`request` any number of times; each gets its own stream and its
    ``on_response(HttpResponse)`` callback fires when the stream ends.
    """

    def __init__(self, send: Callable[[bytes], None], authority: str) -> None:
        self._send = send
        self.authority = authority
        self._next_stream_id = 1
        self._streams: Dict[int, _Stream] = {}
        self._callbacks: Dict[int, Callable[[HttpResponse], None]] = {}
        self._frames = _FrameBuffer()
        self.goaway_received = False
        self.on_goaway: Optional[Callable[[], None]] = None
        # Connection preface + initial SETTINGS.
        self._send(PREFACE + encode_frame(FRAME_SETTINGS, 0, 0, b""))

    def request(
        self,
        request: HttpRequest,
        on_response: Callable[[HttpResponse], None],
    ) -> int:
        """Send a request on a new stream; returns the stream id."""
        if self.goaway_received:
            raise HttpProtocolError("connection is shutting down (GOAWAY)")
        metrics = get_metrics()
        if metrics.enabled:
            metrics.inc("h2.requests", method=request.method)
        stream_id = self._next_stream_id
        self._next_stream_id += 2
        headers = {
            ":method": request.method,
            ":scheme": "https",
            ":authority": self.authority,
            ":path": request.path,
        }
        headers.update(request.headers)
        self._callbacks[stream_id] = on_response
        flags = FLAG_END_HEADERS | (0 if request.body else FLAG_END_STREAM)
        out = encode_frame(FRAME_HEADERS, flags, stream_id, _encode_headers_block(headers))
        if request.body:
            for offset in range(0, len(request.body), MAX_FRAME_SIZE):
                chunk = request.body[offset : offset + MAX_FRAME_SIZE]
                end = FLAG_END_STREAM if offset + len(chunk) >= len(request.body) else 0
                out += encode_frame(FRAME_DATA, end, stream_id, chunk)
        self._send(out)
        return stream_id

    def feed(self, data: bytes) -> None:
        """Process inbound bytes from the server."""
        for frame_type, flags, stream_id, payload in self._frames.feed(data):
            if frame_type == FRAME_SETTINGS:
                if not flags & FLAG_ACK:
                    self._send(encode_frame(FRAME_SETTINGS, FLAG_ACK, 0, b""))
                continue
            if frame_type == FRAME_GOAWAY:
                self.goaway_received = True
                if get_metrics().enabled:
                    get_metrics().inc("h2.goaway_received")
                if self.on_goaway is not None:
                    self.on_goaway()
                continue
            if frame_type == FRAME_RST_STREAM:
                self._streams.pop(stream_id, None)
                self._callbacks.pop(stream_id, None)
                if get_metrics().enabled:
                    get_metrics().inc("h2.rst_streams")
                continue
            stream = self._streams.setdefault(stream_id, _Stream(stream_id))
            if frame_type == FRAME_HEADERS:
                stream.headers.update(_decode_headers_block(payload))
                stream.headers_complete = bool(flags & FLAG_END_HEADERS)
            elif frame_type == FRAME_DATA:
                stream.body += payload
            if flags & FLAG_END_STREAM:
                self._finish(stream)

    def _finish(self, stream: _Stream) -> None:
        self._streams.pop(stream.stream_id, None)
        callback = self._callbacks.pop(stream.stream_id, None)
        if callback is None:
            return
        status_text = stream.headers.get(":status", "")
        try:
            status = int(status_text)
        except ValueError:
            raise HttpProtocolError(f"missing/bad :status {status_text!r}")
        plain_headers = {k: v for k, v in stream.headers.items() if not k.startswith(":")}
        metrics = get_metrics()
        if metrics.enabled:
            metrics.inc("h2.responses", status=status)
        callback(HttpResponse(status=status, headers=plain_headers, body=bytes(stream.body)))

    @property
    def in_flight(self) -> int:
        """Number of streams awaiting a response."""
        return len(self._callbacks)


class H2ServerSession:
    """Server half of an HTTP/2 connection.

    ``on_request(request, stream_id)`` fires for each complete request; the
    application answers via :meth:`respond`.
    """

    def __init__(
        self,
        send: Callable[[bytes], None],
        on_request: Callable[[HttpRequest, int], None],
    ) -> None:
        self._send = send
        self._on_request = on_request
        self._streams: Dict[int, _Stream] = {}
        self._frames = _FrameBuffer()
        self._frames.preface_pending = True
        self._sent_settings = False

    def feed(self, data: bytes) -> None:
        for frame_type, flags, stream_id, payload in self._frames.feed(data):
            if not self._sent_settings:
                self._send(encode_frame(FRAME_SETTINGS, 0, 0, b""))
                self._sent_settings = True
            if frame_type == FRAME_SETTINGS:
                if not flags & FLAG_ACK:
                    self._send(encode_frame(FRAME_SETTINGS, FLAG_ACK, 0, b""))
                continue
            if frame_type in (FRAME_GOAWAY, FRAME_RST_STREAM):
                self._streams.pop(stream_id, None)
                continue
            stream = self._streams.setdefault(stream_id, _Stream(stream_id))
            if frame_type == FRAME_HEADERS:
                stream.headers.update(_decode_headers_block(payload))
                stream.headers_complete = bool(flags & FLAG_END_HEADERS)
            elif frame_type == FRAME_DATA:
                stream.body += payload
            if flags & FLAG_END_STREAM:
                self._dispatch(stream)

    def _dispatch(self, stream: _Stream) -> None:
        self._streams.pop(stream.stream_id, None)
        method = stream.headers.get(":method")
        path = stream.headers.get(":path")
        if method is None or path is None:
            self.reset_stream(stream.stream_id)
            return
        plain_headers = {k: v for k, v in stream.headers.items() if not k.startswith(":")}
        request = HttpRequest(method=method, path=path, headers=plain_headers, body=bytes(stream.body))
        self._on_request(request, stream.stream_id)

    def respond(self, stream_id: int, response: HttpResponse) -> None:
        """Send a complete response on ``stream_id``."""
        headers = {":status": str(response.status)}
        headers.update(response.headers)
        flags = FLAG_END_HEADERS | (0 if response.body else FLAG_END_STREAM)
        out = encode_frame(FRAME_HEADERS, flags, stream_id, _encode_headers_block(headers))
        if response.body:
            for offset in range(0, len(response.body), MAX_FRAME_SIZE):
                chunk = response.body[offset : offset + MAX_FRAME_SIZE]
                end = FLAG_END_STREAM if offset + len(chunk) >= len(response.body) else 0
                out += encode_frame(FRAME_DATA, end, stream_id, chunk)
        self._send(out)

    def reset_stream(self, stream_id: int, error_code: int = 0x1) -> None:
        self._send(encode_frame(FRAME_RST_STREAM, 0, stream_id, struct.pack("!I", error_code)))

    def goaway(self) -> None:
        self._send(encode_frame(FRAME_GOAWAY, 0, 0, struct.pack("!II", 0, 0)))
