"""Simulated HTTP layers for DNS-over-HTTPS.

* :mod:`repro.httpsim.h1` — HTTP/1.1 text framing with incremental parsers
  for both directions (requests and responses) and keep-alive support.
* :mod:`repro.httpsim.h2` — HTTP/2 binary framing (SETTINGS/HEADERS/DATA/
  GOAWAY/RST_STREAM frames, client preface, odd-numbered client streams,
  concurrent stream multiplexing).  Header blocks use a documented
  JSON-based stand-in for HPACK; frame overhead matches the real 9-byte
  header so message sizes stay realistic.
* :mod:`repro.httpsim.h3` — HTTP/3 framing for one exchange per QUIC
  stream (HEADERS + DATA frames, JSON stand-in for QPACK), reusing the
  h1 request/response types so the DoH codec stacks on top unchanged.
* :mod:`repro.httpsim.doh` — the RFC 8484 mapping of DNS messages onto
  HTTP: POST with ``application/dns-message`` bodies and GET with
  base64url-encoded ``?dns=`` parameters.
"""

from repro.httpsim.h1 import (
    H1RequestParser,
    H1ResponseParser,
    HttpRequest,
    HttpResponse,
    encode_request,
    encode_response,
)
from repro.httpsim.h2 import (
    FRAME_DATA,
    FRAME_GOAWAY,
    FRAME_HEADERS,
    FRAME_RST_STREAM,
    FRAME_SETTINGS,
    H2ClientSession,
    H2ServerSession,
)
from repro.httpsim.h3 import (
    H3CodecError,
    decode_h3_request,
    decode_h3_response,
    encode_h3_request,
    encode_h3_response,
)
from repro.httpsim.doh import (
    CONTENT_TYPE_DNS,
    DohCodecError,
    decode_doh_request,
    decode_doh_response,
    encode_doh_request,
    encode_doh_response,
)

__all__ = [
    "CONTENT_TYPE_DNS",
    "DohCodecError",
    "FRAME_DATA",
    "FRAME_GOAWAY",
    "FRAME_HEADERS",
    "FRAME_RST_STREAM",
    "FRAME_SETTINGS",
    "H1RequestParser",
    "H1ResponseParser",
    "H2ClientSession",
    "H2ServerSession",
    "H3CodecError",
    "HttpRequest",
    "HttpResponse",
    "decode_doh_request",
    "decode_doh_response",
    "decode_h3_request",
    "decode_h3_response",
    "encode_doh_request",
    "encode_doh_response",
    "encode_h3_request",
    "encode_h3_response",
    "encode_request",
    "encode_response",
]
