"""Minimal HTTP/3 framing: one request or response per QUIC stream.

Real HTTP/3 rides QPACK-compressed header frames and DATA frames on
QUIC streams.  This model keeps the parts that matter for measurement —
a HEADERS frame followed by a DATA frame, one exchange per
bidirectional stream — and skips compression: header fields travel as a
compact JSON object, padded only by their natural size.  The framing is
``frame_type(1) | length(4, big-endian) | payload``.

The codec reuses :class:`~repro.httpsim.h1.HttpRequest` and
:class:`~repro.httpsim.h1.HttpResponse` as the parsed representation so
the DoH codec layer (:mod:`repro.httpsim.doh`) works unchanged on top.
"""

from __future__ import annotations

import json
import struct
from typing import Dict, List, Tuple

from repro.errors import HttpProtocolError
from repro.httpsim.h1 import HttpRequest, HttpResponse
from repro.obs import get_metrics

FRAME_DATA = 0x00
FRAME_HEADERS = 0x01

_FRAME_HEADER = struct.Struct("!BI")


class H3CodecError(HttpProtocolError):
    """Malformed HTTP/3 stream payload."""


def _encode_frame(frame_type: int, payload: bytes) -> bytes:
    return _FRAME_HEADER.pack(frame_type, len(payload)) + payload


def _decode_frames(data: bytes) -> List[Tuple[int, bytes]]:
    frames: List[Tuple[int, bytes]] = []
    cursor = 0
    while cursor < len(data):
        if cursor + _FRAME_HEADER.size > len(data):
            raise H3CodecError("truncated HTTP/3 frame header")
        frame_type, length = _FRAME_HEADER.unpack_from(data, cursor)
        cursor += _FRAME_HEADER.size
        if cursor + length > len(data):
            raise H3CodecError("truncated HTTP/3 frame payload")
        frames.append((frame_type, data[cursor : cursor + length]))
        cursor += length
    return frames


def _split(data: bytes, what: str) -> Tuple[Dict[str, object], bytes]:
    frames = _decode_frames(data)
    if not frames or frames[0][0] != FRAME_HEADERS:
        raise H3CodecError(f"HTTP/3 {what} must start with a HEADERS frame")
    try:
        fields = json.loads(frames[0][1].decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise H3CodecError(f"malformed HTTP/3 {what} headers: {exc}") from exc
    if not isinstance(fields, dict):
        raise H3CodecError(f"HTTP/3 {what} headers must be an object")
    body = b"".join(payload for kind, payload in frames[1:] if kind == FRAME_DATA)
    return fields, body


def encode_h3_request(request: HttpRequest, host: str) -> bytes:
    """Serialize a request for one QUIC stream (adds :authority)."""
    metrics = get_metrics()
    if metrics.enabled:
        metrics.inc("h3.requests", method=request.method)
    fields = {
        ":method": request.method,
        ":path": request.path,
        ":authority": host,
        "headers": dict(request.headers),
    }
    wire = _encode_frame(
        FRAME_HEADERS, json.dumps(fields, separators=(",", ":")).encode("utf-8")
    )
    if request.body:
        wire += _encode_frame(FRAME_DATA, request.body)
    return wire


def decode_h3_request(data: bytes) -> HttpRequest:
    fields, body = _split(data, "request")
    method = fields.get(":method")
    path = fields.get(":path")
    if not isinstance(method, str) or not isinstance(path, str):
        raise H3CodecError("HTTP/3 request missing :method or :path")
    headers = fields.get("headers", {})
    if not isinstance(headers, dict):
        raise H3CodecError("HTTP/3 request headers must be an object")
    return HttpRequest(method=method, path=path, headers=dict(headers), body=body)


def encode_h3_response(response: HttpResponse) -> bytes:
    fields = {":status": response.status, "headers": dict(response.headers)}
    wire = _encode_frame(
        FRAME_HEADERS, json.dumps(fields, separators=(",", ":")).encode("utf-8")
    )
    if response.body:
        wire += _encode_frame(FRAME_DATA, response.body)
    return wire


def decode_h3_response(data: bytes) -> HttpResponse:
    fields, body = _split(data, "response")
    status = fields.get(":status")
    if not isinstance(status, int):
        raise H3CodecError("HTTP/3 response missing :status")
    headers = fields.get("headers", {})
    if not isinstance(headers, dict):
        raise H3CodecError("HTTP/3 response headers must be an object")
    return HttpResponse(status=status, headers=dict(headers), body=body)


__all__ = [
    "FRAME_DATA",
    "FRAME_HEADERS",
    "H3CodecError",
    "decode_h3_request",
    "decode_h3_response",
    "encode_h3_request",
    "encode_h3_response",
]
