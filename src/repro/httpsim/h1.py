"""HTTP/1.1 framing: encoders and incremental parsers.

Real wire format (CRLF line endings, ``Content-Length`` bodies).  Chunked
transfer encoding is not implemented — DoH messages always carry an exact
content length.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import HttpProtocolError
from repro.obs import get_metrics

CRLF = b"\r\n"

_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    415: "Unsupported Media Type",
    429: "Too Many Requests",
    500: "Internal Server Error",
    502: "Bad Gateway",
    503: "Service Unavailable",
}


@dataclass
class HttpRequest:
    """A parsed (or to-be-encoded) HTTP request."""

    method: str
    path: str
    headers: Dict[str, str] = field(default_factory=dict)
    body: bytes = b""

    def header(self, name: str, default: Optional[str] = None) -> Optional[str]:
        """Case-insensitive header lookup."""
        lowered = name.lower()
        for key, value in self.headers.items():
            if key.lower() == lowered:
                return value
        return default


@dataclass
class HttpResponse:
    """A parsed (or to-be-encoded) HTTP response."""

    status: int
    headers: Dict[str, str] = field(default_factory=dict)
    body: bytes = b""
    reason: str = ""

    def header(self, name: str, default: Optional[str] = None) -> Optional[str]:
        lowered = name.lower()
        for key, value in self.headers.items():
            if key.lower() == lowered:
                return value
        return default


def encode_request(request: HttpRequest, host: str) -> bytes:
    """Serialize a request (adds Host and Content-Length automatically)."""
    metrics = get_metrics()
    if metrics.enabled:
        metrics.inc("h1.requests", method=request.method)
    lines = [f"{request.method} {request.path} HTTP/1.1".encode("ascii")]
    headers = dict(request.headers)
    headers.setdefault("Host", host)
    if request.body or request.method in ("POST", "PUT"):
        headers["Content-Length"] = str(len(request.body))
    for name, value in headers.items():
        lines.append(f"{name}: {value}".encode("ascii"))
    return CRLF.join(lines) + CRLF + CRLF + request.body


def encode_response(response: HttpResponse) -> bytes:
    """Serialize a response (adds Content-Length automatically)."""
    reason = response.reason or _REASONS.get(response.status, "Unknown")
    lines = [f"HTTP/1.1 {response.status} {reason}".encode("ascii")]
    headers = dict(response.headers)
    headers["Content-Length"] = str(len(response.body))
    for name, value in headers.items():
        lines.append(f"{name}: {value}".encode("ascii"))
    return CRLF.join(lines) + CRLF + CRLF + response.body


class _H1Parser:
    """Incremental head+body parser shared by both directions."""

    def __init__(self) -> None:
        self._buffer = bytearray()
        self._head: Optional[Tuple[bytes, Dict[str, str]]] = None
        self._body_needed = 0

    def _feed(self, data: bytes) -> List[Tuple[bytes, Dict[str, str], bytes]]:
        self._buffer += data
        completed = []
        while True:
            if self._head is None:
                end = self._buffer.find(CRLF + CRLF)
                if end < 0:
                    break
                head = bytes(self._buffer[:end])
                del self._buffer[: end + 4]
                lines = head.split(CRLF)
                start_line = lines[0]
                headers: Dict[str, str] = {}
                for line in lines[1:]:
                    if not line:
                        continue
                    name, sep, value = line.partition(b":")
                    if not sep:
                        raise HttpProtocolError(f"malformed header line {line!r}")
                    headers[name.decode("ascii").strip()] = value.decode("ascii").strip()
                self._head = (start_line, headers)
                length = headers.get("Content-Length") or headers.get("content-length") or "0"
                try:
                    self._body_needed = int(length)
                except ValueError:
                    raise HttpProtocolError(f"bad Content-Length {length!r}")
            if len(self._buffer) < self._body_needed:
                break
            body = bytes(self._buffer[: self._body_needed])
            del self._buffer[: self._body_needed]
            start_line, headers = self._head
            self._head = None
            self._body_needed = 0
            completed.append((start_line, headers, body))
        return completed


class H1RequestParser(_H1Parser):
    """Server-side incremental parser yielding :class:`HttpRequest`."""

    def feed(self, data: bytes) -> List[HttpRequest]:
        requests = []
        for start_line, headers, body in self._feed(data):
            parts = start_line.decode("ascii").split(" ")
            if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
                raise HttpProtocolError(f"malformed request line {start_line!r}")
            requests.append(HttpRequest(method=parts[0], path=parts[1], headers=headers, body=body))
        return requests


class H1ResponseParser(_H1Parser):
    """Client-side incremental parser yielding :class:`HttpResponse`."""

    def feed(self, data: bytes) -> List[HttpResponse]:
        responses = []
        for start_line, headers, body in self._feed(data):
            parts = start_line.decode("ascii").split(" ", 2)
            if len(parts) < 2 or not parts[0].startswith("HTTP/1."):
                raise HttpProtocolError(f"malformed status line {start_line!r}")
            try:
                status = int(parts[1])
            except ValueError:
                raise HttpProtocolError(f"bad status code in {start_line!r}")
            if get_metrics().enabled:
                get_metrics().inc("h1.responses", status=status)
            reason = parts[2] if len(parts) == 3 else ""
            responses.append(HttpResponse(status=status, headers=headers, body=body, reason=reason))
        return responses
