"""Run every experiment and compare against the paper's reported values.

:func:`generate_report` runs the full study on a fresh world (or a
caller-supplied result store) and evaluates each claim from §4, recording
the paper's value next to the measured one.  The benchmark harness prints
these rows; EXPERIMENTS.md archives them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.availability import (
    availability_report,
    failure_pattern_consistency,
    retry_burden,
)
from repro.analysis.figures import paper_figure
from repro.analysis.render import render_boxplot_rows, render_delta_table, render_table
from repro.analysis.response_times import (
    local_winners,
    max_median_by_vantage,
    resolver_medians,
)
from repro.analysis.tables import delta_table_as_text_rows, table1_rows, table2_rows, table3_rows
from repro.catalog.browsers import mainstream_hostnames
from repro.catalog.resolvers import entries_by_region
from repro.core.results import ResultStore
from repro.experiments.campaigns import HOME_VANTAGE_NAMES, run_fault_study, run_study
from repro.experiments.world import World, build_world

#: §4 reported numbers used for paper-vs-measured rows.
PAPER_VALUES = {
    "availability.successes": 5_098_281,
    "availability.errors": 311_351,
    "availability.error_rate": 311_351 / (5_098_281 + 311_351),
    "max_median.home": 399.0,
    "max_median.ec2-ohio": 270.0,
    "max_median.ec2-frankfurt": 380.0,
    "max_median.ec2-seoul": 569.0,
    "table2": [
        ("antivirus.bebasid.com", 99.0, 380.0),
        ("dns.twnic.tw", 59.0, 290.0),
        ("dnslow.me", 29.0, 240.0),
        ("jp.tiar.app", 39.0, 250.0),
        ("public.dns.iij.jp", 39.5, 250.0),
    ],
    "table3": [
        ("doh.ffmuc.net", 70.0, 569.0),
        ("dns0.eu", 20.0, 399.0),
        ("open.dns0.eu", 10.0, 324.0),
        ("kids.dns0.eu", 10.0, 309.0),
        ("dns.njal.la", 20.0, 289.0),
    ],
}

#: §4 local-winner claims: (winner, vantage, mainstream resolvers beaten).
LOCAL_WINNER_CLAIMS: List[Tuple[str, str, Tuple[str, ...]]] = [
    ("ordns.he.net", "home", ("dns.google", "security.cloudflare-dns.com",
                              "family.cloudflare-dns.com", "dns.quad9.net",
                              "dns9.quad9.net")),
    ("freedns.controld.com", "ec2-ohio", ("dns.google", "security.cloudflare-dns.com")),
    ("dns.brahma.world", "ec2-frankfurt", ("security.cloudflare-dns.com",)),
    ("dns.alidns.com", "ec2-seoul", ("dns.quad9.net", "dns.google",
                                     "security.cloudflare-dns.com")),
]


@dataclass
class ClaimResult:
    """One paper claim, evaluated against measured data."""

    claim_id: str
    description: str
    paper_value: str
    measured_value: str
    holds: bool

    def as_row(self) -> Tuple[str, str, str, str]:
        return (
            self.claim_id,
            self.description,
            self.paper_value,
            self.measured_value + ("  [OK]" if self.holds else "  [DIVERGES]"),
        )


@dataclass
class PaperReport:
    """All evaluated claims plus rendered artifacts."""

    claims: List[ClaimResult] = field(default_factory=list)
    rendered_tables: Dict[str, str] = field(default_factory=dict)
    rendered_figures: Dict[str, str] = field(default_factory=dict)
    store: Optional[ResultStore] = None
    #: Records of the fault-injected campaign, kept separate from the main
    #: study store so fault windows don't contaminate the §4 claims.
    fault_store: Optional[ResultStore] = None

    @property
    def holds_count(self) -> int:
        return sum(1 for claim in self.claims if claim.holds)

    def describe(self) -> str:
        header = ("id", "claim", "paper", "measured")
        rows = [claim.as_row() for claim in self.claims]
        summary = f"{self.holds_count}/{len(self.claims)} claims hold"
        return render_table(header, rows) + "\n" + summary


def _median_of_home(store: ResultStore, resolver: str, home_vantages: Sequence[str]) -> Optional[float]:
    from repro.analysis.stats import median

    samples: List[float] = []
    for vantage in home_vantages:
        samples.extend(store.durations_ms(kind="dns_query", vantage=vantage, resolver=resolver))
    return median(samples) if samples else None


def generate_report(
    world: Optional[World] = None,
    store: Optional[ResultStore] = None,
    home_rounds: int = 12,
    ec2_rounds: int = 12,
    seed: int = 0,
    fault_rounds: int = 8,
    fault_seed: int = 20230919,
) -> PaperReport:
    """Run the study (if needed) and evaluate every §4 claim.

    When the function runs the study itself (no ``store`` supplied) it also
    runs a fault-injected campaign on the same world — into a *separate*
    store — and evaluates the FAULT-* claims against the paper's reported
    error shape.  Pass ``fault_rounds=0`` to skip it.  A caller-supplied
    ``store`` skips the fault campaign (the matching world is unknown).
    """
    fault_store: Optional[ResultStore] = None
    if store is None:
        if world is None:
            world = build_world(seed=seed)
        store = run_study(world, home_rounds=home_rounds, ec2_rounds=ec2_rounds)
        if fault_rounds > 0:
            fault_store, _plan = run_fault_study(
                world, rounds=fault_rounds, fault_seed=fault_seed
            )
    report = PaperReport(store=store, fault_store=fault_store)
    mainstream = mainstream_hostnames()
    home_vantages = [v for v in HOME_VANTAGE_NAMES]

    # -- availability -----------------------------------------------------------
    availability = availability_report(store)
    report.claims.append(
        ClaimResult(
            claim_id="AV-1",
            description="most queries succeed (error rate in the ~2-10% band)",
            paper_value=f"{PAPER_VALUES['availability.error_rate']:.1%} errors "
            f"({PAPER_VALUES['availability.errors']:,}/{PAPER_VALUES['availability.successes'] + PAPER_VALUES['availability.errors']:,})",
            measured_value=f"{availability.error_rate:.1%} errors "
            f"({availability.errors:,}/{availability.attempts:,})",
            holds=0.02 <= availability.error_rate <= 0.10,
        )
    )
    report.claims.append(
        ClaimResult(
            claim_id="AV-2",
            description="connection-establishment failures dominate errors",
            paper_value="most common error class",
            measured_value=f"{availability.connection_establishment_share:.0%} of errors",
            holds=availability.connection_establishment_share > 0.5,
        )
    )
    consistency = failure_pattern_consistency(store)
    report.claims.append(
        ClaimResult(
            claim_id="AV-3",
            description="no consistent per-round failing-resolver subset",
            paper_value="no consistent pattern",
            measured_value=f"median round-to-round Jaccard {consistency:.2f}",
            holds=consistency < 0.5,
        )
    )

    # -- fault-injected campaign ------------------------------------------------------
    # The poster's headline error shape (≈5.8% of attempts failing, with
    # connection-establishment classes dominating) emerges here from
    # injected outage/TLS/loss windows rather than steady-state flakiness.
    if fault_store is not None and len(fault_store) > 0:
        fault_availability = availability_report(fault_store)
        report.claims.append(
            ClaimResult(
                claim_id="FAULT-1",
                description="fault-injected campaign error rate in the paper's ~5-6% band",
                paper_value=f"{PAPER_VALUES['availability.error_rate']:.1%} errors",
                measured_value=f"{fault_availability.error_rate:.1%} errors "
                f"({fault_availability.errors:,}/{fault_availability.attempts:,})",
                holds=0.035 <= fault_availability.error_rate <= 0.085,
            )
        )
        report.claims.append(
            ClaimResult(
                claim_id="FAULT-2",
                description="connection-establishment classes dominate injected-fault errors",
                paper_value="most common error class",
                measured_value=f"{fault_availability.connection_establishment_share:.0%} "
                f"of errors (dominant: {fault_availability.dominant_error_class})",
                holds=fault_availability.connection_establishment_share > 0.5,
            )
        )
        burden = retry_burden(fault_store)
        report.claims.append(
            ClaimResult(
                claim_id="FAULT-3",
                description="retries resolve some transient failures (mean attempts > 1)",
                paper_value="transient failures, no consistent pattern",
                measured_value=f"mean attempts/query {burden:.3f}",
                holds=burden > 1.0,
            )
        )

    # -- mainstream vs non-mainstream ------------------------------------------------
    for vantage in ("ec2-ohio", "ec2-frankfurt", "ec2-seoul"):
        medians = resolver_medians(store, vantage=vantage)
        main = [v for k, v in medians.items() if k in mainstream]
        non = [v for k, v in medians.items() if k not in mainstream]
        if main and non:
            from repro.analysis.stats import median as med

            report.claims.append(
                ClaimResult(
                    claim_id=f"MS-{vantage}",
                    description=f"mainstream median-of-medians beats non-mainstream ({vantage})",
                    paper_value="mainstream outperform from most vantage points",
                    measured_value=f"mainstream {med(main):.0f} ms vs non-mainstream {med(non):.0f} ms",
                    holds=med(main) < med(non),
                )
            )

    # -- top-5 presence of the big three ----------------------------------------------
    for vantage in ("ec2-ohio", "ec2-frankfurt", "ec2-seoul"):
        medians = resolver_medians(store, vantage=vantage)
        top5 = [name for name, _v in sorted(medians.items(), key=lambda kv: kv[1])[:5]]
        big = {"dns.quad9.net", "dns9.quad9.net", "dns10.quad9.net",
               "dns11.quad9.net", "dns12.quad9.net", "dns.google",
               "security.cloudflare-dns.com", "family.cloudflare-dns.com",
               "1dot1dot1dot1.cloudflare-dns.com"}
        hit = any(name in big for name in top5)
        report.claims.append(
            ClaimResult(
                claim_id=f"TOP5-{vantage}",
                description=f"Quad9/Google/Cloudflare among top-5 ({vantage})",
                paper_value="among the top five highest performing",
                measured_value=", ".join(top5[:5]),
                holds=hit,
            )
        )

    # -- local winners ---------------------------------------------------------------
    for winner, vantage_key, beaten in LOCAL_WINNER_CLAIMS:
        if vantage_key == "home":
            winner_median = _median_of_home(store, winner, home_vantages)
            beaten_ok = True
            measured_bits = []
            for mainstream_host in beaten:
                other = _median_of_home(store, mainstream_host, home_vantages)
                if winner_median is None or other is None or winner_median >= other:
                    beaten_ok = False
                if winner_median is not None and other is not None:
                    measured_bits.append(f"{mainstream_host}={other:.1f}")
            measured = (
                f"{winner}={winner_median:.1f} vs " + ", ".join(measured_bits)
                if winner_median is not None
                else "no data"
            )
            report.claims.append(
                ClaimResult(
                    claim_id=f"X1-{winner}",
                    description=f"{winner} beats {len(beaten)} mainstream resolvers from home",
                    paper_value="outperforms all mainstream resolvers (home)",
                    measured_value=measured,
                    holds=beaten_ok,
                )
            )
        else:
            winners = local_winners(store, vantage_key, [winner], list(beaten))
            holds = bool(winners) and all(b in winners[0].beats for b in beaten)
            measured = (
                f"median {winners[0].median_ms:.1f} ms, beats {', '.join(winners[0].beats)}"
                if winners
                else "does not beat any"
            )
            report.claims.append(
                ClaimResult(
                    claim_id=f"X1-{winner}",
                    description=f"{winner} beats {', '.join(beaten)} from {vantage_key}",
                    paper_value="outperforms those mainstream resolvers",
                    measured_value=measured,
                    holds=holds,
                )
            )

    # -- vantage maxima ---------------------------------------------------------------
    # The paper's home/Ohio maxima come from the Figure 1 context (resolvers
    # located in North America); the Frankfurt/Seoul maxima from the
    # cross-continent discussion (all resolvers).
    na_hostnames = {entry.hostname for entry in entries_by_region("NA")}

    def _max_median(vantage: str, restrict_na: bool) -> Optional[Tuple[str, float]]:
        medians = resolver_medians(store, vantage=vantage)
        if restrict_na:
            medians = {k: v for k, v in medians.items() if k in na_hostnames}
        if not medians:
            return None
        return max(medians.items(), key=lambda item: item[1])

    for vantage, paper_key, restrict_na in (
        ("ec2-ohio", "max_median.ec2-ohio", True),
        ("ec2-frankfurt", "max_median.ec2-frankfurt", False),
        ("ec2-seoul", "max_median.ec2-seoul", False),
    ):
        worst = _max_median(vantage, restrict_na)
        if worst is not None:
            worst_resolver, worst_value = worst
            paper_max = PAPER_VALUES[paper_key]
            scope = "NA resolvers" if restrict_na else "all resolvers"
            report.claims.append(
                ClaimResult(
                    claim_id=f"X2-{vantage}",
                    description=f"max per-resolver median from {vantage} ({scope})",
                    paper_value=f"{paper_max:.0f} ms",
                    measured_value=f"{worst_value:.0f} ms ({worst_resolver})",
                    holds=0.33 * paper_max <= worst_value <= 3.0 * paper_max,
                )
            )

    # Home maximum (Figure 1 context: NA resolvers, pooled home devices).
    home_na_medians = {}
    for hostname in na_hostnames:
        value = _median_of_home(store, hostname, home_vantages)
        if value is not None:
            home_na_medians[hostname] = value
    if home_na_medians:
        worst_resolver, worst_value = max(home_na_medians.items(), key=lambda kv: kv[1])
        paper_max = PAPER_VALUES["max_median.home"]
        report.claims.append(
            ClaimResult(
                claim_id="X2-home",
                description="max per-resolver median from home devices (NA resolvers)",
                paper_value=f"{paper_max:.0f} ms",
                measured_value=f"{worst_value:.0f} ms ({worst_resolver})",
                holds=0.33 * paper_max <= worst_value <= 3.0 * paper_max,
            )
        )

    # -- tables 2 and 3 -----------------------------------------------------------------
    table2 = table2_rows(store)
    table3 = table3_rows(store)
    for table_id, measured_rows, near, far in (
        ("T2", table2, "ec2-seoul", "ec2-frankfurt"),
        ("T3", table3, "ec2-frankfurt", "ec2-seoul"),
    ):
        all_local_faster = all(d.near_median_ms < d.far_median_ms for d in measured_rows)
        report.claims.append(
            ClaimResult(
                claim_id=f"{table_id}-shape",
                description=f"{table_id}: every listed resolver is faster from {near} than {far}",
                paper_value="local vantage point always faster",
                measured_value="; ".join(
                    f"{d.resolver} {d.near_median_ms:.0f}->{d.far_median_ms:.0f}" for d in measured_rows
                ),
                holds=bool(measured_rows) and all_local_faster,
            )
        )

    # -- rendered artifacts ---------------------------------------------------------------
    header, rows = table1_rows()
    report.rendered_tables["table1"] = render_table(header, rows)
    report.rendered_tables["table2"] = render_delta_table(
        "Table 2: median DNS response times, Asian non-mainstream resolvers",
        "Seoul", "Frankfurt", delta_table_as_text_rows(table2),
    )
    report.rendered_tables["table3"] = render_delta_table(
        "Table 3: median DNS response times, European non-mainstream resolvers",
        "Frankfurt", "Seoul", delta_table_as_text_rows(table3),
    )
    for figure in ("figure1", "figure2", "figure3", "figure4"):
        panels = paper_figure(store, figure, mainstream, home_vantages=home_vantages)
        rendered = []
        for vantage, fig_rows in panels.items():
            rendered.append(f"--- {figure} / {vantage} ---")
            rendered.append(render_boxplot_rows(fig_rows, include_ping=False))
        report.rendered_figures[figure] = "\n".join(rendered)

    return report
