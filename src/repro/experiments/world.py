"""Builds the simulated Internet the study runs on.

One call — :func:`build_world` — assembles:

* the event loop, latency model and network fabric;
* the DNS infrastructure (root, TLD and authoritative servers, each
  serving only its own zones, placed at realistic locations);
* all 91 resolver deployments from the catalog (sites, anycast groups,
  frontends, recursive engines, reliability policies, dead hosts);
* the geolocation database covering every locatable service address;
* the study's vantage points (four Chicago home devices, EC2 Ohio /
  Frankfurt / Seoul).

Everything is seeded, so two worlds built with the same seed behave
identically packet for packet.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.catalog.resolvers import CATALOG, CatalogEntry
from repro.core.runner import ResolverTarget
from repro.core.vantage import VantagePoint, make_ec2_vantage, make_home_vantage
from repro.dnswire.name import Name
from repro.dnswire.types import TYPE_A
from repro.errors import CampaignConfigError
from repro.geo.db import GeoDatabase, GeoRecord
from repro.geo.ipalloc import IpAllocator
from repro.geo.regions import CITIES, City
from repro.netsim.host import Host
from repro.netsim.latency import SERVER
from repro.netsim.network import Network
from repro.netsim.trace import EventTrace
from repro.resolver.authoritative import AuthoritativeServer
from repro.resolver.deployment import (
    ProcessingModel,
    ReliabilityModel,
    ResolverDeployment,
    ResolverSite,
)
from repro.resolver.recursive import RootHints
from repro.resolver.zones import ZoneSet, build_world_zones

#: Where each piece of DNS infrastructure lives.
_INFRA_PLACEMENT = {
    "a.root-servers.net.": ("199.7.0.1", "ashburn"),
    "b.root-servers.net.": ("199.7.0.2", "frankfurt"),
    "a.gtld-servers.net.": ("199.7.0.11", "ashburn"),
    "b.gtld-servers.net.": ("199.7.0.12", "amsterdam"),
    "a0.org.afilias-nst.org.": ("199.7.0.21", "london"),
    "ns1.google.com.": ("100.64.0.1", "mountain_view"),
    "ns1.amazon.com.": ("100.64.0.2", "ashburn"),
    "ns1.wikipedia.org.": ("100.64.0.3", "ashburn"),
    "ns1.example-sites.net.": ("100.64.0.4", "new_york"),
}

#: Which zone origins each infrastructure server is authoritative for.
_INFRA_ZONES = {
    "a.root-servers.net.": (".",),
    "b.root-servers.net.": (".",),
    "a.gtld-servers.net.": ("com.", "net."),
    "b.gtld-servers.net.": ("com.", "net."),
    "a0.org.afilias-nst.org.": ("org.",),
    "ns1.google.com.": ("google.com.",),
    "ns1.amazon.com.": ("amazon.com.",),
    "ns1.wikipedia.org.": ("wikipedia.org.", "wikipedia.com."),
    "ns1.example-sites.net.": ("example-sites.net.",),
}

ROOT_HINT_ADDRESSES = ("199.7.0.1", "199.7.0.2")

#: The study's vantage points: (name, kind, city key).
DEFAULT_VANTAGES = (
    ("home-chicago-1", "home", "chicago"),
    ("home-chicago-2", "home", "chicago"),
    ("home-chicago-3", "home", "chicago"),
    ("home-chicago-4", "home", "chicago"),
    ("ec2-ohio", "ec2", "columbus"),
    ("ec2-frankfurt", "ec2", "frankfurt"),
    ("ec2-seoul", "ec2", "seoul"),
)

STUDY_DOMAIN_NAMES = ("google.com", "amazon.com", "wikipedia.com")


@dataclass
class World:
    """The fully wired simulated Internet."""

    network: Network
    zones: ZoneSet
    geo_db: GeoDatabase
    root_hints: RootHints
    deployments: Dict[str, ResolverDeployment]
    vantages: Dict[str, VantagePoint]
    catalog: List[CatalogEntry] = field(default_factory=list)
    #: The oblivious relay (present when the catalog has ODoH targets).
    odoh_proxy: Optional[object] = None
    odoh_proxy_name: str = "odoh-proxy.example.net"
    odoh_proxy_ip: Optional[str] = None

    def deployment(self, hostname: str) -> ResolverDeployment:
        try:
            return self.deployments[hostname]
        except KeyError:
            raise CampaignConfigError(f"no deployment for {hostname!r}")

    def vantage(self, name: str) -> VantagePoint:
        try:
            return self.vantages[name]
        except KeyError:
            raise CampaignConfigError(f"no vantage point {name!r}")

    def targets(self, hostnames: Optional[Sequence[str]] = None) -> List[ResolverTarget]:
        """Campaign targets for the given hostnames (default: whole catalog)."""
        entries = self.catalog
        if hostnames is not None:
            wanted = set(hostnames)
            entries = [entry for entry in self.catalog if entry.hostname in wanted]
        return [
            ResolverTarget(
                hostname=entry.hostname,
                service_ip=self.deployments[entry.hostname].service_ip,
                region=entry.region,
                mainstream=entry.mainstream,
            )
            for entry in entries
        ]

    def warm_resolver_caches(self, domains: Sequence[str] = STUDY_DOMAIN_NAMES) -> None:
        """Pre-resolve the study domains on every live resolver site.

        The paper's domains are popular enough to be effectively always
        cached at real resolvers; warming reproduces that steady state so
        measurements see cache-hit behaviour from round one.
        """
        names = [Name.from_text(domain) for domain in domains]
        for deployment in self.deployments.values():
            for site in deployment.sites:
                if site.host.blackholed or site.engine is None:
                    continue
                for qname in names:
                    site.engine.resolve_question(qname, TYPE_A, lambda _r: None)
        self.network.run()

    def schedule_cache_refresh(
        self, at_ms: float, domains: Sequence[str] = STUDY_DOMAIN_NAMES
    ) -> None:
        """Re-warm every resolver's study-domain cache at a virtual instant.

        The build-time warm models the steady state kept alive by other
        clients' background demand, but its effect decays at the record
        TTL horizon (``STUDY_TTL``, 30 virtual days).  A campaign whose
        schedule starts deeper into virtual time than that would measure
        cold caches a real popular domain never shows; scheduling a
        refresh shortly before the first round restores the steady state.
        The refresh is a no-op on still-valid caches (pure cache hits,
        no network traffic), so arming it is always safe.
        """
        names = [Name.from_text(domain) for domain in domains]

        def _refresh() -> None:
            for deployment in self.deployments.values():
                for site in deployment.sites:
                    if site.host.blackholed or site.engine is None:
                        continue
                    for qname in names:
                        site.engine.resolve_question(qname, TYPE_A, lambda _r: None)

        self.network.loop.call_at(at_ms, _refresh)


def build_world(
    seed: int = 0,
    catalog: Optional[Sequence[CatalogEntry]] = None,
    vantage_spec: Sequence = DEFAULT_VANTAGES,
    trace: Optional[EventTrace] = None,
    warm_caches: bool = True,
) -> World:
    """Assemble the whole simulated Internet."""
    network = Network(seed=seed, trace=trace)
    zones = build_world_zones()
    geo_db = GeoDatabase()
    allocator = IpAllocator()
    entries = list(catalog) if catalog is not None else list(CATALOG)

    _build_infrastructure(network, zones, geo_db)
    root_hints = RootHints(list(ROOT_HINT_ADDRESSES))
    deployments = _build_deployments(network, geo_db, allocator, entries, root_hints, seed)
    vantages = _build_vantages(network, geo_db, allocator, vantage_spec)

    world = World(
        network=network,
        zones=zones,
        geo_db=geo_db,
        root_hints=root_hints,
        deployments=deployments,
        vantages=vantages,
        catalog=entries,
    )
    _maybe_build_odoh_proxy(world, allocator)
    if warm_caches:
        world.warm_resolver_caches()
    return world


def _maybe_build_odoh_proxy(world: World, allocator: IpAllocator) -> None:
    """Attach an oblivious relay when the catalog contains ODoH targets.

    The study's ``odoh-target-*`` rows are targets in the RFC 9230 sense;
    clients reach them via an independent proxy operator.  We place the
    proxy in Amsterdam (where the public alekberg-compatible relays ran).
    """
    targets = {
        hostname: deployment.service_ip
        for hostname, deployment in world.deployments.items()
        if deployment.supports_odoh
    }
    if not targets:
        return
    from repro.resolver.odoh_proxy import OdohProxy

    city = CITIES["amsterdam"]
    # A fixed address outside the hand-assigned 199.7.0.x infra range.
    ip = "199.7.1.1"
    host = world.network.attach(
        Host(
            name="odoh-proxy",
            ip=ip,
            coords=city.coords,
            continent=city.continent,
            access=SERVER,
        )
    )
    world.geo_db.register_city(ip, city)
    world.odoh_proxy = OdohProxy(host, targets)
    world.odoh_proxy_ip = ip


def _build_infrastructure(network: Network, zones: ZoneSet, geo_db: GeoDatabase) -> None:
    for server_name, (ip, city_key) in _INFRA_PLACEMENT.items():
        city = CITIES[city_key]
        host = network.attach(
            Host(
                name=f"infra-{server_name.rstrip('.')}",
                ip=ip,
                coords=city.coords,
                continent=city.continent,
                access=SERVER,
            )
        )
        server_zones = ZoneSet()
        for origin_text in _INFRA_ZONES[server_name]:
            origin = Name.from_text(origin_text)
            zone = zones.zone_at(origin)
            if zone is None:
                raise CampaignConfigError(f"zone {origin_text} missing from world zones")
            server_zones.add_zone(zone)
        AuthoritativeServer(server_zones).serve_udp(host)
        geo_db.register_city(ip, city)


def _build_deployments(
    network: Network,
    geo_db: GeoDatabase,
    allocator: IpAllocator,
    entries: Sequence[CatalogEntry],
    root_hints: RootHints,
    seed: int,
) -> Dict[str, ResolverDeployment]:
    deployments: Dict[str, ResolverDeployment] = {}
    for entry in entries:
        sites = []
        for city_key in entry.cities:
            city = CITIES[city_key]
            ip = allocator.allocate("resolver", f"{entry.hostname}/{city_key}")
            host = network.attach(
                Host(
                    name=f"site-{entry.hostname}-{city_key}",
                    ip=ip,
                    coords=city.coords,
                    continent=city.continent,
                    access=SERVER,
                )
            )
            sites.append(ResolverSite(host=host))
        if entry.anycast:
            service_ip = allocator.allocate("anycast", entry.hostname)
        else:
            service_ip = sites[0].host.ip
        base, jitter, tail_p, tail_ms = entry.perf_params
        refuse_p, drop_p, fail_p = entry.reliability_params
        deployment = ResolverDeployment(
            hostname=entry.hostname,
            sites=sites,
            service_ip=service_ip,
            anycast=entry.anycast,
            mainstream=entry.mainstream,
            transports=entry.transports,
            tls_versions=entry.tls_versions,
            http_versions=entry.http_versions,
            answers_icmp=entry.answers_icmp,
            processing=ProcessingModel(
                base_ms=base, jitter_ms=jitter, slow_tail_p=tail_p, slow_tail_ms=tail_ms
            ),
            reliability=ReliabilityModel(
                connect_refuse_p=refuse_p,
                connect_drop_p=drop_p,
                server_failure_p=fail_p,
            ),
            odoh_relay_extra_ms=12.0 if entry.odoh else 0.0,
            supports_odoh=entry.odoh,
            seed=seed,
        )
        deployment.activate(network, root_hints)
        if entry.dead:
            for site in sites:
                site.host.blackholed = True
        if entry.geolocatable:
            # GeoLite2-style record: anycast services geolocate to the
            # operator's primary city (which is exactly why the paper's
            # region labels for anycast resolvers are approximate).
            geo_db.register_city(service_ip, CITIES[entry.cities[0]])
        deployments[entry.hostname] = deployment
    return deployments


def _build_vantages(
    network: Network,
    geo_db: GeoDatabase,
    allocator: IpAllocator,
    vantage_spec: Sequence,
) -> Dict[str, VantagePoint]:
    vantages: Dict[str, VantagePoint] = {}
    for name, kind, city_key in vantage_spec:
        city = CITIES[city_key]
        ip = allocator.allocate("vantage", name)
        if kind == "ec2":
            vantage = make_ec2_vantage(network, name, ip, city)
        elif kind == "home":
            vantage = make_home_vantage(network, name, ip, city)
        else:
            raise CampaignConfigError(f"unknown vantage kind {kind!r}")
        geo_db.register_city(ip, city)
        vantages[name] = vantage
    return vantages
