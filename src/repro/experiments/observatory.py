"""The observatory: a months-long campaign feeding the observer fleet.

The poster's longitudinal claim rests on monthly re-measurements spread
over most of a year.  The observatory compresses that shape into one
deterministic study: ``months`` measurement windows, 28 virtual days
apart, each a day of mixed DoH/DoQ rounds with raw responses captured —
exactly the stream the five built-in observers need (availability, p95
drift, establishment errors, DoQ adoption, answer disagreement).

Two longitudinal signals are built in:

* the **DoQ ramp** — each successive month shifts rounds from DoH to
  DoQ, so the adoption observer sees a genuine multi-month trend rather
  than stationary noise;
* an optional **fault plan** spanning the whole horizon, so availability
  and error-share observers have real dips to find.

Everything is derived from explicit seeds; ``workers=1`` and any sharded
execution produce the same record multiset, and therefore (by the fleet's
order-independence) byte-identical events and index.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

from repro.catalog.resolvers import CATALOG
from repro.core.probes import DohProbeConfig
from repro.core.runner import CampaignConfig
from repro.core.scheduler import MS_PER_DAY, MS_PER_HOUR, PeriodicSchedule
from repro.core.seeding import derive_seed
from repro.errors import CampaignConfigError
from repro.experiments.campaigns import EC2_VANTAGE_NAMES, _catalog_hostnames
from repro.faults import FaultPlan, FaultPlanConfig
from repro.obs.metrics import MetricsRegistry
from repro.observers import ObserverFleet, ObserverReport, ObserverSpec
from repro.parallel.runner import ParallelRun, chain_tasks, plan_campaign, run_parallel

#: Gap between successive measurement windows (the poster re-measured
#: roughly monthly).
MONTH_MS = 28.0 * MS_PER_DAY


def observer_campaign_configs(
    months: int = 4,
    rounds_per_month: int = 6,
    seed: int = 606,
    domains: Optional[Sequence[str]] = None,
) -> List[CampaignConfig]:
    """One or two campaigns per monthly window: a DoH leg and a DoQ leg.

    Month ``m`` (0-based) starts at ``m * MONTH_MS``.  The DoH leg runs
    a constant ``rounds_per_month`` cadence every month, so per-resolver
    latency and availability baselines stay stationary in a healthy
    world.  The DoQ leg is additive: it ramps linearly from zero rounds
    in month 0 up to ``rounds_per_month`` in the last month — the
    adoption trend the doq-adoption observer is built to notice, without
    starving the DoH stream the other observers baseline against.
    Rounds run at EC2 cadence (8 virtual hours apart), the DoQ leg
    offset by 4 hours so both legs land on the same virtual days.
    Responses are captured for the disagreement observer.
    """
    if months < 1:
        raise CampaignConfigError("observer study needs months >= 1")
    if rounds_per_month < 1:
        raise CampaignConfigError("observer study needs rounds_per_month >= 1")
    configs: List[CampaignConfig] = []
    for month in range(months):
        start_ms = month * MONTH_MS
        if months > 1:
            doq_rounds = (month * rounds_per_month) // (months - 1)
        else:
            doq_rounds = 0
        legs = (("doh", rounds_per_month, 0.0), ("doq", doq_rounds, 4 * MS_PER_HOUR))
        for transport, rounds, offset_ms in legs:
            if rounds <= 0:
                continue
            configs.append(
                CampaignConfig(
                    name=f"observe-m{month:02d}-{transport}",
                    domains=(
                        tuple(domains) if domains is not None else CampaignConfig.domains
                    ),
                    schedule=PeriodicSchedule(
                        rounds=rounds,
                        interval_ms=8 * MS_PER_HOUR,
                        start_ms=start_ms + offset_ms,
                        stagger_ms=10 * 60 * 1000.0,
                    ),
                    transport=transport,
                    probe_config=DohProbeConfig(),
                    ping=False,
                    seed=derive_seed(seed, "observe", month, transport),
                    capture_responses=True,
                )
            )
    return configs


#: Hostnames whose catalog entry advertises DoQ support.  The DoQ leg is
#: planned only against these — probing DoQ at a resolver that does not
#: speak it measures nothing but connection refusals, which would drown
#: the error-share and availability observers in self-inflicted noise.
_DOQ_CAPABLE = frozenset(
    entry.hostname for entry in CATALOG if "doq" in entry.transports
)


def observer_study_horizon_ms(months: int) -> float:
    """The virtual span the study covers, plus one window of slack."""
    return months * MONTH_MS + MS_PER_DAY


def run_observer_study(
    world_seed: int = 0,
    months: int = 4,
    rounds_per_month: int = 6,
    seed: int = 606,
    domains: Optional[Sequence[str]] = None,
    vantage_names: Optional[Sequence[str]] = None,
    target_hostnames: Optional[Iterable[str]] = None,
    workers: int = 1,
    shard_by: str = "vantage",
    shards: Optional[int] = None,
    fault_seed: Optional[int] = None,
    fault_fraction: float = 0.10,
    collect_metrics: bool = False,
    store_dir: Optional[str] = None,
    segment_records: int = 4096,
) -> ParallelRun:
    """Run the whole multi-month observatory through one worker pool.

    All monthly campaigns are planned up front and chained, so shards
    from different months interleave freely; the merged store (or
    warehouse) holds the full longitudinal stream in canonical order.
    The DoQ legs target only the DoQ-capable subset of the selected
    resolvers (and are dropped entirely when that subset is empty), so
    the ramp measures adoption rather than guaranteed refusals.
    With ``fault_seed`` set, a :class:`~repro.faults.FaultPlan` spanning
    the entire horizon is shipped to every shard — fresh shard worlds
    start at virtual time 0, which is exactly the plan's origin, so the
    same windows are live for any worker count.
    """
    hostnames = _catalog_hostnames(target_hostnames)
    doq_hostnames = [name for name in hostnames if name in _DOQ_CAPABLE]
    names = (
        list(vantage_names) if vantage_names is not None else list(EC2_VANTAGE_NAMES)
    )
    fault_plan_json: Optional[str] = None
    if fault_seed is not None:
        plan = FaultPlan.generate(
            hostnames,
            horizon_ms=observer_study_horizon_ms(months),
            seed=fault_seed,
            config=FaultPlanConfig(impaired_time_fraction=fault_fraction),
        )
        fault_plan_json = plan.to_json()
    plans = []
    for config in observer_campaign_configs(
        months=months,
        rounds_per_month=rounds_per_month,
        seed=seed,
        domains=domains,
    ):
        targets = doq_hostnames if config.transport == "doq" else hostnames
        if not targets:
            continue  # no DoQ-capable resolver selected: skip the DoQ leg
        plans.append(
            plan_campaign(
                config,
                names,
                targets,
                world_seed=world_seed,
                shard_by=shard_by,
                shards=shards,
                fault_plan_json=fault_plan_json,
                collect_metrics=collect_metrics,
            )
        )
    return run_parallel(
        chain_tasks(*plans),
        workers=workers,
        store_dir=store_dir,
        segment_records=segment_records,
    )


def observe_run(
    run: ParallelRun,
    specs: Optional[Sequence[ObserverSpec]] = None,
    metrics: Optional[MetricsRegistry] = None,
) -> ObserverReport:
    """Replay a parallel run's merged stream through an observer fleet.

    Reads the warehouse's sorted stream when the run went to disk and the
    in-RAM store otherwise; the fleet is order-independent, so both paths
    yield identical reports.  Gauges land in ``metrics`` (defaulting to
    the run's own registry) under ``observer.*``.
    """
    fleet = ObserverFleet(specs)
    if run.warehouse is not None:
        fleet.replay(run.warehouse.iter_sorted())
    else:
        fleet.replay(run.store.records)
    return fleet.finalize(metrics if metrics is not None else run.metrics)
