"""Paper reproduction drivers.

* :mod:`repro.experiments.world` — builds the simulated Internet: the DNS
  hierarchy, all 91 resolver deployments from the catalog, the geolocation
  database, and the study's seven vantage points.
* :mod:`repro.experiments.campaigns` — the paper's measurement campaigns
  (Chicago home networks; EC2 Ohio/Frankfurt/Seoul; monthly re-checks).
* :mod:`repro.experiments.paper` — runs every experiment and produces the
  paper-versus-measured comparison consumed by EXPERIMENTS.md and the
  benchmark harness.
"""

from repro.experiments.world import World, build_world
from repro.experiments.campaigns import (
    ec2_campaign_config,
    fault_campaign_config,
    home_campaign_config,
    monthly_recheck_config,
    run_fault_study,
    run_study,
)
from repro.experiments.observatory import (
    observe_run,
    observer_campaign_configs,
    run_observer_study,
)
from repro.experiments.paper import PaperReport, generate_report

__all__ = [
    "PaperReport",
    "World",
    "build_world",
    "ec2_campaign_config",
    "fault_campaign_config",
    "generate_report",
    "home_campaign_config",
    "monthly_recheck_config",
    "observe_run",
    "observer_campaign_configs",
    "run_fault_study",
    "run_observer_study",
    "run_study",
]
