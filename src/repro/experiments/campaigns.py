"""The paper's measurement campaigns.

Three campaign shapes, mirroring §3.2:

* **home** — four Chicago home devices, tests "every few hours" over a
  long span (June 22 – September 30, 2023 in the paper; scaled rounds
  here);
* **ec2** — the three EC2 instances, three measurements a day (September
  19 – October 16, 2023);
* **monthly re-check** — short 1–3 day spans re-run months later to
  confirm resolver performance had not drifted (February/March/April
  2024).

:func:`run_study` executes all of them against one world and returns the
merged result store — the input to every analysis in the paper.
"""

from __future__ import annotations

from collections import OrderedDict
from pathlib import Path
from typing import TYPE_CHECKING, Iterable, List, Optional, Sequence, Tuple

if TYPE_CHECKING:
    from typing import OrderedDict as OrderedDictType

    from repro.session import SessionPolicy

from repro.core.probes import DohProbeConfig
from repro.core.results import ResultStore
from repro.core.runner import Campaign, CampaignConfig, RetryPolicy
from repro.core.scheduler import MS_PER_HOUR, PeriodicSchedule
from repro.errors import CampaignConfigError
from repro.experiments.world import World
from repro.faults import FaultPlan, FaultPlanConfig, inject_faults
from repro.parallel.runner import ParallelRun, chain_tasks, plan_campaign, run_parallel


def home_campaign_config(rounds: int = 30, seed: int = 101) -> CampaignConfig:
    """Chicago home devices: a round every 6 hours."""
    return CampaignConfig(
        name="home-chicago",
        schedule=PeriodicSchedule(
            rounds=rounds, interval_ms=6 * MS_PER_HOUR, stagger_ms=10 * 60 * 1000.0
        ),
        probe_config=DohProbeConfig(),
        seed=seed,
    )


def ec2_campaign_config(rounds: int = 30, seed: int = 202) -> CampaignConfig:
    """EC2 instances: three rounds a day."""
    return CampaignConfig(
        name="ec2-global",
        schedule=PeriodicSchedule(
            rounds=rounds, interval_ms=8 * MS_PER_HOUR, stagger_ms=10 * 60 * 1000.0
        ),
        probe_config=DohProbeConfig(),
        seed=seed,
    )


def monthly_recheck_config(
    month_label: str, start_ms: float, rounds: int = 6, seed: int = 303
) -> CampaignConfig:
    """A short re-measurement span months after the main campaign."""
    return CampaignConfig(
        name=f"recheck-{month_label}",
        schedule=PeriodicSchedule(
            rounds=rounds,
            interval_ms=8 * MS_PER_HOUR,
            start_ms=start_ms,
            stagger_ms=10 * 60 * 1000.0,
        ),
        probe_config=DohProbeConfig(),
        seed=seed,
    )


def fault_campaign_config(
    rounds: int = 8,
    seed: int = 404,
    retry: Optional[RetryPolicy] = None,
    start_ms: float = 0.0,
) -> CampaignConfig:
    """Fault-study campaign: EC2 cadence with a modest retry budget.

    Real measurement tools retry transient failures; the fault study runs
    with ``attempts=2`` by default so retry behaviour shows up in the
    ``attempts`` field of the records without masking persistent outages
    (a fault window far outlasts one backoff interval).
    """
    return CampaignConfig(
        name="ec2-faults",
        schedule=PeriodicSchedule(
            rounds=rounds,
            interval_ms=8 * MS_PER_HOUR,
            start_ms=start_ms,
            stagger_ms=10 * 60 * 1000.0,
        ),
        probe_config=DohProbeConfig(),
        retry=retry if retry is not None else RetryPolicy(attempts=2),
        seed=seed,
    )


def run_fault_study(
    world: World,
    rounds: int = 8,
    fault_seed: int = 20230919,
    plan_config: Optional[FaultPlanConfig] = None,
    retry: Optional[RetryPolicy] = None,
    vantage_names: Optional[Sequence[str]] = None,
    target_hostnames: Optional[Iterable[str]] = None,
    store: Optional[ResultStore] = None,
) -> Tuple[ResultStore, FaultPlan]:
    """Run the fault-injected campaign: EC2 vantages under a seeded FaultPlan.

    Generates a :class:`~repro.faults.FaultPlan` covering the campaign's
    whole span, arms a :class:`~repro.faults.FaultInjector` over the
    targeted deployments, then runs a retry-enabled campaign.  Returns the
    result store and the plan (so callers can correlate failures with the
    injected windows).  Everything is derived from ``fault_seed`` and the
    campaign seed, so identical inputs reproduce identical results.
    """
    store = store if store is not None else ResultStore()
    targets = world.targets(list(target_hostnames) if target_hostnames is not None else None)
    names = list(vantage_names) if vantage_names is not None else [
        name for name in EC2_VANTAGE_NAMES if name in world.vantages
    ]
    vantages = [world.vantage(name) for name in names]

    start_ms = world.network.loop.now
    config = fault_campaign_config(rounds=rounds, retry=retry, start_ms=start_ms)
    # Cover the full span plus one interval of slack so windows can still be
    # open while the last round's probes (and their retries) are in flight.
    horizon_ms = config.schedule.total_span_ms + config.schedule.interval_ms
    plan = FaultPlan.generate(
        [target.hostname for target in targets],
        horizon_ms=horizon_ms,
        seed=fault_seed,
        config=plan_config,
    )
    deployments = [world.deployments[target.hostname] for target in targets]
    # The schedule starts at the current virtual time, and arm() interprets
    # the plan relative to now — so plan-time 0 lines up with round 0.
    inject_faults(world.network, deployments, plan, offset_ms=0.0)

    Campaign(
        network=world.network,
        vantages=vantages,
        targets=targets,
        config=config,
        store=store,
    ).run()
    return store, plan


def diff_campaign_config(
    rounds: int = 2,
    seed: int = 505,
    domains: Optional[Sequence[str]] = None,
    transport: str = "doh",
) -> CampaignConfig:
    """The same-query fan-out campaign for answer differencing.

    Every deployment is asked the identical questions each round, raw
    response messages are captured on the records, and pings are skipped
    (latency is not the object here).  Two rounds at EC2 cadence keep the
    cells cheap while still exposing round-to-round transients.
    """
    return CampaignConfig(
        name="diff-fanout",
        domains=tuple(domains) if domains is not None else CampaignConfig.domains,
        schedule=PeriodicSchedule(
            rounds=rounds, interval_ms=6 * MS_PER_HOUR, stagger_ms=10 * 60 * 1000.0
        ),
        transport=transport,
        probe_config=DohProbeConfig(),
        ping=False,
        seed=seed,
        capture_responses=True,
    )


def run_diff_campaign(
    world_seed: int = 0,
    rounds: int = 2,
    seed: int = 505,
    domains: Optional[Sequence[str]] = None,
    transport: str = "doh",
    vantage_names: Optional[Sequence[str]] = None,
    target_hostnames: Optional[Iterable[str]] = None,
    workers: int = 1,
    shard_by: str = "vantage",
    shards: Optional[int] = None,
    answer_fault_plan: Optional["AnswerFaultPlan"] = None,
    store_dir: Optional[str] = None,
    segment_records: int = 4096,
) -> ParallelRun:
    """Run the differencing fan-out, serial or sharded, RAM or warehouse.

    With ``answer_fault_plan`` set, every shard (and the serial path —
    the identity shard plan) arms the plan's response mutators on its
    own targets, so the injected disagreements are identical for any
    worker count.  The returned run's record source feeds
    :func:`repro.diff.build_diff_report`.
    """
    names = list(vantage_names) if vantage_names is not None else list(EC2_VANTAGE_NAMES)
    return run_campaign_parallel(
        diff_campaign_config(
            rounds=rounds, seed=seed, domains=domains, transport=transport
        ),
        names,
        target_hostnames,
        world_seed=world_seed,
        workers=workers,
        shard_by=shard_by,
        shards=shards,
        answer_fault_plan=answer_fault_plan,
        store_dir=store_dir,
        segment_records=segment_records,
    )


HOME_VANTAGE_NAMES = (
    "home-chicago-1",
    "home-chicago-2",
    "home-chicago-3",
    "home-chicago-4",
)
EC2_VANTAGE_NAMES = ("ec2-ohio", "ec2-frankfurt", "ec2-seoul")

#: Catalog deployments speaking every session transport (doh/dot/doq/doh3)
#: — the target set of the session-policy scenario matrix.
SESSION_TARGET_HOSTNAMES = (
    "anycast.dns.nextdns.io",
    "dns.nextdns.io",
    "dns.adguard.com",
    "dns-family.adguard.com",
    "dns-unfiltered.adguard.com",
)

#: Policy presets swept by :func:`run_sessions_study`, in report order.
SESSION_STUDY_POLICIES = ("cold", "keep-alive", "resumption", "zero-rtt")


def sessions_campaign_config(
    policy: "SessionPolicy",
    rounds: int = 3,
    seed: int = 606,
    transports: Sequence[str] = ("doh", "dot", "doq", "doh3"),
    domains: Optional[Sequence[str]] = None,
) -> CampaignConfig:
    """One cell of the session scenario matrix: a transport sweep under
    ``policy``.

    Every policy cell shares the campaign name, seed, and schedule, so
    the derived per-measurement RNG streams are identical across
    policies — the only varying input is the session policy itself.
    That is what makes warm-vs-cold latency deltas attributable to the
    policy rather than to different random draws.
    """
    return CampaignConfig(
        name="sessions",
        domains=tuple(domains) if domains is not None else CampaignConfig.domains,
        schedule=PeriodicSchedule(
            rounds=rounds, interval_ms=1 * MS_PER_HOUR, stagger_ms=10 * 60 * 1000.0
        ),
        transports=tuple(transports),
        session_policy=policy,
        ping=False,
        seed=seed,
    )


def run_sessions_study(
    policies: Sequence[str] = SESSION_STUDY_POLICIES,
    world_seed: int = 0,
    rounds: int = 3,
    seed: int = 606,
    transports: Sequence[str] = ("doh", "dot", "doq", "doh3"),
    domains: Optional[Sequence[str]] = None,
    vantage_names: Optional[Sequence[str]] = None,
    target_hostnames: Optional[Iterable[str]] = None,
    workers: int = 1,
    shard_by: str = "vantage",
    shards: Optional[int] = None,
    store_dir: Optional[str] = None,
    segment_records: int = 4096,
) -> "OrderedDictType[str, ParallelRun]":
    """Run the same campaign once per session policy, serial or sharded.

    Returns an ordered mapping of policy name → :class:`ParallelRun`
    (insertion order = ``policies`` order).  Each policy runs on its own
    fresh world built from ``world_seed``; with ``store_dir`` each run
    streams into a per-policy warehouse subdirectory.
    """
    from repro.session import policy_from_name

    names = list(vantage_names) if vantage_names is not None else list(EC2_VANTAGE_NAMES)
    hostnames = (
        list(target_hostnames)
        if target_hostnames is not None
        else list(SESSION_TARGET_HOSTNAMES)
    )
    runs: "OrderedDictType[str, ParallelRun]" = OrderedDict()
    for name in policies:
        policy = policy_from_name(name)
        runs[name] = run_campaign_parallel(
            sessions_campaign_config(
                policy, rounds=rounds, seed=seed, transports=transports, domains=domains
            ),
            names,
            hostnames,
            world_seed=world_seed,
            workers=workers,
            shard_by=shard_by,
            shards=shards,
            store_dir=(
                str(Path(store_dir) / name.replace("-", "_"))
                if store_dir is not None
                else None
            ),
            segment_records=segment_records,
        )
    return runs


def run_study(
    world: World,
    home_rounds: int = 20,
    ec2_rounds: int = 20,
    recheck_months: Sequence[str] = (),
    target_hostnames: Optional[Iterable[str]] = None,
    store: Optional[ResultStore] = None,
) -> ResultStore:
    """Run the full study (home + EC2 + optional re-checks) on ``world``.

    Round counts are scaled down from the paper's multi-month spans; the
    statistics of interest (per-resolver medians and spreads) stabilize
    within a few dozen rounds because the simulation is stationary.
    """
    store = store if store is not None else ResultStore()
    targets = world.targets(list(target_hostnames) if target_hostnames is not None else None)

    home_vantages = [world.vantage(name) for name in HOME_VANTAGE_NAMES if name in world.vantages]
    if home_vantages and home_rounds > 0:
        Campaign(
            network=world.network,
            vantages=home_vantages,
            targets=targets,
            config=home_campaign_config(rounds=home_rounds),
            store=store,
        ).run()

    ec2_vantages = [world.vantage(name) for name in EC2_VANTAGE_NAMES if name in world.vantages]
    if ec2_vantages and ec2_rounds > 0:
        Campaign(
            network=world.network,
            vantages=ec2_vantages,
            targets=targets,
            config=ec2_campaign_config(rounds=ec2_rounds),
            store=store,
        ).run()

    for index, month in enumerate(recheck_months):
        start_ms = world.network.loop.now + 30.0 * 24 * MS_PER_HOUR * (index + 1)
        Campaign(
            network=world.network,
            vantages=ec2_vantages or home_vantages,
            targets=targets,
            config=monthly_recheck_config(month, start_ms=start_ms, seed=303 + index),
            store=store,
        ).run()

    return store


# -- sharded parallel execution ------------------------------------------------


def _catalog_hostnames(target_hostnames: Optional[Iterable[str]]) -> List[str]:
    if target_hostnames is not None:
        return list(target_hostnames)
    from repro.catalog.resolvers import CATALOG

    return [entry.hostname for entry in CATALOG]


def run_campaign_parallel(
    config: CampaignConfig,
    vantage_names: Sequence[str],
    target_hostnames: Optional[Iterable[str]] = None,
    world_seed: int = 0,
    workers: int = 1,
    shard_by: str = "vantage",
    shards: Optional[int] = None,
    fault_plan: Optional[FaultPlan] = None,
    answer_fault_plan: Optional["AnswerFaultPlan"] = None,
    collect_spans: bool = False,
    collect_metrics: bool = False,
    store_dir: Optional[str] = None,
    segment_records: int = 4096,
    slo_policy: Optional[object] = None,
) -> ParallelRun:
    """Run one campaign sharded across workers and merge the artifacts.

    ``workers=1`` is the serial reference execution of the same shard
    plan; any higher worker count reproduces it byte for byte.  Each
    shard runs on a fresh world built from ``world_seed``, so results
    depend only on the plan — see :mod:`repro.parallel`.  With
    ``store_dir`` the run streams into a results warehouse instead of
    RAM (see :mod:`repro.store`); the warehouse is byte-identical for
    any worker count.  With ``slo_policy`` (a
    :class:`repro.monitor.SloPolicy`) the merged canonical stream is
    replayed through a monitor — see :func:`repro.parallel.run_parallel`.
    """
    tasks = plan_campaign(
        config,
        vantage_names,
        _catalog_hostnames(target_hostnames),
        world_seed=world_seed,
        shard_by=shard_by,
        shards=shards,
        fault_plan_json=fault_plan.to_json() if fault_plan is not None else None,
        answer_fault_plan_json=(
            answer_fault_plan.to_json() if answer_fault_plan is not None else None
        ),
        collect_spans=collect_spans,
        collect_metrics=collect_metrics,
    )
    return run_parallel(
        tasks,
        workers=workers,
        store_dir=store_dir,
        segment_records=segment_records,
        slo_policy=slo_policy,
    )


def run_study_parallel(
    world_seed: int = 0,
    home_rounds: int = 20,
    ec2_rounds: int = 20,
    target_hostnames: Optional[Iterable[str]] = None,
    workers: int = 1,
    shard_by: str = "vantage",
    shards: Optional[int] = None,
    collect_spans: bool = False,
    collect_metrics: bool = False,
    store_dir: Optional[str] = None,
    segment_records: int = 4096,
    slo_policy: Optional[object] = None,
) -> ParallelRun:
    """The home + EC2 study as one sharded run over a shared worker pool.

    Both campaigns are planned up front and their shards executed through
    one pool, so a long home campaign cannot serialize behind the EC2
    one.  The merged store holds both campaigns in canonical order.
    """
    hostnames = _catalog_hostnames(target_hostnames)
    plans = []
    if home_rounds > 0:
        plans.append(
            plan_campaign(
                home_campaign_config(rounds=home_rounds),
                HOME_VANTAGE_NAMES,
                hostnames,
                world_seed=world_seed,
                shard_by=shard_by,
                shards=shards,
                collect_spans=collect_spans,
                collect_metrics=collect_metrics,
            )
        )
    if ec2_rounds > 0:
        plans.append(
            plan_campaign(
                ec2_campaign_config(rounds=ec2_rounds),
                EC2_VANTAGE_NAMES,
                hostnames,
                world_seed=world_seed,
                shard_by=shard_by,
                shards=shards,
                collect_spans=collect_spans,
                collect_metrics=collect_metrics,
            )
        )
    if not plans:
        raise CampaignConfigError("study needs home_rounds > 0 or ec2_rounds > 0")
    return run_parallel(
        chain_tasks(*plans),
        workers=workers,
        store_dir=store_dir,
        segment_records=segment_records,
        slo_policy=slo_policy,
    )


def run_fault_study_parallel(
    world_seed: int = 0,
    rounds: int = 8,
    fault_seed: int = 20230919,
    plan_config: Optional[FaultPlanConfig] = None,
    retry: Optional[RetryPolicy] = None,
    vantage_names: Optional[Sequence[str]] = None,
    target_hostnames: Optional[Iterable[str]] = None,
    workers: int = 1,
    shard_by: str = "vantage",
    shards: Optional[int] = None,
) -> Tuple[ParallelRun, FaultPlan]:
    """Sharded variant of :func:`run_fault_study`.

    The fault plan is generated once from ``fault_seed`` and shipped to
    every shard, which arms only the windows of its own targets.  Because
    plan generation derives an independent RNG per hostname, the armed
    windows inside a shard are identical to the ones the serial fault
    study arms for those resolvers.
    """
    hostnames = _catalog_hostnames(target_hostnames)
    names = list(vantage_names) if vantage_names is not None else list(EC2_VANTAGE_NAMES)
    config = fault_campaign_config(rounds=rounds, retry=retry)
    horizon_ms = config.schedule.total_span_ms + config.schedule.interval_ms
    plan = FaultPlan.generate(
        hostnames, horizon_ms=horizon_ms, seed=fault_seed, config=plan_config
    )
    run = run_campaign_parallel(
        config,
        names,
        hostnames,
        world_seed=world_seed,
        workers=workers,
        shard_by=shard_by,
        shards=shards,
        fault_plan=plan,
    )
    return run, plan
