"""Deterministic merge of shard results into whole-campaign artifacts.

The merge is independent of shard completion order and of how many
workers produced the results:

* **records** — shard record lists are concatenated in shard-plan order,
  then stable-sorted into the canonical order of
  :meth:`repro.core.results.ResultStore.canonical_key` (round, virtual
  start time, vantage, resolver, ...).  Two runs of the same plan — one
  serial, one pooled — export byte-identical JSONL;
* **spans** — per-shard span ids all start at 1, so each shard's spans
  are rebased past the previous shard's id space (in plan order) while
  keeping their virtual timestamps; parent links move by the same offset,
  leaving every shard's campaign>round>measurement>probe tree intact;
* **metrics** — counter values and raw histogram buckets add; gauges
  (extensive totals) add as well.  Addition is commutative, so the merged
  registry is order-independent by construction.
"""

from __future__ import annotations

import shutil
from pathlib import Path
from typing import List, Sequence, Tuple, Union

from repro.core.results import ResultStore
from repro.errors import CampaignConfigError
from repro.obs import MetricsRegistry, SpanCollector
from repro.parallel.executor import ShardResult


def merge_shard_results(
    results: Sequence[ShardResult],
) -> Tuple[ResultStore, SpanCollector, MetricsRegistry]:
    """Fold shard results into one store, span collector and registry.

    ``results`` may arrive in any order (e.g. pool completion order);
    they are merged in shard-plan order.  Duplicate or missing shard
    indices raise — a merge over a partial plan would silently produce a
    truncated campaign.
    """
    ordered = sorted(results, key=lambda result: result.shard_index)
    indices = [result.shard_index for result in ordered]
    if len(set(indices)) != len(indices):
        raise CampaignConfigError(f"duplicate shard indices in merge: {indices}")

    store = ResultStore()
    for result in ordered:
        store.extend(result.records)
    store.canonical_sort()

    spans = SpanCollector()
    for result in ordered:
        if result.spans:
            spans.absorb(result.spans)

    states = [result.metrics_state for result in ordered if result.metrics_state]
    metrics = MetricsRegistry.from_states(states, enabled=bool(states))

    return store, spans, metrics


def merge_shard_warehouses(
    results: Sequence[ShardResult],
    dest: Union[str, Path],
    segment_records: int = 4096,
    cleanup: bool = True,
):
    """K-way merge shard staging warehouses into one canonical warehouse.

    The store-backed twin of :func:`merge_shard_results`: every result
    must carry a ``warehouse_path`` (shards ran with a staging dir set).
    Because each staging segment is internally sorted and
    :meth:`repro.store.Warehouse.build_canonical` rewrites with fixed
    rotation, the destination bytes depend only on the record multiset —
    the same warehouse emerges for any worker count.  ``cleanup`` removes
    the staging warehouses afterwards.
    """
    from repro.store import Warehouse

    ordered = sorted(results, key=lambda result: result.shard_index)
    indices = [result.shard_index for result in ordered]
    if len(set(indices)) != len(indices):
        raise CampaignConfigError(f"duplicate shard indices in merge: {indices}")
    missing = [r.shard_key for r in ordered if r.warehouse_path is None]
    if missing:
        raise CampaignConfigError(
            f"shards without staging warehouses in store merge: {missing}"
        )

    sources = [Warehouse.open(result.warehouse_path) for result in ordered]
    merged = Warehouse.build_canonical(sources, dest, segment_records)
    if cleanup:
        for source in sources:
            shutil.rmtree(source.root, ignore_errors=True)
    return merged


def coverage_triples(results: Sequence[ShardResult]) -> List[Tuple[str, str, int]]:
    """(vantage, resolver, round) triples present in merged dns records.

    Diagnostic helper for equivalence checks: a correct plan covers every
    triple of the original campaign exactly once across shards.
    """
    seen: List[Tuple[str, str, int]] = []
    for result in sorted(results, key=lambda r: r.shard_index):
        for record in result.records:
            if record.kind == "ping":
                seen.append((record.vantage, record.resolver, record.round_index))
    return seen
