"""Sharded parallel campaign execution with deterministic merge.

The serial :class:`~repro.core.runner.Campaign` drives every round of
every vantage on one virtual clock.  This package opens the same workload
to a worker pool:

* :mod:`repro.parallel.shard` partitions a campaign's
  (vantage × resolver × round) space into disjoint, covering shards and
  derives a stable per-shard seed from the campaign seed;
* :mod:`repro.parallel.executor` runs one shard standalone — a fresh
  world built from the campaign's world seed, the campaign restricted to
  the shard's slice — and returns records, spans and metrics state;
* :mod:`repro.parallel.merge` folds shard results back into a single
  :class:`~repro.core.results.ResultStore`, span collector and metrics
  registry, deterministically: the merged artifacts are byte-identical
  no matter how many workers ran or which shard finished first;
* :mod:`repro.parallel.runner` orchestrates the whole thing across a
  :class:`concurrent.futures.ProcessPoolExecutor` (with an in-process
  sequential fallback for ``workers=1`` and platforms without usable
  multiprocessing).

The execution model is *shard-decomposed*: each shard runs on its own
freshly built world, so shard results depend only on the shard spec —
never on co-scheduled traffic from other shards or on which process ran
them.  ``run_parallel(plan, workers=1)`` is the serial reference run;
any ``workers=N`` of the same plan reproduces it byte for byte.
"""

from repro.core.seeding import derive_rng, derive_seed, stable_hash64
from repro.parallel.executor import ShardResult, ShardTask, execute_shard
from repro.parallel.merge import merge_shard_results, merge_shard_warehouses
from repro.parallel.runner import (
    ParallelRun,
    chain_tasks,
    default_worker_count,
    plan_campaign,
    run_parallel,
)
from repro.parallel.shard import SHARD_STRATEGIES, Shard, partition

__all__ = [
    "SHARD_STRATEGIES",
    "ParallelRun",
    "Shard",
    "ShardResult",
    "ShardTask",
    "chain_tasks",
    "default_worker_count",
    "derive_rng",
    "derive_seed",
    "execute_shard",
    "merge_shard_results",
    "merge_shard_warehouses",
    "partition",
    "plan_campaign",
    "run_parallel",
    "stable_hash64",
]
