"""Campaign sharding: partition (vantage × resolver × round) space.

A :class:`Shard` names a rectangular slice of a campaign — a subset of
vantages, a subset of targets, and a contiguous round range — plus a
stable seed derived from the campaign seed and the shard key.  The three
strategies cut along one axis each:

* ``vantage``  — one shard per vantage point (the paper's natural unit:
  each EC2 instance / home device ran independently);
* ``resolver`` — targets split into near-equal cohorts;
* ``round``    — the round range split into near-equal spans.

Every strategy covers each (vantage, resolver, round) triple exactly
once; :func:`partition` is pure and deterministic, so the serial and the
pooled executor agree on the plan without communicating.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.core.seeding import derive_seed
from repro.errors import CampaignConfigError

#: Supported values of ``shard_by``.
SHARD_STRATEGIES = ("vantage", "resolver", "round")


@dataclass(frozen=True)
class Shard:
    """One independent slice of a campaign.

    ``network_seed`` reseeds the shard world's packet-level RNG (jitter
    and loss draws).  For multi-shard plans it is derived from the
    campaign seed and the shard key so shards sample de-correlated
    network noise; a single-shard plan leaves it ``None`` — the world's
    own stream is kept — making ``partition(..., shards=1)`` the
    identity: running that shard is exactly the classic serial campaign.
    """

    index: int
    key: str
    vantage_names: Tuple[str, ...]
    target_hostnames: Tuple[str, ...]
    round_start: int
    round_stop: int
    seed: int
    network_seed: Optional[int]

    def __post_init__(self) -> None:
        if not self.vantage_names or not self.target_hostnames:
            raise CampaignConfigError(f"shard {self.key!r} is empty")
        if not 0 <= self.round_start < self.round_stop:
            raise CampaignConfigError(
                f"shard {self.key!r}: bad round range "
                f"[{self.round_start}, {self.round_stop})"
            )

    @property
    def rounds(self) -> int:
        return self.round_stop - self.round_start

    def triples(self) -> List[Tuple[str, str, int]]:
        """Every (vantage, resolver, round) this shard covers."""
        return [
            (vantage, target, round_index)
            for vantage in self.vantage_names
            for target in self.target_hostnames
            for round_index in range(self.round_start, self.round_stop)
        ]

    def describe(self) -> str:
        return (
            f"shard[{self.index}] {self.key}: "
            f"{len(self.vantage_names)}v x {len(self.target_hostnames)}t x "
            f"{self.rounds}r"
        )


def _chunk(items: Sequence[str], pieces: int) -> List[Sequence[str]]:
    """Split ``items`` into ``pieces`` contiguous near-equal chunks."""
    chunks: List[Sequence[str]] = []
    base, extra = divmod(len(items), pieces)
    cursor = 0
    for piece in range(pieces):
        size = base + (1 if piece < extra else 0)
        chunks.append(items[cursor : cursor + size])
        cursor += size
    return chunks


def partition(
    vantage_names: Sequence[str],
    target_hostnames: Sequence[str],
    rounds: int,
    shard_by: str = "vantage",
    shards: Optional[int] = None,
    seed: int = 0,
) -> List[Shard]:
    """Cut a campaign into disjoint, covering shards.

    ``shards`` bounds the shard count for the ``resolver`` and ``round``
    strategies (default: 8, clamped to the axis size); the ``vantage``
    strategy always yields one shard per vantage.  Passing ``shards=1``
    under any strategy returns the single identity shard whose execution
    is the classic serial campaign.

    Each shard's ``seed`` is derived from the campaign ``seed`` and the
    shard key with a stable hash, so seeds are reproducible across
    processes and pairwise distinct with overwhelming probability.
    """
    if shard_by not in SHARD_STRATEGIES:
        raise CampaignConfigError(
            f"unknown shard strategy {shard_by!r} (want one of {SHARD_STRATEGIES})"
        )
    if not vantage_names:
        raise CampaignConfigError("cannot shard a campaign with no vantages")
    if not target_hostnames:
        raise CampaignConfigError("cannot shard a campaign with no targets")
    if rounds <= 0:
        raise CampaignConfigError("cannot shard a campaign with no rounds")
    if shards is not None and shards < 1:
        raise CampaignConfigError(f"shard count {shards!r} must be >= 1")

    vantages = tuple(vantage_names)
    targets = tuple(target_hostnames)

    pieces: List[Tuple[str, Tuple[str, ...], Tuple[str, ...], int, int]] = []
    if shards == 1:
        pieces.append(("all", vantages, targets, 0, rounds))
    elif shard_by == "vantage":
        for vantage in vantages:
            pieces.append((f"vantage={vantage}", (vantage,), targets, 0, rounds))
    elif shard_by == "resolver":
        count = min(shards if shards is not None else 8, len(targets))
        for cohort_index, cohort in enumerate(_chunk(targets, count)):
            pieces.append(
                (f"resolvers[{cohort_index}/{count}]", vantages, tuple(cohort), 0, rounds)
            )
    else:  # round
        count = min(shards if shards is not None else 8, rounds)
        cursor = 0
        base, extra = divmod(rounds, count)
        for span_index in range(count):
            size = base + (1 if span_index < extra else 0)
            pieces.append(
                (
                    f"rounds[{cursor}:{cursor + size}]",
                    vantages,
                    targets,
                    cursor,
                    cursor + size,
                )
            )
            cursor += size

    out: List[Shard] = []
    for index, (key, shard_vantages, shard_targets, lo, hi) in enumerate(pieces):
        out.append(
            Shard(
                index=index,
                key=key,
                vantage_names=shard_vantages,
                target_hostnames=shard_targets,
                round_start=lo,
                round_stop=hi,
                seed=derive_seed(seed, "shard", key),
                # The identity plan keeps the world's own network stream
                # so a 1-shard run reproduces Campaign.run() exactly.
                network_seed=(
                    None if len(pieces) == 1 else derive_seed(seed, "shard-net", key)
                ),
            )
        )
    return out
