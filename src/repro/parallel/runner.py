"""Orchestration: plan a sharded campaign and run it across workers.

:func:`plan_campaign` turns a campaign description into a list of
:class:`~repro.parallel.executor.ShardTask`; :func:`run_parallel`
executes the tasks — sequentially in-process for ``workers=1``, across a
:class:`concurrent.futures.ProcessPoolExecutor` otherwise — and merges
the results deterministically.  Both paths run the *same* tasks through
the *same* :func:`~repro.parallel.executor.execute_shard`, which is why
``workers=4`` reproduces ``workers=1`` byte for byte.

If the platform cannot start worker processes at all (no ``fork`` and a
broken ``spawn``, restricted environments), the pool path degrades to the
sequential fallback instead of failing, with a note on the result.
"""

from __future__ import annotations

import os
import shutil
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from repro.core.results import ResultStore
from repro.core.runner import CampaignConfig
from repro.errors import CampaignConfigError
from repro.obs import MetricsRegistry, SpanCollector
from repro.parallel.executor import ShardResult, ShardTask, execute_shard
from repro.parallel.merge import merge_shard_results, merge_shard_warehouses
from repro.parallel.shard import Shard, partition


@dataclass
class ParallelRun:
    """Merged artifacts and execution metadata of one sharded campaign."""

    store: ResultStore
    spans: SpanCollector
    metrics: MetricsRegistry
    shard_results: List[ShardResult]
    workers: int
    pool_used: bool
    fallback_reason: Optional[str] = None
    wall_seconds: float = 0.0
    shard_wall_seconds: Dict[str, float] = field(default_factory=dict)
    #: The canonical warehouse when the run streamed to disk (``store_dir``
    #: was set); ``store`` is empty in that mode.
    warehouse: Optional[object] = None
    #: A finalized :class:`repro.monitor.Monitor` when the run was given an
    #: SLO policy; holds the alert log, verdicts and scoreboard.
    monitor: Optional[object] = None

    @property
    def record_count(self) -> int:
        if self.warehouse is not None:
            return len(self.warehouse)
        return len(self.store)

    def describe(self) -> str:
        mode = (
            f"{self.workers} workers (process pool)"
            if self.pool_used
            else "sequential"
            + (f" [{self.fallback_reason}]" if self.fallback_reason else "")
        )
        sink = (
            f" -> warehouse {self.warehouse.root}" if self.warehouse is not None else ""
        )
        return (
            f"parallel run: {len(self.shard_results)} shards via {mode}, "
            f"{self.record_count} records, {len(self.spans)} spans, "
            f"{self.wall_seconds:.2f}s wall{sink}"
        )


def plan_campaign(
    config: CampaignConfig,
    vantage_names: Sequence[str],
    target_hostnames: Sequence[str],
    world_seed: int = 0,
    shard_by: str = "vantage",
    shards: Optional[int] = None,
    fault_plan_json: Optional[str] = None,
    answer_fault_plan_json: Optional[str] = None,
    collect_spans: bool = False,
    collect_metrics: bool = False,
    warm_caches: bool = True,
    store_staging_dir: Optional[str] = None,
    segment_records: int = 4096,
) -> List[ShardTask]:
    """Shard one campaign into executable tasks.

    The shard plan is a pure function of the arguments, so every process
    that plans the same campaign derives the same tasks — the planner
    never needs to ship the plan to workers out of band.  When
    ``store_staging_dir`` is set every shard streams its records into a
    staging warehouse under it instead of returning them in RAM.
    """
    shard_list: List[Shard] = partition(
        vantage_names,
        target_hostnames,
        rounds=config.schedule.rounds,
        shard_by=shard_by,
        shards=shards,
        seed=config.seed,
    )
    return [
        ShardTask.from_shard(
            shard,
            config=config,
            world_seed=world_seed,
            fault_plan_json=fault_plan_json,
            answer_fault_plan_json=answer_fault_plan_json,
            collect_spans=collect_spans,
            collect_metrics=collect_metrics,
            warm_caches=warm_caches,
            store_staging_dir=store_staging_dir,
            segment_records=segment_records,
        )
        for shard in shard_list
    ]


def chain_tasks(*plans: Sequence[ShardTask]) -> List[ShardTask]:
    """Concatenate shard plans, renumbering indices to stay unique.

    Used to drive several campaigns (e.g. the home and EC2 studies)
    through one worker pool while keeping the merge order well-defined:
    plan order first, shard order within each plan second.
    """
    from dataclasses import replace as dc_replace

    chained: List[ShardTask] = []
    for plan in plans:
        for task in plan:
            chained.append(dc_replace(task, shard_index=len(chained)))
    return chained


def _run_sequential(tasks: Sequence[ShardTask]) -> List[ShardResult]:
    return [execute_shard(task) for task in tasks]


def _run_pooled(tasks: Sequence[ShardTask], workers: int) -> List[ShardResult]:
    from concurrent.futures import ProcessPoolExecutor

    results: List[ShardResult] = []
    with ProcessPoolExecutor(max_workers=min(workers, len(tasks))) as pool:
        futures = [pool.submit(execute_shard, task) for task in tasks]
        # Collect in completion-independent submission order; the merge
        # re-sorts by shard index anyway, so ordering here is cosmetic.
        for future in futures:
            results.append(future.result())
    return results


def run_parallel(
    tasks: Sequence[ShardTask],
    workers: int = 1,
    store_dir: Optional[str] = None,
    segment_records: int = 4096,
    slo_policy: Optional[object] = None,
) -> ParallelRun:
    """Execute shard tasks and merge their results.

    ``workers=1`` (or a single task) runs everything in-process; higher
    counts use a process pool, falling back to sequential execution — with
    the reason recorded on the result — when worker processes cannot be
    started on this platform.

    With ``store_dir`` set, every shard streams its records into a
    staging warehouse under ``<store_dir>/.staging`` (tasks are rewritten
    accordingly) and the merge step k-way merges the stagings into a
    canonical warehouse at ``store_dir`` — byte-identical for any worker
    count, since the output depends only on the record multiset.

    With ``slo_policy`` set (a :class:`repro.monitor.SloPolicy`), the
    merged canonical record stream is replayed through a
    :class:`repro.monitor.Monitor` after the merge — shards never monitor
    live, so the alert log depends only on the record multiset and is
    byte-identical for any worker count given a fixed shard plan, and
    identical to live monitoring of a serial execution of that plan (per
    group, live arrival order equals canonical order).  The finalized
    monitor lands on
    ``ParallelRun.monitor`` and its detector gauges in the merged metrics.
    """
    import time
    from dataclasses import replace as dc_replace

    if not tasks:
        raise CampaignConfigError("no shard tasks to run")
    if workers < 1:
        raise CampaignConfigError(f"worker count {workers!r} must be >= 1")
    if store_dir is not None:
        staging = str(Path(store_dir) / ".staging")
        tasks = [
            dc_replace(
                task, store_staging_dir=staging, segment_records=segment_records
            )
            for task in tasks
        ]

    started = time.perf_counter()
    pool_used = False
    fallback_reason: Optional[str] = None
    if workers == 1 or len(tasks) == 1:
        results = _run_sequential(tasks)
    else:
        try:
            results = _run_pooled(tasks, workers)
            pool_used = True
        except (ImportError, OSError, PermissionError) as exc:
            # Platforms without usable multiprocessing (no fork, sandboxed
            # spawn, missing semaphores) still complete the run.
            fallback_reason = f"process pool unavailable: {exc}"
            results = _run_sequential(tasks)

    warehouse = None
    if store_dir is not None:
        warehouse = merge_shard_warehouses(
            results, store_dir, segment_records=segment_records
        )
        shutil.rmtree(Path(store_dir) / ".staging", ignore_errors=True)
        store, spans, metrics = merge_shard_results(
            [dc_replace(result, records=[]) for result in results]
        )
    else:
        store, spans, metrics = merge_shard_results(results)

    monitor = None
    if slo_policy is not None:
        from repro.monitor import Monitor, SloPolicy

        if not isinstance(slo_policy, SloPolicy):
            raise CampaignConfigError(
                f"slo_policy must be a SloPolicy, got {type(slo_policy).__name__}"
            )
        monitor = Monitor(slo_policy)
        monitor.replay(
            warehouse.iter_sorted() if warehouse is not None else store.records
        )
        monitor.finalize(metrics)

    return ParallelRun(
        store=store,
        spans=spans,
        metrics=metrics,
        shard_results=sorted(results, key=lambda result: result.shard_index),
        workers=workers,
        pool_used=pool_used,
        fallback_reason=fallback_reason,
        wall_seconds=time.perf_counter() - started,
        shard_wall_seconds={
            result.shard_key: result.wall_seconds for result in results
        },
        warehouse=warehouse,
        monitor=monitor,
    )


def default_worker_count() -> int:
    """A sensible default worker count for this machine."""
    try:
        available = len(os.sched_getaffinity(0))
    except AttributeError:  # platforms without sched_getaffinity
        available = os.cpu_count() or 1
    return max(1, available)
