"""Standalone execution of one campaign shard.

:func:`execute_shard` is the unit of work the pool distributes.  It is a
module-level function taking one picklable :class:`ShardTask` and
returning one picklable :class:`ShardResult`, so it runs identically

* in-process (the ``workers=1`` sequential fallback),
* in a forked worker, and
* in a spawned worker on platforms without ``fork``.

A shard runs on a **fresh world** built from the campaign's world seed —
the exact world the serial campaign uses — restricted to the shard's
vantages, targets and round range.  Because every RNG stream in the
measurement path is derived from stable structural keys (see
:mod:`repro.core.seeding`), the result depends only on the task, never on
the process that ran it or on what other shards are doing.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, replace
from typing import List, Optional, Tuple

from repro.core.results import MeasurementRecord, ResultStore
from repro.core.runner import Campaign, CampaignConfig
from repro.core.scheduler import MS_PER_HOUR
from repro.errors import CampaignConfigError
from repro.obs import (
    NULL_RECORDER,
    MetricsRegistry,
    Span,
    SpanCollector,
    tracing,
)
from repro.parallel.shard import Shard


@dataclass(frozen=True)
class ShardTask:
    """Everything a worker needs to run one shard, picklable.

    ``config`` is the *unsliced* campaign config; the executor slices its
    schedule to ``[round_start, round_stop)``.  ``network_seed`` (when not
    ``None``) reseeds the shard world's packet-jitter/loss stream;
    multi-shard plans use it to de-correlate shards, while the identity
    plan leaves the world untouched, reproducing the classic serial
    campaign exactly.
    """

    world_seed: int
    config: CampaignConfig
    vantage_names: Tuple[str, ...]
    target_hostnames: Tuple[str, ...]
    round_start: int
    round_stop: int
    shard_index: int
    shard_key: str
    shard_seed: int
    network_seed: Optional[int]
    fault_plan_json: Optional[str] = None
    #: Serialized :class:`repro.diff.faults.AnswerFaultPlan`; shards arm
    #: response mutators on their own targets exactly like the serial run.
    answer_fault_plan_json: Optional[str] = None
    collect_spans: bool = False
    collect_metrics: bool = False
    warm_caches: bool = True
    #: When set, the shard streams records into its own staging warehouse
    #: under this directory (``<store_staging_dir>/shard-NNNN``) instead of
    #: returning them in RAM; the merge step k-way merges the staging
    #: warehouses into the canonical store.
    store_staging_dir: Optional[str] = None
    segment_records: int = 4096

    @classmethod
    def from_shard(
        cls,
        shard: Shard,
        config: CampaignConfig,
        world_seed: int,
        fault_plan_json: Optional[str] = None,
        answer_fault_plan_json: Optional[str] = None,
        collect_spans: bool = False,
        collect_metrics: bool = False,
        warm_caches: bool = True,
        store_staging_dir: Optional[str] = None,
        segment_records: int = 4096,
    ) -> "ShardTask":
        if shard.round_stop > config.schedule.rounds:
            raise CampaignConfigError(
                f"shard {shard.key!r} rounds [{shard.round_start}, {shard.round_stop}) "
                f"exceed the schedule's {config.schedule.rounds} rounds"
            )
        return cls(
            world_seed=world_seed,
            config=config,
            vantage_names=shard.vantage_names,
            target_hostnames=shard.target_hostnames,
            round_start=shard.round_start,
            round_stop=shard.round_stop,
            shard_index=shard.index,
            shard_key=shard.key,
            shard_seed=shard.seed,
            network_seed=shard.network_seed,
            fault_plan_json=fault_plan_json,
            answer_fault_plan_json=answer_fault_plan_json,
            collect_spans=collect_spans,
            collect_metrics=collect_metrics,
            warm_caches=warm_caches,
            store_staging_dir=store_staging_dir,
            segment_records=segment_records,
        )


@dataclass
class ShardResult:
    """What one shard hands back to the merger."""

    shard_index: int
    shard_key: str
    records: List[MeasurementRecord]
    spans: List[Span]
    metrics_state: Optional[dict]
    wall_seconds: float
    #: Staging warehouse path when the shard streamed to disk; ``records``
    #: is empty in that mode.
    warehouse_path: Optional[str] = None
    record_count: int = -1

    def __post_init__(self) -> None:
        if self.record_count < 0:
            self.record_count = len(self.records)

    def describe(self) -> str:
        return (
            f"shard[{self.shard_index}] {self.shard_key}: "
            f"{self.record_count} records, {len(self.spans)} spans, "
            f"{self.wall_seconds:.2f}s"
        )


def execute_shard(task: ShardTask) -> ShardResult:
    """Run one shard on a fresh world and collect its artifacts."""
    from repro.experiments.world import build_world

    started = time.perf_counter()
    world = build_world(seed=task.world_seed, warm_caches=task.warm_caches)
    if task.network_seed is not None:
        # De-correlate this shard's packet noise from its siblings.  The
        # reseed happens after cache warming, so all shards diverge from
        # the same warmed world state.
        world.network.rng = random.Random(task.network_seed)

    vantages = [world.vantage(name) for name in task.vantage_names]
    targets = world.targets(list(task.target_hostnames))
    if len(targets) != len(task.target_hostnames):
        known = {target.hostname for target in targets}
        missing = [h for h in task.target_hostnames if h not in known]
        raise CampaignConfigError(
            f"shard {task.shard_key!r}: unknown targets {', '.join(missing)}"
        )

    if task.fault_plan_json:
        from repro.faults import FaultPlan, inject_faults

        plan = FaultPlan.from_json(task.fault_plan_json).restricted_to(
            task.target_hostnames
        )
        if len(plan):
            inject_faults(
                world.network,
                [world.deployments[hostname] for hostname in task.target_hostnames],
                plan,
            )

    if task.answer_fault_plan_json:
        from repro.diff.faults import AnswerFaultPlan

        answer_plan = AnswerFaultPlan.from_json(
            task.answer_fault_plan_json
        ).restricted_to(task.target_hostnames)
        if len(answer_plan):
            answer_plan.install(
                world.deployments[hostname] for hostname in task.target_hostnames
            )

    config = replace(
        task.config,
        schedule=task.config.schedule.slice_rounds(task.round_start, task.round_stop),
    )
    if task.warm_caches:
        # The build-time warm decays at the study-domain TTL; a campaign
        # scheduled deep into virtual time (the observatory's monthly
        # windows) re-warms just ahead of its first round so every month
        # measures the same always-cached steady state.
        refresh_at = config.schedule.start_ms - MS_PER_HOUR
        if refresh_at > world.network.loop.now:
            world.schedule_cache_refresh(refresh_at)
    recorder = SpanCollector() if task.collect_spans else NULL_RECORDER
    metrics = MetricsRegistry(enabled=task.collect_metrics)
    warehouse_path: Optional[str] = None
    if task.store_staging_dir is not None:
        # Stream records to a per-shard staging warehouse instead of
        # holding them in RAM; the merge step k-way merges the stagings.
        from pathlib import Path

        from repro.store import StoreSink, Warehouse

        staging_root = Path(task.store_staging_dir) / f"shard-{task.shard_index:04d}"
        store = StoreSink(
            Warehouse(staging_root),
            segment_records=task.segment_records,
            metrics=metrics,
        )
        warehouse_path = str(staging_root)
    else:
        store = ResultStore()
    # Install both ambiently so the protocol layers (netsim, tlssim,
    # httpsim, quicsim) report into the shard's own registry; the
    # sequential fallback restores the previous ambient pair on exit.
    with tracing(recorder=recorder, metrics=metrics):
        Campaign(
            network=world.network,
            vantages=vantages,
            targets=targets,
            config=config,
            store=store,
            recorder=recorder,
            metrics=metrics,
        ).run()
    record_count = len(store)
    if warehouse_path is not None:
        store.close()

    return ShardResult(
        shard_index=task.shard_index,
        shard_key=task.shard_key,
        records=store.records if isinstance(store, ResultStore) else [],
        spans=recorder.spans if isinstance(recorder, SpanCollector) else [],
        metrics_state=metrics.to_state() if task.collect_metrics else None,
        wall_seconds=time.perf_counter() - started,
        warehouse_path=warehouse_path,
        record_count=record_count,
    )
