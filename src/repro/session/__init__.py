"""Session-policy model: transport session management as a campaign dimension.

See DESIGN.md §14.  :class:`SessionPolicy` declares *what* clients do
between queries (cold / keep-alive / resumption / 0-RTT);
:class:`SessionBroker` owns the per-(vantage, resolver, transport) state
that implements it on the virtual clock.
"""

from repro.session.policy import (
    MS_PER_DAY,
    POLICY_PRESETS,
    SESSION_MODES,
    SESSION_STATES,
    WARM_STATES,
    SessionPolicy,
    policy_from_name,
    policy_label,
)
from repro.session.state import (
    SESSION_TRANSPORTS,
    ClampedSessionCache,
    SessionBroker,
    SessionKey,
    SessionWiring,
)

__all__ = [
    "ClampedSessionCache",
    "MS_PER_DAY",
    "POLICY_PRESETS",
    "SESSION_MODES",
    "SESSION_STATES",
    "SESSION_TRANSPORTS",
    "SessionBroker",
    "SessionKey",
    "SessionPolicy",
    "SessionWiring",
    "WARM_STATES",
    "policy_from_name",
    "policy_label",
]
