"""Session policies: how a campaign manages transport sessions over time.

A :class:`SessionPolicy` is a campaign dimension, exactly like the
transport or the retry policy: it describes what a *client population*
does between queries — tear everything down, keep connections open,
resume TLS sessions from tickets, or attempt QUIC/TLS 0-RTT early data.

The four modes map onto the related measurement literature:

``cold``
    Every query pays full connection establishment (the pre-session
    behaviour of this repo, and the pessimistic bound in the poster).
``keep_alive``
    Connections persist across queries up to an idle TTL and a
    max-streams budget (Hounsel et al.'s connection-reuse scenario).
``resumption``
    Each query opens a fresh connection but resumes TLS 1.3 / QUIC
    sessions from cached tickets, clamped to a client-side ticket
    lifetime (abbreviated handshakes, no early data).
``zero_rtt``
    Resumption plus 0-RTT early data, with a configurable probability
    that the server-side anti-replay filter rejects the early data and
    forces the 1-RTT resumed fallback (Kosek et al.'s DoQ scenario).

Policies are plain frozen dataclasses that round-trip losslessly
through JSON and a flat TOML form, so campaign specs can carry them.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Any, Dict, Mapping, Tuple, Union

from repro.errors import CampaignConfigError

#: Valid policy modes, in cold-to-hottest order.
SESSION_MODES: Tuple[str, ...] = ("cold", "keep_alive", "resumption", "zero_rtt")

#: States a single measurement can report (record ``session_state``).
SESSION_STATES: Tuple[str, ...] = ("cold", "warm", "resumed", "zero_rtt")

#: Record states that skipped full connection establishment.
WARM_STATES: Tuple[str, ...] = ("warm", "resumed", "zero_rtt")

MS_PER_DAY = 24 * 3600 * 1000.0


def _normalize_mode(mode: str) -> str:
    return str(mode).strip().lower().replace("-", "_")


@dataclass(frozen=True)
class SessionPolicy:
    """What clients do with transport sessions between queries.

    Attributes
    ----------
    mode:
        One of :data:`SESSION_MODES`.  ``cold`` disables all session
        machinery and reproduces the legacy per-query teardown exactly.
    idle_ttl_ms:
        ``keep_alive`` only — a connection idle for at least this long
        (virtual clock) is torn down before the next query; eviction is
        exact at the boundary (``idle >= ttl`` evicts).
    max_streams:
        ``keep_alive`` only — after this many queries a connection is
        retired and the next query reconnects.
    ticket_lifetime_ms:
        ``resumption``/``zero_rtt`` — client-side clamp on how long a
        cached session ticket may be used, regardless of the lifetime
        the server advertised.
    zero_rtt_reject_p:
        ``zero_rtt`` only — probability that a 0-RTT attempt is rejected
        by the server's anti-replay filter, forcing the 1-RTT resumed
        fallback.  Drawn from the measurement's own derived RNG stream
        so rejection patterns are deterministic and shard-independent.
    cert_verify_ms:
        Client-side certificate-chain validation cost charged to every
        *full* handshake while the policy is active.  Resumed (PSK)
        handshakes skip it — on a 1-RTT TLS 1.3/QUIC handshake this CPU
        cost (plus the skipped certificate flight) is exactly what
        resumption saves, so it is part of the session cost model rather
        than of the transport defaults (which stay at zero to keep
        legacy campaigns byte-identical).
    """

    mode: str = "cold"
    idle_ttl_ms: float = 30_000.0
    max_streams: int = 100
    ticket_lifetime_ms: float = MS_PER_DAY
    zero_rtt_reject_p: float = 0.0
    cert_verify_ms: float = 3.0

    def __post_init__(self) -> None:
        object.__setattr__(self, "mode", _normalize_mode(self.mode))
        if self.mode not in SESSION_MODES:
            raise CampaignConfigError(
                f"unknown session mode {self.mode!r}; expected one of "
                + ", ".join(SESSION_MODES)
            )
        if self.idle_ttl_ms <= 0:
            raise CampaignConfigError("session idle_ttl_ms must be positive")
        if self.max_streams < 1:
            raise CampaignConfigError("session max_streams must be at least 1")
        if self.ticket_lifetime_ms <= 0:
            raise CampaignConfigError("session ticket_lifetime_ms must be positive")
        if not 0.0 <= self.zero_rtt_reject_p <= 1.0:
            raise CampaignConfigError("zero_rtt_reject_p must be within [0, 1]")
        if self.cert_verify_ms < 0:
            raise CampaignConfigError("cert_verify_ms must be non-negative")

    # -- behaviour queries ------------------------------------------------

    @property
    def enabled(self) -> bool:
        """Whether any session machinery is active (``cold`` is inert)."""
        return self.mode != "cold"

    @property
    def keeps_connections(self) -> bool:
        return self.mode == "keep_alive"

    @property
    def resumes_sessions(self) -> bool:
        return self.mode in ("resumption", "zero_rtt")

    @property
    def uses_early_data(self) -> bool:
        return self.mode == "zero_rtt"

    # -- serialization ----------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "SessionPolicy":
        known = {
            "mode",
            "idle_ttl_ms",
            "max_streams",
            "ticket_lifetime_ms",
            "zero_rtt_reject_p",
            "cert_verify_ms",
        }
        unknown = sorted(set(data) - known)
        if unknown:
            raise CampaignConfigError(
                f"unknown session policy fields: {', '.join(unknown)}"
            )
        kwargs: Dict[str, Any] = dict(data)
        if "idle_ttl_ms" in kwargs:
            kwargs["idle_ttl_ms"] = float(kwargs["idle_ttl_ms"])
        if "max_streams" in kwargs:
            kwargs["max_streams"] = int(kwargs["max_streams"])
        if "ticket_lifetime_ms" in kwargs:
            kwargs["ticket_lifetime_ms"] = float(kwargs["ticket_lifetime_ms"])
        if "zero_rtt_reject_p" in kwargs:
            kwargs["zero_rtt_reject_p"] = float(kwargs["zero_rtt_reject_p"])
        if "cert_verify_ms" in kwargs:
            kwargs["cert_verify_ms"] = float(kwargs["cert_verify_ms"])
        return cls(**kwargs)

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), separators=(",", ":"), sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "SessionPolicy":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise CampaignConfigError(f"malformed session policy JSON: {exc}") from exc
        if not isinstance(data, dict):
            raise CampaignConfigError("session policy JSON must be an object")
        return cls.from_dict(data)

    def to_toml(self) -> str:
        """Flat ``key = value`` TOML; losslessly parsed by :meth:`from_toml`."""
        lines = []
        for key, value in sorted(self.to_dict().items()):
            if isinstance(value, str):
                lines.append(f'{key} = "{value}"')
            elif isinstance(value, bool):
                lines.append(f"{key} = {'true' if value else 'false'}")
            elif isinstance(value, float):
                # repr() keeps full precision so the round-trip is exact.
                lines.append(f"{key} = {value!r}")
            else:
                lines.append(f"{key} = {value}")
        return "\n".join(lines) + "\n"

    @classmethod
    def from_toml(cls, text: str) -> "SessionPolicy":
        """Parse the flat TOML subset emitted by :meth:`to_toml`.

        Uses :mod:`tomllib` when the interpreter ships it (3.11+) and a
        minimal flat parser otherwise, so no third-party dependency is
        required on older interpreters.
        """
        try:
            import tomllib  # Python 3.11+

            try:
                return cls.from_dict(tomllib.loads(text))
            except tomllib.TOMLDecodeError as exc:
                raise CampaignConfigError(
                    f"malformed session policy TOML: {exc}"
                ) from exc
        except ImportError:
            pass
        data: Dict[str, Any] = {}
        for line_no, raw in enumerate(text.splitlines(), start=1):
            line = raw.split("#", 1)[0].strip()
            if not line:
                continue
            if "=" not in line:
                raise CampaignConfigError(
                    f"malformed session policy TOML at line {line_no}: {raw!r}"
                )
            key, value = (part.strip() for part in line.split("=", 1))
            if value.startswith('"') and value.endswith('"') and len(value) >= 2:
                data[key] = value[1:-1]
            elif value in ("true", "false"):
                data[key] = value == "true"
            else:
                try:
                    data[key] = int(value)
                except ValueError:
                    try:
                        data[key] = float(value)
                    except ValueError:
                        raise CampaignConfigError(
                            f"malformed session policy TOML value at line "
                            f"{line_no}: {raw!r}"
                        ) from None
        return cls.from_dict(data)

    @classmethod
    def load(cls, path: Union[str, Path]) -> "SessionPolicy":
        """Load a policy from a ``.json`` or ``.toml`` file."""
        path = Path(path)
        text = path.read_text()
        if path.suffix.lower() == ".toml":
            return cls.from_toml(text)
        return cls.from_json(text)

    def describe(self) -> str:
        if self.mode == "cold":
            return "cold (full establishment per query)"
        if self.mode == "keep_alive":
            return (
                f"keep-alive (idle ttl {self.idle_ttl_ms:.0f} ms, "
                f"max {self.max_streams} streams)"
            )
        if self.mode == "resumption":
            return f"resumption (ticket lifetime {self.ticket_lifetime_ms:.0f} ms)"
        return (
            f"0-RTT (ticket lifetime {self.ticket_lifetime_ms:.0f} ms, "
            f"replay-reject p={self.zero_rtt_reject_p:g})"
        )


#: Named presets the CLI and experiments accept.  The preset *names*
#: use dashes (CLI-friendly); modes use underscores (identifier-friendly).
POLICY_PRESETS: Dict[str, SessionPolicy] = {
    "cold": SessionPolicy(mode="cold"),
    "keep-alive": SessionPolicy(mode="keep_alive"),
    "resumption": SessionPolicy(mode="resumption"),
    "zero-rtt": SessionPolicy(mode="zero_rtt", zero_rtt_reject_p=0.05),
}


def policy_from_name(name: str) -> SessionPolicy:
    """Resolve a preset name (``keep-alive``/``keep_alive``/...) to a policy."""
    key = _normalize_mode(name).replace("_", "-")
    if key in POLICY_PRESETS:
        return POLICY_PRESETS[key]
    raise CampaignConfigError(
        f"unknown session policy {name!r}; expected one of "
        + ", ".join(sorted(POLICY_PRESETS))
    )


def policy_label(policy: "SessionPolicy") -> str:
    """Stable display/record label for a policy (its mode name)."""
    return policy.mode


__all__ = [
    "MS_PER_DAY",
    "POLICY_PRESETS",
    "SESSION_MODES",
    "SESSION_STATES",
    "SessionPolicy",
    "WARM_STATES",
    "policy_from_name",
    "policy_label",
]
