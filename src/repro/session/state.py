"""Per-(vantage, resolver, transport) session state on the virtual clock.

The :class:`SessionBroker` is the campaign-side owner of everything a
:class:`~repro.session.policy.SessionPolicy` needs to remember between
measurements:

* ``keep_alive`` — the live probe itself (its open connection), plus an
  idle timestamp and a streams-used counter that implement the idle-TTL
  and max-streams retirement rules *deterministically on the virtual
  clock* (no wall time anywhere);
* ``resumption``/``zero_rtt`` — a per-key :class:`ClampedSessionCache`
  holding the latest session ticket, with the ticket lifetime clamped to
  the policy's client-side maximum.

A broker is created per :class:`~repro.core.runner.Campaign` instance,
which makes session state *shard-local by construction*: every shard of
a parallel plan builds a fresh world and a fresh campaign, so no ticket
or live connection can leak across shards or worker processes.  This is
the determinism argument for the scenario matrix — see DESIGN.md §14.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Callable, Dict, Optional, Tuple

from repro.session.policy import SessionPolicy
from repro.tlssim.session import SessionCache, SessionTicket

#: Broker key: (vantage name, resolver hostname, transport).
SessionKey = Tuple[str, str, str]

#: Transports that carry session state (Do53 has none).
SESSION_TRANSPORTS: Tuple[str, ...] = ("doh", "dot", "doq", "doh3")


class ClampedSessionCache(SessionCache):
    """A :class:`SessionCache` that clamps ticket lifetimes client-side.

    Servers advertise their own ticket lifetime; a policy may refuse to
    use tickets older than ``max_lifetime_ms`` regardless.  The clamp is
    applied at store time so :meth:`SessionCache.lookup`'s exact-expiry
    semantics (invalid at ``issued + lifetime``) are inherited unchanged.
    """

    def __init__(self, max_lifetime_ms: Optional[float] = None) -> None:
        super().__init__()
        self.max_lifetime_ms = max_lifetime_ms

    def store(self, ticket: SessionTicket) -> None:
        if (
            self.max_lifetime_ms is not None
            and ticket.lifetime_ms > self.max_lifetime_ms
        ):
            ticket = dataclasses.replace(ticket, lifetime_ms=self.max_lifetime_ms)
        super().store(ticket)


@dataclasses.dataclass
class SessionWiring:
    """Probe-construction knobs one policy mode implies for one key."""

    reuse_connections: bool = False
    session_cache: Optional[SessionCache] = None
    enable_early_data: bool = False
    early_data_reject_p: float = 0.0
    cert_verify_ms: float = 0.0


class _Entry:
    """Mutable per-key state (keep-alive probes, ticket caches, counters)."""

    __slots__ = ("probe", "cache", "last_used_ms", "streams_used", "evictions")

    def __init__(self) -> None:
        self.probe: Optional[Any] = None
        self.cache: Optional[ClampedSessionCache] = None
        self.last_used_ms: float = 0.0
        self.streams_used: int = 0
        self.evictions: int = 0


class SessionBroker:
    """Owns session state for one campaign run.

    The campaign calls, per measurement and per transport:

    1. :meth:`checkout` (keep-alive only) to reuse or build the probe;
    2. :meth:`before_query` just before each query, which applies the
       idle-TTL / max-streams retirement rules on the virtual clock;
    3. :meth:`after_query` once the query completes;
    4. :meth:`release` when the measurement's domain list is done
       (keep-alive keeps the probe open; other modes close it).
    """

    def __init__(self, policy: SessionPolicy, loop: Any) -> None:
        self.policy = policy
        self._loop = loop
        self._entries: Dict[SessionKey, _Entry] = {}

    # -- wiring -----------------------------------------------------------

    @property
    def keeps_probes(self) -> bool:
        return self.policy.keeps_connections

    def wiring(self, key: SessionKey) -> SessionWiring:
        """Probe-config knobs for this key under the broker's policy."""
        transport = key[2]
        if transport not in SESSION_TRANSPORTS:
            return SessionWiring()
        policy = self.policy
        if policy.keeps_connections:
            return SessionWiring(
                reuse_connections=True,
                cert_verify_ms=policy.cert_verify_ms,
            )
        if policy.resumes_sessions:
            return SessionWiring(
                session_cache=self.cache_for(key),
                enable_early_data=policy.uses_early_data,
                early_data_reject_p=(
                    policy.zero_rtt_reject_p if policy.uses_early_data else 0.0
                ),
                cert_verify_ms=policy.cert_verify_ms,
            )
        return SessionWiring()

    def cache_for(self, key: SessionKey) -> ClampedSessionCache:
        entry = self._entries.setdefault(key, _Entry())
        if entry.cache is None:
            entry.cache = ClampedSessionCache(
                max_lifetime_ms=self.policy.ticket_lifetime_ms
            )
        return entry.cache

    # -- keep-alive probe lifecycle ---------------------------------------

    def checkout(
        self,
        key: SessionKey,
        rng: Any,
        factory: Callable[[], Any],
    ) -> Any:
        """The persistent probe for ``key``, rebinding its RNG per measurement."""
        entry = self._entries.setdefault(key, _Entry())
        if entry.probe is None:
            entry.probe = factory()
            entry.last_used_ms = self._loop.now
        else:
            # Each measurement owns a freshly derived RNG stream; the
            # persistent probe must draw from it, not from the stream of
            # the measurement that created the connection.
            entry.probe.rng = rng
        return entry.probe

    def before_query(self, key: SessionKey, probe: Any) -> None:
        """Apply idle-TTL and max-streams retirement before a query."""
        entry = self._entries.get(key)
        if entry is None or not self.policy.keeps_connections:
            return
        now = self._loop.now
        idle = now - entry.last_used_ms
        if entry.streams_used > 0 and (
            idle >= self.policy.idle_ttl_ms
            or entry.streams_used >= self.policy.max_streams
        ):
            probe.close()
            entry.streams_used = 0
            entry.evictions += 1
        entry.last_used_ms = now

    def after_query(self, key: SessionKey) -> None:
        entry = self._entries.get(key)
        if entry is None:
            return
        entry.streams_used += 1
        entry.last_used_ms = self._loop.now

    def release(self, key: SessionKey, probe: Any) -> None:
        """End of one measurement: keep-alive parks the probe, others close."""
        if self.policy.keeps_connections:
            entry = self._entries.setdefault(key, _Entry())
            entry.probe = probe
            entry.last_used_ms = self._loop.now
        else:
            probe.close()

    def close_all(self) -> None:
        for entry in self._entries.values():
            if entry.probe is not None:
                entry.probe.close()
                entry.probe = None

    # -- introspection ----------------------------------------------------

    def snapshot(self) -> Dict[str, Dict[str, Any]]:
        """Per-key counters for tests and debugging (stable key order)."""
        out: Dict[str, Dict[str, Any]] = {}
        for key in sorted(self._entries):
            entry = self._entries[key]
            cache = entry.cache
            out["/".join(key)] = {
                "live_probe": entry.probe is not None,
                "streams_used": entry.streams_used,
                "evictions": entry.evictions,
                "tickets": len(cache) if cache is not None else 0,
                "cache_hits": cache.hits if cache is not None else 0,
                "cache_misses": cache.misses if cache is not None else 0,
            }
        return out

    def __len__(self) -> int:
        return len(self._entries)


__all__ = [
    "ClampedSessionCache",
    "SESSION_TRANSPORTS",
    "SessionBroker",
    "SessionKey",
    "SessionWiring",
]
