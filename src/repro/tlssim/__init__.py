"""Simulated TLS.

This package models the parts of TLS that determine encrypted-DNS timing:

* handshake **round trips** — TLS 1.3 costs one RTT before application data,
  TLS 1.2 costs two;
* **flight sizes** — certificate chains make the server's first flight span
  multiple TCP segments;
* **session resumption** — resumed handshakes carry no certificate, and TLS
  1.3 early data (0-RTT) lets the first request ride along with the
  ClientHello;
* **failure modes** — version mismatch and server aborts surface as alerts.

It does not implement cryptography: payloads are structured plaintext of
realistic sizes.  The record layer (:mod:`repro.tlssim.record`) frames
messages exactly like TLS (5-byte headers), so byte counts and segmentation
behave like the real protocol.
"""

from repro.tlssim.record import RecordStream, wrap_record
from repro.tlssim.session import SessionCache, SessionTicket
from repro.tlssim.handshake import (
    TlsClientConfig,
    TlsClientConnection,
    TlsServerConfig,
    TlsServerConnection,
)

__all__ = [
    "RecordStream",
    "SessionCache",
    "SessionTicket",
    "TlsClientConfig",
    "TlsClientConnection",
    "TlsServerConfig",
    "TlsServerConnection",
    "wrap_record",
]
