"""TLS record framing.

Records use the real TLS layout — ``type(1) | version(2) | length(2) | body``
— so that segmentation across the simulated TCP stream behaves like the
real protocol (a 3 kB certificate flight spans multiple records/segments).
"""

from __future__ import annotations

import struct
from typing import Iterator, List, Tuple

from repro.errors import TlsError

CONTENT_HANDSHAKE = 22
CONTENT_APPLICATION_DATA = 23
CONTENT_ALERT = 21

#: Wire version field (TLS 1.2 value is used on the wire even by TLS 1.3).
WIRE_VERSION = 0x0303

#: Maximum record body size (RFC 8446 §5.1).
MAX_RECORD_BODY = 16384

_HEADER = struct.Struct("!BHH")


def wrap_record(content_type: int, body: bytes) -> bytes:
    """Frame ``body`` into one or more TLS records."""
    if not body:
        return _HEADER.pack(content_type, WIRE_VERSION, 0)
    out = bytearray()
    for offset in range(0, len(body), MAX_RECORD_BODY):
        chunk = body[offset : offset + MAX_RECORD_BODY]
        out += _HEADER.pack(content_type, WIRE_VERSION, len(chunk))
        out += chunk
    return bytes(out)


class RecordStream:
    """Incremental record parser over a TCP byte stream.

    Feed raw bytes in; iterate complete ``(content_type, body)`` records out.
    """

    def __init__(self) -> None:
        self._buffer = bytearray()

    def feed(self, data: bytes) -> List[Tuple[int, bytes]]:
        """Add bytes and return all newly completed records."""
        self._buffer += data
        records = []
        while True:
            if len(self._buffer) < _HEADER.size:
                break
            content_type, version, length = _HEADER.unpack_from(self._buffer, 0)
            if version != WIRE_VERSION:
                raise TlsError(f"unexpected record version 0x{version:04x}")
            if length > MAX_RECORD_BODY:
                raise TlsError(f"record body {length} exceeds maximum")
            if len(self._buffer) < _HEADER.size + length:
                break
            body = bytes(self._buffer[_HEADER.size : _HEADER.size + length])
            del self._buffer[: _HEADER.size + length]
            records.append((content_type, body))
        return records

    @property
    def buffered(self) -> int:
        return len(self._buffer)

    def __iter__(self) -> Iterator[Tuple[int, bytes]]:  # pragma: no cover
        raise TlsError("RecordStream is fed incrementally; use feed()")
