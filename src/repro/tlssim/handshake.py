"""TLS handshake state machines (client and server) over simulated TCP.

Handshake messages use the real framing — ``msg_type(1) | length(3) | body``
inside handshake records — with JSON bodies padded to realistic sizes, so
flight sizes and segmentation match the protocols being modelled:

========================  =========================  =====================
Handshake                 Client flights             RTTs before app data
========================  =========================  =====================
TLS 1.3 full              CH | Fin (+app)            1
TLS 1.3 resumed (PSK)     CH | Fin (+app)            1 (no cert flight)
TLS 1.3 0-RTT             CH+app                     0
TLS 1.2 full              CH | CKE+CCS+Fin           2
TLS 1.2 resumed           CH | CCS+Fin               1
========================  =========================  =====================

Cryptographic verification is out of scope; timing, flight sizes, version
and ALPN negotiation, resumption, and failure alerts are in scope.
"""

from __future__ import annotations

import json
import struct
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.errors import TlsHandshakeError
from repro.netsim.sockets import SimTcpConnection
from repro.obs import get_metrics
from repro.tlssim.record import (
    CONTENT_ALERT,
    CONTENT_APPLICATION_DATA,
    CONTENT_HANDSHAKE,
    RecordStream,
    wrap_record,
)
from repro.tlssim.session import SessionCache, SessionTicket

# Handshake message types (RFC 8446 / 5246 values).
CLIENT_HELLO = 1
SERVER_HELLO = 2
NEW_SESSION_TICKET = 4
ENCRYPTED_EXTENSIONS = 8
CERTIFICATE = 11
SERVER_HELLO_DONE = 14
CLIENT_KEY_EXCHANGE = 16
FINISHED = 20
CHANGE_CIPHER_SPEC = 254  # modelled as a handshake message for simplicity

# Typical message sizes (bytes) used for padding.
SIZE_CLIENT_HELLO = 280
SIZE_SERVER_HELLO = 120
SIZE_ENCRYPTED_EXT = 40
SIZE_FINISHED = 52
SIZE_KEY_EXCHANGE = 140
SIZE_TICKET = 208
SIZE_CCS = 6

_HS_HEADER = struct.Struct("!B3s")


def _encode_handshake(msg_type: int, fields: Dict, min_size: int) -> bytes:
    body = json.dumps(fields, separators=(",", ":")).encode("ascii")
    if len(body) < min_size:
        body += b" " * (min_size - len(body))
    return _HS_HEADER.pack(msg_type, len(body).to_bytes(3, "big")) + body


def _decode_handshakes(body: bytes) -> List[Tuple[int, Dict]]:
    """Parse concatenated handshake messages from one record body."""
    messages = []
    cursor = 0
    while cursor < len(body):
        if cursor + 4 > len(body):
            raise TlsHandshakeError("truncated handshake header")
        msg_type = body[cursor]
        length = int.from_bytes(body[cursor + 1 : cursor + 4], "big")
        cursor += 4
        if cursor + length > len(body):
            raise TlsHandshakeError("truncated handshake body")
        payload = body[cursor : cursor + length].rstrip(b" ")
        cursor += length
        messages.append((msg_type, json.loads(payload) if payload else {}))
    return messages


@dataclass
class TlsClientConfig:
    """Client-side handshake preferences.

    ``early_data_reject_p`` models the server-side anti-replay filter for
    0-RTT: with this probability a 0-RTT attempt is marked as a replay in
    the ClientHello and the server rejects the early data, forcing the
    standard 1-RTT resumed fallback.  The draw comes from
    ``early_data_rng`` — callers pass the measurement's own derived RNG
    so rejection patterns are deterministic and independent of process
    or shard boundaries (server-side ticket ids are process-global and
    must never influence behaviour).
    """

    versions: Sequence[str] = ("1.3", "1.2")
    alpn: Sequence[str] = ("h2", "http/1.1")
    session_cache: Optional[SessionCache] = None
    enable_early_data: bool = True
    crypto_delay_ms: float = 0.3
    #: Client-side certificate-chain validation cost, paid once per *full*
    #: handshake; resumed (PSK) handshakes skip it — the establishment
    #: saving that session resumption buys on a 1-RTT handshake.
    cert_verify_ms: float = 0.0
    early_data_reject_p: float = 0.0
    early_data_rng: Optional[object] = None


@dataclass
class TlsServerConfig:
    """Server-side handshake policy."""

    versions: Sequence[str] = ("1.3", "1.2")
    alpn_preference: Sequence[str] = ("h2", "http/1.1")
    cert_chain_bytes: int = 2800
    crypto_delay_ms: float = 0.5
    issue_tickets: bool = True
    allow_early_data: bool = True
    ticket_lifetime_ms: float = 7 * 24 * 3600 * 1000.0


class _TlsEndpoint:
    """Shared plumbing: record stream parsing and application data callbacks."""

    def __init__(self, tcp: SimTcpConnection) -> None:
        self.tcp = tcp
        self.stream = RecordStream()
        self.negotiated_version: Optional[str] = None
        self.negotiated_alpn: Optional[str] = None
        self.established = False
        self.on_application_data: Optional[Callable[[bytes], None]] = None
        self.on_error: Optional[Callable[[Exception], None]] = None
        self.on_close: Optional[Callable[[], None]] = None
        self.handshake_bytes = 0
        tcp.on_data = self._on_tcp_data
        tcp.on_close = self._on_tcp_close
        tcp.on_error = self._on_tcp_error

    @property
    def loop(self):
        assert self.tcp.host.network is not None
        return self.tcp.host.network.loop

    def send_application(self, data: bytes) -> None:
        raise NotImplementedError

    def _send_record(self, content_type: int, body: bytes) -> None:
        if self.tcp.state != self.tcp.ESTABLISHED:
            # The connection went away under a scheduled protocol action
            # (e.g. the client closed right after a 0-RTT response while a
            # Finished was still queued behind a crypto delay).  Dropping is
            # what a real stack's teardown does to pending writes.
            return
        if content_type == CONTENT_HANDSHAKE:
            self.handshake_bytes += len(body)
        self.tcp.send(wrap_record(content_type, body))

    def _on_tcp_data(self, data: bytes) -> None:
        try:
            records = self.stream.feed(data)
        except Exception as exc:  # malformed record layer
            self._fail(TlsHandshakeError(str(exc)))
            return
        for content_type, body in records:
            if content_type == CONTENT_ALERT:
                self._fail(TlsHandshakeError(f"fatal alert: {body.decode('ascii', 'replace')}"))
                return
            if content_type == CONTENT_APPLICATION_DATA:
                self._handle_application(body)
            elif content_type == CONTENT_HANDSHAKE:
                try:
                    for msg_type, fields in _decode_handshakes(body):
                        self.handshake_bytes += len(body)
                        self._handle_handshake(msg_type, fields)
                except TlsHandshakeError as exc:
                    self._fail(exc)
                    return

    def _handle_application(self, body: bytes) -> None:
        if self.on_application_data is not None:
            self.on_application_data(body)

    def _handle_handshake(self, msg_type: int, fields: Dict) -> None:
        raise NotImplementedError

    def _send_alert(self, reason: str) -> None:
        try:
            self._send_record(CONTENT_ALERT, reason.encode("ascii"))
        except Exception:
            pass

    def _fail(self, exc: Exception) -> None:
        metrics = get_metrics()
        if metrics.enabled:
            metrics.inc("tls.failures", reason=type(exc).__name__)
        callback = self.on_error
        self.on_error = None
        self.tcp.close()
        if callback is not None:
            callback(exc)

    def _on_tcp_close(self) -> None:
        if self.on_close is not None:
            self.on_close()

    def _on_tcp_error(self, exc: Exception) -> None:
        callback = self.on_error
        self.on_error = None
        if callback is not None:
            callback(exc)

    def close(self) -> None:
        self.tcp.close()


class TlsClientConnection(_TlsEndpoint):
    """Client side of a simulated TLS connection.

    Create over an **established** TCP connection; ``on_established(self)``
    fires when application data may flow (for 0-RTT that is immediate).
    """

    def __init__(
        self,
        tcp: SimTcpConnection,
        server_name: str,
        config: Optional[TlsClientConfig] = None,
        on_established: Optional[Callable[["TlsClientConnection"], None]] = None,
        on_error: Optional[Callable[[Exception], None]] = None,
    ) -> None:
        super().__init__(tcp)
        self.server_name = server_name
        self.config = config or TlsClientConfig()
        self.on_error = on_error
        self._on_established = on_established
        self._app_queue: List[bytes] = []
        self._early_sent: List[bytes] = []
        self._can_send_app = False
        self.used_early_data = False
        self.resumed = False
        self.handshake_started_at = self.loop.now
        self.handshake_completed_at: Optional[float] = None
        self._start()

    def _start(self) -> None:
        ticket: Optional[SessionTicket] = None
        cache = self.config.session_cache
        if cache is not None:
            ticket = cache.lookup(self.server_name, self.loop.now)
        hello = {
            "versions": list(self.config.versions),
            "sni": self.server_name,
            "alpn": list(self.config.alpn),
        }
        if ticket is not None:
            hello["ticket"] = ticket.ticket_id
            hello["ticket_version"] = ticket.version
            if (
                self.config.enable_early_data
                and ticket.version == "1.3"
                and ticket.allows_early_data
            ):
                hello["early_data"] = True
                self.used_early_data = True
                if (
                    self.config.early_data_reject_p > 0.0
                    and self.config.early_data_rng is not None
                    and self.config.early_data_rng.random()
                    < self.config.early_data_reject_p
                ):
                    # Anti-replay filter verdict, drawn client-side from the
                    # measurement RNG (see TlsClientConfig docstring).
                    hello["early_replay"] = True

        def send_hello() -> None:
            self._send_record(
                CONTENT_HANDSHAKE, _encode_handshake(CLIENT_HELLO, hello, SIZE_CLIENT_HELLO)
            )
            if self.used_early_data:
                # 0-RTT: application data may ride immediately behind the CH.
                self._can_send_app = True
                self._flush_app_queue()
                self._mark_established()

        self.loop.call_later(self.config.crypto_delay_ms, send_hello)

    def send_application(self, data: bytes) -> None:
        """Send application bytes, queueing until the handshake permits."""
        if self._can_send_app:
            if self.used_early_data and self.negotiated_version is None:
                # Still in the 0-RTT window: remember for possible replay.
                self._early_sent.append(data)
            self._send_record(CONTENT_APPLICATION_DATA, data)
        else:
            self._app_queue.append(data)

    def _flush_app_queue(self) -> None:
        queue, self._app_queue = self._app_queue, []
        for data in queue:
            # Route through send_application so 0-RTT data is recorded for
            # replay in case the server rejects early data.
            self.send_application(data)

    def _mark_established(self) -> None:
        if self.established:
            return
        self.established = True
        self.handshake_completed_at = self.loop.now
        metrics = get_metrics()
        if metrics.enabled:
            metrics.inc(
                "tls.handshakes",
                version=self.negotiated_version or "0rtt-pending",
                resumed=self.resumed,
            )
            metrics.inc("tls.handshake_bytes", self.handshake_bytes)
            duration = self.handshake_duration_ms
            if duration is not None:
                metrics.observe("tls.handshake_ms", duration)
        callback = self._on_established
        self._on_established = None
        if callback is not None:
            callback(self)

    def _handle_handshake(self, msg_type: int, fields: Dict) -> None:
        if msg_type == SERVER_HELLO:
            self.negotiated_version = fields.get("version")
            self.negotiated_alpn = fields.get("alpn")
            self.resumed = bool(fields.get("resumed"))
            if self.used_early_data and not fields.get("early_data_accepted", False):
                # Server rejected 0-RTT: everything sent early was discarded
                # by the server, so replay it once the handshake completes.
                self.used_early_data = False
                self._can_send_app = False
                self.established = False
                self._app_queue = self._early_sent + self._app_queue
            self._early_sent = []
            if self.negotiated_version == "1.3":
                # Server flight continues with EE/Cert/Finished in this record
                # sequence; client may talk after sending its Finished.
                pass
        elif msg_type == FINISHED:
            def complete(send_finished: bool, send_ccs: bool) -> None:
                if send_finished:
                    flight = b""
                    if send_ccs:
                        flight += _encode_handshake(CHANGE_CIPHER_SPEC, {}, SIZE_CCS)
                    flight += _encode_handshake(FINISHED, {}, SIZE_FINISHED)
                    self._send_record(CONTENT_HANDSHAKE, flight)
                self._can_send_app = True
                self._flush_app_queue()
                self._mark_established()

            if self.negotiated_version == "1.3":
                # Server Finished ends its first flight; answer with ours.
                # Full handshakes validate the certificate chain first.
                delay = self.config.crypto_delay_ms
                if not self.resumed:
                    delay += self.config.cert_verify_ms
                self.loop.call_later(delay, complete, True, False)
            elif self.resumed:
                # TLS 1.2 abbreviated handshake: answer CCS + Finished.
                self.loop.call_later(self.config.crypto_delay_ms, complete, True, True)
            elif fields.get("final"):
                # TLS 1.2 full handshake: our Finished already went out in the
                # second flight; the server's final Finished unlocks app data.
                complete(False, False)
        elif msg_type == SERVER_HELLO_DONE:
            # TLS 1.2 full handshake: send CKE + CCS + Finished, wait for
            # the server's Finished (which carries final=True).
            def second_flight() -> None:
                flight = (
                    _encode_handshake(CLIENT_KEY_EXCHANGE, {}, SIZE_KEY_EXCHANGE)
                    + _encode_handshake(CHANGE_CIPHER_SPEC, {}, SIZE_CCS)
                    + _encode_handshake(FINISHED, {}, SIZE_FINISHED)
                )
                self._send_record(CONTENT_HANDSHAKE, flight)

            self.loop.call_later(
                self.config.crypto_delay_ms + self.config.cert_verify_ms,
                second_flight,
            )
        elif msg_type == CHANGE_CIPHER_SPEC:
            pass  # timing carried by the Finished that follows
        elif msg_type == NEW_SESSION_TICKET:
            cache = self.config.session_cache
            if cache is not None:
                cache.store(
                    SessionTicket(
                        ticket_id=fields["ticket"],
                        server_name=self.server_name,
                        version=fields.get("version", "1.3"),
                        allows_early_data=bool(fields.get("early_data")),
                        issued_at_ms=self.loop.now,
                        lifetime_ms=float(fields.get("lifetime_ms", 7 * 24 * 3600 * 1000.0)),
                    )
                )
        elif msg_type == CERTIFICATE:
            pass  # size effect only

    @property
    def handshake_duration_ms(self) -> Optional[float]:
        if self.handshake_completed_at is None:
            return None
        return self.handshake_completed_at - self.handshake_started_at


class TlsServerConnection(_TlsEndpoint):
    """Server side of a simulated TLS connection (wraps an accepted TCP conn)."""

    def __init__(
        self,
        tcp: SimTcpConnection,
        config: Optional[TlsServerConfig] = None,
        on_established: Optional[Callable[["TlsServerConnection"], None]] = None,
        on_error: Optional[Callable[[Exception], None]] = None,
        now_provider: Optional[Callable[[], float]] = None,
    ) -> None:
        super().__init__(tcp)
        self.config = config or TlsServerConfig()
        self.on_error = on_error
        self._on_established = on_established
        self.client_sni: Optional[str] = None
        self.resumed = False
        self.early_data_accepted = False
        self._tickets_issued: Dict[int, bool] = {}
        self._early_buffer: List[bytes] = []

    def send_application(self, data: bytes) -> None:
        self._send_record(CONTENT_APPLICATION_DATA, data)

    def _handle_application(self, body: bytes) -> None:
        if not self.established and not self.early_data_accepted:
            if self.negotiated_version is None:
                # Data raced ahead of the ClientHello decision: buffer it and
                # deliver (or discard) once the hello is processed.
                self._early_buffer.append(body)
            # else: rejected early data — discard, the client will replay.
            return
        super()._handle_application(body)

    def _handle_handshake(self, msg_type: int, fields: Dict) -> None:
        if msg_type == CLIENT_HELLO:
            self._handle_client_hello(fields)
        elif msg_type == FINISHED:
            self._client_finished()
        elif msg_type in (CLIENT_KEY_EXCHANGE, CHANGE_CIPHER_SPEC):
            pass

    def _handle_client_hello(self, hello: Dict) -> None:
        if self.tcp.host.impairments.tls_failure:
            # Fault window: the server cannot complete handshakes (expired
            # certificate, broken key material); abort with a fatal alert.
            self._send_alert("internal_error")
            self.tcp.close()
            return
        self.client_sni = hello.get("sni")
        client_versions = hello.get("versions", [])
        version = next((v for v in self.config.versions if v in client_versions), None)
        if version is None:
            self._send_alert("protocol_version")
            self.tcp.close()
            return
        client_alpn = hello.get("alpn", [])
        alpn = next((a for a in self.config.alpn_preference if a in client_alpn), None)
        if client_alpn and alpn is None:
            self._send_alert("no_application_protocol")
            self.tcp.close()
            return
        self.negotiated_version = version
        self.negotiated_alpn = alpn
        ticket_id = hello.get("ticket")
        ticket_known = ticket_id is not None and ticket_id in self._ticket_registry()
        self.resumed = ticket_known and hello.get("ticket_version") == version
        wants_early = bool(hello.get("early_data")) and not bool(
            hello.get("early_replay")
        )
        self.early_data_accepted = (
            wants_early and self.resumed and version == "1.3" and self.config.allow_early_data
        )
        buffered, self._early_buffer = self._early_buffer, []
        if self.early_data_accepted:
            for body in buffered:
                super()._handle_application(body)
        # else: buffered 0-RTT data is discarded; the client replays it.

        def send_flight() -> None:
            server_hello = {
                "version": version,
                "alpn": alpn,
                "resumed": self.resumed,
                "early_data_accepted": self.early_data_accepted,
            }
            flight = _encode_handshake(SERVER_HELLO, server_hello, SIZE_SERVER_HELLO)
            if version == "1.3":
                flight += _encode_handshake(ENCRYPTED_EXTENSIONS, {}, SIZE_ENCRYPTED_EXT)
                if not self.resumed:
                    flight += _encode_handshake(
                        CERTIFICATE, {}, self.config.cert_chain_bytes
                    )
                flight += _encode_handshake(FINISHED, {}, SIZE_FINISHED)
                self._send_record(CONTENT_HANDSHAKE, flight)
                if self.early_data_accepted:
                    # Early data is usable now; the server may answer without
                    # waiting for the client Finished.
                    self._mark_established()
            else:  # TLS 1.2
                if self.resumed:
                    flight += _encode_handshake(CHANGE_CIPHER_SPEC, {}, SIZE_CCS)
                    flight += _encode_handshake(
                        FINISHED, {"final": True}, SIZE_FINISHED
                    )
                else:
                    flight += _encode_handshake(
                        CERTIFICATE, {}, self.config.cert_chain_bytes
                    )
                    flight += _encode_handshake(SERVER_HELLO_DONE, {}, 8)
                self._send_record(CONTENT_HANDSHAKE, flight)

        self.loop.call_later(self.config.crypto_delay_ms, send_flight)

    def _client_finished(self) -> None:
        if self.negotiated_version == "1.2" and not self.resumed:
            # Answer with CCS + Finished(final), completing the 2-RTT handshake.
            def final_flight() -> None:
                flight = _encode_handshake(CHANGE_CIPHER_SPEC, {}, SIZE_CCS)
                flight += _encode_handshake(FINISHED, {"final": True}, SIZE_FINISHED)
                self._send_record(CONTENT_HANDSHAKE, flight)
                self._mark_established()
                self._maybe_issue_ticket()

            self.loop.call_later(self.config.crypto_delay_ms, final_flight)
            return
        self._mark_established()
        self._maybe_issue_ticket()

    def _mark_established(self) -> None:
        if self.established:
            return
        self.established = True
        callback = self._on_established
        self._on_established = None
        if callback is not None:
            callback(self)

    def _maybe_issue_ticket(self) -> None:
        if not self.config.issue_tickets or self.negotiated_version is None:
            return
        ticket = SessionTicket.issue(
            server_name=self.client_sni or "",
            version=self.negotiated_version,
            allows_early_data=self.config.allow_early_data
            and self.negotiated_version == "1.3",
            now_ms=self.loop.now,
            lifetime_ms=self.config.ticket_lifetime_ms,
        )
        self._ticket_registry()[ticket.ticket_id] = True
        self._send_record(
            CONTENT_HANDSHAKE,
            _encode_handshake(
                NEW_SESSION_TICKET,
                {
                    "ticket": ticket.ticket_id,
                    "version": ticket.version,
                    "early_data": ticket.allows_early_data,
                    "lifetime_ms": ticket.lifetime_ms,
                },
                SIZE_TICKET,
            ),
        )

    # The ticket registry is shared per server host so that a new connection
    # (new TlsServerConnection instance) can validate tickets issued by a
    # previous one.  It lives on the host object.
    def _ticket_registry(self) -> Dict[int, bool]:
        host = self.tcp.host
        registry = getattr(host, "_tls_ticket_registry", None)
        if registry is None:
            registry = {}
            host._tls_ticket_registry = registry  # type: ignore[attr-defined]
        return registry
