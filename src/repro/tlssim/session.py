"""TLS session tickets and the client-side session cache.

Resumption matters for the measurement platform's connection-reuse ablation:
a resumed TLS 1.3 handshake omits the certificate chain (smaller flights)
and may carry 0-RTT early data, removing one round trip entirely.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, Optional

_ticket_ids = itertools.count(1)


@dataclass(frozen=True)
class SessionTicket:
    """An opaque resumption ticket issued by a server.

    Attributes
    ----------
    ticket_id:
        Unique identifier (stands in for the encrypted ticket blob).
    server_name:
        SNI the ticket was issued for; tickets are not portable.
    version:
        Negotiated TLS version at issuance ("1.3" or "1.2").
    allows_early_data:
        Whether the server permits 0-RTT data under this ticket.
    issued_at_ms:
        Virtual time of issuance.
    lifetime_ms:
        Validity window; expired tickets are ignored by the cache.
    """

    ticket_id: int
    server_name: str
    version: str
    allows_early_data: bool
    issued_at_ms: float
    lifetime_ms: float = 7 * 24 * 3600 * 1000.0

    def valid_at(self, now_ms: float) -> bool:
        return now_ms < self.issued_at_ms + self.lifetime_ms

    @classmethod
    def issue(
        cls,
        server_name: str,
        version: str,
        allows_early_data: bool,
        now_ms: float,
        lifetime_ms: float = 7 * 24 * 3600 * 1000.0,
    ) -> "SessionTicket":
        return cls(
            ticket_id=next(_ticket_ids),
            server_name=server_name,
            version=version,
            allows_early_data=allows_early_data,
            issued_at_ms=now_ms,
            lifetime_ms=lifetime_ms,
        )


class SessionCache:
    """Client-side ticket store, one ticket per server name (most recent wins)."""

    def __init__(self) -> None:
        self._tickets: Dict[str, SessionTicket] = {}
        self.hits = 0
        self.misses = 0

    def store(self, ticket: SessionTicket) -> None:
        self._tickets[ticket.server_name] = ticket

    def lookup(self, server_name: str, now_ms: float) -> Optional[SessionTicket]:
        """A valid ticket for ``server_name``, or None."""
        ticket = self._tickets.get(server_name)
        if ticket is not None and ticket.valid_at(now_ms):
            self.hits += 1
            return ticket
        if ticket is not None:
            del self._tickets[server_name]
        self.misses += 1
        return None

    def invalidate(self, server_name: str) -> None:
        self._tickets.pop(server_name, None)

    def clear(self) -> None:
        self._tickets.clear()

    def __len__(self) -> int:
        return len(self._tickets)
