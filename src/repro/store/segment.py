"""Segment files: the append-only on-disk unit of the results warehouse.

A segment is a JSONL file of :class:`~repro.core.results.MeasurementRecord`
lines plus a **sidecar index** (``<name>.idx.json``) written when the
segment is sealed.  The sidecar carries what a reader needs to decide —
without opening the segment — whether any record inside can match a
``(vantage, resolver, transport)`` scan: the record count, the round
range, the campaign names, and per-group byte offsets.  Matching scans
then seek straight to the group's records instead of parsing every line.

Segment bytes are a pure function of the record sequence: records are
serialized with :meth:`MeasurementRecord.to_json` (compact separators,
sorted keys) and the sidecar is dumped with sorted keys, so two writers
fed the same records produce identical files — the property the
serial-vs-sharded warehouse equivalence rests on.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Tuple, Union

from repro.core.results import MeasurementRecord
from repro.errors import ResultsFormatError, StoreError

SEGMENT_SUFFIX = ".jsonl"
INDEX_SUFFIX = ".idx.json"

#: The sidecar grouping key: one entry per distinct combination.
GroupKey = Tuple[str, str, str]  # (vantage, resolver, transport)


def segment_name(sequence: int) -> str:
    """Deterministic segment file name for the ``sequence``-th segment."""
    return f"seg-{sequence:06d}"


@dataclass
class SegmentIndex:
    """Sidecar metadata of one sealed segment."""

    name: str  # segment stem, e.g. "seg-000001"
    records: int
    byte_size: int
    round_min: Optional[int]
    round_max: Optional[int]
    campaigns: Tuple[str, ...]
    #: (vantage, resolver, transport) -> byte offsets of that group's
    #: records inside the segment file, in file order.
    groups: Dict[GroupKey, Tuple[int, ...]] = field(default_factory=dict)

    @property
    def segment_filename(self) -> str:
        return self.name + SEGMENT_SUFFIX

    @property
    def index_filename(self) -> str:
        return self.name + INDEX_SUFFIX

    def may_match(
        self,
        vantage: Optional[str] = None,
        resolver: Optional[str] = None,
        transport: Optional[str] = None,
    ) -> bool:
        """Whether any group in this segment satisfies the criteria."""
        if vantage is None and resolver is None and transport is None:
            return self.records > 0
        return any(
            (vantage is None or key[0] == vantage)
            and (resolver is None or key[1] == resolver)
            and (transport is None or key[2] == transport)
            for key in self.groups
        )

    def matching_offsets(
        self,
        vantage: Optional[str] = None,
        resolver: Optional[str] = None,
        transport: Optional[str] = None,
    ) -> List[int]:
        """Byte offsets of all records matching the criteria, in file order."""
        offsets: List[int] = []
        for key, group_offsets in self.groups.items():
            if vantage is not None and key[0] != vantage:
                continue
            if resolver is not None and key[1] != resolver:
                continue
            if transport is not None and key[2] != transport:
                continue
            offsets.extend(group_offsets)
        offsets.sort()
        return offsets

    def to_dict(self) -> dict:
        return {
            "version": 1,
            "segment": self.segment_filename,
            "records": self.records,
            "bytes": self.byte_size,
            "round_min": self.round_min,
            "round_max": self.round_max,
            "campaigns": list(self.campaigns),
            "groups": [
                {
                    "vantage": key[0],
                    "resolver": key[1],
                    "transport": key[2],
                    "count": len(self.groups[key]),
                    "offsets": list(self.groups[key]),
                }
                for key in sorted(self.groups)
            ],
        }

    @classmethod
    def from_dict(cls, data: dict, name: Optional[str] = None) -> "SegmentIndex":
        try:
            groups = {
                (entry["vantage"], entry["resolver"], entry["transport"]): tuple(
                    entry["offsets"]
                )
                for entry in data["groups"]
            }
            return cls(
                name=name if name is not None else Path(data["segment"]).stem,
                records=data["records"],
                byte_size=data["bytes"],
                round_min=data["round_min"],
                round_max=data["round_max"],
                campaigns=tuple(data["campaigns"]),
                groups=groups,
            )
        except (KeyError, TypeError) as exc:
            raise ResultsFormatError(f"malformed segment index: {exc}") from exc

    def save(self, directory: Union[str, Path]) -> Path:
        path = Path(directory) / self.index_filename
        path.write_text(
            json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        return path

    @classmethod
    def load(cls, path: Union[str, Path]) -> "SegmentIndex":
        path = Path(path)
        try:
            data = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError) as exc:
            raise ResultsFormatError(f"unreadable segment index {path}: {exc}") from exc
        name = path.name
        for suffix in (INDEX_SUFFIX,):
            if name.endswith(suffix):
                name = name[: -len(suffix)]
        return cls.from_dict(data, name=name)


class SegmentWriter:
    """Writes one segment file and accumulates its sidecar index.

    The writer appends records until :meth:`close`, which seals the
    segment, writes the sidecar, and returns the :class:`SegmentIndex`.
    Byte offsets are tracked on the encoded UTF-8 stream, so the sidecar's
    group offsets are exact seek targets.
    """

    def __init__(self, directory: Union[str, Path], name: str) -> None:
        self.directory = Path(directory)
        self.name = name
        self.path = self.directory / (name + SEGMENT_SUFFIX)
        self.directory.mkdir(parents=True, exist_ok=True)
        self._handle = self.path.open("wb")
        self._offset = 0
        self._records = 0
        self._round_min: Optional[int] = None
        self._round_max: Optional[int] = None
        self._campaigns: set = set()
        self._groups: Dict[GroupKey, List[int]] = {}
        self._closed = False

    @property
    def records(self) -> int:
        return self._records

    def append(self, record: MeasurementRecord) -> None:
        if self._closed:
            raise StoreError(f"segment {self.path} is already sealed")
        data = (record.to_json() + "\n").encode("utf-8")
        key = (record.vantage, record.resolver, record.transport)
        self._groups.setdefault(key, []).append(self._offset)
        self._campaigns.add(record.campaign)
        if self._round_min is None or record.round_index < self._round_min:
            self._round_min = record.round_index
        if self._round_max is None or record.round_index > self._round_max:
            self._round_max = record.round_index
        self._handle.write(data)
        self._offset += len(data)
        self._records += 1

    def close(self) -> SegmentIndex:
        if self._closed:
            raise StoreError(f"segment {self.path} is already sealed")
        self._closed = True
        self._handle.close()
        index = SegmentIndex(
            name=self.name,
            records=self._records,
            byte_size=self._offset,
            round_min=self._round_min,
            round_max=self._round_max,
            campaigns=tuple(sorted(self._campaigns)),
            groups={key: tuple(offsets) for key, offsets in self._groups.items()},
        )
        index.save(self.directory)
        return index


def iter_segment(
    path: Union[str, Path],
    index: Optional[SegmentIndex] = None,
    vantage: Optional[str] = None,
    resolver: Optional[str] = None,
    transport: Optional[str] = None,
) -> Iterator[MeasurementRecord]:
    """Stream a segment's records, seeking via the sidecar when filtered.

    With no criteria (or no index) the whole file is parsed line by line;
    with criteria and a sidecar, only the byte offsets of matching groups
    are visited.  Malformed or truncated lines raise
    :class:`~repro.errors.ResultsFormatError` naming the segment file and
    line number.
    """
    path = Path(path)
    filtered = not (vantage is None and resolver is None and transport is None)
    if filtered and index is not None:
        offsets = index.matching_offsets(
            vantage=vantage, resolver=resolver, transport=transport
        )
        if not offsets:
            return
        with path.open("rb") as handle:
            for offset in offsets:
                handle.seek(offset)
                raw = handle.readline()
                yield MeasurementRecord.parse_line(
                    raw.decode("utf-8"), source=path
                )
        return
    for line_number, line in _iter_lines(path):
        record = MeasurementRecord.parse_line(
            line, source=path, line_number=line_number
        )
        if vantage is not None and record.vantage != vantage:
            continue
        if resolver is not None and record.resolver != resolver:
            continue
        if transport is not None and record.transport != transport:
            continue
        yield record


def _iter_lines(path: Path) -> Iterator[Tuple[int, str]]:
    with path.open("r", encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if line:
                yield line_number, line
