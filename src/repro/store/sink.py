"""StoreSink: the bounded-memory ingestion target campaigns stream into.

A sink presents the write surface of a
:class:`~repro.core.results.ResultStore` (``add`` / ``extend`` /
``len``), so :class:`~repro.core.runner.Campaign` streams records into it
unchanged — but instead of keeping everything in RAM it buffers at most
one segment of records, sorts the buffer by the canonical key, and flushes
it as a sealed warehouse segment with its sidecar index.  Aggregates are
maintained online at ``add`` time (one counter bump and at most one
histogram increment per record), so summary tables exist the moment
ingestion ends, without any rescan.

The buffer high-water mark is tracked and exposed —
:attr:`StoreSink.buffer_high_water_mark` never exceeds the segment size,
which is the bounded-memory guarantee the tests assert.

Ingest observability goes to the ambient (or given) metrics registry:

* ``store.ingest_records``   — counter, records accepted;
* ``store.ingest_flushes``   — counter, segments flushed;
* ``store.ingest_seconds``   — counter, wall-clock spent in flushes
  (throughput = records / seconds; wall-clock, so excluded from
  byte-equivalence checks);
* ``store.segments``         — gauge, segments written so far;
* ``store.buffer_hwm``       — gauge, buffer high-water mark.
"""

from __future__ import annotations

import time
from typing import Iterable, List, Optional

from repro.core.results import MeasurementRecord
from repro.errors import StoreError
from repro.obs import MetricsRegistry, get_metrics
from repro.store.aggregates import AggregateBook
from repro.store.segment import SegmentIndex, SegmentWriter, segment_name
from repro.store.warehouse import DEFAULT_SEGMENT_RECORDS, Warehouse, merge_key


class StoreSink:
    """Streams measurement records into a (staging) warehouse."""

    def __init__(
        self,
        warehouse: Warehouse,
        segment_records: int = DEFAULT_SEGMENT_RECORDS,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        if segment_records < 1:
            raise StoreError(f"segment_records must be >= 1, got {segment_records}")
        if warehouse.exists():
            raise StoreError(
                f"refusing to ingest into existing warehouse at {warehouse.root}"
            )
        self.warehouse = warehouse
        self.segment_records = segment_records
        self._metrics = metrics
        self._buffer: List[MeasurementRecord] = []
        self._hwm = 0
        self._written = 0
        self._indexes: List[SegmentIndex] = []
        self._book = AggregateBook()
        self._closed = False
        warehouse.segments_dir.mkdir(parents=True, exist_ok=True)

    # -- ResultStore write surface ----------------------------------------

    def add(self, record: MeasurementRecord) -> None:
        if self._closed:
            raise StoreError(f"sink for {self.warehouse.root} is closed")
        self._buffer.append(record)
        self._book.observe(record)
        if len(self._buffer) > self._hwm:
            self._hwm = len(self._buffer)
        metrics = self._registry()
        if metrics.enabled:
            metrics.inc("store.ingest_records")
        if len(self._buffer) >= self.segment_records:
            self.flush()

    def extend(self, records: Iterable[MeasurementRecord]) -> None:
        for record in records:
            self.add(record)

    def __len__(self) -> int:
        return self._written + len(self._buffer)

    # -- state -------------------------------------------------------------

    @property
    def buffer_high_water_mark(self) -> int:
        """Most records ever held in the buffer (<= ``segment_records``)."""
        return self._hwm

    @property
    def segments_written(self) -> int:
        return len(self._indexes)

    @property
    def aggregates(self) -> AggregateBook:
        """The live online summaries (updated on every ``add``)."""
        return self._book

    def _registry(self) -> MetricsRegistry:
        return self._metrics if self._metrics is not None else get_metrics()

    # -- flushing ----------------------------------------------------------

    def flush(self) -> None:
        """Seal the buffered records as one segment (no-op when empty).

        The buffer is sorted by the canonical merge key before writing, so
        every segment is internally ordered — the invariant the
        warehouse's k-way merge relies on.
        """
        if self._closed:
            raise StoreError(f"sink for {self.warehouse.root} is closed")
        if not self._buffer:
            return
        started = time.perf_counter()
        self._buffer.sort(key=merge_key)
        writer = SegmentWriter(
            self.warehouse.segments_dir, segment_name(len(self._indexes))
        )
        for record in self._buffer:
            writer.append(record)
        self._indexes.append(writer.close())
        self._written += len(self._buffer)
        self._buffer = []
        metrics = self._registry()
        if metrics.enabled:
            metrics.inc("store.ingest_flushes")
            metrics.inc("store.ingest_seconds", time.perf_counter() - started)
            metrics.set_gauge("store.segments", len(self._indexes))
            metrics.set_gauge("store.buffer_hwm", self._hwm)

    def close(self) -> Warehouse:
        """Flush the tail, persist aggregates + manifest, return the warehouse."""
        if self._closed:
            return self.warehouse
        self.flush()
        self._closed = True
        self._book.save_json(self.warehouse.aggregates_path)
        self.warehouse.write_manifest(
            self._indexes, self.segment_records, canonical=False
        )
        return self.warehouse

    def __enter__(self) -> "StoreSink":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is None:
            self.close()
