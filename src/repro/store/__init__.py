"""Results warehouse: segmented on-disk store with incremental aggregates.

The subsystem replaces keep-everything-in-RAM result handling for
production-scale campaigns (the paper's real runs produced ~5.4M
measurement attempts):

* :class:`~repro.store.sink.StoreSink` — streaming ingestion with at most
  one segment of records buffered, segment rotation, and online
  per-(vantage, resolver, transport, kind) summaries;
* :class:`~repro.store.warehouse.Warehouse` — the on-disk store: JSONL
  segments with sidecar indexes (predicate pushdown for scans), an
  aggregate book serving availability/response-time tables without record
  rescans, and a deterministic canonical rebuild (k-way merge) that makes
  serial and sharded ingest byte-identical;
* :mod:`~repro.store.aggregates` — the mergeable summary machinery and
  the aggregate-served tables;
* :mod:`~repro.store.segment` — segment writer/reader and sidecar format.
"""

from repro.store.aggregates import (
    AggregateBook,
    GroupSummary,
    ResponseTimeSummary,
    availability_from_aggregates,
    per_resolver_availability_from_aggregates,
    response_time_summaries,
)
from repro.store.segment import SegmentIndex, SegmentWriter, iter_segment
from repro.store.sink import StoreSink
from repro.store.warehouse import DEFAULT_SEGMENT_RECORDS, Warehouse, merge_key

__all__ = [
    "AggregateBook",
    "DEFAULT_SEGMENT_RECORDS",
    "GroupSummary",
    "ResponseTimeSummary",
    "SegmentIndex",
    "SegmentWriter",
    "StoreSink",
    "Warehouse",
    "availability_from_aggregates",
    "iter_segment",
    "merge_key",
    "per_resolver_availability_from_aggregates",
    "response_time_summaries",
]
