"""The results warehouse: a directory of segments + index + aggregates.

Layout::

    <root>/
      MANIFEST.json          segment list, record total, canonical flag
      aggregates.json        AggregateBook (per-group online summaries)
      segments/
        seg-000000.jsonl     records, one JSON object per line
        seg-000000.idx.json  sidecar: counts, round range, group offsets
        seg-000001.jsonl
        ...

Two invariants make the warehouse useful:

* **segment-local order** — every segment is internally sorted by the
  canonical record key, so a k-way heap merge over segments streams the
  whole warehouse in canonical order with one record per segment in
  memory;
* **canonical determinism** — :meth:`Warehouse.build_canonical` rewrites
  any set of source warehouses into canonical order with fixed-size
  rotation, so the output bytes are a pure function of the record
  multiset.  A serial campaign and a sharded one therefore finalize to
  byte-identical warehouses.

The manifest records no wall-clock timestamps for the same reason.

:class:`Warehouse` implements the :class:`~repro.core.results.RecordSource`
protocol (``filter`` / ``durations_ms`` / ``by_resolver`` / iteration), so
every analysis in :mod:`repro.analysis` accepts a warehouse wherever it
accepts an in-memory :class:`~repro.core.results.ResultStore` — but scans
stream from disk and push ``(vantage, resolver, transport)`` predicates
down to the segment sidecars, touching only matching segments and
offsets.
"""

from __future__ import annotations

import heapq
import json
import shutil
from pathlib import Path
from typing import (
    Callable,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.core.results import MeasurementRecord, ResultStore
from repro.errors import ResultsFormatError, StoreError
from repro.store.aggregates import AggregateBook
from repro.store.segment import (
    SEGMENT_SUFFIX,
    SegmentIndex,
    SegmentWriter,
    iter_segment,
    segment_name,
)

MANIFEST_NAME = "MANIFEST.json"
AGGREGATES_NAME = "aggregates.json"
SEGMENTS_DIRNAME = "segments"

#: Default segment rotation threshold (records per segment).
DEFAULT_SEGMENT_RECORDS = 4096


def merge_key(record: MeasurementRecord) -> tuple:
    """Total order used inside segments and across the k-way merge.

    The canonical key plus the serialized line as tie-breaker, so the
    merge is a total order even for duplicate records and never depends
    on which source produced a record first.
    """
    return (ResultStore.canonical_key(record), record.to_json())


class Warehouse:
    """One on-disk results warehouse rooted at a directory."""

    def __init__(self, root: Union[str, Path]) -> None:
        self.root = Path(root)

    # -- paths -------------------------------------------------------------

    @property
    def manifest_path(self) -> Path:
        return self.root / MANIFEST_NAME

    @property
    def aggregates_path(self) -> Path:
        return self.root / AGGREGATES_NAME

    @property
    def segments_dir(self) -> Path:
        return self.root / SEGMENTS_DIRNAME

    def exists(self) -> bool:
        return self.manifest_path.is_file()

    @classmethod
    def open(cls, root: Union[str, Path]) -> "Warehouse":
        """Open an existing warehouse, failing fast on a missing manifest."""
        warehouse = cls(root)
        if not warehouse.exists():
            raise StoreError(
                f"no results warehouse at {warehouse.root} "
                f"(missing {MANIFEST_NAME})"
            )
        return warehouse

    # -- metadata ----------------------------------------------------------

    def manifest(self) -> dict:
        try:
            return json.loads(self.manifest_path.read_text(encoding="utf-8"))
        except OSError as exc:
            raise StoreError(f"unreadable warehouse manifest: {exc}") from exc
        except json.JSONDecodeError as exc:
            raise ResultsFormatError(
                f"malformed warehouse manifest {self.manifest_path}: {exc}"
            ) from exc

    def write_manifest(
        self,
        segment_indexes: Sequence[SegmentIndex],
        segment_records: int,
        canonical: bool,
    ) -> None:
        records = sum(index.records for index in segment_indexes)
        campaigns = sorted({c for index in segment_indexes for c in index.campaigns})
        manifest = {
            "version": 1,
            "canonical": canonical,
            "records": records,
            "segment_records": segment_records,
            "segments": [index.segment_filename for index in segment_indexes],
            "campaigns": campaigns,
        }
        self.root.mkdir(parents=True, exist_ok=True)
        self.manifest_path.write_text(
            json.dumps(manifest, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )

    def segment_indexes(self) -> List[SegmentIndex]:
        """Sidecar indexes of every segment, in manifest order."""
        indexes = []
        for filename in self.manifest()["segments"]:
            stem = filename[: -len(SEGMENT_SUFFIX)]
            indexes.append(
                SegmentIndex.load(self.segments_dir / (stem + ".idx.json"))
            )
        return indexes

    def record_count(self) -> int:
        return self.manifest()["records"]

    def aggregates(self) -> AggregateBook:
        """The persisted per-group summaries (see :mod:`repro.store.aggregates`)."""
        return AggregateBook.load_json(self.aggregates_path)

    def info(self) -> dict:
        """Inspection summary for ``repro-dns store info``."""
        manifest = self.manifest()
        indexes = self.segment_indexes()
        group_keys = {key for index in indexes for key in index.groups}
        return {
            "root": str(self.root),
            "canonical": manifest["canonical"],
            "records": manifest["records"],
            "segments": len(indexes),
            "segment_records": manifest["segment_records"],
            "bytes": sum(index.byte_size for index in indexes),
            "campaigns": manifest["campaigns"],
            "groups": len(group_keys),
            "vantages": sorted({key[0] for key in group_keys}),
            "resolvers": len({key[1] for key in group_keys}),
            "transports": sorted({key[2] for key in group_keys}),
        }

    def describe(self) -> str:
        info = self.info()
        return (
            f"warehouse {info['root']}: {info['records']} records in "
            f"{info['segments']} segments ({info['bytes']} bytes, "
            f"{'canonical' if info['canonical'] else 'staging'} order), "
            f"{info['resolvers']} resolvers x {len(info['vantages'])} vantages, "
            f"campaigns: {', '.join(info['campaigns']) or '(none)'}"
        )

    # -- scanning ----------------------------------------------------------

    def iter_records(
        self,
        vantage: Optional[str] = None,
        resolver: Optional[str] = None,
        transport: Optional[str] = None,
        scan_stats: Optional[Dict[str, int]] = None,
    ) -> Iterator[MeasurementRecord]:
        """Stream records, pushing the criteria down to segment sidecars.

        Segments whose sidecar shows no matching group are skipped without
        opening the segment file; matching segments are read via the
        group's byte offsets.  ``scan_stats`` (when given) is filled with
        ``segments_scanned`` / ``segments_skipped`` for tests and tooling.
        """
        if scan_stats is not None:
            scan_stats.setdefault("segments_scanned", 0)
            scan_stats.setdefault("segments_skipped", 0)
        for index in self.segment_indexes():
            if not index.may_match(
                vantage=vantage, resolver=resolver, transport=transport
            ):
                if scan_stats is not None:
                    scan_stats["segments_skipped"] += 1
                continue
            if scan_stats is not None:
                scan_stats["segments_scanned"] += 1
            yield from iter_segment(
                self.segments_dir / index.segment_filename,
                index=index,
                vantage=vantage,
                resolver=resolver,
                transport=transport,
            )

    def iter_sorted(self) -> Iterator[MeasurementRecord]:
        """All records in canonical order via a k-way heap merge.

        Relies on segment-local order; memory stays at one record per
        segment regardless of warehouse size.
        """
        streams = [
            iter_segment(self.segments_dir / index.segment_filename, index=index)
            for index in self.segment_indexes()
        ]
        return heapq.merge(*streams, key=merge_key)

    # -- RecordSource protocol --------------------------------------------

    def __iter__(self) -> Iterator[MeasurementRecord]:
        return self.iter_records()

    def __len__(self) -> int:
        return self.record_count()

    def filter(
        self,
        kind: Optional[str] = None,
        vantage: Optional[str] = None,
        resolver: Optional[str] = None,
        transport: Optional[str] = None,
        success: Optional[bool] = None,
        predicate: Optional[Callable[[MeasurementRecord], bool]] = None,
    ) -> List[MeasurementRecord]:
        """Records matching every given criterion (streamed, then filtered).

        ``vantage`` / ``resolver`` / ``transport`` are pushed down to the
        segment indexes; the remaining criteria are applied per record.
        """
        out = []
        for record in self.iter_records(
            vantage=vantage, resolver=resolver, transport=transport
        ):
            if kind is not None and record.kind != kind:
                continue
            if success is not None and record.success != success:
                continue
            if predicate is not None and not predicate(record):
                continue
            out.append(record)
        return out

    def durations_ms(self, **criteria) -> List[float]:
        """Durations of successful records matching the criteria."""
        records = self.filter(success=True, **criteria)
        return [r.duration_ms for r in records if r.duration_ms is not None]

    def by_resolver(self, **criteria) -> Dict[str, List[MeasurementRecord]]:
        grouped: Dict[str, List[MeasurementRecord]] = {}
        for record in self.filter(**criteria):
            grouped.setdefault(record.resolver, []).append(record)
        return grouped

    # -- canonical builds --------------------------------------------------

    @classmethod
    def _write_canonical(
        cls,
        stream: Iterable[MeasurementRecord],
        dest: Union[str, Path],
        segment_records: int,
    ) -> "Warehouse":
        """Write an already-canonically-ordered stream as a new warehouse.

        Rotation happens every ``segment_records`` records exactly and the
        aggregate book is fed in stream order, so the emitted bytes —
        segments, sidecars, aggregates, manifest — depend only on the
        stream's contents.
        """
        if segment_records < 1:
            raise StoreError(f"segment_records must be >= 1, got {segment_records}")
        warehouse = cls(dest)
        if warehouse.exists():
            raise StoreError(
                f"refusing to overwrite existing warehouse at {warehouse.root}"
            )
        warehouse.segments_dir.mkdir(parents=True, exist_ok=True)
        book = AggregateBook()
        indexes: List[SegmentIndex] = []
        writer: Optional[SegmentWriter] = None
        for record in stream:
            if writer is None:
                writer = SegmentWriter(
                    warehouse.segments_dir, segment_name(len(indexes))
                )
            writer.append(record)
            book.observe(record)
            if writer.records >= segment_records:
                indexes.append(writer.close())
                writer = None
        if writer is not None:
            indexes.append(writer.close())
        book.save_json(warehouse.aggregates_path)
        warehouse.write_manifest(indexes, segment_records, canonical=True)
        return warehouse

    @classmethod
    def build_canonical(
        cls,
        sources: Sequence["Warehouse"],
        dest: Union[str, Path],
        segment_records: int = DEFAULT_SEGMENT_RECORDS,
    ) -> "Warehouse":
        """K-way merge source warehouses into one canonical warehouse.

        This is the finalize step of both the serial and the sharded
        ingest paths: shard staging warehouses merge here, and the result
        is byte-identical no matter how the records were partitioned
        across sources.  Memory stays bounded at one record per source
        segment (the heap frontier).
        """
        stream = heapq.merge(
            *(source.iter_sorted() for source in sources), key=merge_key
        )
        return cls._write_canonical(stream, dest, segment_records)

    @classmethod
    def from_records(
        cls,
        records: Iterable[MeasurementRecord],
        dest: Union[str, Path],
        segment_records: int = DEFAULT_SEGMENT_RECORDS,
    ) -> "Warehouse":
        """Materialize an in-memory record collection as a canonical warehouse.

        Convenience for exporting an existing :class:`ResultStore` (e.g.
        ``report --output <dir>``); records are sorted in memory first, so
        use the sink + :meth:`build_canonical` path for streamed ingest.
        """
        ordered = sorted(records, key=merge_key)
        return cls._write_canonical(ordered, dest, segment_records)

    def compact(
        self, segment_records: Optional[int] = None
    ) -> "Warehouse":
        """Rewrite this warehouse in canonical order, in place.

        Collapses a staging warehouse's many small, partially-sorted
        segments into full canonical segments.  The rewrite happens in a
        sibling temp directory and is swapped in only after it completes.
        """
        if segment_records is None:
            segment_records = self.manifest()["segment_records"]
        tmp = self.root.with_name(self.root.name + ".compact-tmp")
        if tmp.exists():
            shutil.rmtree(tmp)
        Warehouse.build_canonical([self], tmp, segment_records)
        old = self.root.with_name(self.root.name + ".compact-old")
        if old.exists():
            shutil.rmtree(old)
        self.root.rename(old)
        tmp.rename(self.root)
        shutil.rmtree(old)
        return self
