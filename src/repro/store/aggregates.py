"""Incremental aggregation: per-group online summaries built at ingest.

The warehouse keeps one :class:`GroupSummary` per ``(vantage, resolver,
transport, kind)`` — success and per-error-class counters, total retry
attempts, and a fixed-bucket latency histogram over successful durations
(the same buckets as :mod:`repro.obs.metrics`, so estimates are
deterministic and summaries merge exactly by adding counts).  An
:class:`AggregateBook` is the full collection, persisted next to the
segments as ``aggregates.json``.

Because every counter and bucket is extensive, the availability and
response-time tables the paper reports are served straight from the book
— no record rescan — and serving from aggregates equals recomputing from
a full scan: counts are exact, and the histogram statistics come out of
the very same buckets either way.
"""

from __future__ import annotations

import json
from collections import Counter
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, Iterator, Optional, Sequence, Tuple, Union

from repro.core.errors_taxonomy import CONNECTION_ESTABLISHMENT_CLASSES
from repro.core.results import MeasurementRecord
from repro.errors import ResultsFormatError
from repro.obs.metrics import DEFAULT_BUCKETS, Histogram

#: The aggregation key.  ``kind`` is included on top of the issue's
#: (vantage, resolver, transport) triple so DNS queries, intermediate
#: retry attempts and pings never pool into one distribution.
AggregateKey = Tuple[str, str, str, str]  # (vantage, resolver, transport, kind)

_ESTABLISHMENT_VALUES = frozenset(c.value for c in CONNECTION_ESTABLISHMENT_CLASSES)


class GroupSummary:
    """Online summary of one (vantage, resolver, transport, kind) group."""

    __slots__ = (
        "vantage", "resolver", "transport", "kind",
        "count", "successes", "attempts_total", "error_classes", "histogram",
    )

    def __init__(
        self,
        vantage: str,
        resolver: str,
        transport: str,
        kind: str,
        bounds: Sequence[float] = DEFAULT_BUCKETS,
    ) -> None:
        self.vantage = vantage
        self.resolver = resolver
        self.transport = transport
        self.kind = kind
        self.count = 0
        self.successes = 0
        self.attempts_total = 0
        self.error_classes: Counter = Counter()
        self.histogram = Histogram(bounds)

    @property
    def key(self) -> AggregateKey:
        return (self.vantage, self.resolver, self.transport, self.kind)

    @property
    def errors(self) -> int:
        return self.count - self.successes

    @property
    def success_rate(self) -> float:
        return self.successes / self.count if self.count else 0.0

    def observe(self, record: MeasurementRecord) -> None:
        self.count += 1
        self.attempts_total += record.attempts
        if record.success:
            self.successes += 1
            if record.duration_ms is not None:
                self.histogram.observe(record.duration_ms)
        else:
            self.error_classes[record.error_class or "unknown"] += 1

    def merge(self, other: "GroupSummary") -> None:
        self.count += other.count
        self.successes += other.successes
        self.attempts_total += other.attempts_total
        self.error_classes.update(other.error_classes)
        self.histogram.merge(other.histogram)

    def to_dict(self) -> dict:
        return {
            "vantage": self.vantage,
            "resolver": self.resolver,
            "transport": self.transport,
            "kind": self.kind,
            "count": self.count,
            "successes": self.successes,
            "attempts_total": self.attempts_total,
            "error_classes": {k: self.error_classes[k] for k in sorted(self.error_classes)},
            "histogram": self.histogram.to_dict(),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "GroupSummary":
        summary = cls(
            vantage=data["vantage"],
            resolver=data["resolver"],
            transport=data["transport"],
            kind=data["kind"],
            bounds=tuple(data["histogram"]["bounds"]),
        )
        summary.count = data["count"]
        summary.successes = data["successes"]
        summary.attempts_total = data["attempts_total"]
        summary.error_classes = Counter(data["error_classes"])
        summary.histogram = Histogram.from_dict(data["histogram"])
        return summary


class AggregateBook:
    """All group summaries of one warehouse, mergeable and persistable."""

    def __init__(self, bounds: Sequence[float] = DEFAULT_BUCKETS) -> None:
        self.bounds: Tuple[float, ...] = tuple(bounds)
        self._groups: Dict[AggregateKey, GroupSummary] = {}

    def __len__(self) -> int:
        return len(self._groups)

    @property
    def total_records(self) -> int:
        return sum(group.count for group in self._groups.values())

    def observe(self, record: MeasurementRecord) -> None:
        key = (record.vantage, record.resolver, record.transport, record.kind)
        group = self._groups.get(key)
        if group is None:
            group = self._groups[key] = GroupSummary(*key, bounds=self.bounds)
        group.observe(record)

    def merge(self, other: "AggregateBook") -> None:
        for key in sorted(other._groups):
            theirs = other._groups[key]
            group = self._groups.get(key)
            if group is None:
                group = self._groups[key] = GroupSummary(*key, bounds=self.bounds)
            group.merge(theirs)

    @classmethod
    def from_records(
        cls,
        records: Iterable[MeasurementRecord],
        bounds: Sequence[float] = DEFAULT_BUCKETS,
    ) -> "AggregateBook":
        """The slow path: one summary pass over a full record scan.

        Exists so tests (and skeptical users) can verify the persisted
        incremental aggregates equal a from-scratch recomputation.
        """
        book = cls(bounds)
        for record in records:
            book.observe(record)
        return book

    def groups(
        self,
        vantage: Optional[str] = None,
        resolver: Optional[str] = None,
        transport: Optional[str] = None,
        kind: Optional[str] = None,
    ) -> Iterator[GroupSummary]:
        """Summaries matching the criteria, in sorted key order."""
        for key in sorted(self._groups):
            group = self._groups[key]
            if vantage is not None and group.vantage != vantage:
                continue
            if resolver is not None and group.resolver != resolver:
                continue
            if transport is not None and group.transport != transport:
                continue
            if kind is not None and group.kind != kind:
                continue
            yield group

    # -- persistence -------------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "version": 1,
            "bounds": list(self.bounds),
            "groups": [self._groups[key].to_dict() for key in sorted(self._groups)],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "AggregateBook":
        try:
            book = cls(tuple(data["bounds"]))
            for entry in data["groups"]:
                summary = GroupSummary.from_dict(entry)
                book._groups[summary.key] = summary
            return book
        except (KeyError, TypeError) as exc:
            raise ResultsFormatError(f"malformed aggregate book: {exc}") from exc

    def save_json(self, path: Union[str, Path]) -> Path:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(
            json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        return path

    @classmethod
    def load_json(cls, path: Union[str, Path]) -> "AggregateBook":
        path = Path(path)
        try:
            data = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError) as exc:
            raise ResultsFormatError(f"unreadable aggregate book {path}: {exc}") from exc
        return cls.from_dict(data)


# -- aggregate-served tables ---------------------------------------------------


def availability_from_aggregates(
    book: AggregateBook, vantage: Optional[str] = None
):
    """The paper's availability headline numbers, served from aggregates.

    Equals :func:`repro.analysis.availability.availability_report` over a
    full record scan exactly — every input is an integer counter.
    """
    from repro.analysis.availability import AvailabilityReport

    successes = 0
    breakdown: Counter = Counter()
    for group in book.groups(vantage=vantage, kind="dns_query"):
        successes += group.successes
        breakdown.update(group.error_classes)
    errors = sum(breakdown.values())
    establishment = sum(
        count
        for error_class, count in breakdown.items()
        if error_class in _ESTABLISHMENT_VALUES
    )
    return AvailabilityReport(
        successes=successes,
        errors=errors,
        error_breakdown=breakdown,
        connection_establishment_share=establishment / errors if errors else 0.0,
    )


def per_resolver_availability_from_aggregates(
    book: AggregateBook, vantage: Optional[str] = None
) -> Dict[str, float]:
    """Success rate of DNS queries per resolver, served from aggregates."""
    successes: Counter = Counter()
    counts: Counter = Counter()
    for group in book.groups(vantage=vantage, kind="dns_query"):
        successes[group.resolver] += group.successes
        counts[group.resolver] += group.count
    return {
        resolver: successes[resolver] / counts[resolver]
        for resolver in counts
        if counts[resolver]
    }


@dataclass(frozen=True)
class ResponseTimeSummary:
    """Histogram-backed response-time statistics of one resolver."""

    resolver: str
    count: int
    mean_ms: float
    p50_ms: float
    p95_ms: float
    p99_ms: float
    min_ms: float
    max_ms: float


def response_time_summaries(
    book: AggregateBook,
    vantage: Optional[str] = None,
    transport: Optional[str] = None,
) -> Dict[str, ResponseTimeSummary]:
    """Per-resolver response-time table from the persisted histograms.

    Quantiles are the deterministic fixed-bucket estimates of
    :class:`repro.obs.metrics.Histogram`; serving them from the book is
    identical to rebuilding the same histograms from a full record scan,
    and needs no record access at all.
    """
    merged: Dict[str, Histogram] = {}
    for group in book.groups(vantage=vantage, transport=transport, kind="dns_query"):
        if not group.histogram.count:
            continue
        histogram = merged.get(group.resolver)
        if histogram is None:
            merged[group.resolver] = histogram = Histogram(book.bounds)
        histogram.merge(group.histogram)
    return {
        resolver: ResponseTimeSummary(
            resolver=resolver,
            count=histogram.count,
            mean_ms=histogram.mean,
            p50_ms=histogram.p50,
            p95_ms=histogram.p95,
            p99_ms=histogram.p99,
            min_ms=histogram.min,
            max_ms=histogram.max,
        )
        for resolver, histogram in sorted(merged.items())
    }
