"""Live health monitoring: SLO engine, streaming detectors, alerts.

The package watches a campaign as it runs — or replays one from a
warehouse — and answers the operator questions the paper's longitudinal
setting raises: is a resolver's availability holding its floor, are tail
latencies under their ceilings, is an error class bursting past its
budget, did query time shift?  See :mod:`repro.monitor.engine` for the
determinism argument (streaming and batch evaluation agree exactly).

Quick start::

    from repro.monitor import Monitor, default_policy

    monitor = Monitor(default_policy())
    campaign = Campaign(network, vantages, targets, config, monitor=monitor)
    store = campaign.run()
    alerts = monitor.finalize()          # canonical-ordered AlertLog
    print(monitor.scoreboard().render()) # OK/DEGRADED/FAILING table
"""

from repro.monitor.alerts import (
    HEALTH_STATES,
    AlertEvent,
    AlertLog,
    Scoreboard,
    SloVerdict,
)
from repro.monitor.detectors import CusumDetector, EwmaTracker, RollingWindow
from repro.monitor.engine import Monitor, verdicts_from_book
from repro.monitor.slo import (
    ESTABLISHMENT_CLASS_VALUES,
    SEVERITIES,
    SLO_KINDS,
    CusumConfig,
    SloPolicy,
    SloSpec,
    WindowConfig,
    default_policy,
)

__all__ = [
    "AlertEvent",
    "AlertLog",
    "CusumConfig",
    "CusumDetector",
    "ESTABLISHMENT_CLASS_VALUES",
    "EwmaTracker",
    "HEALTH_STATES",
    "Monitor",
    "RollingWindow",
    "SEVERITIES",
    "SLO_KINDS",
    "Scoreboard",
    "SloPolicy",
    "SloSpec",
    "SloVerdict",
    "WindowConfig",
    "default_policy",
    "verdicts_from_book",
]
