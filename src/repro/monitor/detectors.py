"""Streaming detector state, one instance per monitored group.

Everything here is pure incremental arithmetic over fields of the records
themselves — virtual start times, durations, error classes — so feeding
the same per-group record sequence always reproduces the same state, no
matter which process, shard or replay pass drove it.  Memory per group is
bounded by the window configuration: O(window records) for the rolling
window, O(1) for the EWMA baseline and CUSUM statistic.
"""

from __future__ import annotations

import math
from collections import Counter, deque
from typing import Deque, Dict, List, Optional, Sequence, Tuple

from repro.analysis.stats import quantile
from repro.monitor.slo import CusumConfig, WindowConfig


class RollingWindow:
    """The most recent final DNS-query outcomes of one group.

    Entries are ``(at_ms, success, duration_ms, error_class)`` tuples;
    eviction is by the virtual-clock horizon first (``span_ms`` relative
    to the newest entry's start time), then by the record cap, so window
    membership is a pure function of the group's record sequence.
    """

    __slots__ = ("config", "_entries", "_successes", "_errors")

    def __init__(self, config: WindowConfig) -> None:
        self.config = config
        self._entries: Deque[Tuple[float, bool, Optional[float], Optional[str]]] = deque()
        self._successes = 0
        self._errors: Counter = Counter()

    def push(
        self,
        at_ms: float,
        success: bool,
        duration_ms: Optional[float],
        error_class: Optional[str],
    ) -> None:
        self._entries.append((at_ms, success, duration_ms, error_class))
        if success:
            self._successes += 1
        else:
            self._errors[error_class or "unknown"] += 1
        if self.config.span_ms is not None:
            horizon = at_ms - self.config.span_ms
            while self._entries and self._entries[0][0] < horizon:
                self._evict()
        while len(self._entries) > self.config.records:
            self._evict()

    def _evict(self) -> None:
        _, success, _, error_class = self._entries.popleft()
        if success:
            self._successes -= 1
        else:
            self._errors[error_class or "unknown"] -= 1

    # -- window reads ------------------------------------------------------

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def count(self) -> int:
        return len(self._entries)

    @property
    def successes(self) -> int:
        return self._successes

    @property
    def failures(self) -> int:
        return len(self._entries) - self._successes

    @property
    def success_ratio(self) -> float:
        return self._successes / len(self._entries) if self._entries else 0.0

    @property
    def span(self) -> Tuple[Optional[float], Optional[float]]:
        """Virtual start times of the oldest and newest window entries."""
        if not self._entries:
            return (None, None)
        return (self._entries[0][0], self._entries[-1][0])

    def error_counts(self) -> Dict[str, int]:
        """Per-class failure counts currently in the window (sorted keys)."""
        return {k: self._errors[k] for k in sorted(self._errors) if self._errors[k]}

    def error_share(self, classes: Sequence[str]) -> float:
        """Share of window entries failing with one of ``classes``."""
        if not self._entries:
            return 0.0
        matched = sum(self._errors[c] for c in classes)
        return matched / len(self._entries)

    def durations(self) -> List[float]:
        """Successful durations currently in the window, in entry order."""
        return [d for _, success, d, _ in self._entries if success and d is not None]

    def latency_quantile(self, q: float) -> Optional[float]:
        """Windowed response-time quantile over successful entries.

        Uses the library's linear-interpolation quantile (the same one
        every analysis table uses); ``None`` when the window holds no
        successful duration.
        """
        values = self.durations()
        if not values:
            return None
        return quantile(values, q)


class EwmaTracker:
    """Exponentially-weighted running mean and variance.

    The variance recurrence is the standard EWMA pair
    ``var' = (1 - a) * (var + a * delta**2)`` with ``delta = x - mean``,
    which keeps both moments O(1) and deterministic.
    """

    __slots__ = ("alpha", "count", "mean", "_var")

    def __init__(self, alpha: float) -> None:
        self.alpha = alpha
        self.count = 0
        self.mean = 0.0
        self._var = 0.0

    def update(self, value: float) -> None:
        self.count += 1
        if self.count == 1:
            self.mean = value
            self._var = 0.0
            return
        delta = value - self.mean
        incr = self.alpha * delta
        self.mean += incr
        self._var = (1.0 - self.alpha) * (self._var + delta * incr)

    @property
    def std(self) -> float:
        return math.sqrt(self._var) if self._var > 0.0 else 0.0


class CusumDetector:
    """One-sided CUSUM change-point detector on query time.

    Each successful observation is standardized against the EWMA baseline
    and folded into ``S = max(0, S + z - k)``; crossing ``h`` reports a
    sustained upward latency shift and resets the statistic so a new
    shift can be detected.  The baseline keeps adapting afterwards, which
    is what makes a *step* fire once instead of forever.
    """

    __slots__ = ("config", "baseline", "stat", "alarms")

    def __init__(self, config: CusumConfig) -> None:
        self.config = config
        self.baseline = EwmaTracker(config.alpha)
        self.stat = 0.0
        self.alarms = 0

    def update(self, value: float) -> Optional[float]:
        """Feed one observation; returns the crossing statistic on alarm."""
        fired: Optional[float] = None
        if self.config.enabled and self.baseline.count >= self.config.min_samples:
            sigma = self.baseline.std
            if sigma > 0.0:
                z = (value - self.baseline.mean) / sigma
                self.stat = max(0.0, self.stat + z - self.config.k)
                if self.stat > self.config.h:
                    fired = self.stat
                    self.alarms += 1
                    self.stat = 0.0
        self.baseline.update(value)
        return fired
