"""Declarative service-level objectives for live campaign monitoring.

An :class:`SloSpec` states one objective over a rolling evaluation window
of a ``(vantage, resolver, transport)`` group:

* ``availability`` — the windowed success ratio must stay at or above a
  floor;
* ``latency_p95`` / ``latency_p99`` — the windowed response-time quantile
  must stay at or below a ceiling (milliseconds);
* ``error_budget`` — the windowed share of attempts failing with the
  named error classes (default: the paper's dominant
  connection-establishment group) must stay at or below a budget.

Selectors are shell-style patterns (``fnmatch``) on vantage, resolver and
transport, so one objective can cover the whole fleet or a single
deployment.  An :class:`SloPolicy` bundles the objectives with the shared
:class:`WindowConfig` (record cap and/or virtual-clock horizon) and the
:class:`CusumConfig` of the change-point detector; policies load from
TOML or JSON files (see :meth:`SloPolicy.load`) and serialize back to
plain dicts.

:func:`default_policy` derives its thresholds from the paper's measured
baselines: ~5.8% of all ~5.4M attempts failed (availability floor 0.94),
connection-establishment errors dominated the failures (establishment
budget 10% of attempts), and mainstream resolvers answered well under a
second at the tail from every vantage (p95 ceiling 750 ms, p99 1500 ms).
"""

from __future__ import annotations

import fnmatch
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from repro.core.errors_taxonomy import CONNECTION_ESTABLISHMENT_CLASSES, ErrorClass
from repro.errors import MonitorConfigError

SLO_KINDS = ("availability", "latency_p95", "latency_p99", "error_budget")
SEVERITIES = ("info", "warning", "critical")

#: The paper's dominant error group, as record-level class values.
ESTABLISHMENT_CLASS_VALUES: Tuple[str, ...] = tuple(
    sorted(c.value for c in CONNECTION_ESTABLISHMENT_CLASSES)
)

_KNOWN_CLASS_VALUES = frozenset(c.value for c in ErrorClass)


@dataclass(frozen=True)
class WindowConfig:
    """Rolling evaluation window, on record count and/or the virtual clock.

    ``records`` caps how many of the group's most recent final DNS-query
    outcomes are held; ``span_ms`` (optional) additionally evicts entries
    older than the horizon relative to the newest record's virtual start
    time.  ``min_samples`` gates evaluation: no objective fires before the
    window holds that many records, and final verdicts skip groups with
    fewer total records.
    """

    records: int = 60
    span_ms: Optional[float] = None
    min_samples: int = 12

    def __post_init__(self) -> None:
        if not isinstance(self.records, int) or self.records < 1:
            raise MonitorConfigError(
                f"window records must be a positive integer, got {self.records!r}"
            )
        if self.span_ms is not None and self.span_ms <= 0:
            raise MonitorConfigError(
                f"window span_ms must be positive, got {self.span_ms!r}"
            )
        if not isinstance(self.min_samples, int) or self.min_samples < 1:
            raise MonitorConfigError(
                f"window min_samples must be a positive integer, "
                f"got {self.min_samples!r}"
            )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "records": self.records,
            "span_ms": self.span_ms,
            "min_samples": self.min_samples,
        }


@dataclass(frozen=True)
class CusumConfig:
    """Parameters of the CUSUM change-point detector on query time.

    The detector standardizes each successful query time against an EWMA
    baseline (smoothing ``alpha``) and accumulates one-sided deviations:
    ``S = max(0, S + z - k)``.  Crossing ``h`` flags a latency shift and
    resets the statistic.  ``k`` (slack) and ``h`` (decision threshold)
    are in standard-deviation units, the textbook parameterization.
    """

    enabled: bool = True
    alpha: float = 0.2
    k: float = 0.5
    h: float = 8.0
    min_samples: int = 20

    def __post_init__(self) -> None:
        if not 0.0 < self.alpha <= 1.0:
            raise MonitorConfigError(f"cusum alpha must be in (0, 1], got {self.alpha!r}")
        if self.k < 0 or self.h <= 0:
            raise MonitorConfigError(
                f"cusum needs k >= 0 and h > 0, got k={self.k!r} h={self.h!r}"
            )
        if not isinstance(self.min_samples, int) or self.min_samples < 2:
            raise MonitorConfigError(
                f"cusum min_samples must be an integer >= 2, got {self.min_samples!r}"
            )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "enabled": self.enabled,
            "alpha": self.alpha,
            "k": self.k,
            "h": self.h,
            "min_samples": self.min_samples,
        }


@dataclass(frozen=True)
class SloSpec:
    """One declarative objective plus the groups it applies to."""

    name: str
    kind: str
    threshold: float
    severity: str = "warning"
    vantage: str = "*"
    resolver: str = "*"
    transport: str = "*"
    #: Error classes counted by an ``error_budget`` objective; empty means
    #: the connection-establishment group.
    error_classes: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if not self.name:
            raise MonitorConfigError("SLO spec needs a name")
        if self.kind not in SLO_KINDS:
            raise MonitorConfigError(
                f"SLO {self.name!r}: unknown kind {self.kind!r} "
                f"(expected one of {', '.join(SLO_KINDS)})"
            )
        if self.severity not in SEVERITIES:
            raise MonitorConfigError(
                f"SLO {self.name!r}: unknown severity {self.severity!r} "
                f"(expected one of {', '.join(SEVERITIES)})"
            )
        if self.kind in ("availability", "error_budget"):
            if not 0.0 <= self.threshold <= 1.0:
                raise MonitorConfigError(
                    f"SLO {self.name!r}: {self.kind} threshold is a ratio "
                    f"in [0, 1], got {self.threshold!r}"
                )
        elif self.threshold <= 0:
            raise MonitorConfigError(
                f"SLO {self.name!r}: latency ceiling must be positive ms, "
                f"got {self.threshold!r}"
            )
        if self.kind != "error_budget" and self.error_classes:
            raise MonitorConfigError(
                f"SLO {self.name!r}: error_classes only apply to error_budget"
            )
        unknown = [c for c in self.error_classes if c not in _KNOWN_CLASS_VALUES]
        if unknown:
            raise MonitorConfigError(
                f"SLO {self.name!r}: unknown error classes {', '.join(unknown)}"
            )

    def matches(self, vantage: str, resolver: str, transport: str) -> bool:
        return (
            fnmatch.fnmatchcase(vantage, self.vantage)
            and fnmatch.fnmatchcase(resolver, self.resolver)
            and fnmatch.fnmatchcase(transport, self.transport)
        )

    def budget_classes(self) -> Tuple[str, ...]:
        """Error classes an ``error_budget`` objective counts."""
        return self.error_classes or ESTABLISHMENT_CLASS_VALUES

    def to_dict(self) -> Dict[str, Any]:
        data: Dict[str, Any] = {
            "name": self.name,
            "kind": self.kind,
            "threshold": self.threshold,
            "severity": self.severity,
            "vantage": self.vantage,
            "resolver": self.resolver,
            "transport": self.transport,
        }
        if self.error_classes:
            data["error_classes"] = list(self.error_classes)
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "SloSpec":
        known = {
            "name", "kind", "threshold", "severity",
            "vantage", "resolver", "transport", "error_classes",
        }
        unknown = sorted(set(data) - known)
        if unknown:
            raise MonitorConfigError(
                f"SLO entry has unknown keys: {', '.join(unknown)}"
            )
        try:
            return cls(
                name=data["name"],
                kind=data["kind"],
                threshold=float(data["threshold"]),
                severity=data.get("severity", "warning"),
                vantage=data.get("vantage", "*"),
                resolver=data.get("resolver", "*"),
                transport=data.get("transport", "*"),
                error_classes=tuple(data.get("error_classes", ())),
            )
        except KeyError as exc:
            raise MonitorConfigError(f"SLO entry missing key: {exc}") from exc
        except (TypeError, ValueError) as exc:
            raise MonitorConfigError(f"malformed SLO entry: {exc}") from exc


@dataclass(frozen=True)
class SloPolicy:
    """A set of objectives plus shared window and change-point settings."""

    specs: Tuple[SloSpec, ...]
    window: WindowConfig = field(default_factory=WindowConfig)
    cusum: CusumConfig = field(default_factory=CusumConfig)

    def __post_init__(self) -> None:
        names = [spec.name for spec in self.specs]
        duplicates = sorted({n for n in names if names.count(n) > 1})
        if duplicates:
            raise MonitorConfigError(
                f"duplicate SLO names: {', '.join(duplicates)}"
            )

    def specs_for(
        self, vantage: str, resolver: str, transport: str
    ) -> List[SloSpec]:
        """Objectives applying to one group, in declaration order."""
        return [
            spec for spec in self.specs
            if spec.matches(vantage, resolver, transport)
        ]

    def to_dict(self) -> Dict[str, Any]:
        return {
            "window": self.window.to_dict(),
            "cusum": self.cusum.to_dict(),
            "slos": [spec.to_dict() for spec in self.specs],
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "SloPolicy":
        if not isinstance(data, dict):
            raise MonitorConfigError(
                f"SLO policy must be a mapping, got {type(data).__name__}"
            )
        unknown = sorted(set(data) - {"window", "cusum", "slos"})
        if unknown:
            raise MonitorConfigError(
                f"SLO policy has unknown sections: {', '.join(unknown)}"
            )
        window_data = dict(data.get("window", {}))
        if "span_ms" in window_data and window_data["span_ms"] is not None:
            window_data["span_ms"] = float(window_data["span_ms"])
        try:
            window = WindowConfig(**window_data)
            cusum = CusumConfig(**dict(data.get("cusum", {})))
        except TypeError as exc:
            raise MonitorConfigError(f"malformed window/cusum section: {exc}") from exc
        entries = data.get("slos", [])
        if not isinstance(entries, list) or not entries:
            raise MonitorConfigError("SLO policy needs a non-empty 'slos' list")
        specs = tuple(SloSpec.from_dict(entry) for entry in entries)
        return cls(specs=specs, window=window, cusum=cusum)

    @classmethod
    def load(cls, path: Union[str, Path]) -> "SloPolicy":
        """Load a policy from a ``.toml`` or ``.json`` file.

        The two formats carry the same structure — a ``[window]`` table, a
        ``[cusum]`` table and a list of ``[[slos]]`` entries.
        """
        path = Path(path)
        try:
            if path.suffix.lower() == ".toml":
                import tomllib

                with path.open("rb") as handle:
                    data = tomllib.load(handle)
            else:
                data = json.loads(path.read_text(encoding="utf-8"))
        except OSError as exc:
            raise MonitorConfigError(f"unreadable SLO policy {path}: {exc}") from exc
        except ValueError as exc:  # JSONDecodeError and TOMLDecodeError
            raise MonitorConfigError(f"malformed SLO policy {path}: {exc}") from exc
        return cls.from_dict(data)

    def save_json(self, path: Union[str, Path]) -> Path:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(
            json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        return path


def default_policy(
    window: Optional[WindowConfig] = None,
    cusum: Optional[CusumConfig] = None,
) -> SloPolicy:
    """Fleet-wide objectives derived from the paper's measured baselines."""
    return SloPolicy(
        specs=(
            SloSpec(
                name="availability-floor",
                kind="availability",
                threshold=0.94,
                severity="critical",
            ),
            SloSpec(
                name="latency-p95-ceiling",
                kind="latency_p95",
                threshold=750.0,
                severity="warning",
            ),
            SloSpec(
                name="latency-p99-ceiling",
                kind="latency_p99",
                threshold=1500.0,
                severity="warning",
            ),
            SloSpec(
                name="establishment-error-budget",
                kind="error_budget",
                threshold=0.10,
                severity="critical",
            ),
        ),
        window=window if window is not None else WindowConfig(),
        cusum=cusum if cusum is not None else CusumConfig(),
    )
