"""Alert events, the JSONL audit log, verdicts and the health scoreboard.

Alerts are plain frozen dataclasses ordered by a canonical sort key built
purely from record fields (virtual times, group identity, objective
names), so two runs that observed the same measurements export the same
JSONL bytes regardless of arrival interleaving across groups or shards.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Iterable, Iterator, List, Optional, Tuple, Union

from repro.analysis.render import render_table
from repro.errors import ResultsFormatError

#: Scoreboard states, from healthy to broken.
HEALTH_STATES = ("OK", "DEGRADED", "FAILING")


@dataclass(frozen=True)
class AlertEvent:
    """One monitoring state transition, with the evidence that drove it."""

    campaign: str
    vantage: str
    resolver: str
    transport: str
    slo: str
    detector: str
    severity: str
    status: str  # "firing" | "resolved"
    round_index: int
    at_ms: float
    window: Dict[str, Any] = field(default_factory=dict)
    evidence: Dict[str, Any] = field(default_factory=dict)

    def sort_key(self) -> Tuple:
        return (
            self.campaign,
            self.round_index,
            self.at_ms,
            self.vantage,
            self.resolver,
            self.transport,
            self.slo,
            self.detector,
            self.status,
        )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "campaign": self.campaign,
            "vantage": self.vantage,
            "resolver": self.resolver,
            "transport": self.transport,
            "slo": self.slo,
            "detector": self.detector,
            "severity": self.severity,
            "status": self.status,
            "round_index": self.round_index,
            "at_ms": self.at_ms,
            "window": self.window,
            "evidence": self.evidence,
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "AlertEvent":
        return cls(
            campaign=data["campaign"],
            vantage=data["vantage"],
            resolver=data["resolver"],
            transport=data["transport"],
            slo=data["slo"],
            detector=data["detector"],
            severity=data["severity"],
            status=data["status"],
            round_index=data["round_index"],
            at_ms=data["at_ms"],
            window=dict(data.get("window", {})),
            evidence=dict(data.get("evidence", {})),
        )


class AlertLog:
    """Append-only alert collection with canonical JSONL export."""

    def __init__(self) -> None:
        self._events: List[AlertEvent] = []

    def emit(self, event: AlertEvent) -> None:
        self._events.append(event)

    def extend(self, events: Iterable[AlertEvent]) -> None:
        self._events.extend(events)

    def events(self) -> List[AlertEvent]:
        return list(self._events)

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[AlertEvent]:
        return iter(self._events)

    def canonical_sort(self) -> None:
        """Order events by their canonical key, dropping arrival order."""
        self._events.sort(key=AlertEvent.sort_key)

    def counts_by_severity(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for event in self._events:
            counts[event.severity] = counts.get(event.severity, 0) + 1
        return {k: counts[k] for k in sorted(counts)}

    def to_jsonl(self) -> str:
        return "".join(event.to_json() + "\n" for event in self._events)

    def save_jsonl(self, path: Union[str, Path]) -> Path:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(self.to_jsonl(), encoding="utf-8")
        return path

    @classmethod
    def load_jsonl(cls, path: Union[str, Path]) -> "AlertLog":
        path = Path(path)
        log = cls()
        with path.open("r", encoding="utf-8") as handle:
            for number, line in enumerate(handle, start=1):
                line = line.strip()
                if not line:
                    continue
                try:
                    log.emit(AlertEvent.from_dict(json.loads(line)))
                except (ValueError, KeyError, TypeError) as exc:
                    raise ResultsFormatError(
                        f"{path}:{number}: malformed alert line: {exc}"
                    ) from exc
        return log


@dataclass(frozen=True)
class SloVerdict:
    """Final pass/fail of one objective for one group, over the whole run."""

    slo: str
    vantage: str
    resolver: str
    transport: str
    metric: str
    value: Optional[float]
    threshold: float
    passed: bool
    severity: str
    samples: int

    def to_dict(self) -> Dict[str, Any]:
        return {
            "slo": self.slo,
            "vantage": self.vantage,
            "resolver": self.resolver,
            "transport": self.transport,
            "metric": self.metric,
            "value": self.value,
            "threshold": self.threshold,
            "passed": self.passed,
            "severity": self.severity,
            "samples": self.samples,
        }


class Scoreboard:
    """Health state per (vantage, resolver), from verdicts and alert volume."""

    def __init__(
        self, rows: List[Dict[str, Any]], states: Dict[Tuple[str, str], str]
    ) -> None:
        self._rows = rows
        self._states = states

    @classmethod
    def from_verdicts(
        cls,
        verdicts: Iterable[SloVerdict],
        alerts: Optional[Iterable[AlertEvent]] = None,
    ) -> "Scoreboard":
        """FAILING on any failed critical objective, DEGRADED on any other
        failed objective, OK otherwise."""
        failed: Dict[Tuple[str, str], List[SloVerdict]] = {}
        seen: Dict[Tuple[str, str], int] = {}
        for verdict in verdicts:
            key = (verdict.vantage, verdict.resolver)
            seen[key] = seen.get(key, 0) + (0 if verdict.passed else 1)
            failed.setdefault(key, [])
            if not verdict.passed:
                failed[key].append(verdict)
        alert_counts: Dict[Tuple[str, str], int] = {}
        for event in alerts or ():
            if event.status != "firing":
                continue
            key = (event.vantage, event.resolver)
            alert_counts[key] = alert_counts.get(key, 0) + 1
        states: Dict[Tuple[str, str], str] = {}
        rows: List[Dict[str, Any]] = []
        for key in sorted(failed):
            failures = failed[key]
            if any(v.severity == "critical" for v in failures):
                state = "FAILING"
            elif failures:
                state = "DEGRADED"
            else:
                state = "OK"
            states[key] = state
            rows.append(
                {
                    "vantage": key[0],
                    "resolver": key[1],
                    "status": state,
                    "failed_slos": sorted({v.slo for v in failures}),
                    "alerts": alert_counts.get(key, 0),
                }
            )
        return cls(rows, states)

    def rows(self) -> List[Dict[str, Any]]:
        return [dict(row) for row in self._rows]

    def status(self, vantage: str, resolver: str) -> Optional[str]:
        return self._states.get((vantage, resolver))

    def worst_state(self) -> str:
        worst = "OK"
        for state in self._states.values():
            if HEALTH_STATES.index(state) > HEALTH_STATES.index(worst):
                worst = state
        return worst

    def counts(self) -> Dict[str, int]:
        counts = {state: 0 for state in HEALTH_STATES}
        for state in self._states.values():
            counts[state] += 1
        return counts

    def render(self) -> str:
        header = ["vantage", "resolver", "status", "failed SLOs", "alerts"]
        table_rows = [
            [
                row["vantage"],
                row["resolver"],
                row["status"],
                ", ".join(row["failed_slos"]) or "-",
                str(row["alerts"]),
            ]
            for row in self._rows
        ]
        return render_table(header, table_rows)

    def to_dict(self) -> Dict[str, Any]:
        return {"rows": self.rows(), "counts": self.counts()}
