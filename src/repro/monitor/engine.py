"""The streaming monitor: record ingestion, alerting, verdicts.

A :class:`Monitor` holds one set of detectors per
``(campaign, vantage, resolver, transport, kind)`` group and is fed one
:class:`~repro.core.results.MeasurementRecord` at a time through
:meth:`Monitor.observe` — from the campaign runner's record hook during a
live run, or from :meth:`Monitor.replay` over any record stream (a
warehouse's canonical iterator, a JSONL file).  ``observe`` is a pure
state update over record fields: it never touches the event loop, the
RNG, or the virtual clock, so a monitored run produces exactly the same
measurements as an unmonitored one.

Determinism of the exported artifacts rests on two facts.  Per group,
records arrive in the canonical (virtual-time) order whether streamed
live or replayed sorted — rounds are scheduled hours apart and queries
within a measurement chain sequentially — so every group's detector
trajectory, and hence its alert set, is identical either way.  Across
groups, arrival order *can* differ, so :meth:`Monitor.finalize` sorts the
alert log by its canonical key before export.  Final verdicts come from
an embedded :class:`~repro.store.aggregates.AggregateBook`, whose
counters and histograms are order-independent, which is why
re-evaluating a warehouse's persisted aggregates yields verdicts
identical to the live run's.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from repro.core.results import MeasurementRecord
from repro.monitor.alerts import AlertEvent, AlertLog, Scoreboard, SloVerdict
from repro.monitor.detectors import CusumDetector, RollingWindow
from repro.monitor.slo import SloPolicy, SloSpec, default_policy
from repro.store.aggregates import AggregateBook

GroupKey = Tuple[str, str, str, str, str]

_KIND_TO_QUANTILE = {"latency_p95": 0.95, "latency_p99": 0.99}


class _GroupState:
    """Per-group detector bundle plus per-objective firing flags."""

    __slots__ = ("window", "cusum", "specs", "firing", "last_round")

    def __init__(self, policy: SloPolicy, specs: List[SloSpec]) -> None:
        self.window = RollingWindow(policy.window)
        self.cusum = CusumDetector(policy.cusum)
        self.specs = specs
        self.firing: Dict[str, bool] = {spec.name: False for spec in specs}
        self.last_round = -1


class Monitor:
    """Streaming SLO evaluation over a stream of measurement records."""

    def __init__(self, policy: Optional[SloPolicy] = None) -> None:
        self.policy = policy if policy is not None else default_policy()
        self.alerts = AlertLog()
        self.records_seen = 0
        self._book = AggregateBook()
        self._groups: Dict[GroupKey, _GroupState] = {}
        self._finalized = False

    # -- ingestion ---------------------------------------------------------

    def observe(self, record: MeasurementRecord) -> None:
        """Fold one record into detector state; may emit alerts.

        Pure state update — no I/O, no clock, no RNG.
        """
        self.records_seen += 1
        self._book.observe(record)
        if record.kind != "dns_query":
            return
        key: GroupKey = (
            record.campaign,
            record.vantage,
            record.resolver,
            record.transport,
            record.kind,
        )
        state = self._groups.get(key)
        if state is None:
            state = _GroupState(
                self.policy,
                self.policy.specs_for(
                    record.vantage, record.resolver, record.transport
                ),
            )
            self._groups[key] = state
        state.last_round = record.round_index
        state.window.push(
            record.started_at_ms,
            record.success,
            record.duration_ms,
            record.error_class,
        )
        if record.success and record.duration_ms is not None:
            crossing = state.cusum.update(record.duration_ms)
            if crossing is not None:
                self._emit_cusum_alert(record, state, crossing)
        if len(state.window) >= self.policy.window.min_samples:
            self._evaluate_specs(record, state)

    def replay(self, records: Iterable[MeasurementRecord]) -> None:
        """Feed a whole record stream (warehouse iterator, loaded store)."""
        for record in records:
            self.observe(record)

    # -- alerting ----------------------------------------------------------

    def _window_snapshot(self, state: _GroupState) -> Dict[str, object]:
        oldest, newest = state.window.span
        return {
            "count": state.window.count,
            "successes": state.window.successes,
            "oldest_ms": oldest,
            "newest_ms": newest,
        }

    def _emit(
        self,
        record: MeasurementRecord,
        state: _GroupState,
        *,
        slo: str,
        detector: str,
        severity: str,
        status: str,
        evidence: Dict[str, object],
    ) -> None:
        self.alerts.emit(
            AlertEvent(
                campaign=record.campaign,
                vantage=record.vantage,
                resolver=record.resolver,
                transport=record.transport,
                slo=slo,
                detector=detector,
                severity=severity,
                status=status,
                round_index=record.round_index,
                at_ms=record.started_at_ms,
                window=self._window_snapshot(state),
                evidence=evidence,
            )
        )

    def _emit_cusum_alert(
        self, record: MeasurementRecord, state: _GroupState, crossing: float
    ) -> None:
        # Point event, not a firing/resolved pair: the statistic resets on
        # crossing, so each alarm marks one detected shift.
        self._emit(
            record,
            state,
            slo="latency-shift",
            detector="cusum",
            severity="warning",
            status="firing",
            evidence={
                "statistic": round(crossing, 6),
                "threshold": state.cusum.config.h,
                "baseline_mean_ms": round(state.cusum.baseline.mean, 6),
                "baseline_std_ms": round(state.cusum.baseline.std, 6),
                "observed_ms": record.duration_ms,
            },
        )

    def _evaluate_specs(self, record: MeasurementRecord, state: _GroupState) -> None:
        for spec in state.specs:
            value, breach, evidence = self._check_spec(spec, state)
            was_firing = state.firing[spec.name]
            if breach and not was_firing:
                state.firing[spec.name] = True
                self._emit(
                    record,
                    state,
                    slo=spec.name,
                    detector=_DETECTOR_NAMES[spec.kind],
                    severity=spec.severity,
                    status="firing",
                    evidence=evidence,
                )
            elif was_firing and not breach:
                state.firing[spec.name] = False
                self._emit(
                    record,
                    state,
                    slo=spec.name,
                    detector=_DETECTOR_NAMES[spec.kind],
                    severity=spec.severity,
                    status="resolved",
                    evidence=evidence,
                )

    def _check_spec(
        self, spec: SloSpec, state: _GroupState
    ) -> Tuple[Optional[float], bool, Dict[str, object]]:
        window = state.window
        if spec.kind == "availability":
            value = window.success_ratio
            breach = value < spec.threshold
            evidence: Dict[str, object] = {
                "success_ratio": round(value, 6),
                "floor": spec.threshold,
                "failures": window.failures,
                "error_counts": window.error_counts(),
            }
            return value, breach, evidence
        if spec.kind in _KIND_TO_QUANTILE:
            q = _KIND_TO_QUANTILE[spec.kind]
            value = window.latency_quantile(q)
            breach = value is not None and value > spec.threshold
            evidence = {
                "quantile": q,
                "value_ms": None if value is None else round(value, 6),
                "ceiling_ms": spec.threshold,
                "successes": window.successes,
            }
            return value, breach, evidence
        # error_budget
        classes = spec.budget_classes()
        value = window.error_share(classes)
        breach = value > spec.threshold
        evidence = {
            "error_share": round(value, 6),
            "budget": spec.threshold,
            "classes": list(classes),
            "error_counts": window.error_counts(),
        }
        return value, breach, evidence

    # -- reads -------------------------------------------------------------

    @property
    def group_count(self) -> int:
        return len(self._groups)

    def book(self) -> AggregateBook:
        """The monitor's order-independent aggregate view of the run."""
        return self._book

    def verdicts(self) -> List[SloVerdict]:
        """Final per-group pass/fail of every objective, from aggregates."""
        return verdicts_from_book(self._book, self.policy)

    def scoreboard(self) -> Scoreboard:
        return Scoreboard.from_verdicts(self.verdicts(), self.alerts)

    def finalize(self, metrics: Optional[object] = None) -> AlertLog:
        """Canonical-sort the alert log; optionally export gauges.

        ``metrics`` is a :class:`~repro.obs.metrics.MetricsRegistry` (or
        anything with ``set_gauge``); detector state lands as
        ``monitor.*`` gauges so the monitoring layer shows up in the same
        exposition as everything else.
        """
        self.alerts.canonical_sort()
        self._finalized = True
        if metrics is not None and getattr(metrics, "enabled", True):
            metrics.set_gauge("monitor.groups", float(len(self._groups)))
            metrics.set_gauge("monitor.alerts", float(len(self.alerts)))
            metrics.set_gauge("monitor.records_seen", float(self.records_seen))
            for key in sorted(self._groups):
                state = self._groups[key]
                labels = {
                    "vantage": key[1],
                    "resolver": key[2],
                    "transport": key[3],
                }
                metrics.set_gauge(
                    "monitor.success_ratio", state.window.success_ratio, **labels
                )
                metrics.set_gauge(
                    "monitor.ewma_ms", state.cusum.baseline.mean, **labels
                )
                metrics.set_gauge("monitor.cusum_stat", state.cusum.stat, **labels)
        return self.alerts


_DETECTOR_NAMES = {
    "availability": "success_window",
    "latency_p95": "latency_window",
    "latency_p99": "latency_window",
    "error_budget": "error_burst",
}


def verdicts_from_book(book: AggregateBook, policy: SloPolicy) -> List[SloVerdict]:
    """Evaluate a policy's objectives against run-level aggregates.

    Works identically on a live monitor's embedded book and on
    ``Warehouse.aggregates()``, because both are built by folding the same
    records into the same order-independent counters and histograms —
    that equality is what lets batch re-evaluation reproduce the
    streaming run's verdicts exactly.
    """
    verdicts: List[SloVerdict] = []
    for group in book.groups(kind="dns_query"):
        if group.count < policy.window.min_samples:
            continue
        vantage, resolver, transport = group.vantage, group.resolver, group.transport
        for spec in policy.specs_for(vantage, resolver, transport):
            if spec.kind == "availability":
                metric = "success_rate"
                value: Optional[float] = group.success_rate
                passed = value >= spec.threshold
            elif spec.kind in _KIND_TO_QUANTILE:
                metric = spec.kind
                value = (
                    group.histogram.quantile(_KIND_TO_QUANTILE[spec.kind])
                    if group.histogram.count
                    else None
                )
                passed = value is None or value <= spec.threshold
            else:
                metric = "error_share"
                matched = sum(
                    group.error_classes.get(c, 0) for c in spec.budget_classes()
                )
                value = matched / group.count
                passed = value <= spec.threshold
            verdicts.append(
                SloVerdict(
                    slo=spec.name,
                    vantage=vantage,
                    resolver=resolver,
                    transport=transport,
                    metric=metric,
                    value=value,
                    threshold=spec.threshold,
                    passed=passed,
                    severity=spec.severity,
                    samples=group.count,
                )
            )
    verdicts.sort(key=lambda v: (v.vantage, v.resolver, v.transport, v.slo))
    return verdicts
