"""Resolver deployments: sites, anycast, service models, reliability.

A :class:`ResolverDeployment` describes one hostname from the study —
where it runs (one unicast site or an anycast site set), which TLS versions
and HTTP versions it speaks, how fast it serves cache hits, whether it
answers ICMP, and how often connections to it fail.  ``activate`` wires
all of that onto simulated hosts: recursive engines, frontends, ICMP
policies, SYN-admission policies, and (for anycast) the shared service IP.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.core.seeding import derive_rng
from repro.errors import CampaignConfigError
from repro.netsim.host import Host
from repro.netsim.icmp import IcmpPolicy
from repro.netsim.network import Network
from repro.netsim.packet import Segment
from repro.resolver.cache import DnsCache
from repro.resolver.frontends import (
    Do53Frontend,
    Doh3Frontend,
    DoHFrontend,
    DoQFrontend,
    DoTFrontend,
)
from repro.resolver.recursive import RecursiveResolver, RootHints
from repro.tlssim.handshake import TlsServerConfig


@dataclass
class ProcessingModel:
    """Service-time distribution of a resolver frontend.

    Cache hits cost ``base_ms`` plus exponential jitter of scale
    ``jitter_ms``; with probability ``slow_tail_p`` an extra heavy-tail
    component of scale ``slow_tail_ms`` is added (GC pauses, overload).
    Cache misses additionally pay the real recursive walk, which the
    engine performs over the network — no modelled constant is added here.
    """

    base_ms: float = 2.0
    jitter_ms: float = 1.0
    slow_tail_p: float = 0.02
    slow_tail_ms: float = 30.0

    def sample_ms(self, rng: random.Random) -> float:
        delay = self.base_ms
        if self.jitter_ms > 0:
            delay += rng.expovariate(1.0 / self.jitter_ms)
        if self.slow_tail_p > 0 and rng.random() < self.slow_tail_p:
            delay += rng.expovariate(1.0 / self.slow_tail_ms)
        return delay


@dataclass
class ReliabilityModel:
    """Failure behaviour of a deployment.

    The paper's dominant error class is connection-establishment failure;
    the model splits that into refusals (fast RST) and blackholes (client
    times out), plus a server-side failure rate (HTTP 5xx / SERVFAIL).
    """

    connect_refuse_p: float = 0.0
    connect_drop_p: float = 0.0
    server_failure_p: float = 0.0

    def __post_init__(self) -> None:
        total = self.connect_refuse_p + self.connect_drop_p
        if total >= 1.0:
            raise CampaignConfigError("connection failure probabilities sum to >= 1")

    def syn_verdict(self, rng: random.Random) -> str:
        roll = rng.random()
        if roll < self.connect_refuse_p:
            return "refuse"
        if roll < self.connect_refuse_p + self.connect_drop_p:
            return "drop"
        return "accept"

    def server_fails(self, rng: random.Random) -> bool:
        return self.server_failure_p > 0 and rng.random() < self.server_failure_p


@dataclass
class ResolverSite:
    """One point of presence: an attached host plus its activated services."""

    host: Host
    cache: Optional[DnsCache] = None
    engine: Optional[RecursiveResolver] = None
    frontends: List[object] = field(default_factory=list)


@dataclass
class ResolverDeployment:
    """One resolver hostname and everything it runs."""

    hostname: str
    sites: List[ResolverSite]
    service_ip: str
    anycast: bool = False
    mainstream: bool = False
    transports: Sequence[str] = ("doh", "dot", "do53")
    tls_versions: Sequence[str] = ("1.3", "1.2")
    http_versions: Sequence[str] = ("h2", "http/1.1")
    doh_path: str = "/dns-query"
    answers_icmp: bool = True
    processing: ProcessingModel = field(default_factory=ProcessingModel)
    reliability: ReliabilityModel = field(default_factory=ReliabilityModel)
    #: Extra fixed one-way relay delay (ms) applied at the frontend; models
    #: Oblivious DoH targets that sit behind a relay hop.
    odoh_relay_extra_ms: float = 0.0
    #: Whether the DoH frontend accepts application/oblivious-dns-message
    #: (true for the odoh-target-* deployments).
    supports_odoh: bool = False
    #: Optional hook rewriting every response message before it leaves a
    #: frontend: ``mutator(query, response) -> response``.  Installed by
    #: answer-fault plans (``repro.diff.faults``) to make a deployment
    #: disagree with the fleet in a controlled, seeded way; ``None`` for
    #: faithful deployments.
    response_mutator: Optional[object] = None
    seed: int = 0

    def __post_init__(self) -> None:
        if not self.sites:
            raise CampaignConfigError(f"{self.hostname}: deployment has no sites")
        if self.anycast and len(self.sites) < 2:
            raise CampaignConfigError(f"{self.hostname}: anycast needs >= 2 sites")

    # -- wiring ---------------------------------------------------------------

    def activate(self, network: Network, root_hints: RootHints) -> None:
        """Install caches, engines, frontends and policies on every site."""
        for index, site in enumerate(self.sites):
            # Stable derivation (not Python's salted ``hash``): two
            # processes building the same world must wire identical RNG
            # streams, or sharded campaign runs could not reproduce the
            # serial run's world.
            rng = derive_rng(self.seed, "deployment", self.hostname, index)
            site.cache = DnsCache()
            site.engine = RecursiveResolver(
                host=site.host,
                cache=site.cache,
                root_hints=root_hints,
                rng=random.Random(rng.getrandbits(32)),
            )
            site.host.icmp_policy = IcmpPolicy(responds=self.answers_icmp)
            site.host.syn_policy = self._make_syn_policy(rng)
            tls_config = TlsServerConfig(
                versions=tuple(self.tls_versions),
                alpn_preference=tuple(self.http_versions),
            )
            frontends: List[object] = []
            if "do53" in self.transports:
                frontends.append(
                    Do53Frontend(deployment=self, site=site, rng=random.Random(rng.getrandbits(32)))
                )
            if "dot" in self.transports:
                frontends.append(
                    DoTFrontend(
                        deployment=self,
                        site=site,
                        tls_config=tls_config,
                        rng=random.Random(rng.getrandbits(32)),
                    )
                )
            if "doh" in self.transports:
                frontends.append(
                    DoHFrontend(
                        deployment=self,
                        site=site,
                        tls_config=tls_config,
                        rng=random.Random(rng.getrandbits(32)),
                    )
                )
            if "doq" in self.transports:
                frontends.append(
                    DoQFrontend(deployment=self, site=site, rng=random.Random(rng.getrandbits(32)))
                )
            if "doh3" in self.transports:
                # Deliberately NOT another draw from the sequential site
                # rng: the syn policy above closes over that stream and
                # draws lazily at sim time, so inserting a setup draw here
                # would shift every later connection verdict and change
                # existing worlds byte-for-byte.  A separately derived
                # stream keeps legacy behaviour untouched.
                frontends.append(
                    Doh3Frontend(
                        deployment=self,
                        site=site,
                        rng=derive_rng(self.seed, "deployment", self.hostname, index, "doh3"),
                    )
                )
            site.frontends = frontends
        if self.anycast:
            network.add_anycast(self.service_ip, [site.host for site in self.sites])

    def _make_syn_policy(self, rng: random.Random):
        reliability = self.reliability

        def policy(_segment: Segment) -> str:
            return reliability.syn_verdict(rng)

        return policy

    # -- convenience -------------------------------------------------------------

    def site_hosts(self) -> List[Host]:
        return [site.host for site in self.sites]

    def warm_caches(self, qnames_and_types: List[Tuple["object", int]]) -> None:
        """Pre-resolve names on every site (used to model popular domains
        that are effectively always cached, per the paper's method)."""
        for site in self.sites:
            engine = site.engine
            if engine is None:
                raise CampaignConfigError(f"{self.hostname}: activate() before warming")
            for qname, rdtype in qnames_and_types:
                engine.resolve_question(qname, rdtype, lambda _result: None)  # type: ignore[arg-type]

    def describe(self) -> str:
        kind = "anycast" if self.anycast else "unicast"
        tier = "mainstream" if self.mainstream else "non-mainstream"
        return (
            f"{self.hostname} [{tier}, {kind}, {len(self.sites)} site(s)] "
            f"ip={self.service_ip} transports={','.join(self.transports)}"
        )
