"""Resolver frontends: Do53 (UDP+TCP), DoT (RFC 7858) and DoH (RFC 8484).

All frontends share one query path: parse the wire query, consult the
site's recursive engine (cache hit or full recursive walk), apply the
deployment's service-time distribution, and send the response back over
the transport it arrived on.  DoT and DoH run over the simulated TLS
layer; DoH speaks HTTP/2 or HTTP/1.1 according to the negotiated ALPN.
"""

from __future__ import annotations

import random
import struct
from typing import TYPE_CHECKING, Callable, Dict, List, Optional

from repro.dnswire.builder import make_response
from repro.dnswire.edns import (
    EDE_NO_REACHABLE_AUTHORITY,
    EDE_NOT_READY,
    EdnsOptions,
    add_edns,
    attach_ede,
    get_edns,
)
from repro.dnswire.message import Message
from repro.dnswire.types import RCODE_SERVFAIL
from repro.errors import DnsWireError, FramingError
from repro.httpsim.doh import (
    DohCodecError,
    decode_doh_request,
    encode_doh_error,
    encode_doh_response,
)
from repro.httpsim.h1 import H1RequestParser, HttpRequest, HttpResponse, encode_response
from repro.httpsim.h2 import H2ServerSession
from repro.httpsim.odoh_codec import (
    CONTENT_TYPE_ODOH,
    OdohCodecError,
    open_query,
    seal_response,
)
from repro.netsim.packet import Datagram
from repro.netsim.sockets import SimTcpConnection
from repro.tlssim.handshake import TlsServerConfig, TlsServerConnection

if TYPE_CHECKING:  # pragma: no cover
    from repro.resolver.deployment import ResolverDeployment, ResolverSite

DO53_PORT = 53
DOT_PORT = 853
DOH_PORT = 443
DOQ_PORT = 853  # DoQ runs over UDP; DoT's 853 is TCP — no clash
DOH3_PORT = 443  # DoH3 runs over QUIC/UDP; DoH's 443 is TCP — no clash

RespondFn = Callable[[bytes], None]


class _LengthPrefixedStream:
    """Parser for the 2-byte length-prefixed DNS framing of TCP/DoT."""

    def __init__(self) -> None:
        self._buffer = bytearray()

    def feed(self, data: bytes) -> List[bytes]:
        self._buffer += data
        messages = []
        while len(self._buffer) >= 2:
            (length,) = struct.unpack_from("!H", self._buffer, 0)
            if len(self._buffer) < 2 + length:
                break
            messages.append(bytes(self._buffer[2 : 2 + length]))
            del self._buffer[: 2 + length]
        return messages

    @property
    def pending(self) -> int:
        """Bytes buffered waiting for the rest of a frame."""
        return len(self._buffer)

    def finish(self) -> None:
        """Assert the stream ended on a frame boundary.

        Call when the underlying connection closes; a part-delivered
        frame means the peer truncated mid-stream, which surfaces as a
        named :class:`~repro.errors.FramingError` rather than a timeout.
        """
        if self._buffer:
            raise FramingError(
                f"stream closed mid-frame with {len(self._buffer)} "
                "unconsumed bytes"
            )

    @staticmethod
    def frame(message: bytes) -> bytes:
        return struct.pack("!H", len(message)) + message


#: Public name for the framing parser (probes and tests import this).
LengthPrefixedStream = _LengthPrefixedStream


class _FrontendBase:
    """Shared query-answering path."""

    def __init__(
        self,
        deployment: "ResolverDeployment",
        site: "ResolverSite",
        rng: random.Random,
    ) -> None:
        self.deployment = deployment
        self.site = site
        self.rng = rng
        self.queries_handled = 0
        self.failures_injected = 0

    @property
    def _loop(self):
        assert self.site.host.network is not None
        return self.site.host.network.loop

    def handle_query_wire(self, wire: bytes, respond: RespondFn) -> bool:
        """Parse and answer one DNS query; returns False on unparseable input."""
        try:
            query = Message.from_wire(wire)
        except DnsWireError:
            return False
        self.queries_handled += 1
        question = query.question
        engine = self.site.engine
        assert engine is not None, "deployment not activated"

        def send_response(response: Message) -> None:
            mutator = self.deployment.response_mutator
            if mutator is not None:
                response = mutator(query, response)
            if get_edns(query) is not None and response.opt_record() is None:
                add_edns(response, EdnsOptions())
            delay = self.deployment.processing.sample_ms(self.rng)
            # ODoH targets sit behind a relay: one extra hop each way.
            delay += 2.0 * self.deployment.odoh_relay_extra_ms
            # Transient overload/degradation injected by a fault window.
            delay += self.site.host.impairments.extra_processing_ms
            self._loop.call_later(delay, respond, response.to_wire())

        if question is None:
            send_response(make_response(query, rcode=RCODE_SERVFAIL))
            return True
        if self.deployment.reliability.server_fails(self.rng):
            self.failures_injected += 1
            failed = make_response(query, rcode=RCODE_SERVFAIL)
            attach_ede(failed, EDE_NOT_READY, "temporarily overloaded")
            send_response(failed)
            return True

        def on_result(result) -> None:
            response = make_response(
                query,
                answers=result.records,
                rcode=result.rcode,
                recursion_available=True,
            )
            if result.rcode == RCODE_SERVFAIL:
                # RFC 8914: explain recursive failures to the client.
                attach_ede(response, EDE_NO_REACHABLE_AUTHORITY, "upstream timeout")
            send_response(response)

        engine.resolve_question(question.qname, question.qtype, on_result)
        return True


class Do53Frontend(_FrontendBase):
    """Classic DNS over UDP port 53, plus TCP 53 with length framing.

    UDP responses that exceed the client's advertised payload size (the
    EDNS buffer size, or 512 bytes without EDNS) are truncated: the server
    answers with an empty message carrying the TC bit, and the client is
    expected to retry over TCP (RFC 1035 §4.2.1 / RFC 6891).
    """

    def __init__(self, deployment, site, rng: random.Random) -> None:
        super().__init__(deployment, site, rng)
        host = site.host
        host.bind_udp(DO53_PORT, self._handle_udp)
        host.listen_tcp(DO53_PORT, self._accept_tcp)

    @staticmethod
    def _udp_payload_limit(query_wire: bytes) -> int:
        try:
            query = Message.from_wire(query_wire)
        except DnsWireError:
            return 512
        edns = get_edns(query)
        if edns is None:
            return 512
        return max(512, edns.payload_size)

    @staticmethod
    def _truncate(response_wire: bytes) -> bytes:
        message = Message.from_wire(response_wire)
        message.answers = []
        message.authorities = []
        message.additionals = [r for r in message.additionals if r.rdtype == 41]
        message.header.tc = True
        return message.to_wire()

    def _handle_udp(self, dgram: Datagram, host) -> None:
        limit = self._udp_payload_limit(dgram.payload)

        def respond(wire: bytes) -> None:
            if len(wire) > limit:
                wire = self._truncate(wire)
            reply = Datagram(
                src_ip=dgram.dst_ip,  # reply from the queried (anycast) address
                src_port=dgram.dst_port,
                dst_ip=dgram.src_ip,
                dst_port=dgram.src_port,
                payload=wire,
            )
            assert host.network is not None
            host.network.transmit(host, reply)

        self.handle_query_wire(dgram.payload, respond)

    def _accept_tcp(self, conn: SimTcpConnection) -> None:
        stream = _LengthPrefixedStream()

        def on_data(data: bytes) -> None:
            for wire in stream.feed(data):
                self.handle_query_wire(
                    wire, lambda response: conn.send(_LengthPrefixedStream.frame(response))
                )

        conn.on_data = on_data


class DoTFrontend(_FrontendBase):
    """DNS over TLS (RFC 7858): TLS on port 853, length-prefixed messages."""

    def __init__(self, deployment, site, tls_config: TlsServerConfig, rng: random.Random) -> None:
        super().__init__(deployment, site, rng)
        # DoT has no ALPN requirement in practice; accept anything offered.
        self.tls_config = TlsServerConfig(
            versions=tls_config.versions,
            alpn_preference=("dot",) + tuple(tls_config.alpn_preference),
            cert_chain_bytes=tls_config.cert_chain_bytes,
            crypto_delay_ms=tls_config.crypto_delay_ms,
        )
        site.host.listen_tcp(DOT_PORT, self._accept)

    def _accept(self, conn: SimTcpConnection) -> None:
        stream = _LengthPrefixedStream()
        tls = TlsServerConnection(conn, self.tls_config)

        def on_app_data(data: bytes) -> None:
            for wire in stream.feed(data):
                self.handle_query_wire(
                    wire,
                    lambda response: tls.send_application(
                        _LengthPrefixedStream.frame(response)
                    ),
                )

        tls.on_application_data = on_app_data


class DoHFrontend(_FrontendBase):
    """DNS over HTTPS (RFC 8484): TLS on 443, HTTP/2 or HTTP/1.1 by ALPN."""

    def __init__(self, deployment, site, tls_config: TlsServerConfig, rng: random.Random) -> None:
        super().__init__(deployment, site, rng)
        self.tls_config = tls_config
        site.host.listen_tcp(DOH_PORT, self._accept)

    def _accept(self, conn: SimTcpConnection) -> None:
        state: Dict[str, object] = {}
        tls = TlsServerConnection(conn, self.tls_config)

        def ensure_session() -> None:
            if "session" in state:
                return
            if tls.negotiated_alpn == "h2":
                state["session"] = H2ServerSession(
                    send=tls.send_application, on_request=handle_h2_request
                )
            else:
                state["session"] = H1RequestParser()

        def handle_h2_request(request: HttpRequest, stream_id: int) -> None:
            session = state["session"]
            assert isinstance(session, H2ServerSession)
            self._serve_http(
                request, lambda response: session.respond(stream_id, response)
            )

        def on_app_data(data: bytes) -> None:
            ensure_session()
            session = state["session"]
            if isinstance(session, H2ServerSession):
                session.feed(data)
            else:
                assert isinstance(session, H1RequestParser)
                for request in session.feed(data):
                    self._serve_http(
                        request,
                        lambda response: tls.send_application(encode_response(response)),
                    )

        tls.on_application_data = on_app_data

    def _serve_http(self, request: HttpRequest, send_http) -> None:
        if (
            request.method == "POST"
            and request.header("Content-Type") == CONTENT_TYPE_ODOH
        ):
            self._serve_oblivious(request, send_http)
            return
        try:
            wire = decode_doh_request(request, expected_path=self.deployment.doh_path)
        except DohCodecError as exc:
            status = getattr(exc, "status_hint", 400)
            send_http(encode_doh_error(status, str(exc)))
            return

        def respond(response_wire: bytes) -> None:
            min_ttl = _min_answer_ttl(response_wire)
            send_http(encode_doh_response(response_wire, min_ttl=min_ttl))

        if not self.handle_query_wire(wire, respond):
            send_http(encode_doh_error(400, "malformed DNS message"))

    def _serve_oblivious(self, request: HttpRequest, send_http) -> None:
        """Answer an ODoH target request (sealed query in, sealed answer out)."""
        if not self.deployment.supports_odoh:
            send_http(encode_doh_error(415, "oblivious DNS not supported"))
            return
        try:
            wire, key_id = open_query(request.body)
        except OdohCodecError as exc:
            send_http(encode_doh_error(400, str(exc)))
            return

        def respond(response_wire: bytes) -> None:
            sealed = seal_response(response_wire, key_id)
            send_http(
                HttpResponse(
                    status=200,
                    headers={"Content-Type": CONTENT_TYPE_ODOH},
                    body=sealed,
                )
            )

        if not self.handle_query_wire(wire, respond):
            send_http(encode_doh_error(400, "malformed sealed DNS message"))


class DoQFrontend(_FrontendBase):
    """DNS over QUIC (RFC 9250): QUIC on UDP 853, one query per stream.

    Each stream carries one 2-byte-length-prefixed DNS message in each
    direction; the server closes the stream with its response.
    """

    def __init__(self, deployment, site, rng: random.Random) -> None:
        super().__init__(deployment, site, rng)
        from repro.quicsim.connection import QuicConfig, QuicServerListener

        self.listener = QuicServerListener(
            site.host, DOQ_PORT, self._on_stream, QuicConfig()
        )

    def _on_stream(self, conn, stream_id: int, data: bytes) -> None:
        messages = _LengthPrefixedStream().feed(data)
        if not messages:
            conn.respond_stream(stream_id, b"")
            return
        self.handle_query_wire(
            messages[0],
            lambda response: conn.respond_stream(
                stream_id, _LengthPrefixedStream.frame(response)
            ),
        )


class Doh3Frontend(_FrontendBase):
    """DoH over HTTP/3 (RFC 9114 on QUIC, UDP 443): one exchange per stream.

    Reuses the DoH codec path — request path/method validation, cache-
    control from the minimum answer TTL, HTTP error statuses — on top of
    the HTTP/3 stream framing.  ODoH stays DoH/TCP-only.
    """

    def __init__(self, deployment, site, rng: random.Random) -> None:
        super().__init__(deployment, site, rng)
        from repro.quicsim.connection import QuicConfig, QuicServerListener

        self.listener = QuicServerListener(
            site.host, DOH3_PORT, self._on_stream, QuicConfig()
        )

    def _on_stream(self, conn, stream_id: int, data: bytes) -> None:
        from repro.httpsim.h3 import (
            H3CodecError,
            decode_h3_request,
            encode_h3_response,
        )

        def send_http(response: HttpResponse) -> None:
            conn.respond_stream(stream_id, encode_h3_response(response))

        try:
            request = decode_h3_request(data)
        except H3CodecError:
            send_http(encode_doh_error(400, "malformed HTTP/3 request"))
            return
        try:
            wire = decode_doh_request(request, expected_path=self.deployment.doh_path)
        except DohCodecError as exc:
            status = getattr(exc, "status_hint", 400)
            send_http(encode_doh_error(status, str(exc)))
            return

        def respond(response_wire: bytes) -> None:
            min_ttl = _min_answer_ttl(response_wire)
            send_http(encode_doh_response(response_wire, min_ttl=min_ttl))

        if not self.handle_query_wire(wire, respond):
            send_http(encode_doh_error(400, "malformed DNS message"))


def _min_answer_ttl(response_wire: bytes) -> Optional[int]:
    try:
        message = Message.from_wire(response_wire)
    except DnsWireError:
        return None
    ttls = [record.ttl for record in message.answers]
    return min(ttls) if ttls else None
