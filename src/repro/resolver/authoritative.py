"""Authoritative DNS server logic and its UDP frontend.

Implements the RFC 1035 authoritative answering algorithm over a
:class:`~repro.resolver.zones.ZoneSet`: exact answers (AA bit set), CNAME
chasing within the server's own zones, downward referrals with glue, NODATA
with SOA, and NXDOMAIN with SOA.  Unknown zones are answered with REFUSED.
"""

from __future__ import annotations

from typing import List, Optional

from repro.dnswire.builder import make_response
from repro.dnswire.message import Message, ResourceRecord
from repro.dnswire.name import Name
from repro.dnswire.types import (
    RCODE_FORMERR,
    RCODE_NXDOMAIN,
    RCODE_REFUSED,
    TYPE_A,
    TYPE_AAAA,
    TYPE_CNAME,
)
from repro.errors import DnsWireError
from repro.netsim.host import Host
from repro.netsim.packet import Datagram
from repro.resolver.zones import Zone, ZoneSet

#: Per-query processing time of an authoritative server (ms).
AUTH_PROCESSING_MS = 0.2

#: Maximum CNAME chain length chased within one response.
MAX_CNAME_CHAIN = 8


class AuthoritativeServer:
    """Answers queries for the zones it serves."""

    def __init__(self, zones: ZoneSet) -> None:
        self.zones = zones
        self.queries_served = 0

    # -- core answering algorithm -------------------------------------------

    def answer(self, query: Message) -> Message:
        """Build the authoritative response for ``query``."""
        self.queries_served += 1
        question = query.question
        if question is None:
            return make_response(query, rcode=RCODE_FORMERR, recursion_available=False)
        zone = self.zones.zone_for(question.qname)
        if zone is None:
            return make_response(query, rcode=RCODE_REFUSED, recursion_available=False)

        delegation = zone.covering_delegation(question.qname)
        if delegation is not None:
            child, ns_records = delegation
            glue = self._glue_for(zone, ns_records)
            return make_response(
                query,
                authorities=ns_records,
                additionals=glue,
                authoritative=False,
                recursion_available=False,
            )

        answers: List[ResourceRecord] = []
        qname = question.qname
        for _hop in range(MAX_CNAME_CHAIN):
            exact = zone.lookup(qname, question.qtype)
            if exact:
                answers.extend(exact)
                break
            cnames = zone.lookup(qname, TYPE_CNAME)
            if cnames and question.qtype != TYPE_CNAME:
                answers.extend(cnames)
                target = cnames[0].rdata.target  # type: ignore[attr-defined]
                next_zone = self.zones.zone_for(target)
                if next_zone is None:
                    break  # target is external; the resolver chases it
                zone = next_zone
                qname = target
                continue
            break

        if answers:
            return make_response(
                query, answers=answers, authoritative=True, recursion_available=False
            )

        soa = zone.soa()
        authorities = [soa] if soa is not None else []
        if zone.has_name(qname):
            return make_response(  # NODATA
                query,
                authorities=authorities,
                authoritative=True,
                recursion_available=False,
            )
        return make_response(  # NXDOMAIN
            query,
            authorities=authorities,
            rcode=RCODE_NXDOMAIN,
            authoritative=True,
            recursion_available=False,
        )

    def _glue_for(self, zone: Zone, ns_records: List[ResourceRecord]) -> List[ResourceRecord]:
        glue = []
        for ns_record in ns_records:
            target: Optional[Name] = getattr(ns_record.rdata, "target", None)
            if target is None:
                continue
            for rdtype in (TYPE_A, TYPE_AAAA):
                glue.extend(zone.lookup(target, rdtype))
        return glue

    # -- network frontend -----------------------------------------------------

    def serve_udp(self, host: Host, port: int = 53) -> None:
        """Bind the server to UDP ``port`` on ``host``."""

        def handle(dgram: Datagram, server_host: Host) -> None:
            try:
                query = Message.from_wire(dgram.payload)
            except DnsWireError:
                return  # drop garbage, as real servers do
            response = self.answer(query)
            wire = response.to_wire()
            assert server_host.network is not None
            # Reply from the queried address/port so the client correlates.
            reply = Datagram(
                src_ip=dgram.dst_ip,
                src_port=dgram.dst_port,
                dst_ip=dgram.src_ip,
                dst_port=dgram.src_port,
                payload=wire,
            )
            server_host.network.loop.call_later(
                AUTH_PROCESSING_MS, server_host.network.transmit, server_host, reply
            )

        host.bind_udp(port, handle)
