"""Oblivious DoH proxy (RFC 9230 §4.2).

The proxy is an HTTPS service that relays sealed ODoH messages between
clients and targets: ``POST /proxy?targethost=<host>&targetpath=<path>``.
It never sees plaintext queries (the body is sealed to the target) and the
target never sees the client address (connections originate at the proxy).

The proxy keeps one upstream HTTP/2 connection per target alive, so the
steady-state cost of the relay is one extra network hop each way plus the
proxy's processing time — which is exactly the latency penalty the study's
``odoh-target-*`` rows exhibit.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Tuple
from urllib.parse import parse_qs, urlsplit

from repro.errors import HttpError
from repro.httpsim.h1 import HttpRequest, HttpResponse
from repro.httpsim.h2 import H2ClientSession, H2ServerSession
from repro.httpsim.odoh_codec import CONTENT_TYPE_ODOH
from repro.netsim.host import Host
from repro.netsim.sockets import SimTcpConnection
from repro.tlssim.handshake import (
    TlsClientConfig,
    TlsClientConnection,
    TlsServerConfig,
    TlsServerConnection,
)

PROXY_PATH = "/proxy"


class OdohProxy:
    """An oblivious relay host."""

    def __init__(
        self,
        host: Host,
        target_registry: Dict[str, str],
        processing_delay_ms: float = 0.4,
        tls_config: Optional[TlsServerConfig] = None,
    ) -> None:
        self.host = host
        self.target_registry = dict(target_registry)
        self.processing_delay_ms = processing_delay_ms
        self.tls_config = tls_config or TlsServerConfig()
        self.requests_relayed = 0
        self.relay_errors = 0
        self._upstreams: Dict[str, Tuple[TlsClientConnection, H2ClientSession]] = {}
        host.listen_tcp(443, self._accept)

    @property
    def _loop(self):
        assert self.host.network is not None
        return self.host.network.loop

    # -- client-facing side ----------------------------------------------------

    def _accept(self, conn: SimTcpConnection) -> None:
        tls = TlsServerConnection(conn, self.tls_config)
        state: Dict[str, H2ServerSession] = {}

        def handle_request(request: HttpRequest, stream_id: int) -> None:
            def send(response: HttpResponse) -> None:
                state["session"].respond(stream_id, response)

            self._loop.call_later(
                self.processing_delay_ms, self._relay, request, send
            )

        def on_app_data(data: bytes) -> None:
            if "session" not in state:
                state["session"] = H2ServerSession(
                    send=tls.send_application, on_request=handle_request
                )
            state["session"].feed(data)

        tls.on_application_data = on_app_data

    # -- relay logic -----------------------------------------------------------

    def _relay(self, request: HttpRequest, send: Callable[[HttpResponse], None]) -> None:
        split = urlsplit(request.path)
        if split.path != PROXY_PATH or request.method != "POST":
            send(HttpResponse(status=404, body=b"not a proxy endpoint"))
            return
        if request.header("Content-Type") != CONTENT_TYPE_ODOH:
            send(HttpResponse(status=415, body=b"expected oblivious DNS message"))
            return
        params = parse_qs(split.query)
        target_hosts = params.get("targethost")
        target_paths = params.get("targetpath", ["/dns-query"])
        if not target_hosts:
            send(HttpResponse(status=400, body=b"missing targethost"))
            return
        target_host = target_hosts[0]
        target_ip = self.target_registry.get(target_host)
        if target_ip is None:
            self.relay_errors += 1
            send(HttpResponse(status=502, body=b"unknown target"))
            return

        forwarded = HttpRequest(
            method="POST",
            path=target_paths[0],
            headers={"Content-Type": CONTENT_TYPE_ODOH},
            body=request.body,
        )

        def on_upstream_response(response: HttpResponse) -> None:
            self.requests_relayed += 1
            # Relay verbatim; the proxy cannot (and must not) inspect bodies.
            send(response)

        def on_failure(exc: Exception) -> None:
            self.relay_errors += 1
            self._upstreams.pop(target_host, None)
            send(HttpResponse(status=502, body=str(exc).encode()))

        self._with_upstream(
            target_host, target_ip,
            lambda session: self._safe_request(session, forwarded,
                                               on_upstream_response, on_failure),
            on_failure,
        )

    def _safe_request(self, session, request, on_response, on_failure) -> None:
        try:
            session.request(request, on_response)
        except HttpError as exc:
            on_failure(exc)

    def _with_upstream(
        self,
        target_host: str,
        target_ip: str,
        use: Callable[[H2ClientSession], None],
        on_failure: Callable[[Exception], None],
    ) -> None:
        """Run ``use(session)`` on a live upstream connection to the target."""
        existing = self._upstreams.get(target_host)
        if existing is not None:
            _tls, session = existing
            if not session.goaway_received:
                use(session)
                return
            del self._upstreams[target_host]

        def on_tls(tls: TlsClientConnection) -> None:
            session = H2ClientSession(
                send=tls.send_application, authority=target_host
            )
            tls.on_application_data = session.feed
            self._upstreams[target_host] = (tls, session)
            use(session)

        def on_tcp(conn: SimTcpConnection) -> None:
            TlsClientConnection(
                conn, target_host,
                TlsClientConfig(alpn=("h2",)),
                on_established=on_tls,
                on_error=on_failure,
            )

        SimTcpConnection.connect(
            self.host, target_ip, 443, on_tcp, on_error=on_failure
        )
