"""Zone data for the simulated DNS hierarchy.

The world has a real (if small) delegation tree::

    .  (root zone: NS for com/org/net + glue)
    ├── com.   (NS for google.com, amazon.com, …)
    ├── org.   (NS for wikipedia.org, …)
    └── net.

Leaf zones hold the A/AAAA/CNAME records the study queries.  The recursive
engine walks this tree with genuine referral responses, so cold-cache
resolution costs real round trips to root, TLD, and authoritative servers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from repro.dnswire.message import ResourceRecord
from repro.dnswire.name import Name
from repro.dnswire.rdata import ARdata, CnameRdata, NsRdata, SoaRdata, TxtRdata
from repro.dnswire.types import CLASS_IN, TYPE_A, TYPE_CNAME, TYPE_NS, TYPE_SOA, TYPE_TXT
from repro.errors import ZoneError

RRKey = Tuple[Name, int]


@dataclass
class Zone:
    """One authoritative zone: an origin plus its record sets."""

    origin: Name
    records: Dict[RRKey, List[ResourceRecord]] = field(default_factory=dict)
    #: Names of child zones delegated away from this zone.
    delegations: Dict[Name, List[ResourceRecord]] = field(default_factory=dict)

    def add(self, record: ResourceRecord) -> None:
        """Add one record; it must live at or under the origin."""
        if not record.name.is_subdomain_of(self.origin):
            raise ZoneError(f"{record.name} is outside zone {self.origin}")
        self.records.setdefault((record.name, record.rdtype), []).append(record)

    def add_delegation(self, child: Name, ns_records: List[ResourceRecord]) -> None:
        """Delegate ``child`` to the given NS records."""
        if not child.is_subdomain_of(self.origin) or child == self.origin:
            raise ZoneError(f"cannot delegate {child} from {self.origin}")
        self.delegations[child] = list(ns_records)

    def lookup(self, name: Name, rdtype: int) -> List[ResourceRecord]:
        """Records of the exact name/type (empty list if none)."""
        return list(self.records.get((name, rdtype), []))

    def names(self) -> Iterable[Name]:
        return {name for name, _rdtype in self.records}

    def covering_delegation(self, name: Name) -> Optional[Tuple[Name, List[ResourceRecord]]]:
        """The delegation covering ``name``, if any (longest match)."""
        best: Optional[Tuple[Name, List[ResourceRecord]]] = None
        for child, ns_records in self.delegations.items():
            if name.is_subdomain_of(child):
                if best is None or len(child.labels) > len(best[0].labels):
                    best = (child, ns_records)
        return best

    def soa(self) -> Optional[ResourceRecord]:
        soas = self.records.get((self.origin, TYPE_SOA), [])
        return soas[0] if soas else None

    def has_name(self, name: Name) -> bool:
        """True if any record (of any type) exists at ``name``."""
        return any(key[0] == name for key in self.records)


class ZoneSet:
    """All zones served by one authoritative server operator."""

    def __init__(self) -> None:
        self._zones: Dict[Name, Zone] = {}

    def add_zone(self, zone: Zone) -> Zone:
        if zone.origin in self._zones:
            raise ZoneError(f"duplicate zone {zone.origin}")
        self._zones[zone.origin] = zone
        return zone

    def zone_for(self, name: Name) -> Optional[Zone]:
        """The most specific zone containing ``name``."""
        best: Optional[Zone] = None
        for origin, zone in self._zones.items():
            if name.is_subdomain_of(origin):
                if best is None or len(origin.labels) > len(best.origin.labels):
                    best = zone
        return best

    def zone_at(self, origin: Name) -> Optional[Zone]:
        return self._zones.get(origin)

    @property
    def zones(self) -> List[Zone]:
        return list(self._zones.values())

    def __len__(self) -> int:
        return len(self._zones)


def _soa(origin: str, serial: int = 2024051200) -> ResourceRecord:
    name = Name.from_text(origin)
    return ResourceRecord(
        name=name,
        rdtype=TYPE_SOA,
        rdclass=CLASS_IN,
        ttl=3600,
        rdata=SoaRdata(
            mname=Name.from_text(f"ns1.{origin}" if origin != "." else "a.root-servers.net"),
            rname=Name.from_text(f"hostmaster.{origin}" if origin != "." else "nstld.verisign-grs.com"),
            serial=serial,
            refresh=7200,
            retry=900,
            expire=1209600,
            minimum=300,
        ),
    )


def _ns(owner: str, target: str, ttl: int = 172800) -> ResourceRecord:
    return ResourceRecord(
        name=Name.from_text(owner),
        rdtype=TYPE_NS,
        rdclass=CLASS_IN,
        ttl=ttl,
        rdata=NsRdata(Name.from_text(target)),
    )


def _a(owner: str, address: str, ttl: int = 300) -> ResourceRecord:
    return ResourceRecord(
        name=Name.from_text(owner),
        rdtype=TYPE_A,
        rdclass=CLASS_IN,
        ttl=ttl,
        rdata=ARdata(address),
    )


def _cname(owner: str, target: str, ttl: int = 300) -> ResourceRecord:
    return ResourceRecord(
        name=Name.from_text(owner),
        rdtype=TYPE_CNAME,
        rdclass=CLASS_IN,
        ttl=ttl,
        rdata=CnameRdata(Name.from_text(target)),
    )


def _txt(owner: str, text: str, ttl: int = 300) -> ResourceRecord:
    return ResourceRecord(
        name=Name.from_text(owner),
        rdtype=TYPE_TXT,
        rdclass=CLASS_IN,
        ttl=ttl,
        rdata=TxtRdata([text.encode("ascii")]),
    )


#: (nameserver hostname, glue address) pairs for the infrastructure servers.
#: Addresses live in the ``infra`` block; see :mod:`repro.geo.ipalloc`.
ROOT_SERVER_ADDRESSES = {
    "a.root-servers.net.": "199.7.0.1",
    "b.root-servers.net.": "199.7.0.2",
}
TLD_SERVER_ADDRESSES = {
    "a.gtld-servers.net.": "199.7.0.11",  # com/net
    "b.gtld-servers.net.": "199.7.0.12",
    "a0.org.afilias-nst.org.": "199.7.0.21",  # org
}
AUTH_SERVER_ADDRESSES = {
    "ns1.google.com.": "100.64.0.1",
    "ns1.amazon.com.": "100.64.0.2",
    "ns1.wikipedia.org.": "100.64.0.3",
    "ns1.example-sites.net.": "100.64.0.4",
}

#: Study target domains and their answer addresses.
STUDY_DOMAINS = {
    "google.com.": "142.250.64.78",
    "amazon.com.": "176.32.103.205",
    "wikipedia.com.": "208.80.154.232",  # CNAME chain to wikipedia.org
    "wikipedia.org.": "208.80.154.224",
    "example-sites.net.": "100.64.1.1",
}

#: TTL used for the study domains' A records (seconds).
#:
#: Real resolvers keep these extremely popular names permanently resident:
#: even with a 300 s record TTL, continuous background demand from other
#: clients re-fetches them long before expiry.  The simulated world has no
#: background client population, so the long TTL stands in for that
#: demand — it makes the measurement campaigns see the same steady-state
#: cache-hit behaviour the paper's method section assumes ("most people
#: query sites that are already in cache").
STUDY_TTL = 30 * 24 * 3600


def build_world_zones() -> ZoneSet:
    """Build the full zone tree used by the simulated Internet."""
    zones = ZoneSet()

    # Root zone: delegations for com/org/net plus glue.
    root = Zone(Name.root())
    root.add(_soa("."))
    for ns_host, address in ROOT_SERVER_ADDRESSES.items():
        root.add(_ns(".", ns_host, ttl=518400))
        root.add(_a(ns_host, address, ttl=518400))
    for tld in ("com.", "net."):
        delegation = [_ns(tld, "a.gtld-servers.net."), _ns(tld, "b.gtld-servers.net.")]
        for record in delegation:
            root.add(record)
        root.add_delegation(Name.from_text(tld), delegation)
    org_delegation = [_ns("org.", "a0.org.afilias-nst.org.")]
    for record in org_delegation:
        root.add(record)
    root.add_delegation(Name.from_text("org."), org_delegation)
    for ns_host, address in TLD_SERVER_ADDRESSES.items():
        root.add(_a(ns_host, address, ttl=518400))
    zones.add_zone(root)

    # com zone: delegations to google.com / amazon.com.
    com = Zone(Name.from_text("com."))
    com.add(_soa("com."))
    com.add(_ns("com.", "a.gtld-servers.net."))
    com.add(_ns("com.", "b.gtld-servers.net."))
    for domain, ns_host in (("google.com.", "ns1.google.com."), ("amazon.com.", "ns1.amazon.com.")):
        delegation = [_ns(domain, ns_host)]
        for record in delegation:
            com.add(record)
        com.add(_a(ns_host, AUTH_SERVER_ADDRESSES[ns_host]))
        com.add_delegation(Name.from_text(domain), delegation)
    # wikipedia.com is a real registration that CNAMEs into wikipedia.org.
    # Its nameserver is out-of-bailiwick (under .org), so this delegation is
    # glueless — the recursive engine must resolve ns1.wikipedia.org first.
    wikipedia_com = [_ns("wikipedia.com.", "ns1.wikipedia.org.")]
    for record in wikipedia_com:
        com.add(record)
    com.add_delegation(Name.from_text("wikipedia.com."), wikipedia_com)
    zones.add_zone(com)

    # org zone: delegation to wikipedia.org.
    org = Zone(Name.from_text("org."))
    org.add(_soa("org."))
    org.add(_ns("org.", "a0.org.afilias-nst.org."))
    wikipedia_org = [_ns("wikipedia.org.", "ns1.wikipedia.org.")]
    for record in wikipedia_org:
        org.add(record)
    org.add(_a("ns1.wikipedia.org.", AUTH_SERVER_ADDRESSES["ns1.wikipedia.org."]))
    org.add_delegation(Name.from_text("wikipedia.org."), wikipedia_org)
    zones.add_zone(org)

    # net zone: delegation to example-sites.net (used by tests/examples).
    net = Zone(Name.from_text("net."))
    net.add(_soa("net."))
    net.add(_ns("net.", "a.gtld-servers.net."))
    net.add(_ns("net.", "b.gtld-servers.net."))
    example_net = [_ns("example-sites.net.", "ns1.example-sites.net.")]
    for record in example_net:
        net.add(record)
    net.add(_a("ns1.example-sites.net.", AUTH_SERVER_ADDRESSES["ns1.example-sites.net."]))
    net.add_delegation(Name.from_text("example-sites.net."), example_net)
    zones.add_zone(net)

    # Leaf zones.
    google = Zone(Name.from_text("google.com."))
    google.add(_soa("google.com."))
    google.add(_ns("google.com.", "ns1.google.com."))
    google.add(_a("ns1.google.com.", AUTH_SERVER_ADDRESSES["ns1.google.com."]))
    google.add(_a("google.com.", STUDY_DOMAINS["google.com."], ttl=STUDY_TTL))
    google.add(_a("www.google.com.", STUDY_DOMAINS["google.com."], ttl=STUDY_TTL))
    google.add(_txt("google.com.", "v=spf1 include:_spf.google.com ~all"))
    zones.add_zone(google)

    amazon = Zone(Name.from_text("amazon.com."))
    amazon.add(_soa("amazon.com."))
    amazon.add(_ns("amazon.com.", "ns1.amazon.com."))
    amazon.add(_a("ns1.amazon.com.", AUTH_SERVER_ADDRESSES["ns1.amazon.com."]))
    amazon.add(_a("amazon.com.", STUDY_DOMAINS["amazon.com."], ttl=STUDY_TTL))
    amazon.add(_cname("www.amazon.com.", "amazon.com.", ttl=STUDY_TTL))
    zones.add_zone(amazon)

    wikipedia_com_zone = Zone(Name.from_text("wikipedia.com."))
    wikipedia_com_zone.add(_soa("wikipedia.com."))
    wikipedia_com_zone.add(_ns("wikipedia.com.", "ns1.wikipedia.org."))
    wikipedia_com_zone.add(
        _cname("wikipedia.com.", "wikipedia.org.", ttl=STUDY_TTL)
    )
    zones.add_zone(wikipedia_com_zone)

    wikipedia_org_zone = Zone(Name.from_text("wikipedia.org."))
    wikipedia_org_zone.add(_soa("wikipedia.org."))
    wikipedia_org_zone.add(_ns("wikipedia.org.", "ns1.wikipedia.org."))
    wikipedia_org_zone.add(_a("ns1.wikipedia.org.", AUTH_SERVER_ADDRESSES["ns1.wikipedia.org."]))
    wikipedia_org_zone.add(_a("wikipedia.org.", STUDY_DOMAINS["wikipedia.org."], ttl=STUDY_TTL))
    wikipedia_org_zone.add(_a("www.wikipedia.org.", STUDY_DOMAINS["wikipedia.org."], ttl=STUDY_TTL))
    zones.add_zone(wikipedia_org_zone)

    example_zone = Zone(Name.from_text("example-sites.net."))
    example_zone.add(_soa("example-sites.net."))
    example_zone.add(_ns("example-sites.net.", "ns1.example-sites.net."))
    example_zone.add(_a("ns1.example-sites.net.", AUTH_SERVER_ADDRESSES["ns1.example-sites.net."]))
    example_zone.add(_a("example-sites.net.", STUDY_DOMAINS["example-sites.net."], ttl=STUDY_TTL))
    for index in range(1, 21):
        example_zone.add(_a(f"host{index}.example-sites.net.", f"100.64.1.{index + 1}", ttl=60))
    # A deliberately oversized RRset: its TXT answer (~4 kB) exceeds any
    # UDP payload budget, exercising TC-bit truncation + TCP fallback.
    for index in range(32):
        example_zone.add(
            _txt(
                "bulk.example-sites.net.",
                f"chunk-{index:02d}-" + "x" * 100,
                ttl=60,
            )
        )
    zones.add_zone(example_zone)

    return zones
