"""TTL- and LRU-bounded DNS cache.

Entries are keyed by ``(name, type, class)`` and expire at their TTL
horizon measured on the virtual clock.  Hits return records with TTLs
decremented by the time spent in cache, as a real resolver does.  Negative
answers (NXDOMAIN / NODATA) are cached under the SOA-minimum convention
(RFC 2308).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.dnswire.message import ResourceRecord
from repro.dnswire.name import Name

CacheKey = Tuple[Name, int, int]


@dataclass
class CacheStats:
    """Hit/miss counters for observability and tests."""

    hits: int = 0
    misses: int = 0
    expirations: int = 0
    evictions: int = 0
    negative_hits: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


@dataclass
class _Entry:
    records: List[ResourceRecord]
    stored_at: float
    expires_at: float
    negative_rcode: Optional[int] = None  # set for cached negative answers


@dataclass
class CachedAnswer:
    """A cache hit: records with decremented TTLs, or a negative rcode."""

    records: List[ResourceRecord] = field(default_factory=list)
    negative_rcode: Optional[int] = None

    @property
    def is_negative(self) -> bool:
        return self.negative_rcode is not None


class DnsCache:
    """The resolver's answer cache."""

    def __init__(self, max_entries: int = 10_000) -> None:
        if max_entries <= 0:
            raise ValueError("max_entries must be positive")
        self.max_entries = max_entries
        self._entries: "OrderedDict[CacheKey, _Entry]" = OrderedDict()
        self.stats = CacheStats()

    def get(self, key: CacheKey, now_ms: float) -> Optional[CachedAnswer]:
        """Look up an answer; None on miss or expiry."""
        entry = self._entries.get(key)
        if entry is None:
            self.stats.misses += 1
            return None
        if now_ms >= entry.expires_at:
            del self._entries[key]
            self.stats.expirations += 1
            self.stats.misses += 1
            return None
        self._entries.move_to_end(key)
        age_seconds = int((now_ms - entry.stored_at) / 1000.0)
        if entry.negative_rcode is not None:
            self.stats.hits += 1
            self.stats.negative_hits += 1
            return CachedAnswer(negative_rcode=entry.negative_rcode)
        self.stats.hits += 1
        records = [r.with_ttl(max(0, r.ttl - age_seconds)) for r in entry.records]
        return CachedAnswer(records=records)

    def put(self, key: CacheKey, records: List[ResourceRecord], now_ms: float) -> None:
        """Cache a positive answer; lifetime is the minimum record TTL."""
        if not records:
            return
        ttl_seconds = min(record.ttl for record in records)
        self._store(key, _Entry(records=list(records), stored_at=now_ms,
                                expires_at=now_ms + ttl_seconds * 1000.0))

    def put_negative(self, key: CacheKey, rcode: int, ttl_seconds: int, now_ms: float) -> None:
        """Cache a negative answer for ``ttl_seconds`` (RFC 2308)."""
        self._store(
            key,
            _Entry(
                records=[],
                stored_at=now_ms,
                expires_at=now_ms + ttl_seconds * 1000.0,
                negative_rcode=rcode,
            ),
        )

    def _store(self, key: CacheKey, entry: _Entry) -> None:
        if key in self._entries:
            del self._entries[key]
        self._entries[key] = entry
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)
            self.stats.evictions += 1

    def flush(self) -> None:
        self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: CacheKey) -> bool:
        return key in self._entries
