"""Recursive resolver substrate.

A resolver *deployment* (one hostname from the study, e.g. ``dns.google``)
consists of one or more *sites*; each site is a simulated host running a
:class:`~repro.resolver.recursive.RecursiveResolver` behind Do53, DoT and
DoH frontends.  Mainstream resolvers announce a shared anycast address
from many sites; most non-mainstream resolvers run a single unicast site,
which is precisely the property the paper measures.

Resolution is genuine: on a cache miss the recursive engine walks the
simulated root → TLD → authoritative hierarchy with real RFC 1035 wire
messages over simulated UDP, follows referrals and CNAMEs, and caches by
TTL.  Cache hits — the paper's measurement regime — answer after a
processing delay drawn from the deployment's service-time distribution.
"""

from repro.resolver.cache import CacheStats, DnsCache
from repro.resolver.zones import Zone, ZoneSet, build_world_zones
from repro.resolver.authoritative import AuthoritativeServer
from repro.resolver.recursive import RecursiveResolver, RootHints
from repro.resolver.frontends import Do53Frontend, DoHFrontend, DoTFrontend
from repro.resolver.deployment import (
    ProcessingModel,
    ReliabilityModel,
    ResolverDeployment,
    ResolverSite,
)

__all__ = [
    "AuthoritativeServer",
    "CacheStats",
    "DnsCache",
    "Do53Frontend",
    "DoHFrontend",
    "DoTFrontend",
    "ProcessingModel",
    "RecursiveResolver",
    "ReliabilityModel",
    "ResolverDeployment",
    "ResolverSite",
    "RootHints",
    "Zone",
    "ZoneSet",
    "build_world_zones",
]
