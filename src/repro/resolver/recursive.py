"""The recursive (iterative) resolution engine.

On a cache miss the engine walks the delegation tree — root, TLD,
authoritative — with genuine wire-format queries over simulated UDP,
following referrals and CNAME chains, caching every RRset and negative
answer it learns.  Identical concurrent questions are coalesced into one
in-flight resolution, as production resolvers do.

The engine is callback-driven (the simulator is event-driven, not
threaded): ``resolve_question(name, rdtype, callback)`` fires the callback
exactly once with a :class:`ResolutionResult`.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.dnswire.builder import make_query
from repro.dnswire.message import Message, ResourceRecord
from repro.dnswire.name import Name
from repro.dnswire.types import (
    CLASS_IN,
    RCODE_NOERROR,
    RCODE_NXDOMAIN,
    RCODE_SERVFAIL,
    TYPE_A,
    TYPE_CNAME,
    TYPE_NS,
    TYPE_SOA,
)
from repro.errors import DnsWireError
from repro.netsim.host import Host
from repro.netsim.packet import Datagram
from repro.netsim.sockets import SimUdpSocket
from repro.resolver.cache import DnsCache

#: Per-server query timeout and per-question retry budget.
SERVER_TIMEOUT_MS = 1500.0
MAX_SERVER_ATTEMPTS = 6

#: Safety limits (mirroring unbound/bind defaults in spirit).
MAX_REFERRALS = 16
MAX_CNAME_DEPTH = 8
MAX_GLUE_FETCH_DEPTH = 4

#: Negative-cache TTL fallback when no SOA is present (seconds).
DEFAULT_NEGATIVE_TTL = 60


@dataclass
class RootHints:
    """Bootstrap addresses of the root servers."""

    addresses: List[str]

    def __post_init__(self) -> None:
        if not self.addresses:
            raise ValueError("root hints cannot be empty")


@dataclass
class ResolutionResult:
    """Outcome of one resolution."""

    rcode: int = RCODE_NOERROR
    records: List[ResourceRecord] = field(default_factory=list)
    from_cache: bool = False
    upstream_queries: int = 0

    @property
    def ok(self) -> bool:
        return self.rcode == RCODE_NOERROR


QuestionKey = Tuple[Name, int]
Callback = Callable[[ResolutionResult], None]


class RecursiveResolver:
    """Iterative resolution engine bound to one simulated host."""

    def __init__(
        self,
        host: Host,
        cache: DnsCache,
        root_hints: RootHints,
        rng: Optional[random.Random] = None,
    ) -> None:
        self.host = host
        self.cache = cache
        self.root_hints = root_hints
        self.rng = rng if rng is not None else random.Random(0)
        self._pending: Dict[QuestionKey, List[Callback]] = {}
        self.total_questions = 0
        self.total_upstream_queries = 0

    @property
    def _loop(self):
        assert self.host.network is not None
        return self.host.network.loop

    # -- public API -----------------------------------------------------------

    def resolve_question(self, qname: Name, rdtype: int, callback: Callback) -> None:
        """Resolve ``qname``/``rdtype``; fires ``callback`` exactly once."""
        self.total_questions += 1
        key = (qname, rdtype)
        cached = self._answer_from_cache(qname, rdtype)
        if cached is not None:
            callback(cached)
            return
        waiters = self._pending.get(key)
        if waiters is not None:
            waiters.append(callback)  # coalesce with the in-flight resolution
            return
        self._pending[key] = [callback]
        state = _ResolutionState(engine=self, qname=qname, rdtype=rdtype)
        state.start()

    # -- cache plumbing -----------------------------------------------------------

    def _answer_from_cache(self, qname: Name, rdtype: int) -> Optional[ResolutionResult]:
        """Full cache answer (following cached CNAMEs), or None."""
        now = self._loop.now
        chain: List[ResourceRecord] = []
        name = qname
        for _hop in range(MAX_CNAME_DEPTH):
            hit = self.cache.get((name, rdtype, CLASS_IN), now)
            if hit is not None:
                if hit.is_negative:
                    return ResolutionResult(
                        rcode=hit.negative_rcode or RCODE_NXDOMAIN,
                        records=chain,
                        from_cache=True,
                    )
                return ResolutionResult(records=chain + hit.records, from_cache=True)
            if rdtype != TYPE_CNAME:
                cname_hit = self.cache.get((name, TYPE_CNAME, CLASS_IN), now)
                if cname_hit is not None and not cname_hit.is_negative:
                    chain.extend(cname_hit.records)
                    name = cname_hit.records[0].rdata.target  # type: ignore[attr-defined]
                    continue
            return None
        return None

    def _cache_rrsets(self, records: List[ResourceRecord]) -> None:
        """Cache records grouped into RRsets by (name, type)."""
        now = self._loop.now
        rrsets: Dict[QuestionKey, List[ResourceRecord]] = {}
        for record in records:
            rrsets.setdefault((record.name, record.rdtype), []).append(record)
        for (name, rdtype), rrset in rrsets.items():
            self.cache.put((name, rdtype, CLASS_IN), rrset, now)

    def _complete(self, key: QuestionKey, result: ResolutionResult) -> None:
        waiters = self._pending.pop(key, [])
        for callback in waiters:
            callback(result)

    # -- nameserver selection ------------------------------------------------------

    def _closest_known_servers(self, qname: Name) -> List[str]:
        """Addresses of the closest enclosing zone's nameservers we know.

        Walks from ``qname`` toward the root looking for cached NS RRsets
        with resolvable (cached) addresses; falls back to the root hints.
        """
        now = self._loop.now
        zone = qname
        while True:
            hit = self.cache.get((zone, TYPE_NS, CLASS_IN), now)
            if hit is not None and not hit.is_negative:
                addresses = []
                for ns_record in hit.records:
                    target = getattr(ns_record.rdata, "target", None)
                    if target is None:
                        continue
                    glue = self.cache.get((target, TYPE_A, CLASS_IN), now)
                    if glue is not None and not glue.is_negative:
                        addresses.extend(
                            getattr(r.rdata, "address")
                            for r in glue.records
                            if hasattr(r.rdata, "address")
                        )
                if addresses:
                    return addresses
            if zone.is_root:
                return list(self.root_hints.addresses)
            zone = zone.parent()

    # -- one upstream query ----------------------------------------------------------

    def query_server(
        self,
        server_ip: str,
        qname: Name,
        rdtype: int,
        on_response: Callable[[Optional[Message]], None],
        timeout_ms: float = SERVER_TIMEOUT_MS,
    ) -> None:
        """Send one non-recursive query; ``on_response(None)`` on timeout."""
        self.total_upstream_queries += 1
        query = make_query(qname, rdtype, recursion_desired=False, rng=self.rng)
        socket = SimUdpSocket(self.host)
        finished = [False]

        def finish(message: Optional[Message]) -> None:
            if finished[0]:
                return
            finished[0] = True
            timer.cancel()
            socket.close()
            on_response(message)

        timer = self._loop.call_later(timeout_ms, finish, None)
        socket.on_datagram = lambda dgram: self._validate_and_finish(dgram, query, finish)
        socket.sendto(query.to_wire(), server_ip, 53)

    @staticmethod
    def _validate_and_finish(
        dgram: Datagram, query: Message, finish: Callable[[Optional[Message]], None]
    ) -> None:
        try:
            message = Message.from_wire(dgram.payload)
        except DnsWireError:
            return
        if message.header.msg_id != query.header.msg_id:
            return
        finish(message)


@dataclass
class _ResolutionState:
    """State of one in-flight resolution (one question key)."""

    engine: RecursiveResolver
    qname: Name
    rdtype: int
    chain: List[ResourceRecord] = field(default_factory=list)
    referrals: int = 0
    cname_hops: int = 0
    attempts: int = 0
    glue_depth: int = 0

    @property
    def key(self) -> QuestionKey:
        return (self.qname, self.rdtype)

    def start(self) -> None:
        self._ask(self._current_name())

    def _current_name(self) -> Name:
        if self.chain:
            target = getattr(self.chain[-1].rdata, "target", None)
            if target is not None:
                return target
        return self.qname

    def _fail(self, rcode: int = RCODE_SERVFAIL) -> None:
        self.engine._complete(self.key, ResolutionResult(rcode=rcode, records=list(self.chain)))

    def _succeed(self, records: List[ResourceRecord], rcode: int = RCODE_NOERROR) -> None:
        self.engine._complete(
            self.key,
            ResolutionResult(rcode=rcode, records=self.chain + records, from_cache=False),
        )

    def _ask(self, name: Name) -> None:
        servers = self.engine._closest_known_servers(name)
        self._try_servers(name, servers, 0)

    def _try_servers(self, name: Name, servers: List[str], index: int) -> None:
        if index >= len(servers) or self.attempts >= MAX_SERVER_ATTEMPTS:
            self._fail()
            return
        self.attempts += 1
        server_ip = servers[index]

        def on_response(message: Optional[Message]) -> None:
            if message is None or message.rcode not in (RCODE_NOERROR, RCODE_NXDOMAIN):
                self._try_servers(name, servers, index + 1)  # next server
                return
            self._process_response(name, message)

        self.engine.query_server(server_ip, name, self.rdtype, on_response)

    def _process_response(self, name: Name, message: Message) -> None:
        engine = self.engine
        now = engine._loop.now

        if message.rcode == RCODE_NXDOMAIN:
            ttl = self._soa_minimum(message)
            engine.cache.put_negative((name, self.rdtype, CLASS_IN), RCODE_NXDOMAIN, ttl, now)
            self._succeed([], rcode=RCODE_NXDOMAIN)
            return

        answers = [r for r in message.answers if r.rdclass == CLASS_IN]
        if answers:
            engine._cache_rrsets(answers)
            wanted = [r for r in answers if r.name == name and r.rdtype == self.rdtype]
            if wanted:
                self._succeed(answers)
                return
            cnames = [r for r in answers if r.name == name and r.rdtype == TYPE_CNAME]
            if cnames and self.rdtype != TYPE_CNAME:
                self.cname_hops += 1
                if self.cname_hops > MAX_CNAME_DEPTH:
                    self._fail()
                    return
                self.chain.extend(answers)
                target = cnames[-1].rdata.target  # type: ignore[attr-defined]
                # The rest of the answer may already resolve the target.
                resolved_here = [
                    r for r in answers if r.name == target and r.rdtype == self.rdtype
                ]
                if resolved_here:
                    self._succeed([])
                    return
                cached = engine._answer_from_cache(target, self.rdtype)
                if cached is not None and cached.ok and cached.records:
                    self._succeed(cached.records)
                    return
                self._ask(target)
                return
            # Answer section didn't contain what we asked for: give up.
            self._fail()
            return

        referral_ns = [r for r in message.authorities if r.rdtype == TYPE_NS]
        if referral_ns:
            self.referrals += 1
            if self.referrals > MAX_REFERRALS:
                self._fail()
                return
            glue = [r for r in message.additionals if r.rdtype == TYPE_A]
            engine._cache_rrsets(referral_ns + glue)
            addresses = [getattr(r.rdata, "address") for r in glue if hasattr(r.rdata, "address")]
            if addresses:
                self._try_servers(name, addresses, 0)
                return
            # Glueless delegation: resolve a nameserver address first.
            self._fetch_glue(name, referral_ns)
            return

        # NODATA: cache negatively under the SOA minimum.
        ttl = self._soa_minimum(message)
        engine.cache.put_negative((name, self.rdtype, CLASS_IN), RCODE_NOERROR, ttl, now)
        self._succeed([])

    def _fetch_glue(self, name: Name, referral_ns: List[ResourceRecord]) -> None:
        if self.glue_depth >= MAX_GLUE_FETCH_DEPTH:
            self._fail()
            return
        self.glue_depth += 1
        targets = [
            getattr(r.rdata, "target")
            for r in referral_ns
            if hasattr(r.rdata, "target")
        ]
        if not targets:
            self._fail()
            return
        target = targets[0]

        def on_glue(result: ResolutionResult) -> None:
            addresses = [
                getattr(r.rdata, "address")
                for r in result.records
                if hasattr(r.rdata, "address")
            ]
            if not result.ok or not addresses:
                self._fail()
                return
            self._try_servers(name, addresses, 0)

        self.engine.resolve_question(target, TYPE_A, on_glue)

    @staticmethod
    def _soa_minimum(message: Message) -> int:
        for record in message.authorities:
            if record.rdtype == TYPE_SOA:
                minimum = getattr(record.rdata, "minimum", None)
                if minimum is not None:
                    return min(int(minimum), 3600)
        return DEFAULT_NEGATIVE_TTL
