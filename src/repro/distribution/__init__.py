"""Query distribution across multiple encrypted resolvers.

The paper's discussion (and the related work it cites: Hoang et al.'s
K-resolver, Hounsel et al.'s distribution study) motivates spreading DNS
queries over several encrypted resolvers so that no single operator can
assemble a complete browsing profile.  The measurement results are exactly
the input such a scheme needs — which resolvers are viable from a given
vantage point.

This package implements the standard strategies and an evaluator that
measures both sides of the trade-off on the simulated platform:

* **performance** — response-time distribution under each strategy;
* **privacy** — how queries (and distinct domains) spread over resolvers:
  per-resolver share, Shannon entropy, and profiling exposure.
"""

from repro.distribution.strategies import (
    HashStickyStrategy,
    RacingStrategy,
    RoundRobinStrategy,
    SingleResolverStrategy,
    Strategy,
    UniformRandomStrategy,
    WeightedStrategy,
)
from repro.distribution.evaluator import (
    DistributionOutcome,
    PrivacyMetrics,
    evaluate_strategy,
)

__all__ = [
    "DistributionOutcome",
    "HashStickyStrategy",
    "PrivacyMetrics",
    "RacingStrategy",
    "RoundRobinStrategy",
    "SingleResolverStrategy",
    "Strategy",
    "UniformRandomStrategy",
    "WeightedStrategy",
    "evaluate_strategy",
]
