"""Resolver-selection strategies.

Every strategy answers one question per query: *which resolver(s) should
this query go to?*  Returning more than one hostname means the client
races them and takes the first response (Hounsel et al.'s "race" policy).
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from repro.errors import CampaignConfigError


class Strategy:
    """Base class: subclasses implement :meth:`pick`."""

    name: str = "abstract"

    def pick(self, domain: str, rng: random.Random) -> List[str]:
        """Resolver hostnames to query for ``domain`` (>=1; first-wins)."""
        raise NotImplementedError

    @staticmethod
    def _require_resolvers(resolvers: Sequence[str]) -> List[str]:
        if not resolvers:
            raise CampaignConfigError("strategy needs at least one resolver")
        return list(resolvers)


@dataclass
class SingleResolverStrategy(Strategy):
    """The browser default: every query to one resolver."""

    resolver: str
    name: str = "single"

    def pick(self, domain: str, rng: random.Random) -> List[str]:
        return [self.resolver]


class RoundRobinStrategy(Strategy):
    """Cycle through the resolver list query by query."""

    name = "round-robin"

    def __init__(self, resolvers: Sequence[str]) -> None:
        self.resolvers = self._require_resolvers(resolvers)
        self._next = 0

    def pick(self, domain: str, rng: random.Random) -> List[str]:
        choice = self.resolvers[self._next % len(self.resolvers)]
        self._next += 1
        return [choice]


class UniformRandomStrategy(Strategy):
    """Independent uniform choice per query (K-resolver's basic mode)."""

    name = "uniform-random"

    def __init__(self, resolvers: Sequence[str]) -> None:
        self.resolvers = self._require_resolvers(resolvers)

    def pick(self, domain: str, rng: random.Random) -> List[str]:
        return [rng.choice(self.resolvers)]


class HashStickyStrategy(Strategy):
    """Deterministic domain -> resolver mapping.

    Each resolver sees a fixed *partition* of the domain space: repeat
    visits to a site always hit the same resolver (cache-friendly), and
    each operator learns only its shard of the user's browsing.
    """

    name = "hash-sticky"

    def __init__(self, resolvers: Sequence[str], salt: bytes = b"") -> None:
        self.resolvers = self._require_resolvers(resolvers)
        self.salt = salt

    def pick(self, domain: str, rng: random.Random) -> List[str]:
        digest = hashlib.sha256(self.salt + domain.lower().encode("ascii")).digest()
        index = int.from_bytes(digest[:8], "big") % len(self.resolvers)
        return [self.resolvers[index]]


class WeightedStrategy(Strategy):
    """Random choice with probability inversely proportional to latency.

    Uses measured per-resolver medians (from a prior campaign) as weights:
    fast resolvers get more traffic, slow ones stay in rotation for
    diversity — the performance-aware middle ground the paper's discussion
    points toward.
    """

    name = "latency-weighted"

    def __init__(self, median_ms_by_resolver: Dict[str, float]) -> None:
        if not median_ms_by_resolver:
            raise CampaignConfigError("weighted strategy needs measured medians")
        self.resolvers = list(median_ms_by_resolver)
        self.weights = [1.0 / max(value, 0.001) for value in median_ms_by_resolver.values()]

    def pick(self, domain: str, rng: random.Random) -> List[str]:
        return rng.choices(self.resolvers, weights=self.weights, k=1)


class RacingStrategy(Strategy):
    """Query ``fanout`` random resolvers in parallel; first answer wins.

    Latency becomes the minimum over the sample — robust to any one slow
    or flaky resolver — at the cost of every raced resolver seeing the
    query (a privacy trade-off the evaluator makes visible).
    """

    name = "racing"

    def __init__(self, resolvers: Sequence[str], fanout: int = 2) -> None:
        self.resolvers = self._require_resolvers(resolvers)
        if not 1 <= fanout <= len(self.resolvers):
            raise CampaignConfigError(
                f"fanout {fanout} outside [1, {len(self.resolvers)}]"
            )
        self.fanout = fanout

    def pick(self, domain: str, rng: random.Random) -> List[str]:
        return rng.sample(self.resolvers, self.fanout)
