"""Evaluates a distribution strategy on the simulated platform.

For each simulated "browsing" query: the strategy picks resolver(s), the
evaluator issues the DoH query (racing picks in parallel, first response
wins), and both the response time and the exposure (who saw which domain)
are recorded.  The result carries the performance distribution and the
privacy metrics side by side.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set

from repro.analysis.stats import BoxplotStats, summarize
from repro.core.probes import DohProbe, DohProbeConfig
from repro.distribution.strategies import Strategy
from repro.errors import CampaignConfigError

if False:  # pragma: no cover - typing only
    from repro.experiments.world import World


@dataclass
class PrivacyMetrics:
    """How much each resolver operator learned."""

    queries_seen: Dict[str, int]
    domains_seen: Dict[str, Set[str]] = field(default_factory=dict)

    @property
    def total_sightings(self) -> int:
        return sum(self.queries_seen.values())

    @property
    def max_share(self) -> float:
        """Fraction of sightings at the most-exposed resolver (1.0 = full profile)."""
        total = self.total_sightings
        if not total:
            return 0.0
        return max(self.queries_seen.values()) / total

    @property
    def entropy_bits(self) -> float:
        """Shannon entropy of the query distribution over resolvers."""
        total = self.total_sightings
        if not total:
            return 0.0
        entropy = 0.0
        for count in self.queries_seen.values():
            if count:
                p = count / total
                entropy -= p * math.log2(p)
        return entropy

    @property
    def normalized_entropy(self) -> float:
        """Entropy / log2(#resolvers that saw anything); 1.0 = perfectly even."""
        seen = sum(1 for count in self.queries_seen.values() if count)
        if seen <= 1:
            return 0.0
        return self.entropy_bits / math.log2(seen)

    def profile_fraction(self, resolver: str, all_domains: Set[str]) -> float:
        """Fraction of the user's distinct domains this resolver observed."""
        if not all_domains:
            return 0.0
        return len(self.domains_seen.get(resolver, set()) & all_domains) / len(all_domains)

    @property
    def max_profile_fraction(self) -> float:
        """Largest per-resolver share of the distinct-domain profile."""
        all_domains: Set[str] = set()
        for domains in self.domains_seen.values():
            all_domains |= domains
        if not all_domains:
            return 0.0
        return max(
            (len(domains) / len(all_domains) for domains in self.domains_seen.values()),
            default=0.0,
        )


@dataclass
class DistributionOutcome:
    """Result of one strategy evaluation."""

    strategy_name: str
    latency: BoxplotStats
    privacy: PrivacyMetrics
    failures: int
    queries: int

    def describe(self) -> str:
        return (
            f"{self.strategy_name:<16} median {self.latency.median:7.1f} ms "
            f"(q3 {self.latency.q3:7.1f})  max-share {self.privacy.max_share:.0%}  "
            f"entropy {self.privacy.entropy_bits:.2f} bits  "
            f"profile {self.privacy.max_profile_fraction:.0%}  "
            f"failures {self.failures}/{self.queries}"
        )


def evaluate_strategy(
    world: "World",
    vantage_name: str,
    strategy: Strategy,
    domains: Sequence[str],
    queries: int = 60,
    seed: int = 0,
    probe_config: Optional[DohProbeConfig] = None,
) -> DistributionOutcome:
    """Run ``queries`` simulated lookups under ``strategy``.

    Domains are drawn round-robin from ``domains`` (every domain recurs,
    as in real browsing).  Racing strategies issue parallel probes and the
    first successful response stops the clock.
    """
    if queries <= 0:
        raise CampaignConfigError("need at least one query")
    if not domains:
        raise CampaignConfigError("need at least one domain")
    rng = random.Random(seed)
    vantage = world.vantage(vantage_name)
    config = probe_config or DohProbeConfig()

    durations: List[float] = []
    failures = 0
    queries_seen: Dict[str, int] = {}
    domains_seen: Dict[str, Set[str]] = {}

    for index in range(queries):
        domain = domains[index % len(domains)]
        picks = strategy.pick(domain, rng)
        for hostname in picks:
            queries_seen[hostname] = queries_seen.get(hostname, 0) + 1
            domains_seen.setdefault(hostname, set()).add(domain)

        first: List[float] = []
        outstanding = [len(picks)]

        def on_outcome(outcome) -> None:
            outstanding[0] -= 1
            if outcome.success and not first:
                first.append(outcome.duration_ms)

        for hostname in picks:
            deployment = world.deployment(hostname)
            probe = DohProbe(
                vantage.host,
                deployment.service_ip,
                hostname,
                config,
                rng=random.Random(rng.getrandbits(32)),
            )
            probe.query(domain, on_outcome)
        world.network.run()
        if first:
            durations.append(first[0])
        else:
            failures += 1

    if not durations:
        raise CampaignConfigError(
            f"strategy {strategy.name} produced no successful queries"
        )
    return DistributionOutcome(
        strategy_name=strategy.name,
        latency=summarize(durations),
        privacy=PrivacyMetrics(queries_seen=queries_seen, domains_seen=domains_seen),
        failures=failures,
        queries=queries,
    )
