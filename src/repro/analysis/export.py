"""CSV export of figures and tables, for external plotting.

The ASCII renderers are for terminals; users who want to regenerate the
paper's figures with matplotlib/R get the same data as tidy CSV: one row
per resolver per panel with the full five-number summary for both the DNS
response-time and ping distributions.
"""

from __future__ import annotations

import csv
import io
from pathlib import Path
from typing import TYPE_CHECKING, Dict, Iterable, Optional, Sequence, Union

from repro.analysis.figures import FigureRow
from repro.analysis.response_times import VantageDelta

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.parallel.runner import ParallelRun

FIGURE_FIELDS = (
    "panel", "resolver", "mainstream",
    "dns_count", "dns_median", "dns_q1", "dns_q3",
    "dns_whisker_low", "dns_whisker_high", "dns_outliers",
    "ping_count", "ping_median", "ping_q1", "ping_q3",
)


def figure_rows_to_csv(panels: Dict[str, Sequence[FigureRow]]) -> str:
    """Serialize figure panels (vantage -> rows) as CSV text."""
    buffer = io.StringIO()
    writer = csv.DictWriter(buffer, fieldnames=FIGURE_FIELDS)
    writer.writeheader()
    for panel, rows in panels.items():
        for row in rows:
            record: Dict[str, object] = {
                "panel": panel,
                "resolver": row.resolver,
                "mainstream": int(row.mainstream),
            }
            if row.dns_stats is not None:
                stats = row.dns_stats
                record.update(
                    dns_count=stats.count,
                    dns_median=round(stats.median, 3),
                    dns_q1=round(stats.q1, 3),
                    dns_q3=round(stats.q3, 3),
                    dns_whisker_low=round(stats.whisker_low, 3),
                    dns_whisker_high=round(stats.whisker_high, 3),
                    dns_outliers=stats.outliers,
                )
            if row.ping_stats is not None:
                ping = row.ping_stats
                record.update(
                    ping_count=ping.count,
                    ping_median=round(ping.median, 3),
                    ping_q1=round(ping.q1, 3),
                    ping_q3=round(ping.q3, 3),
                )
            writer.writerow(record)
    return buffer.getvalue()


def deltas_to_csv(deltas: Iterable[VantageDelta]) -> str:
    """Serialize Table 2/3-style rows as CSV text."""
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(
        ("resolver", "near_vantage", "near_median_ms",
         "far_vantage", "far_median_ms", "delta_ms", "ratio")
    )
    for delta in deltas:
        writer.writerow(
            (
                delta.resolver,
                delta.near_vantage,
                round(delta.near_median_ms, 3),
                delta.far_vantage,
                round(delta.far_median_ms, 3),
                round(delta.delta_ms, 3),
                round(delta.ratio, 3),
            )
        )
    return buffer.getvalue()


def write_csv(text: str, path: Union[str, Path]) -> Path:
    """Write CSV text to ``path`` (creating parent directories)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(text, encoding="utf-8")
    return path


def export_parallel_run(
    run: "ParallelRun",
    results_path: Union[str, Path],
    spans_path: Optional[Union[str, Path]] = None,
    metrics_path: Optional[Union[str, Path]] = None,
) -> Dict[str, int]:
    """Write a merged parallel run's artifacts to disk.

    Records go out in canonical order (the merge already sorted them),
    spans with rebased ids, metrics as the merged snapshot.  The written
    bytes are a pure function of the shard plan and seeds — the same no
    matter how many workers executed the run — which is what the
    equivalence suite asserts file-for-file.  Returns written counts per
    artifact kind.
    """
    written = {"records": run.store.save_jsonl(results_path)}
    if spans_path is not None:
        written["spans"] = run.spans.save_jsonl(spans_path)
    if metrics_path is not None:
        run.metrics.save_json(metrics_path)
        written["metrics"] = 1
    return written
