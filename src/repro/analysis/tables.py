"""Table builders: Tables 1, 2 and 3 of the paper.

* Table 1 — the browser/resolver availability matrix (static data from
  :mod:`repro.catalog.browsers`);
* Table 2 — Asian non-mainstream resolvers with the largest median gap
  between the Seoul (local) and Frankfurt (remote) vantage points;
* Table 3 — European non-mainstream resolvers with the largest median gap
  between Frankfurt (local) and Seoul (remote).
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.analysis.response_times import VantageDelta, largest_vantage_deltas
from repro.catalog.browsers import BROWSER_MATRIX, PROVIDERS
from repro.catalog.resolvers import entries_by_region
from repro.core.results import RecordSource


def table1_rows() -> Tuple[Tuple[str, ...], List[Tuple[str, ...]]]:
    """Table 1: header + one row per browser with check marks."""
    header = ("Browser",) + PROVIDERS
    rows = []
    for browser, offered in BROWSER_MATRIX.items():
        row = (browser,) + tuple(
            "yes" if provider in offered else "" for provider in PROVIDERS
        )
        rows.append(row)
    return header, rows


def _region_non_mainstream(region: str) -> List[str]:
    return [
        entry.hostname
        for entry in entries_by_region(region)
        if not entry.mainstream
    ]


def table2_rows(
    store: RecordSource,
    near_vantage: str = "ec2-seoul",
    far_vantage: str = "ec2-frankfurt",
    top_n: int = 5,
) -> List[VantageDelta]:
    """Table 2: Asian non-mainstream resolvers, Seoul vs Frankfurt medians."""
    return largest_vantage_deltas(
        store,
        resolvers=_region_non_mainstream("AS"),
        near_vantage=near_vantage,
        far_vantage=far_vantage,
        top_n=top_n,
    )


def table3_rows(
    store: RecordSource,
    near_vantage: str = "ec2-frankfurt",
    far_vantage: str = "ec2-seoul",
    top_n: int = 5,
) -> List[VantageDelta]:
    """Table 3: European non-mainstream resolvers, Frankfurt vs Seoul medians."""
    return largest_vantage_deltas(
        store,
        resolvers=_region_non_mainstream("EU"),
        near_vantage=near_vantage,
        far_vantage=far_vantage,
        top_n=top_n,
    )


def delta_table_as_text_rows(deltas: Sequence[VantageDelta]) -> List[Tuple[str, str, str]]:
    """(resolver, near median, far median) string rows for rendering."""
    return [
        (d.resolver, f"{d.near_median_ms:.0f}", f"{d.far_median_ms:.0f}")
        for d in deltas
    ]
