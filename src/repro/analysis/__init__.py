"""Analysis of measurement results: the paper's §4 computations.

Takes a :class:`~repro.core.results.ResultStore` and produces the paper's
artifacts — availability counts and error breakdowns, per-resolver
response-time distributions (the figures), median tables across vantage
points (Tables 2 and 3), and the browser matrix (Table 1) — plus text
renderers for all of them.
"""

from repro.analysis.stats import BoxplotStats, median, quantile, summarize
from repro.analysis.availability import (
    AvailabilityReport,
    availability_report,
    per_resolver_availability,
    unresponsive_resolvers,
)
from repro.analysis.response_times import (
    VantageDelta,
    largest_vantage_deltas,
    local_winners,
    max_median_by_vantage,
    ping_durations,
    query_durations,
    resolver_median,
    resolver_medians,
)
from repro.analysis.figures import FigureRow, figure_rows, paper_figure
from repro.analysis.phases import (
    PhaseBreakdown,
    PhaseDelta,
    error_phases,
    phase_breakdown,
    phase_breakdowns,
    phase_deltas,
    render_error_phases,
    render_phase_delta_table,
    render_phase_table,
)
from repro.analysis.tables import table1_rows, table2_rows, table3_rows
from repro.analysis.render import render_boxplot_rows, render_table
from repro.analysis.correlation import LatencyCorrelation, latency_correlation
from repro.analysis.longitudinal import (
    DriftReport,
    drift_report,
    drift_reports_over_time,
)
from repro.analysis.sessions import (
    SessionCell,
    WarmColdDelta,
    ZeroRttAcceptance,
    render_session_cells,
    render_warm_cold_table,
    render_zero_rtt_table,
    session_cells,
    session_report,
    warm_cold_deltas,
    zero_rtt_acceptance,
)

__all__ = [
    "AvailabilityReport",
    "BoxplotStats",
    "DriftReport",
    "FigureRow",
    "LatencyCorrelation",
    "drift_report",
    "drift_reports_over_time",
    "latency_correlation",
    "PhaseBreakdown",
    "PhaseDelta",
    "SessionCell",
    "VantageDelta",
    "WarmColdDelta",
    "ZeroRttAcceptance",
    "availability_report",
    "error_phases",
    "phase_breakdown",
    "phase_breakdowns",
    "phase_deltas",
    "render_error_phases",
    "render_phase_delta_table",
    "render_phase_table",
    "render_session_cells",
    "render_warm_cold_table",
    "render_zero_rtt_table",
    "session_cells",
    "session_report",
    "warm_cold_deltas",
    "zero_rtt_acceptance",
    "figure_rows",
    "largest_vantage_deltas",
    "local_winners",
    "max_median_by_vantage",
    "median",
    "paper_figure",
    "per_resolver_availability",
    "ping_durations",
    "quantile",
    "query_durations",
    "render_boxplot_rows",
    "render_table",
    "resolver_median",
    "resolver_medians",
    "summarize",
    "table1_rows",
    "table2_rows",
    "table3_rows",
    "unresponsive_resolvers",
]
