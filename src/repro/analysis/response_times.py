"""Response-time analysis: medians, vantage deltas, local winners, maxima.

These functions back the paper's §4 comparisons:

* per-resolver response-time distributions and medians per vantage point;
* the resolvers with the largest median difference between a local and a
  remote vantage point (Tables 2 and 3);
* local non-mainstream winners — resolvers that beat specific mainstream
  resolvers from specific vantage points;
* the maximum per-resolver median seen from each vantage point.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.analysis.stats import median
from repro.core.results import RecordSource

# Every function here takes any RecordSource — the in-memory ResultStore
# or an on-disk repro.store.Warehouse — since only the protocol surface
# (filter / durations_ms / by_resolver) is used.


def query_durations(
    store: RecordSource, vantage: Optional[str] = None, resolver: Optional[str] = None
) -> List[float]:
    """Successful DNS query durations (ms) matching the criteria."""
    return store.durations_ms(kind="dns_query", vantage=vantage, resolver=resolver)


def ping_durations(
    store: RecordSource, vantage: Optional[str] = None, resolver: Optional[str] = None
) -> List[float]:
    """Successful ping RTTs (ms) matching the criteria."""
    return store.durations_ms(kind="ping", vantage=vantage, resolver=resolver)


def resolver_median(store: RecordSource, resolver: str, vantage: Optional[str] = None) -> Optional[float]:
    """Median successful response time, or None with no successes."""
    durations = query_durations(store, vantage=vantage, resolver=resolver)
    return median(durations) if durations else None


def resolver_medians(
    store: RecordSource,
    vantage: Optional[str] = None,
    resolvers: Optional[Iterable[str]] = None,
) -> Dict[str, float]:
    """Median response time per resolver (resolvers with data only)."""
    wanted = set(resolvers) if resolvers is not None else None
    out: Dict[str, float] = {}
    for resolver, records in store.by_resolver(kind="dns_query", vantage=vantage, success=True).items():
        if wanted is not None and resolver not in wanted:
            continue
        durations = [r.duration_ms for r in records if r.duration_ms is not None]
        if durations:
            out[resolver] = median(durations)
    return out


def max_median_by_vantage(store: RecordSource, vantages: Sequence[str]) -> Dict[str, Tuple[str, float]]:
    """Per vantage point: the resolver with the highest median and its value.

    Reproduces the paper's "maximum response time from a resolver was X ms"
    statements (which are maxima over per-resolver medians).
    """
    out: Dict[str, Tuple[str, float]] = {}
    for vantage in vantages:
        medians = resolver_medians(store, vantage=vantage)
        if medians:
            worst = max(medians.items(), key=lambda item: item[1])
            out[vantage] = worst
    return out


@dataclass(frozen=True)
class VantageDelta:
    """One row of Table 2 / Table 3."""

    resolver: str
    near_vantage: str
    far_vantage: str
    near_median_ms: float
    far_median_ms: float

    @property
    def delta_ms(self) -> float:
        return self.far_median_ms - self.near_median_ms

    @property
    def ratio(self) -> float:
        return self.far_median_ms / self.near_median_ms if self.near_median_ms else float("inf")


def largest_vantage_deltas(
    store: RecordSource,
    resolvers: Iterable[str],
    near_vantage: str,
    far_vantage: str,
    top_n: int = 5,
) -> List[VantageDelta]:
    """Resolvers with the largest (far − near) median difference.

    This is how the paper builds Tables 2 and 3: take the resolvers of a
    region, compare their medians from the local vantage point against a
    remote one, and report the biggest gaps.
    """
    near = resolver_medians(store, vantage=near_vantage, resolvers=resolvers)
    far = resolver_medians(store, vantage=far_vantage, resolvers=resolvers)
    deltas = [
        VantageDelta(
            resolver=resolver,
            near_vantage=near_vantage,
            far_vantage=far_vantage,
            near_median_ms=near[resolver],
            far_median_ms=far[resolver],
        )
        for resolver in near
        if resolver in far
    ]
    deltas.sort(key=lambda d: d.delta_ms, reverse=True)
    return deltas[:top_n]


@dataclass(frozen=True)
class LocalWinner:
    """A non-mainstream resolver beating mainstream resolvers somewhere."""

    resolver: str
    vantage: str
    median_ms: float
    beats: Tuple[str, ...]  # mainstream resolvers it outperformed


def local_winners(
    store: RecordSource,
    vantage: str,
    candidates: Iterable[str],
    mainstream: Iterable[str],
) -> List[LocalWinner]:
    """Candidates whose median beats at least one mainstream resolver."""
    mainstream = list(mainstream)
    medians = resolver_medians(store, vantage=vantage)
    winners = []
    for candidate in candidates:
        candidate_median = medians.get(candidate)
        if candidate_median is None:
            continue
        beaten = tuple(
            m for m in mainstream
            if m in medians and candidate_median < medians[m]
        )
        if beaten:
            winners.append(
                LocalWinner(
                    resolver=candidate,
                    vantage=vantage,
                    median_ms=candidate_median,
                    beats=beaten,
                )
            )
    winners.sort(key=lambda w: w.median_ms)
    return winners


def variability(store: RecordSource, resolver: str, vantage: Optional[str] = None) -> Optional[float]:
    """IQR of a resolver's response times (the paper's variability notion)."""
    durations = query_durations(store, vantage=vantage, resolver=resolver)
    if len(durations) < 4:
        return None
    from repro.analysis.stats import quantile

    return quantile(durations, 0.75) - quantile(durations, 0.25)
