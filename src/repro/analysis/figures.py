"""Figure builders: the per-resolver boxplot panels of Figures 1–4.

Each paper figure shows, for one vantage point, the distribution of DNS
response times and ICMP ping times for every resolver of one region —
plus the cross-region reference set (the mainstream resolvers and
``ordns.he.net``), shown in every panel.  :func:`figure_rows` computes the
same rows from a result store; :func:`paper_figure` maps the paper's
figure numbers onto (region, vantage) pairs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.stats import BoxplotStats, summarize_or_none
from repro.analysis.response_times import ping_durations, query_durations
from repro.catalog.resolvers import REFERENCE_HOSTNAMES, entries_by_region
from repro.core.results import ResultStore
from repro.errors import AnalysisError


@dataclass(frozen=True)
class FigureRow:
    """One resolver's row in a figure panel."""

    resolver: str
    mainstream: bool
    dns_stats: Optional[BoxplotStats]  # None if the resolver never answered
    ping_stats: Optional[BoxplotStats]  # None if it doesn't answer ICMP

    @property
    def has_data(self) -> bool:
        return self.dns_stats is not None


def region_panel_hostnames(region: str) -> List[str]:
    """The resolvers shown in a region's figure: region rows + references."""
    hostnames = [entry.hostname for entry in entries_by_region(region)]
    for reference in REFERENCE_HOSTNAMES:
        if reference not in hostnames:
            hostnames.append(reference)
    return hostnames


def figure_rows(
    store: ResultStore,
    vantage: str,
    hostnames: Sequence[str],
    mainstream_hostnames: Sequence[str] = (),
    sort_by_median: bool = True,
) -> List[FigureRow]:
    """Build one figure panel's rows from the result store."""
    mainstream = set(mainstream_hostnames)
    rows = []
    for hostname in hostnames:
        dns_stats = summarize_or_none(query_durations(store, vantage=vantage, resolver=hostname))
        ping_stats = summarize_or_none(ping_durations(store, vantage=vantage, resolver=hostname))
        rows.append(
            FigureRow(
                resolver=hostname,
                mainstream=hostname in mainstream,
                dns_stats=dns_stats,
                ping_stats=ping_stats,
            )
        )
    if sort_by_median:
        rows.sort(
            key=lambda row: row.dns_stats.median if row.dns_stats is not None else float("inf")
        )
    return rows


#: Figure number -> (resolver region, vantage panels in paper order).
PAPER_FIGURES: Dict[str, Tuple[str, Tuple[str, ...]]] = {
    # Figure 1 is the Ohio panel of the NA figure, shown in the body.
    "figure1": ("NA", ("ec2-ohio",)),
    "figure2": ("NA", ("home-chicago-1", "ec2-ohio", "ec2-frankfurt", "ec2-seoul")),
    "figure3": ("EU", ("home-chicago-1", "ec2-ohio", "ec2-frankfurt", "ec2-seoul")),
    "figure4": ("AS", ("home-chicago-1", "ec2-ohio", "ec2-frankfurt", "ec2-seoul")),
}


def paper_figure(
    store: ResultStore,
    figure: str,
    mainstream_hostnames: Sequence[str],
    home_vantages: Sequence[str] = (),
) -> Dict[str, List[FigureRow]]:
    """All panels of one paper figure: vantage name -> rows.

    ``home_vantages`` may list several home devices whose records are
    pooled into the single "U.S. Home Networks" panel, as the paper pools
    its four apartment units.
    """
    if figure not in PAPER_FIGURES:
        raise AnalysisError(f"unknown figure {figure!r}; know {sorted(PAPER_FIGURES)}")
    region, vantages = PAPER_FIGURES[figure]
    hostnames = region_panel_hostnames(region)
    panels: Dict[str, List[FigureRow]] = {}
    for vantage in vantages:
        if vantage.startswith("home") and home_vantages:
            rows = _pooled_home_rows(store, list(home_vantages), hostnames, mainstream_hostnames)
            panels["home-pooled"] = rows
        else:
            panels[vantage] = figure_rows(store, vantage, hostnames, mainstream_hostnames)
    return panels


def _pooled_home_rows(
    store: ResultStore,
    home_vantages: List[str],
    hostnames: Sequence[str],
    mainstream_hostnames: Sequence[str],
) -> List[FigureRow]:
    mainstream = set(mainstream_hostnames)
    rows = []
    for hostname in hostnames:
        dns_samples: List[float] = []
        ping_samples: List[float] = []
        for vantage in home_vantages:
            dns_samples.extend(query_durations(store, vantage=vantage, resolver=hostname))
            ping_samples.extend(ping_durations(store, vantage=vantage, resolver=hostname))
        rows.append(
            FigureRow(
                resolver=hostname,
                mainstream=hostname in mainstream,
                dns_stats=summarize_or_none(dns_samples),
                ping_stats=summarize_or_none(ping_samples),
            )
        )
    rows.sort(key=lambda row: row.dns_stats.median if row.dns_stats is not None else float("inf"))
    return rows
