"""Relationship between ICMP latency and DNS response time.

§3.1: the ping probe paired with every DNS measurement "enabled us to
explore whether there was a consistent relationship between high query
response times and network latency".  This module quantifies that
relationship across resolvers: per-resolver (ping median, DNS median)
pairs, Pearson and Spearman correlation, and the fitted response-time /
RTT multiple (which exposes the handshake structure: fresh DoH ≈ 3 × RTT
plus processing).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple, Union

from repro.analysis.response_times import ping_durations, resolver_medians
from repro.analysis.stats import median
from repro.core.results import MeasurementRecord, RecordSource
from repro.errors import AnalysisError


def pearson(xs: List[float], ys: List[float]) -> float:
    """Pearson product-moment correlation coefficient."""
    if len(xs) != len(ys) or len(xs) < 2:
        raise AnalysisError("pearson needs two same-length samples (n >= 2)")
    n = len(xs)
    mean_x = sum(xs) / n
    mean_y = sum(ys) / n
    cov = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys))
    var_x = sum((x - mean_x) ** 2 for x in xs)
    var_y = sum((y - mean_y) ** 2 for y in ys)
    if var_x == 0 or var_y == 0:
        raise AnalysisError("pearson undefined for a constant sample")
    return cov / math.sqrt(var_x * var_y)


def _ranks(values: List[float]) -> List[float]:
    order = sorted(range(len(values)), key=lambda i: values[i])
    ranks = [0.0] * len(values)
    i = 0
    while i < len(order):
        j = i
        while j + 1 < len(order) and values[order[j + 1]] == values[order[i]]:
            j += 1
        mean_rank = (i + j) / 2.0 + 1.0
        for k in range(i, j + 1):
            ranks[order[k]] = mean_rank
        i = j + 1
    return ranks


def spearman(xs: List[float], ys: List[float]) -> float:
    """Spearman rank correlation (Pearson on ranks, tie-aware)."""
    return pearson(_ranks(xs), _ranks(ys))


@dataclass
class LatencyCorrelation:
    """Ping-vs-DNS relationship across resolvers from one vantage point."""

    vantage: str
    pairs: List[Tuple[str, float, float]] = field(default_factory=list)  # (resolver, ping, dns)

    @property
    def pearson_r(self) -> float:
        return pearson([p for _r, p, _d in self.pairs], [d for _r, _p, d in self.pairs])

    @property
    def spearman_rho(self) -> float:
        return spearman([p for _r, p, _d in self.pairs], [d for _r, _p, d in self.pairs])

    @property
    def median_rtt_multiple(self) -> float:
        """Median of (DNS median / ping median) across resolvers.

        Fresh-connection DoH should sit near 3 (TCP + TLS 1.3 + HTTP all
        pay one round trip each) plus a processing offset.
        """
        ratios = [dns / ping for _r, ping, dns in self.pairs if ping > 0]
        if not ratios:
            raise AnalysisError("no ping data to form ratios")
        return median(ratios)

    def outliers(self, factor: float = 2.0) -> List[Tuple[str, float, float]]:
        """Resolvers whose DNS/ping ratio is far from the cohort median.

        These are the interesting rows: high response time *not* explained
        by network latency (slow resolver processing), or vice versa.
        """
        center = self.median_rtt_multiple
        out = []
        for resolver, ping, dns in self.pairs:
            if ping <= 0:
                continue
            ratio = dns / ping
            if ratio > center * factor or ratio < center / factor:
                out.append((resolver, ping, dns))
        return out

    def describe(self) -> str:
        lines = [
            f"{self.vantage}: n={len(self.pairs)} resolvers, "
            f"pearson r={self.pearson_r:.3f}, spearman rho={self.spearman_rho:.3f}, "
            f"median DNS/ping multiple {self.median_rtt_multiple:.2f}",
        ]
        for resolver, ping, dns in self.outliers():
            lines.append(
                f"  outlier {resolver}: ping {ping:.1f} ms but DNS {dns:.1f} ms"
            )
        return "\n".join(lines)


def latency_correlation(
    store: RecordSource, vantage: str, min_samples: int = 3
) -> LatencyCorrelation:
    """Build the per-resolver (ping, DNS) correlation for one vantage point.

    Resolvers without ICMP responses are skipped (the paper shows no ping
    distribution for them).
    """
    dns_medians = resolver_medians(store, vantage=vantage)
    correlation = LatencyCorrelation(vantage=vantage)
    for resolver, dns_median in sorted(dns_medians.items()):
        pings = ping_durations(store, vantage=vantage, resolver=resolver)
        if len(pings) < min_samples:
            continue
        correlation.pairs.append((resolver, median(pings), dns_median))
    if len(correlation.pairs) < 3:
        raise AnalysisError(
            f"not enough resolvers with both ping and DNS data from {vantage}"
        )
    return correlation


def latency_correlations_from_records(
    records: Iterable[MeasurementRecord],
    vantages: Optional[Iterable[str]] = None,
    min_samples: int = 3,
) -> Dict[str, Union[LatencyCorrelation, AnalysisError]]:
    """Single-pass streaming variant of :func:`latency_correlation`.

    Consumes any record iterable — :meth:`ResultStore.iter_jsonl`, a
    warehouse scan — holding only per-(vantage, resolver) duration lists,
    so memory is O(successful samples), never O(records).  Returns one
    entry per vantage observed in the stream (or per requested vantage):
    the correlation, or the :class:`AnalysisError` explaining why that
    vantage has too little data.  Identical to calling
    :func:`latency_correlation` per vantage on a loaded store.
    """
    wanted = list(dict.fromkeys(vantages)) if vantages is not None else None
    seen: set = set()
    dns: Dict[Tuple[str, str], List[float]] = {}
    pings: Dict[Tuple[str, str], List[float]] = {}
    for record in records:
        seen.add(record.vantage)
        if not record.success or record.duration_ms is None:
            continue
        if wanted is not None and record.vantage not in wanted:
            continue
        key = (record.vantage, record.resolver)
        if record.kind == "dns_query":
            dns.setdefault(key, []).append(record.duration_ms)
        elif record.kind == "ping":
            pings.setdefault(key, []).append(record.duration_ms)

    out: Dict[str, Union[LatencyCorrelation, AnalysisError]] = {}
    for vantage in wanted if wanted is not None else sorted(seen):
        correlation = LatencyCorrelation(vantage=vantage)
        for resolver in sorted(r for v, r in dns if v == vantage):
            ping_samples = pings.get((vantage, resolver), [])
            if len(ping_samples) < min_samples:
                continue
            correlation.pairs.append(
                (resolver, median(ping_samples), median(dns[(vantage, resolver)]))
            )
        if len(correlation.pairs) < 3:
            out[vantage] = AnalysisError(
                f"not enough resolvers with both ping and DNS data from {vantage}"
            )
        else:
            out[vantage] = correlation
    return out
