"""Availability analysis (§4, "Are Non-Mainstream Resolvers Available?").

Reproduces the paper's availability numbers: total successful responses
versus errors, the dominant error class (connection-establishment
failures), per-resolver availability, and the check that failures are not
concentrated in a consistent subset of resolvers round after round.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from repro.analysis.stats import median
from repro.core.errors_taxonomy import CONNECTION_ESTABLISHMENT_CLASSES, ErrorClass
from repro.core.results import RecordSource

#: String values of the paper's dominant error group, for record matching.
_ESTABLISHMENT_VALUES = frozenset(c.value for c in CONNECTION_ESTABLISHMENT_CLASSES)


@dataclass
class AvailabilityReport:
    """The availability headline numbers."""

    successes: int
    errors: int
    error_breakdown: Counter = field(default_factory=Counter)
    connection_establishment_share: float = 0.0

    @property
    def attempts(self) -> int:
        return self.successes + self.errors

    @property
    def error_rate(self) -> float:
        return self.errors / self.attempts if self.attempts else 0.0

    @property
    def dominant_error_class(self) -> Optional[str]:
        if not self.error_breakdown:
            return None
        return self.error_breakdown.most_common(1)[0][0]

    def describe(self) -> str:
        lines = [
            f"attempts={self.attempts} successes={self.successes} "
            f"errors={self.errors} ({self.error_rate:.2%})",
            f"connection-establishment share of errors: "
            f"{self.connection_establishment_share:.1%}",
        ]
        for error_class, count in self.error_breakdown.most_common():
            lines.append(f"  {error_class}: {count}")
        return "\n".join(lines)


def availability_report(store: RecordSource, vantage: Optional[str] = None) -> AvailabilityReport:
    """Compute the availability headline numbers over DNS query records."""
    records = store.filter(kind="dns_query", vantage=vantage)
    successes = sum(1 for r in records if r.success)
    failures = [r for r in records if not r.success]
    breakdown = Counter(r.error_class or "unknown" for r in failures)
    establishment = sum(
        count
        for error_class, count in breakdown.items()
        if error_class in _ESTABLISHMENT_VALUES
    )
    share = establishment / len(failures) if failures else 0.0
    return AvailabilityReport(
        successes=successes,
        errors=len(failures),
        error_breakdown=breakdown,
        connection_establishment_share=share,
    )


@dataclass
class ResolverErrorProfile:
    """Per-resolver error characterization (journal-version §5 shape)."""

    resolver: str
    attempts: int
    errors: int
    breakdown: Counter = field(default_factory=Counter)

    @property
    def error_rate(self) -> float:
        return self.errors / self.attempts if self.attempts else 0.0

    @property
    def connection_establishment_share(self) -> float:
        if not self.errors:
            return 0.0
        establishment = sum(
            count
            for error_class, count in self.breakdown.items()
            if error_class in _ESTABLISHMENT_VALUES
        )
        return establishment / self.errors

    def describe(self) -> str:
        classes = ", ".join(
            f"{error_class}={count}" for error_class, count in self.breakdown.most_common()
        )
        return (
            f"{self.resolver}: {self.errors}/{self.attempts} failed "
            f"({self.error_rate:.2%}; {classes or 'no errors'})"
        )


def per_resolver_error_breakdown(
    store: RecordSource, vantage: Optional[str] = None
) -> Dict[str, ResolverErrorProfile]:
    """Per-resolver, per-class error counts over DNS query records.

    Reproduces the journal version's error taxonomy table: for each
    resolver, how many attempts failed and how the failures split across
    :class:`~repro.core.errors_taxonomy.ErrorClass` values.
    """
    profiles: Dict[str, ResolverErrorProfile] = {}
    for resolver, records in store.by_resolver(kind="dns_query", vantage=vantage).items():
        failures = [r for r in records if not r.success]
        profiles[resolver] = ResolverErrorProfile(
            resolver=resolver,
            attempts=len(records),
            errors=len(failures),
            breakdown=Counter(r.error_class or "unknown" for r in failures),
        )
    return profiles


def error_class_shares(store: RecordSource, vantage: Optional[str] = None) -> Dict[str, float]:
    """Share of each error class among all failed DNS queries."""
    failures = store.filter(kind="dns_query", vantage=vantage, success=False)
    if not failures:
        return {}
    counts = Counter(r.error_class or "unknown" for r in failures)
    total = sum(counts.values())
    return {error_class: count / total for error_class, count in counts.items()}


def retry_burden(store: RecordSource, vantage: Optional[str] = None) -> float:
    """Mean attempts per final DNS query record (1.0 = no retries needed)."""
    records = store.filter(kind="dns_query", vantage=vantage)
    if not records:
        return 0.0
    return sum(r.attempts for r in records) / len(records)


def per_resolver_availability(
    store: RecordSource, vantage: Optional[str] = None
) -> Dict[str, float]:
    """Success rate of DNS queries per resolver."""
    rates: Dict[str, float] = {}
    for resolver, records in store.by_resolver(kind="dns_query", vantage=vantage).items():
        successes = sum(1 for r in records if r.success)
        rates[resolver] = successes / len(records) if records else 0.0
    return rates


def unresponsive_resolvers(store: RecordSource, vantage: Optional[str] = None) -> List[str]:
    """Resolvers with zero successful responses from a vantage point.

    This is the paper's definition of "unresponsive from a given vantage
    point": no response to any query issued from that server.
    """
    return sorted(
        resolver
        for resolver, rate in per_resolver_availability(store, vantage).items()
        if rate == 0.0
    )


def failure_pattern_consistency(store: RecordSource) -> float:
    """How concentrated failures are in a fixed resolver subset, in [0, 1].

    For each round, collect the set of resolvers that had at least one
    failure; the score is the median Jaccard similarity between
    consecutive rounds' failure sets.  The paper observed *no consistent
    pattern* — transient failures hit different resolvers each round —
    which corresponds to a low score (persistent outages in a fixed subset
    would push it toward 1).  Rounds with no failures are skipped.
    """
    failures_by_round: Dict[int, Set[str]] = {}
    always_failed = {
        resolver
        for resolver, rate in per_resolver_availability(store).items()
        if rate == 0.0
    }
    for record in store.filter(kind="dns_query", success=False):
        if record.resolver in always_failed:
            continue  # dead resolvers are a separate phenomenon
        failures_by_round.setdefault(record.round_index, set()).add(record.resolver)
    rounds = [failures_by_round[k] for k in sorted(failures_by_round)]
    similarities = []
    for previous, current in zip(rounds, rounds[1:]):
        union = previous | current
        if not union:
            continue
        similarities.append(len(previous & current) / len(union))
    return median(similarities) if similarities else 0.0
