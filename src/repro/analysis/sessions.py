"""Session-policy scenario analysis: what reuse, resumption and 0-RTT buy.

The session scenario matrix (DESIGN.md §14) runs the *same* campaign —
same seed, same schedule, same world — once per
:class:`~repro.session.policy.SessionPolicy`, so records differ only in
how clients manage transport sessions between queries.  This module
turns those per-policy record sets into the three tables the study is
after:

* :func:`session_cells` — per policy × transport (optionally × vantage)
  counts by ``session_state`` plus the establishment share of the median
  response time, the session-aware analogue of
  :func:`~repro.analysis.phases.phase_breakdown`;
* :func:`warm_cold_deltas` — warm-path vs cold-path p95 within each
  policy run.  The cold baseline is the run's *own* cold-state records
  (first contact per (vantage, resolver, transport) cell), so the
  comparison holds the network, world and RNG streams fixed;
* :func:`zero_rtt_acceptance` — among resumption-eligible handshakes of
  a 0-RTT policy run, how many carried early data vs fell back to the
  1-RTT resumed handshake after an (anti-replay) rejection.

All functions take a mapping of policy name → records, where the records
may come from a :class:`~repro.core.results.ResultStore`, a
:class:`~repro.parallel.runner.ParallelRun` (RAM store or warehouse), or
any iterable of :class:`~repro.core.results.MeasurementRecord`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Mapping, Optional, Tuple

from repro.analysis.render import render_table
from repro.analysis.stats import median, quantile
from repro.core.results import MeasurementRecord
from repro.session import SESSION_STATES, WARM_STATES

#: Transports the gate/delta tables report, in display order.
SESSION_TABLE_TRANSPORTS: Tuple[str, ...] = ("doh", "dot", "doq", "doh3")


def iter_run_records(source: Any) -> Iterable[MeasurementRecord]:
    """Records from a ParallelRun, ResultStore, warehouse, or iterable.

    Duck-typed so analysis works identically on in-RAM runs and runs
    that streamed to a warehouse (byte-identical by construction).
    """
    warehouse = getattr(source, "warehouse", None)
    if warehouse is not None:
        return warehouse.iter_records()
    store = getattr(source, "store", None)
    if store is not None:
        return iter(store)
    if hasattr(source, "iter_records"):
        return source.iter_records()
    return iter(source)


def record_session_state(record: MeasurementRecord) -> str:
    """The record's session state, with ``None`` (no policy) read as cold."""
    return record.session_state or "cold"


def _query_records(source: Any) -> List[MeasurementRecord]:
    return [
        r
        for r in iter_run_records(source)
        if r.kind == "dns_query" and r.success and r.duration_ms is not None
    ]


# -- per-cell state breakdown ------------------------------------------------


@dataclass(frozen=True)
class SessionCell:
    """One policy × transport (× vantage) cell of the scenario matrix."""

    policy: str
    transport: str
    vantage: str
    count: int
    #: ``session_state`` → record count, every state always present.
    state_counts: Mapping[str, int]
    median_total_ms: float
    median_connect_ms: Optional[float]
    median_tls_ms: Optional[float]

    @property
    def establishment_ms(self) -> float:
        """Median TCP/QUIC connect + TLS handshake time."""
        return (self.median_connect_ms or 0.0) + (self.median_tls_ms or 0.0)

    @property
    def establishment_share(self) -> float:
        """Fraction of the median response time spent establishing."""
        if not self.median_total_ms:
            return 0.0
        return self.establishment_ms / self.median_total_ms

    @property
    def warm_share(self) -> float:
        """Fraction of queries that skipped full establishment."""
        if not self.count:
            return 0.0
        warm = sum(self.state_counts.get(state, 0) for state in WARM_STATES)
        return warm / self.count


def session_cells(
    records_by_policy: Mapping[str, Any],
    per_vantage: bool = False,
) -> List[SessionCell]:
    """One :class:`SessionCell` per policy × transport (× vantage).

    Policies keep the mapping's order (insertion order of the study);
    transports and vantages are sorted within a policy.
    """
    cells: List[SessionCell] = []
    for policy, source in records_by_policy.items():
        records = _query_records(source)
        groups: Dict[Tuple[str, str], List[MeasurementRecord]] = {}
        for record in records:
            vantage = record.vantage if per_vantage else "(all)"
            groups.setdefault((record.transport, vantage), []).append(record)
        for (transport, vantage) in sorted(groups):
            members = groups[(transport, vantage)]
            counts = {state: 0 for state in SESSION_STATES}
            for record in members:
                counts[record_session_state(record)] += 1

            def field_median(name: str) -> Optional[float]:
                values = [
                    getattr(r, name) for r in members if getattr(r, name) is not None
                ]
                return median(values) if values else None

            cells.append(
                SessionCell(
                    policy=policy,
                    transport=transport,
                    vantage=vantage,
                    count=len(members),
                    state_counts=counts,
                    median_total_ms=median([r.duration_ms for r in members]),
                    median_connect_ms=field_median("connect_ms"),
                    median_tls_ms=field_median("tls_ms"),
                )
            )
    return cells


# -- warm-vs-cold p95 --------------------------------------------------------


@dataclass(frozen=True)
class WarmColdDelta:
    """Warm-path vs cold-path p95 for one policy × transport.

    Both sides come from the *same* run: ``cold`` records are the
    policy's own first-contact establishments, so the delta isolates the
    session mechanism from any cross-run variation.
    """

    policy: str
    transport: str
    cold_count: int
    warm_count: int
    cold_p95_ms: Optional[float]
    warm_p95_ms: Optional[float]

    @property
    def delta_ms(self) -> Optional[float]:
        """``warm_p95 - cold_p95``; negative means the warm path is faster."""
        if self.cold_p95_ms is None or self.warm_p95_ms is None:
            return None
        return self.warm_p95_ms - self.cold_p95_ms

    @property
    def warm_faster(self) -> bool:
        """Whether the warm-path p95 strictly beats the cold-path p95."""
        delta = self.delta_ms
        return delta is not None and delta < 0


def warm_cold_deltas(records_by_policy: Mapping[str, Any]) -> List[WarmColdDelta]:
    """Per policy × transport warm-vs-cold p95, skipping all-cold runs.

    Runs without a single warm-state record (e.g. the ``cold`` baseline
    policy) produce no rows — there is no warm path to compare.
    """
    deltas: List[WarmColdDelta] = []
    for policy, source in records_by_policy.items():
        by_transport: Dict[str, List[MeasurementRecord]] = {}
        for record in _query_records(source):
            by_transport.setdefault(record.transport, []).append(record)
        for transport in sorted(by_transport):
            members = by_transport[transport]
            warm = [
                r.duration_ms
                for r in members
                if record_session_state(r) in WARM_STATES
            ]
            if not warm:
                continue
            cold = [
                r.duration_ms
                for r in members
                if record_session_state(r) == "cold"
            ]
            deltas.append(
                WarmColdDelta(
                    policy=policy,
                    transport=transport,
                    cold_count=len(cold),
                    warm_count=len(warm),
                    cold_p95_ms=quantile(cold, 0.95) if cold else None,
                    warm_p95_ms=quantile(warm, 0.95),
                )
            )
    return deltas


# -- 0-RTT acceptance --------------------------------------------------------


@dataclass(frozen=True)
class ZeroRttAcceptance:
    """How often early data was accepted vs rejected for one transport."""

    policy: str
    transport: str
    accepted: int  # handshakes that carried 0-RTT early data
    fallback: int  # resumed 1-RTT handshakes (early data rejected)

    @property
    def eligible(self) -> int:
        return self.accepted + self.fallback

    @property
    def acceptance_rate(self) -> Optional[float]:
        if not self.eligible:
            return None
        return self.accepted / self.eligible


def zero_rtt_acceptance(
    records_by_policy: Mapping[str, Any],
) -> List[ZeroRttAcceptance]:
    """Acceptance rates for every policy run that attempted early data.

    Eligible handshakes are those that *could* have carried early data —
    state ``zero_rtt`` (accepted) or ``resumed`` (the 1-RTT fallback a
    rejection forces).  Policies that never produced either state (cold,
    keep-alive, plain resumption) yield no rows.
    """
    rows: List[ZeroRttAcceptance] = []
    for policy, source in records_by_policy.items():
        accepted: Dict[str, int] = {}
        fallback: Dict[str, int] = {}
        for record in _query_records(source):
            state = record_session_state(record)
            if state == "zero_rtt":
                accepted[record.transport] = accepted.get(record.transport, 0) + 1
            elif state == "resumed":
                fallback[record.transport] = fallback.get(record.transport, 0) + 1
        if not accepted:
            continue
        for transport in sorted(set(accepted) | set(fallback)):
            rows.append(
                ZeroRttAcceptance(
                    policy=policy,
                    transport=transport,
                    accepted=accepted.get(transport, 0),
                    fallback=fallback.get(transport, 0),
                )
            )
    return rows


# -- rendering ---------------------------------------------------------------


def _fmt(value: Optional[float]) -> str:
    return f"{value:.1f}" if value is not None else "—"


def render_session_cells(cells: Iterable[SessionCell]) -> str:
    """Markdown table of per-cell state counts and establishment share."""
    header = (
        "Policy", "Transport", "Vantage", "n",
        "cold", "warm", "resumed", "0rtt",
        "total (ms)", "estab (ms)", "estab %", "warm %",
    )
    rows = [
        (
            c.policy,
            c.transport,
            c.vantage,
            str(c.count),
            str(c.state_counts.get("cold", 0)),
            str(c.state_counts.get("warm", 0)),
            str(c.state_counts.get("resumed", 0)),
            str(c.state_counts.get("zero_rtt", 0)),
            _fmt(c.median_total_ms),
            _fmt(c.establishment_ms),
            f"{100.0 * c.establishment_share:.0f}%",
            f"{100.0 * c.warm_share:.0f}%",
        )
        for c in cells
    ]
    return render_table(header, rows)


def render_warm_cold_table(deltas: Iterable[WarmColdDelta]) -> str:
    """Markdown table of warm-vs-cold p95 response times per policy cell."""
    header = (
        "Policy", "Transport", "cold n", "warm n",
        "cold p95 (ms)", "warm p95 (ms)", "delta (ms)",
    )
    rows = [
        (
            d.policy,
            d.transport,
            str(d.cold_count),
            str(d.warm_count),
            _fmt(d.cold_p95_ms),
            _fmt(d.warm_p95_ms),
            _fmt(d.delta_ms),
        )
        for d in deltas
    ]
    return render_table(header, rows)


def render_zero_rtt_table(rows: Iterable[ZeroRttAcceptance]) -> str:
    """Markdown table of 0-RTT acceptance rates per policy × transport."""
    header = ("Policy", "Transport", "eligible", "0-RTT", "fallback", "accept %")
    body = [
        (
            r.policy,
            r.transport,
            str(r.eligible),
            str(r.accepted),
            str(r.fallback),
            (
                f"{100.0 * r.acceptance_rate:.0f}%"
                if r.acceptance_rate is not None
                else "—"
            ),
        )
        for r in rows
    ]
    return render_table(header, body)


def session_report(
    records_by_policy: Mapping[str, Any],
    per_vantage: bool = False,
) -> str:
    """The full session study report: cells, warm-vs-cold p95, 0-RTT rates."""
    sections = [
        "## Session scenario matrix",
        render_session_cells(session_cells(records_by_policy, per_vantage)),
    ]
    deltas = warm_cold_deltas(records_by_policy)
    if deltas:
        sections.append("\n## Warm vs cold p95 (within-run baseline)")
        sections.append(render_warm_cold_table(deltas))
    acceptance = zero_rtt_acceptance(records_by_policy)
    if acceptance:
        sections.append("\n## 0-RTT acceptance")
        sections.append(render_zero_rtt_table(acceptance))
    return "\n".join(sections)


__all__ = [
    "SESSION_TABLE_TRANSPORTS",
    "SessionCell",
    "WarmColdDelta",
    "ZeroRttAcceptance",
    "iter_run_records",
    "record_session_state",
    "render_session_cells",
    "render_warm_cold_table",
    "render_zero_rtt_table",
    "session_cells",
    "session_report",
    "warm_cold_deltas",
    "zero_rtt_acceptance",
]
