"""Phase attribution: where each millisecond of a measurement went.

Probes split every query's ``duration_ms`` into protocol phases — TCP
connect, TLS (or QUIC) handshake, and the query exchange — recorded on
the result as ``connect_ms`` / ``tls_ms`` / ``query_ms``.  This module
aggregates those fields into the per-resolver / per-vantage breakdown
tables behind the related-work observation the poster builds on: for
non-mainstream unicast resolvers measured from a distant vantage point,
connection establishment (TCP + TLS), not the resolution itself, accounts
for the majority of the added response time.

Failed queries carry ``failed_phase`` — the phase in flight when the
probe gave up — so connection errors are attributable to a specific span
(e.g. a dead resolver fails in ``tcp_connect``, a TLS fault window in
``tls_handshake``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence

from repro.analysis.render import render_table
from repro.analysis.stats import median
from repro.core.results import MeasurementRecord, ResultStore

#: Order phases appear in tables.
PHASE_FIELDS = ("connect_ms", "tls_ms", "query_ms")


@dataclass(frozen=True)
class PhaseBreakdown:
    """Median per-phase timings for one (resolver, vantage) cell.

    Phase medians are computed independently, so they need not sum to
    ``median_total_ms`` exactly (each is a median of its own marginal);
    per-record the phases do sum to the record's duration.
    """

    resolver: str
    vantage: str
    count: int
    median_total_ms: float
    median_connect_ms: Optional[float]
    median_tls_ms: Optional[float]
    median_query_ms: Optional[float]

    @property
    def establishment_ms(self) -> float:
        """Median TCP connect + TLS/QUIC handshake time."""
        return (self.median_connect_ms or 0.0) + (self.median_tls_ms or 0.0)

    @property
    def establishment_share(self) -> float:
        """Fraction of the total spent establishing the connection."""
        if not self.median_total_ms:
            return 0.0
        return self.establishment_ms / self.median_total_ms


def _phase_records(
    store: ResultStore, vantage: Optional[str], resolver: Optional[str]
) -> List[MeasurementRecord]:
    return store.filter(
        kind="dns_query",
        vantage=vantage,
        resolver=resolver,
        success=True,
        predicate=lambda r: r.duration_ms is not None,
    )


def phase_breakdown(
    store: ResultStore, resolver: str, vantage: Optional[str] = None
) -> Optional[PhaseBreakdown]:
    """Median phase timings for one resolver (optionally one vantage)."""
    records = _phase_records(store, vantage, resolver)
    if not records:
        return None

    def field_median(name: str) -> Optional[float]:
        values = [getattr(r, name) for r in records if getattr(r, name) is not None]
        return median(values) if values else None

    return PhaseBreakdown(
        resolver=resolver,
        vantage=vantage or "(all)",
        count=len(records),
        median_total_ms=median([r.duration_ms for r in records]),
        median_connect_ms=field_median("connect_ms"),
        median_tls_ms=field_median("tls_ms"),
        median_query_ms=field_median("query_ms"),
    )


def phase_breakdowns(
    store: ResultStore,
    vantages: Optional[Sequence[str]] = None,
    resolvers: Optional[Iterable[str]] = None,
) -> List[PhaseBreakdown]:
    """One breakdown per (vantage, resolver) pair with successful data."""
    if vantages is None:
        vantages = sorted({r.vantage for r in store.filter(kind="dns_query")})
    wanted = set(resolvers) if resolvers is not None else None
    out: List[PhaseBreakdown] = []
    for vantage in vantages:
        seen = sorted({r.resolver for r in store.filter(kind="dns_query", vantage=vantage)})
        for resolver in seen:
            if wanted is not None and resolver not in wanted:
                continue
            breakdown = phase_breakdown(store, resolver, vantage)
            if breakdown is not None:
                out.append(breakdown)
    return out


@dataclass(frozen=True)
class PhaseDelta:
    """Added latency far-vs-near, attributed to phases (Table 2/3 style)."""

    resolver: str
    near: PhaseBreakdown
    far: PhaseBreakdown

    @property
    def added_total_ms(self) -> float:
        return self.far.median_total_ms - self.near.median_total_ms

    @property
    def added_establishment_ms(self) -> float:
        return self.far.establishment_ms - self.near.establishment_ms

    @property
    def establishment_share_of_added(self) -> float:
        """Fraction of the added latency spent in TCP + TLS establishment."""
        if not self.added_total_ms:
            return 0.0
        return self.added_establishment_ms / self.added_total_ms


def phase_deltas(
    store: ResultStore,
    resolvers: Iterable[str],
    near_vantage: str,
    far_vantage: str,
) -> List[PhaseDelta]:
    """Per-resolver far-vs-near phase attribution, largest gap first."""
    deltas = []
    for resolver in resolvers:
        near = phase_breakdown(store, resolver, near_vantage)
        far = phase_breakdown(store, resolver, far_vantage)
        if near is None or far is None:
            continue
        deltas.append(PhaseDelta(resolver=resolver, near=near, far=far))
    deltas.sort(key=lambda d: d.added_total_ms, reverse=True)
    return deltas


def error_phases(
    store: ResultStore,
    vantage: Optional[str] = None,
    resolver: Optional[str] = None,
) -> Dict[str, int]:
    """Failed queries counted by the phase that was in flight.

    Keys are phase names (``tcp_connect``, ``tls_handshake``, …) with
    ``"(unknown)"`` for failures recorded without phase data (e.g. loaded
    from pre-phase-tracking result files).
    """
    counts: Dict[str, int] = {}
    for record in store.filter(
        kind="dns_query", vantage=vantage, resolver=resolver, success=False
    ):
        phase = record.failed_phase or "(unknown)"
        counts[phase] = counts.get(phase, 0) + 1
    return dict(sorted(counts.items()))


# -- rendering ---------------------------------------------------------------


def _fmt(value: Optional[float]) -> str:
    return f"{value:.1f}" if value is not None else "—"


def render_phase_table(breakdowns: Sequence[PhaseBreakdown]) -> str:
    """Markdown table of per-cell phase medians and establishment share."""
    header = (
        "Vantage", "Resolver", "n", "total (ms)",
        "connect", "tls", "query", "estab %",
    )
    rows = [
        (
            b.vantage,
            b.resolver,
            str(b.count),
            _fmt(b.median_total_ms),
            _fmt(b.median_connect_ms),
            _fmt(b.median_tls_ms),
            _fmt(b.median_query_ms),
            f"{100.0 * b.establishment_share:.0f}%",
        )
        for b in breakdowns
    ]
    return render_table(header, rows)


def render_phase_delta_table(
    deltas: Sequence[PhaseDelta], title: Optional[str] = None
) -> str:
    """Markdown table attributing far-vs-near added latency to phases."""
    header = (
        "Resolver", "near (ms)", "far (ms)", "added (ms)",
        "added estab (ms)", "estab share of added",
    )
    rows = [
        (
            d.resolver,
            _fmt(d.near.median_total_ms),
            _fmt(d.far.median_total_ms),
            _fmt(d.added_total_ms),
            _fmt(d.added_establishment_ms),
            f"{100.0 * d.establishment_share_of_added:.0f}%",
        )
        for d in deltas
    ]
    table = render_table(header, rows)
    return f"{title}\n{table}" if title else table


def render_error_phases(counts: Dict[str, int]) -> str:
    """Markdown table of error counts by failed phase."""
    header = ("Failed phase", "errors")
    rows = [(phase, str(count)) for phase, count in counts.items()]
    return render_table(header, rows)
