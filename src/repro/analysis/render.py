"""Text renderers: markdown tables and ASCII boxplot panels.

The paper's figures are box-and-whisker plots; :func:`render_boxplot_rows`
draws the same information as aligned text so reports and CLI output can
show the distributions without a plotting dependency.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.analysis.figures import FigureRow


def render_table(header: Sequence[str], rows: Sequence[Sequence[str]]) -> str:
    """Render a GitHub-flavoured markdown table."""
    widths = [len(str(h)) for h in header]
    for row in rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(str(cell)))

    def fmt(cells: Sequence[str]) -> str:
        return "| " + " | ".join(str(c).ljust(widths[i]) for i, c in enumerate(cells)) + " |"

    lines = [fmt(header), "|" + "|".join("-" * (w + 2) for w in widths) + "|"]
    lines.extend(fmt(row) for row in rows)
    return "\n".join(lines)


def _bar(
    low: float, q1: float, med: float, q3: float, high: float,
    scale_max: float, width: int,
) -> str:
    """One ASCII box-and-whisker: ``----[==|==]------``."""
    def col(value: float) -> int:
        if scale_max <= 0:
            return 0
        return min(width - 1, max(0, int(value / scale_max * (width - 1))))

    cells = [" "] * width
    c_low, c_q1, c_med, c_q3, c_high = (col(v) for v in (low, q1, med, q3, high))
    for i in range(c_low, c_q1):
        cells[i] = "-"
    for i in range(c_q1, c_q3 + 1):
        cells[i] = "="
    for i in range(c_q3 + 1, c_high + 1):
        cells[i] = "-"
    cells[c_q1] = "["
    cells[c_q3] = "]"
    cells[c_med] = "|"
    return "".join(cells)


def render_boxplot_rows(
    rows: Sequence[FigureRow],
    width: int = 48,
    scale_max_ms: Optional[float] = None,
    include_ping: bool = True,
) -> str:
    """Render one figure panel as aligned ASCII boxplots.

    Mirrors the paper's truncation: distributions beyond the scale maximum
    (default: the 95th-percentile whisker across rows, capped at 600 ms
    like the paper's axes) are clipped.
    """
    populated = [row for row in rows if row.dns_stats is not None]
    if not populated:
        return "(no data)"
    if scale_max_ms is None:
        scale_max_ms = min(600.0, max(row.dns_stats.whisker_high for row in populated) * 1.1)
    name_width = max(len(row.resolver) for row in rows) + 2
    lines = [
        f"{'resolver'.ljust(name_width)} {'median'.rjust(8)}  "
        f"0ms {'·' * (width - 10)} {scale_max_ms:.0f}ms"
    ]
    for row in rows:
        label = row.resolver + ("*" if row.mainstream else "")
        if row.dns_stats is None:
            lines.append(f"{label.ljust(name_width)} {'—'.rjust(8)}  (no successful queries)")
            continue
        stats = row.dns_stats
        bar = _bar(
            stats.whisker_low, stats.q1, stats.median, stats.q3, stats.whisker_high,
            scale_max_ms, width,
        )
        lines.append(f"{label.ljust(name_width)} {stats.median:8.1f}  {bar}")
        if include_ping and row.ping_stats is not None:
            ping = row.ping_stats
            ping_bar = _bar(
                ping.whisker_low, ping.q1, ping.median, ping.q3, ping.whisker_high,
                scale_max_ms, width,
            )
            lines.append(f"{'  (ping)'.ljust(name_width)} {ping.median:8.1f}  {ping_bar}")
    lines.append("(* = mainstream; box = IQR, | = median, - = whiskers)")
    return "\n".join(lines)


def render_delta_table(
    title: str,
    near_label: str,
    far_label: str,
    rows: Sequence[Tuple[str, str, str]],
) -> str:
    """Render a Table 2/3-style median comparison."""
    header = ("Resolver", f"{near_label} (ms)", f"{far_label} (ms)")
    return f"{title}\n" + render_table(header, list(rows))
