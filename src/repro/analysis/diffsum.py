"""Diff-report tables: per-resolver disagreement rates, per-field shares.

The respdiff analogy is ``diffsum``: aggregate the per-cell diff records
into the tables an operator reads.  All rendering is deterministic —
rows carry total orders and rates print with fixed precision — so a diff
summary is byte-comparable across runs, worker counts, and record
sources.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.analysis.render import render_table


def per_resolver_table(report) -> str:
    """The per-resolver disagreement-rate table (worst first)."""
    rows = []
    for row in report.per_resolver_rows():
        rows.append(
            (
                row.resolver,
                str(row.cells),
                str(row.agree),
                str(row.disagree),
                str(row.unanswered),
                f"{row.disagreement_rate:.4f}",
            )
        )
    return render_table(
        ("Resolver", "Cells", "Agree", "Disagree", "Unanswered", "Rate"),
        rows,
    )


def field_share_table(report) -> str:
    """Which response fields carry the mismatches, as shares."""
    rows = [
        (field, str(count), f"{share:.4f}")
        for field, count, share in report.field_mismatch_shares()
    ]
    return render_table(("Field", "Mismatches", "Share"), rows)


def taxonomy_table(report) -> str:
    """Disagreement classes with reproducibility verdicts."""
    rows = [
        (label, str(count), str(reproducible), str(transient), str(unverified))
        for label, count, reproducible, transient, unverified in report.classification_counts()
    ]
    return render_table(
        ("Class", "Count", "Reproducible", "Transient", "Unverified"),
        rows,
    )


def render_diff_summary(report) -> str:
    """The full human-readable diff report (deterministic text)."""
    counts = report.status_counts()
    lines = [
        "# Cross-resolver answer differencing",
        "",
        (
            f"cells={report.cell_count()} comparisons={len(report)} "
            f"agree={counts['agree']} disagree={counts['disagree']} "
            f"unanswered={counts['unanswered']}"
        ),
        "",
        "## Per-resolver disagreement rate",
        "",
        per_resolver_table(report),
        "",
        "## Per-field mismatch share",
        "",
        field_share_table(report),
        "",
        "## Disagreement taxonomy",
        "",
        taxonomy_table(report),
        "",
    ]
    return "\n".join(lines)
