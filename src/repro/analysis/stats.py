"""Statistics primitives: quantiles and boxplot summaries.

Implemented without numpy so the core library stays dependency-free; the
benchmark harness can still hand the same lists to numpy/scipy for
cross-checking (and the test suite does exactly that).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.errors import AnalysisError


def quantile(values: Sequence[float], q: float) -> float:
    """Linear-interpolation quantile (same convention as numpy's default)."""
    if not values:
        raise AnalysisError("quantile of empty sequence")
    if not 0.0 <= q <= 1.0:
        raise AnalysisError(f"quantile {q} outside [0, 1]")
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    position = q * (len(ordered) - 1)
    lower = math.floor(position)
    upper = math.ceil(position)
    if lower == upper:
        return ordered[lower]
    weight = position - lower
    result = ordered[lower] * (1.0 - weight) + ordered[upper] * weight
    # Rounding (notably on subnormals) can push the interpolation outside
    # the bracketing samples, breaking quantile monotonicity; clamp back.
    return min(max(result, ordered[lower]), ordered[upper])


def median(values: Sequence[float]) -> float:
    """The 50th percentile."""
    return quantile(values, 0.5)


@dataclass(frozen=True)
class BoxplotStats:
    """Five-number summary with Tukey whiskers (1.5 × IQR)."""

    count: int
    minimum: float
    q1: float
    median: float
    q3: float
    maximum: float
    whisker_low: float
    whisker_high: float
    outliers: int
    mean: float

    @property
    def iqr(self) -> float:
        return self.q3 - self.q1

    def describe(self) -> str:
        return (
            f"n={self.count} min={self.minimum:.1f} q1={self.q1:.1f} "
            f"med={self.median:.1f} q3={self.q3:.1f} max={self.maximum:.1f} "
            f"outliers={self.outliers}"
        )


def summarize(values: Sequence[float]) -> BoxplotStats:
    """Compute the boxplot summary of a sample."""
    if not values:
        raise AnalysisError("summarize of empty sequence")
    ordered = sorted(values)
    q1 = quantile(ordered, 0.25)
    med = quantile(ordered, 0.5)
    q3 = quantile(ordered, 0.75)
    iqr = q3 - q1
    low_fence = q1 - 1.5 * iqr
    high_fence = q3 + 1.5 * iqr
    in_fence = [v for v in ordered if low_fence <= v <= high_fence]
    whisker_low = in_fence[0] if in_fence else ordered[0]
    whisker_high = in_fence[-1] if in_fence else ordered[-1]
    outliers = len(ordered) - len(in_fence)
    # fsum + clamp: float addition can drift the mean a ULP outside
    # [min, max] for near-identical samples, breaking ordering invariants.
    mean = min(max(math.fsum(ordered) / len(ordered), ordered[0]), ordered[-1])
    return BoxplotStats(
        count=len(ordered),
        minimum=ordered[0],
        q1=q1,
        median=med,
        q3=q3,
        maximum=ordered[-1],
        whisker_low=whisker_low,
        whisker_high=whisker_high,
        outliers=outliers,
        mean=mean,
    )


def summarize_or_none(values: Sequence[float]) -> Optional[BoxplotStats]:
    """:func:`summarize`, returning None for an empty sample."""
    return summarize(values) if values else None


def median_absolute_deviation(values: Sequence[float]) -> float:
    """MAD — a robust spread measure used in variability comparisons."""
    if not values:
        raise AnalysisError("MAD of empty sequence")
    center = median(values)
    return median([abs(v - center) for v in values])
