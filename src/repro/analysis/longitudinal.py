"""Longitudinal analysis: did resolver performance drift over time?

The paper re-measured for 1–3 days each month through May 2024 "to ensure
that resolver performance did not change drastically since October 2023".
This module compares a baseline campaign against later re-check campaigns,
flagging resolvers whose median response time or availability moved beyond
a threshold.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from repro.analysis.response_times import resolver_medians
from repro.analysis.stats import median
from repro.core.results import MeasurementRecord, RecordSource, ResultStore
from repro.errors import AnalysisError


@dataclass(frozen=True)
class ResolverDrift:
    """One resolver's change between two campaigns."""

    resolver: str
    base_median_ms: float
    later_median_ms: float
    base_availability: float
    later_availability: float

    @property
    def has_baseline(self) -> bool:
        """Whether the baseline median supports a meaningful ratio.

        A non-positive baseline median (no successful baseline samples,
        or a degenerate zero-duration median) gives the latency ratio no
        denominator — such resolvers are reported as ``no-baseline``
        rather than flagged as drifted on an infinite ratio.
        """
        return self.base_median_ms > 0

    @property
    def latency_ratio(self) -> Optional[float]:
        if not self.has_baseline:
            return None
        return self.later_median_ms / self.base_median_ms

    @property
    def availability_delta(self) -> float:
        return self.later_availability - self.base_availability

    def status(self, latency_factor: float, availability_drop: float) -> str:
        """``"stable"``, ``"drifted"``, or ``"no-baseline"``."""
        if not self.has_baseline:
            return "no-baseline"
        return (
            "drifted"
            if self.drifted(latency_factor, availability_drop)
            else "stable"
        )

    def drifted(self, latency_factor: float, availability_drop: float) -> bool:
        ratio = self.latency_ratio
        if ratio is not None and (
            ratio > latency_factor or ratio < 1.0 / latency_factor
        ):
            return True
        return self.availability_delta < -availability_drop


@dataclass
class DriftReport:
    """Comparison of one later campaign against the baseline."""

    base_campaign: str
    later_campaign: str
    per_resolver: List[ResolverDrift] = field(default_factory=list)
    latency_factor: float = 2.0
    availability_drop: float = 0.2

    @property
    def comparable(self) -> List[ResolverDrift]:
        """Resolvers with a usable latency baseline."""
        return [drift for drift in self.per_resolver if drift.has_baseline]

    @property
    def no_baseline(self) -> List[ResolverDrift]:
        """Resolvers with no usable baseline median — reported, not flagged."""
        return [drift for drift in self.per_resolver if not drift.has_baseline]

    @property
    def drifted(self) -> List[ResolverDrift]:
        return [
            drift
            for drift in self.comparable
            if drift.drifted(self.latency_factor, self.availability_drop)
        ]

    @property
    def stable_fraction(self) -> float:
        comparable = self.comparable
        if not comparable:
            return 1.0
        return 1.0 - len(self.drifted) / len(comparable)

    @property
    def median_latency_ratio(self) -> float:
        ratios = [
            drift.latency_ratio
            for drift in self.per_resolver
            if drift.latency_ratio is not None
        ]
        return median(ratios) if ratios else 1.0

    def describe(self) -> str:
        no_baseline = self.no_baseline
        suffix = f", {len(no_baseline)} without baseline" if no_baseline else ""
        lines = [
            f"{self.later_campaign} vs {self.base_campaign}: "
            f"{self.stable_fraction:.0%} of {len(self.comparable)} resolvers stable "
            f"(median latency ratio {self.median_latency_ratio:.2f}{suffix})",
        ]
        for drift in sorted(self.drifted, key=lambda d: -(d.latency_ratio or 0.0)):
            lines.append(
                f"  DRIFT {drift.resolver}: {drift.base_median_ms:.0f} -> "
                f"{drift.later_median_ms:.0f} ms "
                f"(avail {drift.base_availability:.0%} -> {drift.later_availability:.0%})"
            )
        for drift in sorted(no_baseline, key=lambda d: d.resolver):
            lines.append(
                f"  NO-BASELINE {drift.resolver}: no usable baseline median "
                f"(avail {drift.base_availability:.0%} -> {drift.later_availability:.0%})"
            )
        return "\n".join(lines)


def campaigns_in_order(store: RecordSource) -> List[str]:
    """Campaign names ordered by their first record's start time."""
    first_seen: Dict[str, float] = {}
    for record in store:
        if record.campaign not in first_seen or record.started_at_ms < first_seen[record.campaign]:
            first_seen[record.campaign] = record.started_at_ms
    return [name for name, _t in sorted(first_seen.items(), key=lambda kv: kv[1])]


def _campaign_view(store: RecordSource, campaign: str) -> ResultStore:
    view = ResultStore()
    view.extend(record for record in store if record.campaign == campaign)
    return view


def _availability(view: ResultStore, resolver: str, vantage: Optional[str]) -> float:
    records = view.filter(kind="dns_query", resolver=resolver, vantage=vantage)
    if not records:
        return 0.0
    return sum(1 for record in records if record.success) / len(records)


def drift_report(
    store: RecordSource,
    base_campaign: str,
    later_campaign: str,
    vantage: Optional[str] = None,
    latency_factor: float = 2.0,
    availability_drop: float = 0.2,
) -> DriftReport:
    """Compare ``later_campaign`` against ``base_campaign``.

    Resolvers present in only one of the two campaigns are skipped (no
    basis for comparison).  Raises :class:`AnalysisError` when either
    campaign has no records at all.
    """
    base_view = _campaign_view(store, base_campaign)
    later_view = _campaign_view(store, later_campaign)
    if not len(base_view):
        raise AnalysisError(f"no records for baseline campaign {base_campaign!r}")
    if not len(later_view):
        raise AnalysisError(f"no records for campaign {later_campaign!r}")

    base_medians = resolver_medians(base_view, vantage=vantage)
    later_medians = resolver_medians(later_view, vantage=vantage)
    report = DriftReport(
        base_campaign=base_campaign,
        later_campaign=later_campaign,
        latency_factor=latency_factor,
        availability_drop=availability_drop,
    )
    for resolver in sorted(set(base_medians) & set(later_medians)):
        report.per_resolver.append(
            ResolverDrift(
                resolver=resolver,
                base_median_ms=base_medians[resolver],
                later_median_ms=later_medians[resolver],
                base_availability=_availability(base_view, resolver, vantage),
                later_availability=_availability(later_view, resolver, vantage),
            )
        )
    return report


def drift_reports_over_time(
    store: RecordSource,
    vantage: Optional[str] = None,
    latency_factor: float = 2.0,
) -> List[DriftReport]:
    """A report for every campaign after the first, in time order."""
    ordered = campaigns_in_order(store)
    if len(ordered) < 2:
        raise AnalysisError("need at least two campaigns for drift analysis")
    base = ordered[0]
    return [
        drift_report(store, base, later, vantage=vantage, latency_factor=latency_factor)
        for later in ordered[1:]
    ]


def drift_reports_from_records(
    records: Iterable[MeasurementRecord],
    vantage: Optional[str] = None,
    latency_factor: float = 2.0,
    availability_drop: float = 0.2,
) -> List[DriftReport]:
    """Single-pass streaming variant of :func:`drift_reports_over_time`.

    Consumes any record iterable, keeping only per-(campaign, resolver)
    duration lists and success counters — never the records themselves —
    and produces the same reports :func:`drift_reports_over_time` builds
    from a loaded store: campaign order by first start time over *all*
    records, medians over successful DNS durations, availability over all
    DNS query records (each restricted to ``vantage`` when given).
    """
    first_seen: Dict[str, float] = {}
    durations: Dict[Tuple[str, str], List[float]] = {}
    query_counts: Dict[Tuple[str, str], List[int]] = {}  # [successes, total]
    for record in records:
        campaign = record.campaign
        if campaign not in first_seen or record.started_at_ms < first_seen[campaign]:
            first_seen[campaign] = record.started_at_ms
        if record.kind != "dns_query":
            continue
        if vantage is not None and record.vantage != vantage:
            continue
        key = (campaign, record.resolver)
        counts = query_counts.setdefault(key, [0, 0])
        counts[1] += 1
        if record.success:
            counts[0] += 1
            if record.duration_ms is not None:
                durations.setdefault(key, []).append(record.duration_ms)

    ordered = [name for name, _t in sorted(first_seen.items(), key=lambda kv: kv[1])]
    if len(ordered) < 2:
        raise AnalysisError("need at least two campaigns for drift analysis")

    def medians_of(campaign: str) -> Dict[str, float]:
        return {
            resolver: median(samples)
            for (c, resolver), samples in durations.items()
            if c == campaign and samples
        }

    def availability_of(campaign: str, resolver: str) -> float:
        successes, total = query_counts.get((campaign, resolver), (0, 0))
        return successes / total if total else 0.0

    base = ordered[0]
    base_medians = medians_of(base)
    reports = []
    for later in ordered[1:]:
        later_medians = medians_of(later)
        report = DriftReport(
            base_campaign=base,
            later_campaign=later,
            latency_factor=latency_factor,
            availability_drop=availability_drop,
        )
        for resolver in sorted(set(base_medians) & set(later_medians)):
            report.per_resolver.append(
                ResolverDrift(
                    resolver=resolver,
                    base_median_ms=base_medians[resolver],
                    later_median_ms=later_medians[resolver],
                    base_availability=availability_of(base, resolver),
                    later_availability=availability_of(later, resolver),
                )
            )
        reports.append(report)
    return reports
