"""Metrics registry: counters, gauges and fixed-bucket histograms.

Every layer of the stack reports into one :class:`MetricsRegistry` —
packet counts from :mod:`repro.netsim.network`, handshake counts and
sizes from :mod:`repro.tlssim.handshake`, frame and codec counters from
:mod:`repro.httpsim`, retransmissions from :mod:`repro.quicsim`, and
query/error/retry counts from the campaign runner.

A registry created with ``enabled=False`` (the module default — see
:func:`repro.obs.get_metrics`) turns every operation into a constant-time
no-op; hot paths additionally guard on :attr:`MetricsRegistry.enabled`
before building label dicts.

Histograms use fixed millisecond buckets, so p50/p95/p99 estimates are
deterministic, mergeable and cheap: one increment per observation, a
linear interpolation inside the owning bucket per quantile query.
"""

from __future__ import annotations

import bisect
import json
import math
import re
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

#: Default latency-shaped bucket upper bounds (ms).  The last implicit
#: bucket is +inf.
DEFAULT_BUCKETS = (
    0.5, 1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0, 200.0, 350.0,
    500.0, 750.0, 1000.0, 2000.0, 5000.0, 10000.0,
)


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, n: float = 1.0) -> None:
        self.value += n


class Gauge:
    """A value that can go up and down (last write wins)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value


class Histogram:
    """Fixed-bucket histogram with quantile estimation."""

    __slots__ = ("bounds", "counts", "count", "total", "min", "max")

    def __init__(self, bounds: Sequence[float] = DEFAULT_BUCKETS) -> None:
        self.bounds: Tuple[float, ...] = tuple(bounds)
        self.counts: List[int] = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def observe(self, value: float) -> None:
        index = bisect.bisect_left(self.bounds, value)
        self.counts[index] += 1
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    @property
    def mean(self) -> Optional[float]:
        return self.total / self.count if self.count else None

    def quantile(self, q: float) -> Optional[float]:
        """Estimated q-quantile via linear interpolation inside the bucket.

        The overflow bucket reports the observed maximum (there is no
        upper bound to interpolate toward).
        """
        if not self.count:
            return None
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q!r}")
        target = q * self.count
        cumulative = 0
        for index, bucket_count in enumerate(self.counts):
            if bucket_count == 0:
                continue
            if cumulative + bucket_count >= target:
                if index >= len(self.bounds):
                    return self.max
                lower = self.bounds[index - 1] if index > 0 else 0.0
                upper = self.bounds[index]
                fraction = (target - cumulative) / bucket_count
                return lower + (upper - lower) * fraction
            cumulative += bucket_count
        return self.max

    # -- mergeable state ---------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """Lossless JSON-friendly dump (raw bucket counts, not quantiles)."""
        return {
            "bounds": list(self.bounds),
            "counts": list(self.counts),
            "count": self.count,
            "total": self.total,
            "min": self.min,
            "max": self.max,
        }

    @classmethod
    def from_dict(cls, dump: Dict[str, Any]) -> "Histogram":
        histogram = cls(tuple(dump["bounds"]))
        histogram.merge_dict(dump)
        return histogram

    def merge_dict(self, dump: Dict[str, Any]) -> None:
        """Fold one :meth:`to_dict` dump into this histogram.

        Fixed-bucket histograms compose exactly by adding counts, which is
        why per-shard and per-segment summaries merge into whole-run
        quantile estimates identical to a single-pass computation.
        """
        if self.bounds != tuple(dump["bounds"]):
            raise ValueError("cannot merge histograms with differing bucket bounds")
        for index, count in enumerate(dump["counts"]):
            self.counts[index] += count
        self.count += dump["count"]
        self.total += dump["total"]
        if dump["min"] is not None:
            self.min = dump["min"] if self.min is None else min(self.min, dump["min"])
        if dump["max"] is not None:
            self.max = dump["max"] if self.max is None else max(self.max, dump["max"])

    def merge(self, other: "Histogram") -> None:
        """Fold another histogram (same bounds) into this one."""
        self.merge_dict(other.to_dict())

    @property
    def p50(self) -> Optional[float]:
        return self.quantile(0.50)

    @property
    def p95(self) -> Optional[float]:
        return self.quantile(0.95)

    @property
    def p99(self) -> Optional[float]:
        return self.quantile(0.99)


def _key(name: str, labels: Dict[str, Any]) -> str:
    if not labels:
        return name
    inner = ",".join(f"{k}={labels[k]}" for k in sorted(labels))
    return f"{name}{{{inner}}}"


def _parse_key(key: str) -> Tuple[str, Dict[str, str]]:
    """Split a registry key back into (name, labels)."""
    if "{" not in key or not key.endswith("}"):
        return key, {}
    name, _, inner = key.partition("{")
    labels: Dict[str, str] = {}
    for part in inner[:-1].split(","):
        label, _, value = part.partition("=")
        labels[label] = value
    return name, labels


def _prom_name(name: str) -> str:
    """A valid Prometheus metric name (dots become underscores)."""
    sanitized = re.sub(r"[^a-zA-Z0-9_:]", "_", name)
    return "_" + sanitized if sanitized[:1].isdigit() else sanitized


def _prom_label_name(name: str) -> str:
    sanitized = re.sub(r"[^a-zA-Z0-9_]", "_", name)
    return "_" + sanitized if sanitized[:1].isdigit() else sanitized


def _prom_labels(labels: Dict[str, str]) -> str:
    if not labels:
        return ""
    parts = []
    for label in sorted(labels):
        value = str(labels[label])
        value = value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
        parts.append(f'{_prom_label_name(label)}="{value}"')
    return "{" + ",".join(parts) + "}"


def _prom_value(value: Optional[float]) -> str:
    if value is None or (isinstance(value, float) and math.isnan(value)):
        return "NaN"
    value = float(value)
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if value.is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


class MetricsRegistry:
    """Named counters, gauges and histograms with optional labels."""

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    # -- writing ----------------------------------------------------------

    def inc(self, name: str, n: float = 1.0, **labels: Any) -> None:
        if not self.enabled:
            return
        key = _key(name, labels)
        counter = self._counters.get(key)
        if counter is None:
            counter = self._counters[key] = Counter()
        counter.inc(n)

    def set_gauge(self, name: str, value: float, **labels: Any) -> None:
        if not self.enabled:
            return
        key = _key(name, labels)
        gauge = self._gauges.get(key)
        if gauge is None:
            gauge = self._gauges[key] = Gauge()
        gauge.set(value)

    def observe(
        self,
        name: str,
        value: float,
        bounds: Sequence[float] = DEFAULT_BUCKETS,
        **labels: Any,
    ) -> None:
        if not self.enabled:
            return
        key = _key(name, labels)
        histogram = self._histograms.get(key)
        if histogram is None:
            histogram = self._histograms[key] = Histogram(bounds)
        histogram.observe(value)

    # -- reading ----------------------------------------------------------

    def value(self, name: str, **labels: Any) -> float:
        """Current value of a counter (0 if never incremented)."""
        counter = self._counters.get(_key(name, labels))
        return counter.value if counter is not None else 0.0

    def gauge_value(self, name: str, **labels: Any) -> Optional[float]:
        gauge = self._gauges.get(_key(name, labels))
        return gauge.value if gauge is not None else None

    def histogram(self, name: str, **labels: Any) -> Optional[Histogram]:
        return self._histograms.get(_key(name, labels))

    def counters_matching(self, prefix: str) -> Dict[str, float]:
        """All counters whose key starts with ``prefix``."""
        return {
            key: counter.value
            for key, counter in self._counters.items()
            if key.startswith(prefix)
        }

    def gauges_matching(self, prefix: str) -> Dict[str, float]:
        """All gauges whose key starts with ``prefix``."""
        return {
            key: gauge.value
            for key, gauge in self._gauges.items()
            if key.startswith(prefix)
        }

    def clear(self) -> None:
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()

    # -- mergeable state --------------------------------------------------

    def to_state(self) -> Dict[str, Any]:
        """Full internal state, JSON/pickle-friendly and lossless.

        Unlike :meth:`snapshot` (which reduces histograms to quantile
        estimates), the state keeps raw bucket counts, so registries can
        be merged exactly: fixed-bucket histograms compose by adding
        counts, which is why sharded and serial runs produce identical
        quantile estimates after merging.
        """
        return {
            "counters": {k: self._counters[k].value for k in sorted(self._counters)},
            "gauges": {k: self._gauges[k].value for k in sorted(self._gauges)},
            "histograms": {
                k: h.to_dict() for k, h in sorted(self._histograms.items())
            },
        }

    def merge_state(self, state: Dict[str, Any]) -> None:
        """Fold one :meth:`to_state` dump into this registry.

        Counters and histogram buckets add; gauges add as well (the
        campaign gauges — record and error totals — are extensive
        quantities, so summing across shards reproduces the whole-run
        value).  Merging is commutative and associative, so the result is
        independent of shard completion order.
        """
        for key, value in state.get("counters", {}).items():
            counter = self._counters.get(key)
            if counter is None:
                counter = self._counters[key] = Counter()
            counter.inc(value)
        for key, value in state.get("gauges", {}).items():
            gauge = self._gauges.get(key)
            if gauge is None:
                gauge = self._gauges[key] = Gauge()
            gauge.set(gauge.value + value)
        for key, dump in state.get("histograms", {}).items():
            histogram = self._histograms.get(key)
            if histogram is None:
                histogram = self._histograms[key] = Histogram(tuple(dump["bounds"]))
            try:
                histogram.merge_dict(dump)
            except ValueError:
                raise ValueError(
                    f"histogram {key!r}: cannot merge differing bucket bounds"
                ) from None

    @classmethod
    def from_states(
        cls, states: Sequence[Dict[str, Any]], enabled: bool = True
    ) -> "MetricsRegistry":
        """A registry holding the merge of several :meth:`to_state` dumps."""
        merged = cls(enabled=enabled)
        for state in states:
            merged.merge_state(state)
        return merged

    # -- export -----------------------------------------------------------

    def snapshot(self) -> Dict[str, Any]:
        """JSON-friendly dump of every metric (sorted keys)."""
        return {
            "counters": {k: self._counters[k].value for k in sorted(self._counters)},
            "gauges": {k: self._gauges[k].value for k in sorted(self._gauges)},
            "histograms": {
                k: {
                    "count": h.count,
                    "mean": h.mean,
                    "min": h.min,
                    "max": h.max,
                    "p50": h.p50,
                    "p95": h.p95,
                    "p99": h.p99,
                }
                for k, h in sorted(self._histograms.items())
            },
        }

    def save_json(self, path: Union[str, Path]) -> None:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(
            json.dumps(self.snapshot(), indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )

    def save_state_json(self, path: Union[str, Path]) -> None:
        """Persist the lossless :meth:`to_state` dump (raw buckets)."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(
            json.dumps(self.to_state(), indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )

    def to_prometheus(self) -> str:
        """Prometheus text-format exposition of every metric.

        Counters and gauges map directly; histograms expose the classic
        cumulative ``_bucket{le=...}`` series plus ``_sum`` and
        ``_count``.  Metric and label names are sanitized to the
        Prometheus grammar (dots become underscores); families and
        samples are emitted in sorted order, so two registries with equal
        state expose byte-identical text.
        """
        families: Dict[str, List[str]] = {}

        def family(name: str, kind: str) -> List[str]:
            prom = _prom_name(name)
            lines = families.get(prom)
            if lines is None:
                lines = families[prom] = [f"# TYPE {prom} {kind}"]
            return lines

        for key in sorted(self._counters):
            name, labels = _parse_key(key)
            family(name, "counter").append(
                f"{_prom_name(name)}{_prom_labels(labels)} "
                f"{_prom_value(self._counters[key].value)}"
            )
        for key in sorted(self._gauges):
            name, labels = _parse_key(key)
            family(name, "gauge").append(
                f"{_prom_name(name)}{_prom_labels(labels)} "
                f"{_prom_value(self._gauges[key].value)}"
            )
        for key in sorted(self._histograms):
            name, labels = _parse_key(key)
            histogram = self._histograms[key]
            lines = family(name, "histogram")
            prom = _prom_name(name)
            cumulative = 0
            for bound, count in zip(histogram.bounds, histogram.counts):
                cumulative += count
                bucket_labels = dict(labels)
                bucket_labels["le"] = _prom_value(bound)
                lines.append(
                    f"{prom}_bucket{_prom_labels(bucket_labels)} {cumulative}"
                )
            inf_labels = dict(labels)
            inf_labels["le"] = "+Inf"
            lines.append(
                f"{prom}_bucket{_prom_labels(inf_labels)} {histogram.count}"
            )
            lines.append(
                f"{prom}_sum{_prom_labels(labels)} {_prom_value(histogram.total)}"
            )
            lines.append(f"{prom}_count{_prom_labels(labels)} {histogram.count}")
        return (
            "\n".join(
                line for name in sorted(families) for line in families[name]
            )
            + "\n"
            if families
            else ""
        )

    def summary(self) -> str:
        """Human-readable multi-line summary of all metrics."""
        lines: List[str] = []
        if self._counters:
            lines.append("== counters ==")
            for key in sorted(self._counters):
                lines.append(f"{key:<60} {self._counters[key].value:>12g}")
        if self._gauges:
            lines.append("== gauges ==")
            for key in sorted(self._gauges):
                lines.append(f"{key:<60} {self._gauges[key].value:>12g}")
        if self._histograms:
            lines.append("== histograms ==")
            for key in sorted(self._histograms):
                h = self._histograms[key]
                if not h.count:
                    continue
                lines.append(
                    f"{key:<48} n={h.count:<8} mean={h.mean:>9.2f} "
                    f"p50={h.p50:>9.2f} p95={h.p95:>9.2f} p99={h.p99:>9.2f} "
                    f"max={h.max:>9.2f}"
                )
        return "\n".join(lines) if lines else "(no metrics recorded)"


def exposition_from_dump(data: Dict[str, Any]) -> str:
    """Prometheus text exposition from a saved metrics JSON file.

    Accepts both on-disk formats.  A :meth:`MetricsRegistry.to_state`
    dump (raw bucket counts) rebuilds a registry and exposes full
    histograms; a :meth:`MetricsRegistry.snapshot` dump (quantile
    estimates only) exposes each histogram as a Prometheus *summary* —
    quantile samples plus ``_sum``/``_count`` — since the buckets are
    gone.
    """
    if not isinstance(data, dict):
        raise ValueError(f"metrics dump must be a mapping, got {type(data).__name__}")
    histograms = data.get("histograms", {})
    is_state = all(
        isinstance(dump, dict) and "counts" in dump and "bounds" in dump
        for dump in histograms.values()
    )
    if is_state:
        return MetricsRegistry.from_states([data]).to_prometheus()

    families: Dict[str, List[str]] = {}

    def family(name: str, kind: str) -> List[str]:
        prom = _prom_name(name)
        lines = families.get(prom)
        if lines is None:
            lines = families[prom] = [f"# TYPE {prom} {kind}"]
        return lines

    for kind, section in (("counter", "counters"), ("gauge", "gauges")):
        for key in sorted(data.get(section, {})):
            name, labels = _parse_key(key)
            family(name, kind).append(
                f"{_prom_name(name)}{_prom_labels(labels)} "
                f"{_prom_value(data[section][key])}"
            )
    for key in sorted(histograms):
        name, labels = _parse_key(key)
        dump = histograms[key]
        lines = family(name, "summary")
        prom = _prom_name(name)
        for q in ("p50", "p95", "p99"):
            if dump.get(q) is None:
                continue
            q_labels = dict(labels)
            q_labels["quantile"] = f"0.{q[1:]}"
            lines.append(
                f"{prom}{_prom_labels(q_labels)} {_prom_value(dump[q])}"
            )
        count = dump.get("count", 0)
        mean = dump.get("mean")
        total = mean * count if mean is not None else 0.0
        lines.append(f"{prom}_sum{_prom_labels(labels)} {_prom_value(total)}")
        lines.append(f"{prom}_count{_prom_labels(labels)} {count}")
    return (
        "\n".join(line for name in sorted(families) for line in families[name]) + "\n"
        if families
        else ""
    )
