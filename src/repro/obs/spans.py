"""Virtual-clock span tracing for the measurement stack.

A *span* is a named interval on the simulator's virtual clock with an
optional parent, forming trees like::

    campaign > round > measurement > probe > {tcp_connect, tls_handshake,
                                              quic_handshake, http_exchange,
                                              dns_parse}

Two recorders exist:

* :data:`NULL_RECORDER` (a bare :class:`SpanRecorder`) — the default.
  Every operation is a constant-time no-op, so instrumented code pays
  essentially nothing when tracing is off;
* :class:`SpanCollector` — keeps every span in memory, exports JSONL
  (one span per line, sorted keys — the same convention as
  :meth:`repro.core.results.MeasurementRecord.to_json` and
  :meth:`repro.netsim.trace.TraceEvent.to_json`) and renders text trees.

Span ids are a per-collector counter and timestamps come from the virtual
clock, so two runs of the same seeded campaign produce byte-identical
span exports.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Union


@dataclass
class Span:
    """One recorded interval on the virtual clock."""

    span_id: int
    parent_id: Optional[int]
    name: str
    start_ms: float
    end_ms: Optional[float] = None
    status: str = "ok"  # "ok" | "error"
    attrs: Dict[str, Any] = field(default_factory=dict)

    @property
    def duration_ms(self) -> Optional[float]:
        if self.end_ms is None:
            return None
        return self.end_ms - self.start_ms

    def to_json(self) -> str:
        payload = {
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "start_ms": self.start_ms,
            "end_ms": self.end_ms,
            "status": self.status,
            "attrs": self.attrs,
        }
        return json.dumps(payload, separators=(",", ":"), sort_keys=True)

    @classmethod
    def from_json(cls, line: str) -> "Span":
        return cls(**json.loads(line))


class SpanRecorder:
    """The no-op recorder: the default everywhere tracing is optional.

    All methods are overridden by :class:`SpanCollector`; here they do
    nothing and return span id ``0`` (a non-id: real spans start at 1).
    Instrumented hot paths may additionally guard on :attr:`enabled` to
    skip building attribute dicts.
    """

    enabled = False

    def begin(
        self,
        name: str,
        start_ms: float,
        parent_id: Optional[int] = None,
        **attrs: Any,
    ) -> int:
        return 0

    def end(
        self,
        span_id: int,
        end_ms: float,
        status: str = "ok",
        **attrs: Any,
    ) -> None:
        return None

    def emit(
        self,
        name: str,
        start_ms: float,
        end_ms: float,
        parent_id: Optional[int] = None,
        status: str = "ok",
        **attrs: Any,
    ) -> int:
        return 0


#: Shared no-op recorder instance (stateless, safe to share globally).
NULL_RECORDER = SpanRecorder()


class SpanCollector(SpanRecorder):
    """A recorder that keeps every span in memory."""

    enabled = True

    def __init__(self, max_spans: int = 1_000_000) -> None:
        self.max_spans = max_spans
        self._spans: List[Span] = []
        self._by_id: Dict[int, Span] = {}
        self._next_id = 1
        self.dropped = 0

    # -- recording ---------------------------------------------------------

    def begin(
        self,
        name: str,
        start_ms: float,
        parent_id: Optional[int] = None,
        **attrs: Any,
    ) -> int:
        if len(self._spans) >= self.max_spans:
            self.dropped += 1
            return 0
        span_id = self._next_id
        self._next_id += 1
        span = Span(
            span_id=span_id,
            parent_id=parent_id if parent_id else None,
            name=name,
            start_ms=start_ms,
            attrs=dict(attrs),
        )
        self._spans.append(span)
        self._by_id[span_id] = span
        return span_id

    def end(
        self,
        span_id: int,
        end_ms: float,
        status: str = "ok",
        **attrs: Any,
    ) -> None:
        span = self._by_id.get(span_id)
        if span is None:
            return
        span.end_ms = end_ms
        span.status = status
        if attrs:
            span.attrs.update(attrs)

    def emit(
        self,
        name: str,
        start_ms: float,
        end_ms: float,
        parent_id: Optional[int] = None,
        status: str = "ok",
        **attrs: Any,
    ) -> int:
        span_id = self.begin(name, start_ms, parent_id, **attrs)
        if span_id:
            self.end(span_id, end_ms, status)
        return span_id

    # -- access ------------------------------------------------------------

    @property
    def spans(self) -> List[Span]:
        return list(self._spans)

    def __len__(self) -> int:
        return len(self._spans)

    def __iter__(self) -> Iterator[Span]:
        return iter(self._spans)

    def clear(self) -> None:
        self._spans.clear()
        self._by_id.clear()
        self._next_id = 1
        self.dropped = 0

    def absorb(self, spans: List[Span]) -> int:
        """Append another collector's spans, rebasing their ids.

        Incoming ids are shifted past this collector's current id space
        (virtual timestamps are untouched), and parent links are rewired
        by the same offset, so the absorbed trees stay intact.  Absorbing
        shard collectors in a fixed order yields the same merged export
        regardless of which shard finished first — the deterministic-merge
        building block of the parallel executor.  Returns the id offset
        applied.
        """
        offset = self._next_id - 1
        for span in spans:
            rebased = Span(
                span_id=span.span_id + offset,
                parent_id=(span.parent_id + offset) if span.parent_id else None,
                name=span.name,
                start_ms=span.start_ms,
                end_ms=span.end_ms,
                status=span.status,
                attrs=dict(span.attrs),
            )
            self._spans.append(rebased)
            self._by_id[rebased.span_id] = rebased
            self._next_id = max(self._next_id, rebased.span_id + 1)
        return offset

    def roots(self) -> List[Span]:
        return [s for s in self._spans if s.parent_id is None]

    def children(self, span_id: int) -> List[Span]:
        kids = [s for s in self._spans if s.parent_id == span_id]
        kids.sort(key=lambda s: (s.start_ms, s.span_id))
        return kids

    def find(self, name: Optional[str] = None, status: Optional[str] = None) -> List[Span]:
        out = self._spans
        if name is not None:
            out = [s for s in out if s.name == name]
        if status is not None:
            out = [s for s in out if s.status == status]
        return list(out)

    # -- export ------------------------------------------------------------

    def to_jsonl(self) -> str:
        return "".join(span.to_json() + "\n" for span in self._spans)

    def save_jsonl(self, path: Union[str, Path]) -> int:
        """Write all spans as JSON Lines; returns the span count."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(self.to_jsonl(), encoding="utf-8")
        return len(self._spans)

    def render_tree(self, max_spans: Optional[int] = None) -> str:
        """Indented text rendering of the span forest."""
        lines: List[str] = []

        def walk(span: Span, depth: int) -> None:
            if max_spans is not None and len(lines) >= max_spans:
                return
            lines.append("  " * depth + _describe_span(span))
            for child in self.children(span.span_id):
                walk(child, depth + 1)

        for root in sorted(self.roots(), key=lambda s: (s.start_ms, s.span_id)):
            walk(root, 0)
        if max_spans is not None and len(self._spans) > len(lines):
            lines.append(f"... ({len(self._spans) - len(lines)} more spans)")
        return "\n".join(lines)


def _describe_span(span: Span) -> str:
    attrs = " ".join(f"{k}={span.attrs[k]}" for k in sorted(span.attrs))
    duration = span.duration_ms
    timing = (
        f"{span.start_ms:.3f}ms +{duration:.3f}ms"
        if duration is not None
        else f"{span.start_ms:.3f}ms (open)"
    )
    marker = "" if span.status == "ok" else f" !{span.status}"
    return f"{span.name} [{timing}]{marker}" + (f" {attrs}" if attrs else "")


class PhaseClock:
    """Phase bookkeeping for one probe query.

    Probes drive it through :meth:`enter` at each protocol transition
    (``tcp_connect`` → ``tls_handshake`` → ``http_exchange`` → …) and
    :meth:`finish` when the outcome is known.  Per-phase durations are
    always accumulated — they feed the record-level ``connect_ms`` /
    ``tls_ms`` / ``query_ms`` fields — while spans are emitted only when
    the recorder collects.
    """

    __slots__ = (
        "loop",
        "recorder",
        "span_id",
        "started_ms",
        "phases",
        "failed_phase",
        "_current",
        "_current_start",
        "_finished",
    )

    def __init__(
        self,
        loop,
        recorder: Optional[SpanRecorder] = None,
        name: str = "probe",
        parent_id: Optional[int] = None,
        **attrs: Any,
    ) -> None:
        self.loop = loop
        self.recorder = recorder if recorder is not None else NULL_RECORDER
        self.started_ms = loop.now
        self.phases: Dict[str, float] = {}
        self.failed_phase: Optional[str] = None
        self._current: Optional[str] = None
        self._current_start = 0.0
        self._finished = False
        self.span_id = (
            self.recorder.begin(name, self.started_ms, parent_id, **attrs)
            if self.recorder.enabled
            else 0
        )

    def enter(self, phase: str) -> None:
        """Close the current phase (if any) and start ``phase``."""
        if self._finished:
            return
        now = self.loop.now
        self._close_current(now, "ok")
        self._current = phase
        self._current_start = now

    def _close_current(self, now: float, status: str) -> None:
        if self._current is None:
            return
        duration = now - self._current_start
        self.phases[self._current] = self.phases.get(self._current, 0.0) + duration
        if self.recorder.enabled:
            self.recorder.emit(
                self._current, self._current_start, now,
                parent_id=self.span_id, status=status,
            )
        self._current = None

    def finish(self, ok: bool, error: Optional[str] = None, **attrs: Any) -> Dict[str, float]:
        """Close the open phase and the probe span; returns phase durations."""
        if self._finished:
            return self.phases
        self._finished = True
        now = self.loop.now
        if not ok:
            self.failed_phase = self._current
        self._close_current(now, "ok" if ok else "error")
        if self.recorder.enabled and self.span_id:
            if error is not None:
                attrs["error"] = error
            self.recorder.end(self.span_id, now, status="ok" if ok else "error", **attrs)
        return self.phases
