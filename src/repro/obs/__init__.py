"""Observability: span tracing, metrics and monitoring hooks.

Three module-level singletons hold the *ambient* instrumentation targets:

* the **span recorder** (default: :data:`~repro.obs.spans.NULL_RECORDER`,
  a no-op) — campaign runners and probes also accept an explicit recorder,
  which takes precedence over the ambient one;
* the **metrics registry** (default: disabled) — protocol layers
  (:mod:`repro.netsim.network`, :mod:`repro.tlssim.handshake`,
  :mod:`repro.httpsim`, :mod:`repro.quicsim.connection`) report counters
  and histograms here;
* the **monitor** (default: ``None``) — a
  :class:`repro.monitor.Monitor` (or anything with an
  ``observe(record)`` method).  The campaign runner feeds it every
  finished :class:`~repro.core.results.MeasurementRecord` right after the
  record is stored, giving live SLO evaluation and alerting without a
  second pass.

Use :func:`tracing` to enable instrumentation for a scoped block::

    with tracing() as (recorder, metrics):
        Campaign(...).run()
    recorder.save_jsonl("spans.jsonl")
    print(metrics.summary())

    monitor = Monitor()
    with tracing(monitor=monitor) as (recorder, metrics):
        Campaign(...).run()
    monitor.finalize(metrics)  # sorted alerts + monitor.* gauges

Everything is driven by the simulator's virtual clock, and all three
hooks are pure observers — enabling them never perturbs timing,
scheduling or RNG draws: an instrumented run and a bare run of the same
seed produce identical measurements, and two instrumented runs produce
byte-identical span and alert exports.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Any, Iterator, Optional, Tuple

from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    exposition_from_dump,
)
from repro.obs.spans import (
    NULL_RECORDER,
    PhaseClock,
    Span,
    SpanCollector,
    SpanRecorder,
)

_recorder: SpanRecorder = NULL_RECORDER
_metrics: MetricsRegistry = MetricsRegistry(enabled=False)
_monitor: Optional[Any] = None


def get_recorder() -> SpanRecorder:
    """The ambient span recorder (no-op unless tracing is installed)."""
    return _recorder


def set_recorder(recorder: Optional[SpanRecorder]) -> SpanRecorder:
    """Install ``recorder`` as the ambient recorder; returns the previous one."""
    global _recorder
    previous = _recorder
    _recorder = recorder if recorder is not None else NULL_RECORDER
    return previous


def get_metrics() -> MetricsRegistry:
    """The ambient metrics registry (disabled unless installed)."""
    return _metrics


def set_metrics(metrics: Optional[MetricsRegistry]) -> MetricsRegistry:
    """Install ``metrics`` as the ambient registry; returns the previous one."""
    global _metrics
    previous = _metrics
    _metrics = metrics if metrics is not None else MetricsRegistry(enabled=False)
    return previous


def get_monitor() -> Optional[Any]:
    """The ambient monitor, or ``None`` when no monitoring is installed."""
    return _monitor


def set_monitor(monitor: Optional[Any]) -> Optional[Any]:
    """Install ``monitor`` as the ambient monitor; returns the previous one."""
    global _monitor
    previous = _monitor
    _monitor = monitor
    return previous


@contextmanager
def tracing(
    recorder: Optional[SpanRecorder] = None,
    metrics: Optional[MetricsRegistry] = None,
    monitor: Optional[Any] = None,
) -> Iterator[Tuple[SpanRecorder, MetricsRegistry]]:
    """Install a recorder and registry for the duration of the block.

    Defaults to a fresh :class:`SpanCollector` and an enabled
    :class:`MetricsRegistry`; both are restored to their previous values
    on exit and yielded so callers can export what was collected.  Pass
    ``monitor`` to additionally install a live monitor for the block —
    it stays in the caller's hands (it is not yielded), so finalize it
    after the block to collect its alerts.
    """
    active_recorder = recorder if recorder is not None else SpanCollector()
    active_metrics = metrics if metrics is not None else MetricsRegistry(enabled=True)
    previous_recorder = set_recorder(active_recorder)
    previous_metrics = set_metrics(active_metrics)
    previous_monitor = set_monitor(monitor) if monitor is not None else None
    try:
        yield active_recorder, active_metrics
    finally:
        set_recorder(previous_recorder)
        set_metrics(previous_metrics)
        if monitor is not None:
            set_monitor(previous_monitor)


__all__ = [
    "DEFAULT_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_RECORDER",
    "PhaseClock",
    "Span",
    "SpanCollector",
    "SpanRecorder",
    "exposition_from_dump",
    "get_metrics",
    "get_monitor",
    "get_recorder",
    "set_metrics",
    "set_monitor",
    "set_recorder",
    "tracing",
]
