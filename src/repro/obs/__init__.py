"""Observability: span tracing and metrics for the measurement stack.

Two module-level singletons hold the *ambient* instrumentation targets:

* the **span recorder** (default: :data:`~repro.obs.spans.NULL_RECORDER`,
  a no-op) — campaign runners and probes also accept an explicit recorder,
  which takes precedence over the ambient one;
* the **metrics registry** (default: disabled) — protocol layers
  (:mod:`repro.netsim.network`, :mod:`repro.tlssim.handshake`,
  :mod:`repro.httpsim`, :mod:`repro.quicsim.connection`) report counters
  and histograms here.

Use :func:`tracing` to enable both for a scoped block::

    with tracing() as (recorder, metrics):
        Campaign(...).run()
    recorder.save_jsonl("spans.jsonl")
    print(metrics.summary())

Everything is driven by the simulator's virtual clock, so enabling
tracing never perturbs timing, scheduling or RNG draws: a traced run and
an untraced run of the same seed produce identical measurements, and two
traced runs produce byte-identical span exports.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator, Optional, Tuple

from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.spans import (
    NULL_RECORDER,
    PhaseClock,
    Span,
    SpanCollector,
    SpanRecorder,
)

_recorder: SpanRecorder = NULL_RECORDER
_metrics: MetricsRegistry = MetricsRegistry(enabled=False)


def get_recorder() -> SpanRecorder:
    """The ambient span recorder (no-op unless tracing is installed)."""
    return _recorder


def set_recorder(recorder: Optional[SpanRecorder]) -> SpanRecorder:
    """Install ``recorder`` as the ambient recorder; returns the previous one."""
    global _recorder
    previous = _recorder
    _recorder = recorder if recorder is not None else NULL_RECORDER
    return previous


def get_metrics() -> MetricsRegistry:
    """The ambient metrics registry (disabled unless installed)."""
    return _metrics


def set_metrics(metrics: Optional[MetricsRegistry]) -> MetricsRegistry:
    """Install ``metrics`` as the ambient registry; returns the previous one."""
    global _metrics
    previous = _metrics
    _metrics = metrics if metrics is not None else MetricsRegistry(enabled=False)
    return previous


@contextmanager
def tracing(
    recorder: Optional[SpanRecorder] = None,
    metrics: Optional[MetricsRegistry] = None,
) -> Iterator[Tuple[SpanRecorder, MetricsRegistry]]:
    """Install a recorder and registry for the duration of the block.

    Defaults to a fresh :class:`SpanCollector` and an enabled
    :class:`MetricsRegistry`; both are restored to their previous values
    on exit and yielded so callers can export what was collected.
    """
    active_recorder = recorder if recorder is not None else SpanCollector()
    active_metrics = metrics if metrics is not None else MetricsRegistry(enabled=True)
    previous_recorder = set_recorder(active_recorder)
    previous_metrics = set_metrics(active_metrics)
    try:
        yield active_recorder, active_metrics
    finally:
        set_recorder(previous_recorder)
        set_metrics(previous_metrics)


__all__ = [
    "DEFAULT_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_RECORDER",
    "PhaseClock",
    "Span",
    "SpanCollector",
    "SpanRecorder",
    "get_metrics",
    "get_recorder",
    "set_metrics",
    "set_recorder",
    "tracing",
]
