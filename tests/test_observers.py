"""Unit tests for the longitudinal observer fleet.

Covers the spec registry (validation, file loading), the significance
model (warm-up, grading, one-shot baselines), the per-observer-day
debounce, the world-health index, and the fleet end-to-end on synthetic
record streams with known shifts.
"""

from __future__ import annotations

import json

import pytest

from repro.core.results import MeasurementRecord
from repro.core.scheduler import MS_PER_DAY
from repro.errors import ObserverConfigError
from repro.obs.metrics import MetricsRegistry
from repro.observers import (
    BaselineConfig,
    ObserverFleet,
    ObserverRegistry,
    ObserverSpec,
    SignificanceEvent,
    SignificanceLog,
    SignificanceModel,
    WorldHealthIndex,
    band_of,
    debounce_day,
    default_registry,
    scaled_registry,
)


def make_record(
    resolver: str = "dns.google",
    day: int = 0,
    success: bool = True,
    duration_ms: float = 40.0,
    transport: str = "doh",
    error_class: str = "connect_timeout",
    vantage: str = "ec2-ohio",
    domain: str = "example.com",
    round_index: int = 0,
    offset_ms: float = 0.0,
    kind: str = "dns_query",
    campaign: str = "obs-test",
    response_wire: str = None,
) -> MeasurementRecord:
    return MeasurementRecord(
        campaign=campaign,
        vantage=vantage,
        resolver=resolver,
        kind=kind,
        transport=transport,
        domain=domain,
        round_index=round_index,
        started_at_ms=day * MS_PER_DAY + offset_ms,
        duration_ms=duration_ms if success else None,
        success=success,
        error_class=None if success else error_class,
        response_wire=response_wire,
    )


def day_batch(day, resolver="dns.google", n=10, failures=0, duration_ms=40.0, **kw):
    records = []
    for i in range(n):
        records.append(
            make_record(
                resolver=resolver,
                day=day,
                success=i >= failures,
                duration_ms=duration_ms,
                round_index=i,
                offset_ms=float(i),
                **kw,
            )
        )
    return records


AVAIL_SPEC = ObserverSpec(
    name="avail",
    kind="availability",
    scope="resolver",
    min_samples=5,
    baseline=BaselineConfig(alpha=0.2, min_days=3, min_delta=0.05, std_floor=0.02),
)


class TestSpecs:
    def test_kind_and_scope_validation(self):
        with pytest.raises(ObserverConfigError):
            ObserverSpec(name="x", kind="nope", scope="fleet")
        with pytest.raises(ObserverConfigError):
            ObserverSpec(name="x", kind="availability", scope="planet")
        with pytest.raises(ObserverConfigError):
            ObserverSpec(name="", kind="availability", scope="fleet")
        with pytest.raises(ObserverConfigError):
            ObserverSpec(name="x", kind="availability", scope="fleet", weight=0.0)

    def test_baseline_validation(self):
        with pytest.raises(ObserverConfigError):
            BaselineConfig(alpha=0.0)
        with pytest.raises(ObserverConfigError):
            BaselineConfig(z_warning=5.0, z_critical=3.0)
        with pytest.raises(ObserverConfigError):
            BaselineConfig(std_floor=0.0)

    def test_default_registry_has_the_five(self):
        registry = default_registry()
        assert registry.names() == [
            "answer-disagreement",
            "doq-adoption",
            "establishment-error-share",
            "region-availability",
            "resolver-p95-drift",
        ]
        kinds = {spec.kind for spec in registry.specs()}
        assert kinds == {
            "availability",
            "latency_p95",
            "error_share",
            "adoption_share",
            "disagreement_rate",
        }

    def test_registry_rejects_duplicates_and_unknown(self):
        registry = ObserverRegistry([AVAIL_SPEC])
        with pytest.raises(ObserverConfigError):
            registry.register(AVAIL_SPEC)
        with pytest.raises(ObserverConfigError):
            registry.get("missing")
        assert registry.select(["avail"]) == [AVAIL_SPEC]

    def test_registry_json_round_trip(self, tmp_path):
        path = tmp_path / "fleet.json"
        default_registry().save_json(path)
        loaded = ObserverRegistry.load(path)
        assert [s.to_dict() for s in loaded.specs()] == [
            s.to_dict() for s in default_registry().specs()
        ]

    def test_registry_toml_load(self, tmp_path):
        path = tmp_path / "fleet.toml"
        path.write_text(
            "[[observers]]\n"
            'name = "t"\nkind = "availability"\nscope = "fleet"\n'
            "min_samples = 3\n[observers.baseline]\nmin_days = 2\n",
            encoding="utf-8",
        )
        registry = ObserverRegistry.load(path)
        assert registry.get("t").baseline.min_days == 2

    def test_registry_load_rejects_garbage(self, tmp_path):
        empty = tmp_path / "empty.json"
        empty.write_text("{}", encoding="utf-8")
        with pytest.raises(ObserverConfigError):
            ObserverRegistry.load(empty)
        bad = tmp_path / "bad.json"
        bad.write_text('{"observers": [{"name": "x"}]}', encoding="utf-8")
        with pytest.raises(ObserverConfigError):
            ObserverRegistry.load(bad)

    def test_scaled_registry(self):
        scaled = scaled_registry(0.5)
        for spec, base in zip(scaled.specs(), default_registry().specs()):
            assert spec.min_samples == max(1, int(base.min_samples * 0.5))
        with pytest.raises(ObserverConfigError):
            scaled_registry(0.0)


class TestSignificanceModel:
    def test_warm_up_produces_no_candidates(self):
        model = SignificanceModel(AVAIL_SPEC)
        for _ in range(AVAIL_SPEC.baseline.min_days):
            assert not model.warmed_up
            candidate, zscore = model.evaluate("g", 1.0, 10)
            assert candidate is None and zscore is None
        assert model.warmed_up
        _, zscore = model.evaluate("g", 1.0, 10)
        assert zscore is not None

    def test_stable_stream_stays_quiet(self):
        model = SignificanceModel(AVAIL_SPEC)
        for _ in range(30):
            candidate, _ = model.evaluate("g", 1.0, 10)
            assert candidate is None

    def test_shift_fires_once_then_becomes_normal(self):
        model = SignificanceModel(AVAIL_SPEC)
        for _ in range(10):
            model.evaluate("g", 1.0, 10)
        candidate, zscore = model.evaluate("g", 0.5, 10)
        assert candidate is not None
        assert candidate.severity == "critical"
        assert candidate.direction == "down"
        assert zscore < 0
        # The baseline absorbs the shift: staying at 0.5 re-fires at most
        # briefly and then goes quiet (one-shot semantics).
        fired = 0
        for _ in range(30):
            candidate, _ = model.evaluate("g", 0.5, 10)
            fired += candidate is not None
        assert fired <= 3

    def test_relative_min_delta(self):
        spec = ObserverSpec(
            name="lat",
            kind="latency_p95",
            scope="resolver",
            min_samples=1,
            baseline=BaselineConfig(
                min_days=3, min_delta=0.5, relative=True, std_floor=1.0
            ),
        )
        model = SignificanceModel(spec)
        for _ in range(10):
            model.evaluate("g", 100.0, 5)
        # +20% is surprising by z but below the 50% relative gate.
        candidate, _ = model.evaluate("g", 120.0, 5)
        assert candidate is None
        candidate, _ = model.evaluate("g", 200.0, 5)
        assert candidate is not None


class TestDebounce:
    def _candidates(self, model, values):
        out = []
        for group, value in values:
            candidate, _ = model.evaluate(group, value, 10)
            if candidate is not None:
                out.append(candidate)
        return out

    def test_most_severe_wins_and_others_suppressed(self):
        models = {g: SignificanceModel(AVAIL_SPEC) for g in ("a", "b", "c")}
        for _ in range(10):
            for model in models.values():
                model.evaluate("x", 1.0, 10)
        candidates = []
        for group, value in (("a", 0.9), ("b", 0.2), ("c", 0.85)):
            candidate, _ = models[group].evaluate(group, value, 10)
            if candidate is not None:
                candidates.append(candidate)
        assert len(candidates) == 3
        event = debounce_day(AVAIL_SPEC, 7, 7 * MS_PER_DAY, candidates, 3, 30, 0, 9.0)
        assert event.status == "significant"
        assert event.group == "b"  # the deepest dip
        assert event.suppressed == 2
        assert sorted(event.evidence["suppressed_groups"]) == ["a", "c"]

    def test_silence_checkpoint_carries_coverage(self):
        event = debounce_day(AVAIL_SPEC, 3, 3 * MS_PER_DAY, [], 4, 40, 1, 0.7)
        assert event.status == "silence"
        assert event.group == "*"
        assert event.severity == "none"
        assert event.evidence == {
            "readings": 4,
            "records": 40,
            "warming": 1,
            "max_abs_z": 0.7,
        }

    def test_event_json_round_trip(self):
        event = debounce_day(AVAIL_SPEC, 3, 3 * MS_PER_DAY, [], 4, 40, 1, None)
        again = SignificanceEvent.from_dict(json.loads(event.to_json()))
        assert again.to_json() == event.to_json()

    def test_log_round_trip(self, tmp_path):
        log = SignificanceLog()
        log.emit(debounce_day(AVAIL_SPEC, 2, 2 * MS_PER_DAY, [], 1, 10, 0, None))
        log.emit(debounce_day(AVAIL_SPEC, 1, 1 * MS_PER_DAY, [], 1, 10, 1, 0.2))
        log.canonical_sort()
        path = log.save_jsonl(tmp_path / "events.jsonl")
        loaded = SignificanceLog.load_jsonl(path)
        assert loaded.to_jsonl() == log.to_jsonl()
        assert [e.day for e in loaded] == [1, 2]


class TestWorldHealthIndex:
    def test_bands(self):
        assert band_of(95.0) == "STABLE"
        assert band_of(70.0) == "WATCH"
        assert band_of(50.0) == "DEGRADED"
        assert band_of(0.0) == "CRITICAL"

    def _significant(self, observer, day, severity):
        return SignificanceEvent(
            observer=observer,
            group="g",
            day=day,
            at_ms=day * MS_PER_DAY,
            status="significant",
            severity=severity,
            value=0.5,
            baseline_mean=1.0,
            baseline_std=0.02,
            delta=-0.5,
            zscore=-25.0,
            direction="down",
            samples=10,
            suppressed=0,
        )

    def _silence(self, observer, day):
        return SignificanceEvent(
            observer=observer,
            group="*",
            day=day,
            at_ms=day * MS_PER_DAY,
            status="silence",
            severity="none",
            value=None,
            baseline_mean=None,
            baseline_std=None,
            delta=None,
            zscore=None,
            direction="none",
            samples=10,
            suppressed=0,
        )

    def test_scores_weights_and_clamp(self):
        spec = ObserverSpec(name="w2", kind="availability", scope="fleet", weight=2.0)
        events = [
            self._silence("w2", 0),
            self._significant("w2", 1, "warning"),  # 15 * 2.0 = 30
            self._significant("w2", 2, "critical"),  # 40 * 2.0 = 80
        ]
        index = WorldHealthIndex.from_events(events, [spec], MS_PER_DAY)
        scores = {s.day: s.score for s in index}
        assert scores == {0: 100.0, 1: 70.0, 2: 20.0}
        assert index.min_score() == 20.0
        assert not index.healthy(70.0)
        assert index.latest().contributions == {"w2": 80.0}

    def test_unmeasured_days_produce_no_samples(self):
        index = WorldHealthIndex.from_events(
            [self._silence("a", 0), self._silence("a", 9)], [], MS_PER_DAY
        )
        assert [s.day for s in index] == [0, 9]
        assert index.healthy()

    def test_empty_index_is_vacuously_healthy(self):
        index = WorldHealthIndex.from_events([], [], MS_PER_DAY)
        assert index.healthy()
        assert index.latest() is None
        assert index.worst_band() == "STABLE"

    def test_jsonl_round_trip(self, tmp_path):
        index = WorldHealthIndex.from_events(
            [self._significant("a", 3, "warning")], [], MS_PER_DAY
        )
        path = index.save_jsonl(tmp_path / "index.jsonl")
        loaded = WorldHealthIndex.load_jsonl(path)
        assert loaded.to_jsonl() == index.to_jsonl()


class TestFleet:
    def _stream_with_dip(self, dip_day=6, days=10):
        records = []
        for day in range(days):
            failures = 8 if day == dip_day else 0
            records.extend(day_batch(day, failures=failures))
        return records

    def test_availability_dip_fires_one_event(self):
        fleet = ObserverFleet([AVAIL_SPEC])
        fleet.replay(self._stream_with_dip())
        report = fleet.finalize()
        significant = report.events.significant()
        assert len(significant) == 1
        event = significant[0]
        assert event.day == 6
        assert event.observer == "avail"
        assert event.group == "dns.google"
        assert event.direction == "down"
        # Every other measured day closes with a silence checkpoint.
        assert len(report.events.silences()) == 9
        assert {e.day for e in report.events.silences()} == set(range(10)) - {6}

    def test_thin_days_are_gaps_not_silences(self):
        records = day_batch(0) + day_batch(1, n=2) + day_batch(2)
        fleet = ObserverFleet([AVAIL_SPEC])
        fleet.replay(records)
        report = fleet.finalize()
        assert {e.day for e in report.events} == {0, 2}
        assert report.days_observed == 2

    def test_non_query_records_ignored(self):
        fleet = ObserverFleet([AVAIL_SPEC])
        fleet.replay([make_record(kind="ping"), make_record(kind="dns_query_attempt")])
        report = fleet.finalize()
        assert report.records_seen == 0
        assert len(report.events) == 0

    def test_latency_drift_observer(self):
        spec = ObserverSpec(
            name="p95",
            kind="latency_p95",
            scope="resolver",
            min_samples=5,
            baseline=BaselineConfig(
                min_days=3, min_delta=0.25, relative=True, std_floor=5.0
            ),
        )
        records = []
        for day in range(8):
            records.extend(day_batch(day, duration_ms=40.0 if day < 7 else 400.0))
        fleet = ObserverFleet([spec])
        fleet.replay(records)
        report = fleet.finalize()
        significant = report.events.significant()
        assert [e.day for e in significant] == [7]
        assert significant[0].direction == "up"

    def test_latency_groups_are_transport_qualified(self):
        """A DoQ series ramping up next to an established DoH series must
        warm its own baseline, not read as the DoH tail drifting."""
        spec = ObserverSpec(
            name="p95",
            kind="latency_p95",
            scope="resolver",
            min_samples=5,
            baseline=BaselineConfig(
                min_days=3, min_delta=0.25, relative=True, std_floor=5.0
            ),
        )
        records = []
        for day in range(8):
            records.extend(day_batch(day, duration_ms=40.0))
            if day >= 5:  # DoQ appears mid-study, 4x slower
                records.extend(day_batch(day, transport="doq", duration_ms=160.0))
        from repro.obs.metrics import MetricsRegistry

        fleet = ObserverFleet([spec])
        fleet.replay(records)
        metrics = MetricsRegistry()
        report = fleet.finalize(metrics)
        # Two separate series exist; neither ever looks like a drift: the
        # DoH baseline never sees a DoQ duration, and the DoQ series is
        # internally stable (its first min_days readings are warm-up).
        assert not report.events.significant()
        means = metrics.gauges_matching("observer.baseline_mean")
        assert any("dns.google/doh" in key for key in means)
        assert any("dns.google/doq" in key for key in means)

    def test_error_share_uses_establishment_classes_only(self):
        spec = ObserverSpec(
            name="err",
            kind="error_share",
            scope="fleet",
            min_samples=5,
            baseline=BaselineConfig(min_days=2, min_delta=0.05, std_floor=0.01),
        )
        records = []
        for day in range(6):
            # rcode failures (error_class None on success path) must not count:
            # use a non-establishment class for the control failures.
            failures = 8 if day == 5 else 0
            records.extend(
                day_batch(day, failures=failures, error_class="connect_refused")
            )
            records.extend(
                day_batch(day, n=2, failures=2, error_class="dns_rcode")
            )
        fleet = ObserverFleet([spec])
        fleet.replay(records)
        report = fleet.finalize()
        assert [e.day for e in report.events.significant()] == [5]

    def test_adoption_share_counts_doq_among_encrypted(self):
        spec = ObserverSpec(
            name="doq",
            kind="adoption_share",
            scope="fleet",
            min_samples=5,
            baseline=BaselineConfig(min_days=2, min_delta=0.1, std_floor=0.02),
        )
        records = []
        for day in range(6):
            doq = 8 if day == 5 else 0
            records.extend(day_batch(day, n=10 - doq, transport="doh"))
            records.extend(day_batch(day, n=doq, transport="doq"))
            records.extend(day_batch(day, n=4, transport="do53"))  # not encrypted
        fleet = ObserverFleet([spec])
        fleet.replay(records)
        report = fleet.finalize()
        significant = report.events.significant()
        assert [e.day for e in significant] == [5]
        assert significant[0].value == pytest.approx(0.8)

    def test_region_scope_groups_by_catalog_region(self):
        spec = ObserverSpec(
            name="region",
            kind="availability",
            scope="region",
            min_samples=5,
            baseline=BaselineConfig(min_days=2, min_delta=0.05, std_floor=0.02),
        )
        records = []
        for day in range(5):
            # dns.google is NA; dns.pumplex.com has region None -> unlocatable.
            records.extend(day_batch(day, resolver="dns.google"))
            records.extend(
                day_batch(
                    day,
                    resolver="dns.pumplex.com",
                    failures=10 if day == 4 else 0,
                )
            )
        fleet = ObserverFleet([spec])
        fleet.replay(records)
        report = fleet.finalize()
        significant = report.events.significant()
        assert [e.group for e in significant] == ["unlocatable"]

    def test_gauges_exported(self):
        metrics = MetricsRegistry()
        fleet = ObserverFleet([AVAIL_SPEC])
        fleet.replay(self._stream_with_dip())
        report = fleet.finalize(metrics)
        assert metrics.gauge_value("observer.records_seen") == 100.0
        assert metrics.gauge_value("observer.events") == 1.0
        assert metrics.gauge_value("observer.silences") == 9.0
        assert (
            metrics.gauge_value("observer.significant_days", observer="avail") == 1.0
        )
        assert metrics.gauge_value("observer.health_score") == pytest.approx(
            report.index.latest().score
        )
        baseline_mean = metrics.gauge_value(
            "observer.baseline_mean", observer="avail", group="dns.google"
        )
        assert baseline_mean is not None and 0.85 <= baseline_mean <= 1.0
        # And the prefix scan (used by metrics export) sees the series.
        assert metrics.gauges_matching("observer.")

    def test_render_mentions_every_observer(self):
        fleet = ObserverFleet([AVAIL_SPEC])
        fleet.replay(self._stream_with_dip())
        text = fleet.finalize().render()
        assert "avail" in text
        assert "World health" in text
        assert "records=100" in text
