"""Golden-master equivalence: sharded runs reproduce the serial run.

The contract of :mod:`repro.parallel` is byte-equivalence — for the same
seed, ``run_parallel(plan, workers=N)`` writes exactly the bytes that
``workers=1`` writes, for any ``N``, any shard strategy, and any shard
completion order.  These tests pin that contract on the paper's EC2
campaign (full 91-resolver catalog, three seeds) and on smaller worlds
for the per-strategy and fault-study variants, comparing

* the exported ResultStore JSONL,
* the merged span JSONL (rebased ids, untouched virtual timestamps),
* the merged metrics snapshot, and
* downstream analysis tables built from the merged store,

plus the anchor that makes "serial reference" meaningful: a one-shard
plan reproduces the classic ``Campaign.run()`` on a fresh world.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.analysis.export import figure_rows_to_csv
from repro.analysis.figures import paper_figure
from repro.catalog.browsers import mainstream_hostnames
from repro.catalog.resolvers import CATALOG
from repro.core.runner import Campaign
from repro.experiments.campaigns import (
    EC2_VANTAGE_NAMES,
    ec2_campaign_config,
    run_campaign_parallel,
    run_fault_study_parallel,
    run_study_parallel,
)
from repro.experiments.world import build_world
from repro.parallel import ParallelRun

from tests.conftest import MINI_CATALOG_HOSTNAMES

FULL_HOSTNAMES = tuple(entry.hostname for entry in CATALOG)
MINI = tuple(MINI_CATALOG_HOSTNAMES)

#: Worker count the pooled side of the golden-master comparison uses.
#: CI's workers matrix re-runs this suite with REPRO_TEST_WORKERS=4.
POOLED_WORKERS = int(os.environ.get("REPRO_TEST_WORKERS", "2"))


def _artifacts(run: ParallelRun):
    """The three byte-level artifacts of a merged run."""
    return (
        run.store.to_jsonl(),
        run.spans.to_jsonl(),
        json.dumps(run.metrics.snapshot(), sort_keys=True),
    )


def _run(seed: int, workers: int, hostnames=MINI, shard_by: str = "vantage",
         shards=None, rounds: int = 2) -> ParallelRun:
    return run_campaign_parallel(
        ec2_campaign_config(rounds=rounds, seed=seed),
        EC2_VANTAGE_NAMES,
        hostnames,
        world_seed=seed,
        workers=workers,
        shard_by=shard_by,
        shards=shards,
        collect_spans=True,
        collect_metrics=True,
    )


# ---------------------------------------------------------------------------
# The anchor: a one-shard plan IS the classic serial campaign
# ---------------------------------------------------------------------------


def test_identity_plan_reproduces_classic_run():
    config = ec2_campaign_config(rounds=2, seed=11)
    world = build_world(seed=11)
    classic = Campaign(
        network=world.network,
        vantages=[world.vantage(name) for name in EC2_VANTAGE_NAMES],
        targets=world.targets(list(MINI)),
        config=config,
    ).run()
    classic.canonical_sort()

    sharded = run_campaign_parallel(
        config, EC2_VANTAGE_NAMES, MINI, world_seed=11, workers=1, shards=1
    )
    assert sharded.store.to_jsonl() == classic.to_jsonl()


# ---------------------------------------------------------------------------
# The paper EC2 campaign: serial vs pooled, three seeds
# ---------------------------------------------------------------------------


@pytest.mark.slow
@pytest.mark.parametrize("seed", [0, 17, 2023])
def test_ec2_campaign_workers_byte_identical(seed):
    serial = _run(seed, workers=1, hostnames=FULL_HOSTNAMES)
    pooled = _run(seed, workers=POOLED_WORKERS, hostnames=FULL_HOSTNAMES)
    assert not serial.pool_used
    assert _artifacts(serial) == _artifacts(pooled)

    # Downstream analysis sees identical inputs, so identical tables.
    mainstream = mainstream_hostnames()
    serial_csv = figure_rows_to_csv(
        paper_figure(serial.store, "figure2", mainstream)
    )
    pooled_csv = figure_rows_to_csv(
        paper_figure(pooled.store, "figure2", mainstream)
    )
    assert serial_csv == pooled_csv


@pytest.mark.slow
def test_worker_counts_two_three_four_agree():
    serial = _run(5, workers=1, shard_by="resolver", shards=4)
    arts = _artifacts(serial)
    for workers in (2, 3, 4):
        assert _artifacts(_run(5, workers=workers, shard_by="resolver",
                                shards=4)) == arts


@pytest.mark.slow
@pytest.mark.parametrize("shard_by,shards", [("resolver", 3), ("round", 2)])
def test_other_strategies_byte_identical(shard_by, shards):
    serial = _run(23, workers=1, shard_by=shard_by, shards=shards)
    pooled = _run(23, workers=3, shard_by=shard_by, shards=shards)
    assert _artifacts(serial) == _artifacts(pooled)


# ---------------------------------------------------------------------------
# Composite runs: the study and the fault study
# ---------------------------------------------------------------------------


@pytest.mark.slow
def test_study_parallel_byte_identical():
    kwargs = dict(
        world_seed=3, home_rounds=1, ec2_rounds=1, target_hostnames=MINI,
        collect_spans=True, collect_metrics=True,
    )
    serial = run_study_parallel(workers=1, **kwargs)
    pooled = run_study_parallel(workers=3, **kwargs)
    assert _artifacts(serial) == _artifacts(pooled)
    # Both campaigns landed in the one merged store.
    assert {r.campaign for r in serial.store} == {"home-chicago", "ec2-global"}


@pytest.mark.slow
def test_fault_study_parallel_byte_identical():
    serial, serial_plan = run_fault_study_parallel(
        world_seed=9, rounds=2, workers=1, target_hostnames=MINI
    )
    pooled, pooled_plan = run_fault_study_parallel(
        world_seed=9, rounds=2, workers=2, target_hostnames=MINI
    )
    assert serial_plan.to_json() == pooled_plan.to_json()
    assert serial.store.to_jsonl() == pooled.store.to_jsonl()
    # The injected plan has to bite identically too: same error breakdown.
    errors = sorted(
        (r.error_class or "") for r in serial.store if not r.success
    )
    assert errors == sorted(
        (r.error_class or "") for r in pooled.store if not r.success
    )
