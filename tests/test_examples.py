"""Smoke checks on the example scripts.

Full example runs take tens of seconds each (they build the 91-resolver
world); CI-level checks here assert the scripts stay syntactically valid,
importable-by-path, documented, and aligned with the public API (every
name they import must exist).
"""

import ast
import importlib
import pathlib

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"
EXAMPLE_FILES = sorted(EXAMPLES_DIR.glob("*.py"))


def test_examples_present():
    names = {path.name for path in EXAMPLE_FILES}
    assert "quickstart.py" in names
    assert len(EXAMPLE_FILES) >= 5


@pytest.mark.parametrize("path", EXAMPLE_FILES, ids=lambda p: p.name)
def test_example_parses_and_is_documented(path):
    tree = ast.parse(path.read_text())
    docstring = ast.get_docstring(tree)
    assert docstring, f"{path.name} has no module docstring"
    assert "Run:" in docstring, f"{path.name} docstring lacks a Run: line"
    # Every example exposes main() and calls it under the usual guard.
    function_names = {
        node.name for node in tree.body if isinstance(node, ast.FunctionDef)
    }
    assert "main" in function_names, f"{path.name} lacks main()"


@pytest.mark.parametrize("path", EXAMPLE_FILES, ids=lambda p: p.name)
def test_example_imports_resolve(path):
    """Every `from repro...` import in an example names a real attribute."""
    tree = ast.parse(path.read_text())
    for node in ast.walk(tree):
        if isinstance(node, ast.ImportFrom) and node.module and node.module.startswith("repro"):
            module = importlib.import_module(node.module)
            for alias in node.names:
                assert hasattr(module, alias.name), (
                    f"{path.name}: {node.module} has no attribute {alias.name}"
                )
        elif isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name.startswith("repro"):
                    importlib.import_module(alias.name)
