"""Alert-pipeline determinism across worker counts and execution modes.

The monitor's exported artifacts — the alert JSONL, the verdicts, the
rendered scoreboard — must be byte-identical for the same shard plan no
matter how many workers executed it, whether records were merged in RAM
or streamed through a warehouse, and whether the monitor ran live during
a serial run of the same plan or replayed the merged stream afterwards.
"""

from __future__ import annotations

import json
import os

import pytest

# Every test here replays at least one full campaign (the module
# fixture runs the serial reference); the whole file rides the slow lane.
pytestmark = pytest.mark.slow

from repro.experiments.campaigns import (
    EC2_VANTAGE_NAMES,
    ec2_campaign_config,
    run_campaign_parallel,
)
from repro.monitor import Monitor, default_policy

#: Worker count used for the pooled runs (override: REPRO_TEST_WORKERS=4).
POOLED_WORKERS = int(os.environ.get("REPRO_TEST_WORKERS", "2"))

HOSTNAMES = (
    "dns.google",
    "dns.quad9.net",
    "dns.brahma.world",
    "doh.ffmuc.net",
    "dns.pumplex.com",
)

ROUNDS = 6  # enough for every group to clear min_samples=12


def _run(seed: int, workers: int, store_dir=None, shard_by: str = "vantage"):
    return run_campaign_parallel(
        ec2_campaign_config(rounds=ROUNDS, seed=seed),
        EC2_VANTAGE_NAMES,
        HOSTNAMES,
        world_seed=seed,
        workers=workers,
        shard_by=shard_by,
        collect_metrics=True,
        store_dir=None if store_dir is None else str(store_dir),
        slo_policy=default_policy(),
    )


def _artifacts(run):
    return (
        run.monitor.alerts.to_jsonl(),
        json.dumps([v.to_dict() for v in run.monitor.verdicts()]),
        run.monitor.scoreboard().render(),
    )


@pytest.fixture(scope="module")
def serial_run():
    return _run(seed=23, workers=1)


class TestWorkerCountInvariance:
    @pytest.mark.parametrize("workers", [POOLED_WORKERS, POOLED_WORKERS + 1])
    def test_pooled_alerts_match_serial(self, serial_run, workers):
        pooled = _run(seed=23, workers=workers)
        assert _artifacts(pooled) == _artifacts(serial_run)

    def test_alert_log_is_non_trivial(self, serial_run):
        # The dead resolver guarantees the equality above is not vacuous.
        assert len(serial_run.monitor.alerts) > 0
        resolvers = {e.resolver for e in serial_run.monitor.alerts}
        assert "dns.pumplex.com" in resolvers

    def test_scoreboard_states_cover_the_fleet(self, serial_run):
        scoreboard = serial_run.monitor.scoreboard()
        assert scoreboard.worst_state() == "FAILING"
        assert scoreboard.counts()["OK"] > 0

    def test_other_shard_axis_is_deterministic_too(self):
        # A resolver-sharded plan is a *different* plan (each shard runs on
        # a fresh world), so its records — and alerts — differ from the
        # vantage-sharded run; but it is equally reproducible across
        # worker counts.
        serial = _run(seed=23, workers=1, shard_by="resolver")
        pooled = _run(seed=23, workers=POOLED_WORKERS, shard_by="resolver")
        assert _artifacts(pooled) == _artifacts(serial)


class TestWarehouseMode:
    def test_warehouse_replay_matches_in_memory(self, serial_run, tmp_path):
        pooled = _run(seed=23, workers=POOLED_WORKERS, store_dir=tmp_path / "wh")
        assert pooled.warehouse is not None
        assert _artifacts(pooled) == _artifacts(serial_run)


class TestLiveVsReplay:
    def test_serial_live_monitor_matches_plan_replay(self, serial_run):
        """A live monitor fed record-by-record during a serial execution of
        the same plan produces the same alert bytes as the post-merge
        replay."""
        live = Monitor(default_policy())
        bare = _run(seed=23, workers=1)
        live.replay(bare.store.records)
        live.finalize()
        assert live.alerts.to_jsonl() == serial_run.monitor.alerts.to_jsonl()
        assert [v.to_dict() for v in live.verdicts()] == [
            v.to_dict() for v in serial_run.monitor.verdicts()
        ]

    def test_different_seed_changes_alerts(self):
        a = _run(seed=23, workers=1)
        b = _run(seed=24, workers=1)
        assert a.monitor.alerts.to_jsonl() != b.monitor.alerts.to_jsonl()


class TestMonitorGauges:
    def test_detector_gauges_land_in_merged_metrics(self, serial_run):
        metrics = serial_run.metrics
        groups = metrics.gauge_value("monitor.groups")
        assert groups is not None and groups > 0
        assert metrics.gauge_value("monitor.records_seen") == float(
            serial_run.monitor.records_seen
        )
        assert metrics.gauge_value("monitor.alerts") == float(
            len(serial_run.monitor.alerts)
        )

    def test_gauges_identical_across_workers(self, serial_run):
        pooled = _run(seed=23, workers=POOLED_WORKERS)
        serial_gauges = {
            k: v
            for k, v in serial_run.metrics.to_state()["gauges"].items()
            if k.startswith("monitor.")
        }
        pooled_gauges = {
            k: v
            for k, v in pooled.metrics.to_state()["gauges"].items()
            if k.startswith("monitor.")
        }
        assert serial_gauges == pooled_gauges
        assert serial_gauges
