"""Shared fixtures for the test suite."""

from __future__ import annotations

import random

import pytest

from repro.netsim.clock import EventLoop
from repro.netsim.geo import Coordinates
from repro.netsim.host import Host
from repro.netsim.latency import AccessProfile, LatencyModel
from repro.netsim.network import Network
from repro.netsim.trace import EventTrace

#: A zero-delay, zero-jitter, zero-loss access profile for exact-timing tests.
QUIET = AccessProfile("quiet", delay_ms=0.0, jitter_ms=0.0, loss_rate=0.0)


def make_quiet_network(seed: int = 0, trace: bool = False) -> Network:
    """A network with no jitter and no loss: timings are exact RTT multiples."""
    model = LatencyModel.internet_default()
    model.core_jitter_ms = 0.0
    model.core_loss_rate = 0.0
    return Network(
        loop=EventLoop(),
        latency_model=model,
        seed=seed,
        trace=EventTrace() if trace else None,
    )


def add_host(
    network: Network,
    name: str,
    ip: str,
    lat: float = 40.0,
    lon: float = -83.0,
    continent: str = "NA",
    access: AccessProfile = QUIET,
) -> Host:
    return network.attach(Host(name, ip, Coordinates(lat, lon), continent, access))


@pytest.fixture
def quiet_net() -> Network:
    return make_quiet_network()


@pytest.fixture
def traced_net() -> Network:
    return make_quiet_network(trace=True)


@pytest.fixture
def rng() -> random.Random:
    return random.Random(1234)


# ---------------------------------------------------------------------------
# A reduced world for integration tests: a handful of representative
# resolvers instead of all 91, so world construction stays fast.
# ---------------------------------------------------------------------------

MINI_CATALOG_HOSTNAMES = (
    "dns.google",                  # mainstream anycast
    "dns.quad9.net",               # mainstream anycast
    "security.cloudflare-dns.com", # mainstream anycast
    "ordns.he.net",                # non-mainstream anycast (NA)
    "dns.brahma.world",            # non-mainstream unicast (EU)
    "dns.twnic.tw",                # non-mainstream unicast (AS)
    "dns.alidns.com",              # non-mainstream anycast (AS)
    "doh.ffmuc.net",               # slow/flaky (EU)
    "odoh-target.alekberg.net",    # ODoH target (NA)
    "ibksturm.synology.me",        # TLS 1.2-only, HTTP/1.1-only
    "dns.pumplex.com",             # dead
)


def make_mini_world(seed: int = 0, warm: bool = True):
    from repro.catalog.resolvers import CATALOG
    from repro.experiments.world import build_world

    catalog = [e for e in CATALOG if e.hostname in MINI_CATALOG_HOSTNAMES]
    return build_world(seed=seed, catalog=catalog, warm_caches=warm)


@pytest.fixture(scope="session")
def mini_world():
    """A session-scoped small world.  Tests must not mutate topology."""
    return make_mini_world()


@pytest.fixture(scope="session")
def full_world():
    """The full 91-resolver world (built once per test session)."""
    from repro.experiments.world import build_world

    return build_world(seed=0)
